/**
 * @file
 * DTM playground: run one benchmark under every thermal-management
 * configuration the paper evaluates — across all three constrained
 * floorplans — and print a comparison table.
 *
 *   ./dtm_comparison [benchmark] [million-cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"

using namespace tempest;
using namespace tempest::experiments;

int
main(int argc, char** argv)
{
    const std::string bench = argc > 1 ? argv[1] : "perlbmk";
    const std::uint64_t cycles =
        (argc > 2 ? std::atoll(argv[2]) : 12) * 1'000'000ULL;

    struct Row
    {
        const char* floorplan;
        const char* technique;
        SimConfig config;
    };
    const Row grid[] = {
        {"iq-constrained", "temporal only (base)", iqBase()},
        {"iq-constrained", "activity toggling", iqToggling()},
        {"alu-constrained", "temporal only (base)", aluBase()},
        {"alu-constrained", "fine-grain turnoff",
         aluFineGrain()},
        {"alu-constrained", "round-robin (ideal)",
         aluRoundRobin()},
        {"regfile-constrained", "priority-only",
         regfileConfig(PortMapping::Priority, false)},
        {"regfile-constrained", "balanced-only",
         regfileConfig(PortMapping::Balanced, false)},
        {"regfile-constrained", "balanced + turnoff",
         regfileConfig(PortMapping::Balanced, true)},
        {"regfile-constrained", "priority + turnoff",
         regfileConfig(PortMapping::Priority, true)},
    };

    std::printf("DTM comparison for %s (%llu cycles per run)\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(cycles));
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"Floorplan", "Technique", "IPC", "Stall%",
                    "Stalls", "Toggles", "Turnoffs"});
    char buf[32];
    for (const Row& row : grid) {
        const SimResult r =
            runBenchmark(row.config, bench, cycles);
        std::vector<std::string> out{row.floorplan,
                                     row.technique};
        std::snprintf(buf, sizeof(buf), "%.2f", r.ipc);
        out.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      100.0 * r.stallCycles / r.cycles);
        out.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          r.dtm.globalStalls));
        out.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          r.dtm.iqToggles));
        out.push_back(buf);
        std::snprintf(
            buf, sizeof(buf), "%llu",
            static_cast<unsigned long long>(
                r.dtm.aluTurnoffEvents +
                r.dtm.fpAdderTurnoffEvents +
                r.dtm.regfileTurnoffEvents));
        out.push_back(buf);
        rows.push_back(out);
    }
    std::printf("%s", renderTable(rows).c_str());
    return 0;
}
