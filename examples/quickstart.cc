/**
 * @file
 * Quickstart: simulate one benchmark on the IQ-constrained
 * processor with and without activity toggling, and print the
 * headline numbers.
 *
 *   ./quickstart [benchmark] [million-cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"

using namespace tempest;
using namespace tempest::experiments;

int
main(int argc, char** argv)
{
    const std::string bench = argc > 1 ? argv[1] : "eon";
    const std::uint64_t cycles =
        (argc > 2 ? std::atoll(argv[2]) : 12) * 1'000'000ULL;

    std::printf("tempest quickstart: %s for %llu cycles on the "
                "IQ-constrained floorplan\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(cycles));

    // Baseline: the temporal technique only (stop-go cooling).
    SimResult base = runBenchmark(iqBase(), bench, cycles);
    // The paper's activity toggling on top.
    SimResult tog = runBenchmark(iqToggling(), bench, cycles);

    auto report = [](const char* name, const SimResult& r) {
        std::printf("%-18s ipc=%.2f  stalls=%llu "
                    "(%.1f%% of cycles)  toggles=%llu\n",
                    name, r.ipc,
                    static_cast<unsigned long long>(
                        r.dtm.globalStalls),
                    100.0 * r.stallCycles / r.cycles,
                    static_cast<unsigned long long>(
                        r.dtm.iqToggles));
        std::printf("%-18s IntQ tail/head avg = %.1f / %.1f K "
                    "(max %.1f K)\n",
                    "", r.block("IntQ1").avg,
                    r.block("IntQ0").avg, r.block("IntQ1").max);
    };
    report("base:", base);
    report("activity-toggling:", tog);
    std::printf("\nspeedup from activity toggling: %+.1f%%\n",
                speedupPercent(base, tog));
    return 0;
}
