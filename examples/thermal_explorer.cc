/**
 * @file
 * Thermal explorer: uses the floorplan + RC model directly (no
 * pipeline) to study the package. Sweeps convection resistance
 * and prints the steady-state temperature map for a uniform and
 * for a hotspot power profile, illustrating the
 * vertical-vs-lateral conduction property the paper builds on.
 *
 *   ./thermal_explorer [watts-per-block]
 */

#include <cstdio>
#include <cstdlib>

#include "thermal/rc_model.hh"

using namespace tempest;

static void
printMap(const Floorplan& fp, const RcModel& rc)
{
    for (int b = 0; b < fp.numBlocks(); ++b) {
        std::printf("  %-10s %6.2f W  %7.2f K\n",
                    fp.block(b).name.c_str(), rc.power(b),
                    rc.temperature(b));
    }
    std::printf("  %-10s %16.2f K\n", "(spreader)",
                rc.spreaderTemperature());
    std::printf("  %-10s %16.2f K\n", "(sink)",
                rc.sinkTemperature());
}

int
main(int argc, char** argv)
{
    const double per_block =
        argc > 1 ? std::atof(argv[1]) : 0.5;
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::AluConstrained);

    std::printf("== uniform power, %.2f W per block ==\n",
                per_block);
    ThermalParams params;
    RcModel rc(fp, params);
    for (int b = 0; b < fp.numBlocks(); ++b)
        rc.setPower(b, per_block);
    rc.solveSteadyState();
    printMap(fp, rc);

    std::printf("\n== hotspot: ALU0 at 4x its neighbours ==\n");
    rc.setPower(fp.indexOf("IntExec0"), 4 * per_block);
    rc.solveSteadyState();
    const int a0 = fp.indexOf("IntExec0");
    const int a2 = fp.indexOf("IntExec2");
    printMap(fp, rc);
    std::printf("\nIntExec0 - IntExec2 = %.2f K (adjacent copies "
                "hold a Kelvin-scale gap: heat leaves "
                "vertically)\n",
                rc.temperature(a0) - rc.temperature(a2));

    std::printf("\n== convection-resistance sweep (uniform "
                "power) ==\n  Rconv (K/W)   sink (K)   hottest "
                "block (K)\n");
    for (double rconv : {0.4, 0.6, 0.8, 1.0, 1.2}) {
        ThermalParams p;
        p.rConvection = rconv;
        RcModel sweep(fp, p);
        for (int b = 0; b < fp.numBlocks(); ++b)
            sweep.setPower(b, per_block);
        sweep.solveSteadyState();
        double hottest = 0;
        for (int b = 0; b < fp.numBlocks(); ++b)
            hottest = std::max(hottest, sweep.temperature(b));
        std::printf("  %8.2f %12.2f %14.2f\n", rconv,
                    sweep.sinkTemperature(), hottest);
    }
    return 0;
}
