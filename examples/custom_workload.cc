/**
 * @file
 * Define a custom workload profile from scratch and watch the
 * thermal controller manage it. Demonstrates the public workload
 * API (BenchmarkProfile + Simulator) and the real gshare
 * predictor substrate on a synthetic branch trace.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "uarch/bpred.hh"

using namespace tempest;
using namespace tempest::experiments;

int
main()
{
    // A hand-built profile: a pointer-chasing integer workload
    // with hot loops (bursty ILP) — somewhere between gzip and
    // mcf.
    BenchmarkProfile custom;
    custom.name = "my_workload";
    custom.mix[static_cast<int>(OpClass::IntAlu)] = 0.55;
    custom.mix[static_cast<int>(OpClass::IntMul)] = 0.01;
    custom.mix[static_cast<int>(OpClass::Load)] = 0.26;
    custom.mix[static_cast<int>(OpClass::Store)] = 0.07;
    custom.mix[static_cast<int>(OpClass::Branch)] = 0.11;
    custom.meanDepDist = 14.0;
    custom.nearDepFrac = 0.45;
    custom.branchMispredictRate = 0.06;
    custom.loadL2Frac = 0.05;
    custom.loadMemFrac = 0.02;
    custom.burstiness = 0.3;
    custom.burstIlpScale = 2.0;
    custom.seed = 4242;
    custom.validate();

    std::printf("custom workload '%s' on the IQ-constrained "
                "processor\n\n",
                custom.name.c_str());
    for (const bool toggling : {false, true}) {
        SimConfig config = toggling ? iqToggling() : iqBase();
        Simulator sim(config, custom);
        const SimResult r = sim.run(12'000'000);
        std::printf("%-18s ipc=%.2f stall%%=%.1f tail=%.1fK "
                    "head=%.1fK toggles=%llu\n",
                    toggling ? "activity-toggling" : "base",
                    r.ipc, 100.0 * r.stallCycles / r.cycles,
                    r.block("IntQ1").avg, r.block("IntQ0").avg,
                    static_cast<unsigned long long>(
                        r.dtm.iqToggles));
    }

    // Bonus: drive the standalone gshare predictor with a biased
    // synthetic branch stream to pick a misprediction rate for a
    // profile.
    GsharePredictor gshare(14);
    Rng rng(99);
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t pc = 0x1000 + 4 * (rng.next() % 64);
        const bool taken = rng.chance(0.85);
        gshare.update(pc, taken);
    }
    std::printf("\ngshare on an 85%%-taken synthetic trace: "
                "%.2f%% mispredicts (use as a profile's "
                "branchMispredictRate)\n",
                100.0 * gshare.mispredictRate());
    return 0;
}
