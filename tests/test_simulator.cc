/**
 * @file
 * Tests for the closed-loop simulator.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace tempest
{
namespace
{

using namespace experiments;

SimConfig
quickConfig(FloorplanVariant variant)
{
    SimConfig cfg = baseConfig(variant, 0.04);
    return cfg;
}

TEST(Simulator, RunsRequestedCycles)
{
    Simulator sim(quickConfig(FloorplanVariant::Baseline),
                  spec2000("parser"));
    const SimResult r = sim.run(500000);
    EXPECT_GE(r.cycles, 500000u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Simulator, Deterministic)
{
    const SimConfig cfg = quickConfig(FloorplanVariant::Baseline);
    Simulator a(cfg, spec2000("gzip"));
    Simulator b(cfg, spec2000("gzip"));
    const SimResult ra = a.run(600000);
    const SimResult rb = b.run(600000);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.dtm.globalStalls, rb.dtm.globalStalls);
    EXPECT_DOUBLE_EQ(ra.block("IntQ1").avg,
                     rb.block("IntQ1").avg);
}

TEST(Simulator, BlockStatsCoverFloorplan)
{
    Simulator sim(quickConfig(FloorplanVariant::IqConstrained),
                  spec2000("parser"));
    const SimResult r = sim.run(400000);
    EXPECT_EQ(r.blocks.size(), 26u);
    for (const auto& b : r.blocks) {
        EXPECT_GT(b.avg, 300.0) << b.name;
        EXPECT_LT(b.avg, 400.0) << b.name;
        EXPECT_GE(b.max + 1e-9, b.avg) << b.name;
    }
    EXPECT_THROW(r.block("nope"), FatalError);
}

TEST(Simulator, WarmStartBeginsNearEquilibrium)
{
    SimConfig cfg = quickConfig(FloorplanVariant::Baseline);
    Simulator sim(cfg, spec2000("gzip"));
    const SimResult r = sim.run(300000);
    // Warmed temperatures are well above ambient from the first
    // samples, so the average is too.
    EXPECT_GT(r.block("IntQ1").avg, cfg.thermal.ambient + 5.0);
}

TEST(Simulator, ColdStartBeginsAtAmbient)
{
    SimConfig cfg = quickConfig(FloorplanVariant::Baseline);
    cfg.warmStart = false;
    Simulator sim(cfg, spec2000("gzip"));
    sim.run(100000);
    // After only a few samples the blocks are still far below the
    // warm-start equilibrium.
    SimConfig warm = quickConfig(FloorplanVariant::Baseline);
    Simulator wsim(warm, spec2000("gzip"));
    wsim.run(100000);
    EXPECT_LT(sim.thermalModel().temperature(0) + 3.0,
              wsim.thermalModel().temperature(0));
}

TEST(Simulator, HotBenchmarkStallsInConstrainedFloorplan)
{
    Simulator sim(iqBase(0.04), spec2000("eon"));
    const SimResult r = sim.run(8000000);
    EXPECT_GT(r.dtm.globalStalls, 0u);
    EXPECT_GT(r.stallCycles, 0u);
    // The queue's tail half is the hottest backend block.
    EXPECT_GE(r.block("IntQ1").max, 357.9);
}

TEST(Simulator, CoolBenchmarkNeverStalls)
{
    Simulator sim(iqBase(0.04), spec2000("art"));
    const SimResult r = sim.run(4000000);
    EXPECT_EQ(r.dtm.globalStalls, 0u);
    EXPECT_EQ(r.stallCycles, 0u);
    EXPECT_LT(r.block("IntQ1").max, 350.0);
}

TEST(Simulator, StallsCoverCoolingTimeExactly)
{
    SimConfig cfg = iqBase(0.04);
    Simulator sim(cfg, spec2000("eon"));
    const SimResult r = sim.run(10000000);
    const auto cooling_cycles = static_cast<std::uint64_t>(
        cfg.dtm.coolingTime * cfg.thermal.timeScale *
        cfg.pipeline.frequencyHz);
    ASSERT_GT(r.dtm.globalStalls, 0u);
    // Each stop-go trigger stalls for the cooling time exactly:
    // whole sampling intervals plus a final partial chunk.
    // (Regression: truncating integer division used to drop up to
    // one sample interval of stall per trigger.)
    EXPECT_EQ(r.stallCycles,
              r.dtm.globalStalls * cooling_cycles);
}

TEST(Experiments, ConfigsSelectTechniques)
{
    EXPECT_FALSE(iqBase().dtm.iqToggling);
    EXPECT_TRUE(iqToggling().dtm.iqToggling);
    EXPECT_TRUE(aluFineGrain().dtm.aluTurnoff);
    EXPECT_FALSE(aluFineGrain().dtm.roundRobin);
    EXPECT_TRUE(aluRoundRobin().dtm.roundRobin);
    const SimConfig rf =
        regfileConfig(PortMapping::Balanced, true);
    EXPECT_TRUE(rf.dtm.regfileTurnoff);
    EXPECT_EQ(rf.dtm.mapping, PortMapping::Balanced);
    EXPECT_EQ(rf.variant, FloorplanVariant::RegfileConstrained);
}

TEST(Experiments, SpeedupHelpers)
{
    SimResult a, b;
    a.ipc = 1.0;
    b.ipc = 1.25;
    EXPECT_NEAR(speedupPercent(a, b), 25.0, 1e-9);
    std::vector<SimResult> base{a, a};
    std::vector<SimResult> better{b, b};
    EXPECT_NEAR(meanSpeedupPercent(base, better), 25.0, 1e-9);
    a.ipc = 0.0;
    EXPECT_THROW(speedupPercent(a, b), FatalError);
}

TEST(Experiments, RenderTableAligns)
{
    const std::string t = renderTable(
        {{"bench", "ipc"}, {"eon", "2.20"}, {"mcf", "0.2"}});
    EXPECT_NE(t.find("bench  ipc"), std::string::npos);
    EXPECT_NE(t.find("eon    2.20"), std::string::npos);
}

} // namespace
} // namespace tempest
