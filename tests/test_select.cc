/**
 * @file
 * Unit tests for the serialized select trees (§2.2).
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "uarch/select.hh"

namespace tempest
{
namespace
{

IqEntry
readyEntry(std::uint64_t seq)
{
    IqEntry e;
    e.seq = seq;
    e.cls = OpClass::IntAlu;
    e.numSrcs = 0;
    return e;
}

struct SelectFixture : public ::testing::Test
{
    SelectFixture() : iq(16, 6, QueueKind::Int), net(6) {}

    void
    fill(int n)
    {
        for (int i = 0; i < n; ++i)
            iq.dispatch(readyEntry(i + 1), act);
    }

    std::vector<Grant>
    select(int budget, std::uint64_t cycle = 0)
    {
        std::vector<Grant> grants;
        net.select(
            iq, cycle, budget,
            [this](int fu) { return available[fu]; },
            [](int, OpClass) { return true; }, grants);
        return grants;
    }

    IssueQueue iq;
    SelectNetwork net;
    ActivityRecord act;
    bool available[6] = {true, true, true, true, true, true};
};

TEST_F(SelectFixture, StaticPriorityGrantsLowFusFirst)
{
    fill(3);
    const auto grants = select(6);
    ASSERT_EQ(grants.size(), 3u);
    EXPECT_EQ(grants[0].fu, 0);
    EXPECT_EQ(grants[1].fu, 1);
    EXPECT_EQ(grants[2].fu, 2);
}

TEST_F(SelectFixture, OldestInstructionsWinUnderPriority)
{
    fill(10);
    const auto grants = select(3);
    ASSERT_EQ(grants.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(iq.entryAtPhys(grants[i].physIdx).seq,
                  static_cast<std::uint64_t>(i + 1));
    }
}

TEST_F(SelectFixture, NoDoubleGrantAcrossTrees)
{
    fill(6);
    const auto grants = select(6);
    ASSERT_EQ(grants.size(), 6u);
    for (std::size_t i = 0; i < grants.size(); ++i) {
        for (std::size_t j = i + 1; j < grants.size(); ++j)
            EXPECT_NE(grants[i].physIdx, grants[j].physIdx);
    }
}

TEST_F(SelectFixture, BusyFuGrantsNothingMasksNothing)
{
    // §2.2: a turned-off ALU's tree issues no grant and its
    // requests fall through to lower-priority trees.
    fill(2);
    available[0] = false;
    const auto grants = select(6);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[0].fu, 1);
    EXPECT_EQ(grants[1].fu, 2);
    // The oldest instruction still issues first.
    EXPECT_EQ(iq.entryAtPhys(grants[0].physIdx).seq, 1u);
}

TEST_F(SelectFixture, AllFusBusyGrantsNothing)
{
    fill(4);
    for (bool& a : available)
        a = false;
    EXPECT_TRUE(select(6).empty());
}

TEST_F(SelectFixture, BudgetCapsGrants)
{
    fill(6);
    EXPECT_EQ(select(2).size(), 2u);
    EXPECT_EQ(select(0).size(), 0u);
}

TEST_F(SelectFixture, ClassEligibilityFilters)
{
    IqEntry fp = readyEntry(1);
    fp.cls = OpClass::FpAdd;
    iq.dispatch(fp, act);
    iq.dispatch(readyEntry(2), act);
    std::vector<Grant> grants;
    net.select(
        iq, 0, 6, [](int) { return true; },
        [](int, OpClass cls) {
            return cls == OpClass::IntAlu;
        },
        grants);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(iq.entryAtPhys(grants[0].physIdx).seq, 2u);
}

TEST_F(SelectFixture, RoundRobinRotatesStartingFu)
{
    fill(12);
    net.setRoundRobin(true);
    const auto g0 = select(1, /*cycle=*/0);
    const auto g1 = select(1, /*cycle=*/1);
    const auto g2 = select(1, /*cycle=*/7); // 7 % 6 == 1
    ASSERT_EQ(g0.size(), 1u);
    ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g0[0].fu, 0);
    EXPECT_EQ(g1[0].fu, 1);
    EXPECT_EQ(g2[0].fu, 1);
}

TEST_F(SelectFixture, RoundRobinSpreadsWorkEvenly)
{
    // Property: one ready instruction per cycle under round-robin
    // lands on each FU equally often.
    net.setRoundRobin(true);
    int per_fu[6] = {};
    std::uint64_t seq = 100;
    for (std::uint64_t cycle = 0; cycle < 600; ++cycle) {
        iq.dispatch(readyEntry(++seq), act);
        std::vector<Grant> grants;
        net.select(
            iq, cycle, 1, [](int) { return true; },
            [](int, OpClass) { return true; }, grants);
        ASSERT_EQ(grants.size(), 1u);
        ++per_fu[grants[0].fu];
        iq.markIssued(grants[0].physIdx, act);
        iq.compactStep(act);
    }
    for (int f = 0; f < 6; ++f)
        EXPECT_EQ(per_fu[f], 100) << "fu " << f;
}

TEST_F(SelectFixture, StaticPrioritySkewsWorkToFuZero)
{
    // The asymmetry the paper exploits: under static priority with
    // one ready instruction per cycle, FU0 receives everything.
    int per_fu[6] = {};
    std::uint64_t seq = 100;
    for (std::uint64_t cycle = 0; cycle < 100; ++cycle) {
        iq.dispatch(readyEntry(++seq), act);
        std::vector<Grant> grants;
        net.select(
            iq, cycle, 1, [](int) { return true; },
            [](int, OpClass) { return true; }, grants);
        ++per_fu[grants[0].fu];
        iq.markIssued(grants[0].physIdx, act);
        iq.compactStep(act);
    }
    EXPECT_EQ(per_fu[0], 100);
    EXPECT_EQ(per_fu[5], 0);
}

TEST_F(SelectFixture, ToggledQueuePriorityFollowsLogicalOrder)
{
    // After a toggle the root's priority flips; the select network
    // sees this through the queue's logical order.
    iq.toggleMode();
    fill(4);
    const auto grants = select(2);
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(iq.entryAtPhys(grants[0].physIdx).seq, 1u);
    EXPECT_EQ(iq.entryAtPhys(grants[1].physIdx).seq, 2u);
}

TEST(SelectNetwork, RejectsZeroFus)
{
    EXPECT_THROW(SelectNetwork(0), FatalError);
}

} // namespace
} // namespace tempest
