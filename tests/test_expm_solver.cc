/**
 * @file
 * Tests for the exponential-integrator thermal solver: matrix
 * exponential sanity, steady states through the cached LU,
 * agreement with the explicit-Euler oracle, bit-level determinism,
 * and the per-dt propagator cache.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "thermal/expm_solver.hh"
#include "thermal/rc_model.hh"

namespace tempest
{
namespace
{

Floorplan
twoBlocks()
{
    Floorplan fp;
    fp.addBlock("a", 0, 0, 1e-3, 1e-3);
    fp.addBlock("b", 1e-3, 0, 1e-3, 1e-3);
    return fp;
}

TEST(ExpmSolver, ExpmOfZeroIsIdentity)
{
    const std::vector<double> zero(9, 0.0);
    const std::vector<double> e = ExpmSolver::expm(zero, 3);
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(e[static_cast<std::size_t>(r) * 3 + c],
                             r == c ? 1.0 : 0.0);
    }
}

TEST(ExpmSolver, ExpmMatchesScalarExponential)
{
    // 1x1 matrices reduce to the scalar exponential, including a
    // stiff decay that exercises the scaling-and-squaring path.
    for (const double a : {-0.3, -3.7, -5000.0}) {
        const std::vector<double> e =
            ExpmSolver::expm(std::vector<double>{a}, 1);
        EXPECT_NEAR(e[0], std::exp(a),
                    1e-12 * std::max(1.0, std::exp(a)))
            << "a=" << a;
    }
}

TEST(ExpmSolver, ExpmOfDiagonalIsElementwiseExp)
{
    const std::vector<double> m = {-1.0, 0.0, 0.0,  // row 0
                                   0.0,  -10.0, 0.0, // row 1
                                   0.0,  0.0,  -100.0};
    const std::vector<double> e = ExpmSolver::expm(m, 3);
    EXPECT_NEAR(e[0], std::exp(-1.0), 1e-12);
    EXPECT_NEAR(e[4], std::exp(-10.0), 1e-10);
    EXPECT_NEAR(e[8], std::exp(-100.0), 1e-12);
    EXPECT_DOUBLE_EQ(e[1], 0.0);
    EXPECT_DOUBLE_EQ(e[3], 0.0);
}

TEST(ExpmSolver, SteadyStateMatchesHandSolvedChain)
{
    // Two-node chain: node 0 -- g1 -- node 1 -- g2 -- ambient.
    // With power p into node 0: T1 = Tamb + p/g2, T0 = T1 + p/g1.
    const double g1 = 0.5;
    const double g2 = 2.0;
    const double ambient = 318.15;
    const double p = 3.0;
    std::vector<double> g = {g1, -g1, -g1, g1 + g2};
    std::vector<double> cap = {1e-3, 1e-3};
    std::vector<double> const_heat = {0.0, g2 * ambient};
    ExpmSolver solver(g, cap, const_heat);

    std::vector<Kelvin> temps(2, ambient);
    solver.steadyState(temps, {p, 0.0});
    EXPECT_NEAR(temps[1], ambient + p / g2, 1e-9);
    EXPECT_NEAR(temps[0], ambient + p / g2 + p / g1, 1e-9);
}

TEST(ExpmSolver, AdvanceConvergesToSteadyStateForHugeDt)
{
    // For dt many time constants, Phi ~ 0 and the advance lands on
    // the steady state exactly.
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 2.0);
    rc.setPower(1, 0.5);
    RcModel reference(twoBlocks(), params);
    reference.setPower(0, 2.0);
    reference.setPower(1, 0.5);
    reference.solveSteadyState();
    rc.step(100.0); // ~10^4 package time constants
    EXPECT_NEAR(rc.temperature(0), reference.temperature(0), 1e-9);
    EXPECT_NEAR(rc.temperature(1), reference.temperature(1), 1e-9);
}

TEST(ExpmSolver, AgreesWithEulerOracleOverTransient)
{
    // Ten sampling intervals with per-interval power changes, the
    // production step pattern. The oracle is the retained Euler
    // path driven far below its stability bound so its own
    // integration error sits under the agreement tolerance.
    ThermalParams params;
    params.timeScale = 0.04; // the experiments' default
    ThermalParams euler_params = params;
    euler_params.solver = ThermalSolver::Euler;

    RcModel fast(twoBlocks(), params);
    RcModel oracle(twoBlocks(), euler_params);
    ASSERT_EQ(fast.params().solver, ThermalSolver::Expm);

    const Seconds dt = 100000.0 / 4.2e9; // Table 2 interval
    const int chunks = 1 << 19;          // h ~ 45 ps per substep
    double max_diff = 0.0;
    for (int interval = 0; interval < 10; ++interval) {
        const Watt p0 = 0.5 + 0.3 * (interval % 4);
        const Watt p1 = 2.0 - 0.4 * (interval % 5);
        fast.setPower(0, p0);
        fast.setPower(1, p1);
        oracle.setPower(0, p0);
        oracle.setPower(1, p1);

        fast.step(dt);
        const Seconds h = dt / chunks;
        for (int c = 0; c < chunks; ++c)
            oracle.step(h);

        for (int b = 0; b < 2; ++b) {
            max_diff = std::max(
                max_diff, std::abs(fast.temperature(b) -
                                   oracle.temperature(b)));
        }
    }
    EXPECT_LT(max_diff, 1e-6); // Kelvin
}

TEST(ExpmSolver, BitLevelDeterminism)
{
    // Two identically-driven models produce bit-identical
    // trajectories (no accumulation-order or cache-state
    // dependence).
    auto run = [] {
        ThermalParams params;
        params.timeScale = 0.04;
        RcModel rc(twoBlocks(), params);
        std::vector<Kelvin> trace;
        for (int i = 0; i < 50; ++i) {
            rc.setPower(0, 0.25 * (i % 7));
            rc.setPower(1, 0.1 * (i % 3));
            // Alternate full and partial chunks to exercise the
            // propagator cache.
            rc.step(i % 4 == 3 ? 7.3e-6 : 2.38e-5);
            trace.push_back(rc.temperature(0));
            trace.push_back(rc.temperature(1));
            trace.push_back(rc.sinkTemperature());
        }
        return trace;
    };
    const std::vector<Kelvin> a = run();
    const std::vector<Kelvin> b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "index " << i; // exact bits
}

TEST(ExpmSolver, PartialChunkDtReusesCache)
{
    // The cooling-stall path chops a stall into full sampling
    // chunks plus one partial remainder: two distinct dts, two
    // cached propagators, no growth on repetition.
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 1.0);
    const Seconds full = 2.38e-5;
    const Seconds partial = 0.37 * full;
    for (int i = 0; i < 5; ++i)
        rc.step(full);
    EXPECT_EQ(rc.expmSolver().cachedPropagators(), 1);
    rc.step(partial);
    EXPECT_EQ(rc.expmSolver().cachedPropagators(), 2);
    for (int i = 0; i < 5; ++i) {
        rc.step(full);
        rc.step(partial);
    }
    EXPECT_EQ(rc.expmSolver().cachedPropagators(), 2);
}

TEST(ExpmSolver, PropagatorCacheIsBounded)
{
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 1.0);
    for (int i = 1; i <= 40; ++i)
        rc.step(1e-6 * i); // 40 distinct dts
    EXPECT_LE(rc.expmSolver().cachedPropagators(), 16);
    // Eviction keeps the solver usable and exact: a fresh dt still
    // advances correctly.
    RcModel reference(twoBlocks(), params);
    reference.setPower(0, 1.0);
    reference.solveSteadyState();
    rc.step(100.0);
    EXPECT_NEAR(rc.temperature(0), reference.temperature(0), 1e-9);
}

/** ThermalParams::maxCachedPropagators must reach the solver and
 * bound the cache, with eviction keeping results exact. */
TEST(ExpmSolver, CacheCapComesFromThermalParams)
{
    ThermalParams params;
    params.maxCachedPropagators = 2;
    RcModel rc(twoBlocks(), params);
    EXPECT_EQ(rc.expmSolver().maxCachedPropagators(), 2u);

    rc.setPower(0, 1.0);
    for (int i = 1; i <= 10; ++i)
        rc.step(1e-6 * i); // 10 distinct dts, capacity 2
    EXPECT_LE(rc.expmSolver().cachedPropagators(), 2);

    // The tight cap trades recompute for memory, never accuracy.
    RcModel reference(twoBlocks(), params);
    reference.setPower(0, 1.0);
    reference.solveSteadyState();
    rc.step(100.0);
    EXPECT_NEAR(rc.temperature(0), reference.temperature(0), 1e-9);
}

TEST(ExpmSolver, CacheCapOfZeroIsFatal)
{
    ThermalParams params;
    params.maxCachedPropagators = 0;
    EXPECT_THROW(RcModel(twoBlocks(), params), FatalError);
}

/** The reported footprint is the budgeting contract tools rely on:
 * one dense Phi is n^2 doubles, and the cache holds exactly
 * cachedPropagators() of them. */
TEST(ExpmSolver, PropagatorFootprintReporting)
{
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    const ExpmSolver& solver = rc.expmSolver();

    // n covers at least the two block nodes plus the package
    // (spreader/sink) nodes, and the footprint is exactly n^2
    // doubles for some such n.
    const std::size_t bytes = solver.propagatorBytes();
    std::size_t n = 0;
    while (n * n * sizeof(double) < bytes)
        ++n;
    EXPECT_EQ(n * n * sizeof(double), bytes);
    EXPECT_GT(n, 2u);

    EXPECT_EQ(solver.cachedPropagatorBytes(), 0u);
    rc.setPower(0, 1.0);
    rc.step(1e-5);
    EXPECT_EQ(solver.cachedPropagatorBytes(), bytes);
    rc.step(2e-5);
    EXPECT_EQ(solver.cachedPropagatorBytes(), 2 * bytes);
}

TEST(ExpmSolver, EulerAndExpmShareSteadyState)
{
    // solveSteadyState routes through the LU regardless of the
    // transient solver choice; both modes must agree exactly.
    ThermalParams expm_params;
    ThermalParams euler_params;
    euler_params.solver = ThermalSolver::Euler;
    RcModel a(twoBlocks(), expm_params);
    RcModel b(twoBlocks(), euler_params);
    a.setPower(0, 1.7);
    b.setPower(0, 1.7);
    a.solveSteadyState();
    b.solveSteadyState();
    EXPECT_EQ(a.temperature(0), b.temperature(0));
    EXPECT_EQ(a.temperature(1), b.temperature(1));
    EXPECT_EQ(a.sinkTemperature(), b.sinkTemperature());
}

} // namespace
} // namespace tempest
