/**
 * @file
 * Tests for the thermal trace recorder and fetch throttling.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "sim/trace.hh"

namespace tempest
{
namespace
{

using namespace experiments;

TEST(Trace, RecordsOneRowPerInterval)
{
    SimConfig cfg = baseConfig(FloorplanVariant::Baseline, 0.04);
    Simulator sim(cfg, spec2000("parser"));
    ThermalTrace trace(sim.floorplan());
    sim.setTrace(&trace);
    sim.run(10 * cfg.sampleIntervalCycles);
    EXPECT_EQ(trace.size(), 10u);
    const TraceSample& s = trace.sample(0);
    EXPECT_EQ(s.temperature.size(), 26u);
    EXPECT_EQ(s.power.size(), 26u);
    EXPECT_FALSE(s.stalled);
    EXPECT_GT(s.instructions, 0u);
}

TEST(Trace, StrideDownsamples)
{
    SimConfig cfg = baseConfig(FloorplanVariant::Baseline, 0.04);
    Simulator sim(cfg, spec2000("parser"));
    ThermalTrace trace(sim.floorplan(), /*stride=*/4);
    sim.setTrace(&trace);
    sim.run(16 * cfg.sampleIntervalCycles);
    EXPECT_EQ(trace.size(), 4u);
}

TEST(Trace, PeakMatchesSamples)
{
    SimConfig cfg = baseConfig(FloorplanVariant::IqConstrained,
                               0.04);
    Simulator sim(cfg, spec2000("gzip"));
    ThermalTrace trace(sim.floorplan());
    sim.setTrace(&trace);
    const SimResult r = sim.run(20 * cfg.sampleIntervalCycles);
    const int q1 = sim.floorplan().indexOf("IntQ1");
    Kelvin manual = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        manual = std::max(
            manual,
            trace.sample(i).temperature[static_cast<std::size_t>(
                q1)]);
    }
    EXPECT_DOUBLE_EQ(trace.peak(q1), manual);
    EXPECT_NEAR(trace.peak(q1), r.block("IntQ1").max, 1e-9);
}

TEST(Trace, CsvShapeAndHeader)
{
    SimConfig cfg = baseConfig(FloorplanVariant::Baseline, 0.04);
    Simulator sim(cfg, spec2000("parser"));
    ThermalTrace trace(sim.floorplan());
    sim.setTrace(&trace);
    sim.run(3 * cfg.sampleIntervalCycles);
    const std::string csv = trace.toCsv();
    EXPECT_NE(csv.find("cycle,stalled,instructions"),
              std::string::npos);
    EXPECT_NE(csv.find("T_IntQ1"), std::string::npos);
    EXPECT_NE(csv.find("P_IntExec0"), std::string::npos);
    // Header + 3 rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Trace, RejectsBadStride)
{
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    EXPECT_THROW(ThermalTrace(fp, 0), FatalError);
}

TEST(FetchThrottle, ReducesFetchRate)
{
    PipelineConfig cfg;
    OooCore full(cfg, spec2000("gzip"), 3);
    OooCore throttled(cfg, spec2000("gzip"), 3);
    throttled.setFetchInterval(4);
    ActivityRecord fa, ta;
    for (int i = 0; i < 100000; ++i) {
        full.tick(fa);
        throttled.tick(ta);
    }
    EXPECT_LT(throttled.committed(), full.committed());
    EXPECT_GT(throttled.committed(), full.committed() / 8);
    EXPECT_THROW(throttled.setFetchInterval(0), FatalError);
}

TEST(FetchThrottle, DtmEngagesNearThreshold)
{
    SimConfig cfg = iqBase(0.04);
    cfg.dtm.fetchThrottling = true;
    Simulator sim(cfg, spec2000("eon"));
    const SimResult r = sim.run(8'000'000);
    EXPECT_GT(r.dtm.fetchThrottleEvents, 0u);
}

TEST(FetchThrottle, IdleWorkloadNeverThrottled)
{
    SimConfig cfg = iqBase(0.04);
    cfg.dtm.fetchThrottling = true;
    Simulator sim(cfg, spec2000("art"));
    const SimResult r = sim.run(4'000'000);
    EXPECT_EQ(r.dtm.fetchThrottleEvents, 0u);
}

} // namespace
} // namespace tempest
