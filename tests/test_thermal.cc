/**
 * @file
 * Physics tests for the RC thermal model: analytic steady states,
 * transient behaviour, stability, and the vertical-vs-lateral
 * conduction property the paper relies on.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include <cmath>

#include "thermal/rc_model.hh"

namespace tempest
{
namespace
{

Floorplan
singleBlock()
{
    Floorplan fp;
    fp.addBlock("blk", 0, 0, 1e-3, 1e-3);
    return fp;
}

Floorplan
twoBlocks()
{
    Floorplan fp;
    fp.addBlock("a", 0, 0, 1e-3, 1e-3);
    fp.addBlock("b", 1e-3, 0, 1e-3, 1e-3);
    return fp;
}

TEST(Thermal, ZeroPowerSteadyStateIsAmbient)
{
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    rc.solveSteadyState();
    EXPECT_NEAR(rc.temperature(0), params.ambient, 1e-6);
    EXPECT_NEAR(rc.sinkTemperature(), params.ambient, 1e-6);
}

TEST(Thermal, SteadyStateMatchesSeriesResistanceAnalytically)
{
    // One block: T = ambient + P * (Rv + Rss + Rconv).
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    const Watt p = 2.0;
    rc.setPower(0, p);
    rc.solveSteadyState();
    const double r_total = rc.verticalResistance(0) +
                           params.rSpreaderSink +
                           params.rConvection;
    EXPECT_NEAR(rc.temperature(0),
                params.ambient + p * r_total, 1e-6);
    EXPECT_NEAR(rc.sinkTemperature(),
                params.ambient + p * params.rConvection, 1e-6);
}

TEST(Thermal, SuperpositionOfPower)
{
    // The network is linear: doubling power doubles the rise.
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 1.0);
    rc.solveSteadyState();
    const double rise1 = rc.temperature(0) - params.ambient;
    rc.setPower(0, 2.0);
    rc.solveSteadyState();
    const double rise2 = rc.temperature(0) - params.ambient;
    EXPECT_NEAR(rise2, 2.0 * rise1, 1e-9);
}

TEST(Thermal, SymmetricBlocksEqualTemperature)
{
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 1.5);
    rc.setPower(1, 1.5);
    rc.solveSteadyState();
    EXPECT_NEAR(rc.temperature(0), rc.temperature(1), 1e-9);
}

TEST(Thermal, HeatFlowsFromHotToCold)
{
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 3.0);
    rc.setPower(1, 0.0);
    rc.solveSteadyState();
    EXPECT_GT(rc.temperature(0), rc.temperature(1));
    // The idle neighbour still warms above the spreader via the
    // lateral path.
    EXPECT_GT(rc.temperature(1), rc.spreaderTemperature());
}

TEST(Thermal, VerticalAndLateralPathsComparable)
{
    // The paper's premise is that heat leaves small blocks mostly
    // vertically, so neighbouring copies sustain a gradient. The
    // per-edge resistances must be of the same order (neither
    // path shorts the other); the sustained-gradient behaviour is
    // asserted in AdjacentCopiesSustainKelvinScaleDifference.
    ThermalParams params;
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::AluConstrained);
    RcModel rc(fp, params);
    const int a = fp.indexOf("IntExec0");
    const int b = fp.indexOf("IntExec2");
    const double rv = rc.verticalResistance(a);
    const double rl = rc.lateralResistance(a, b);
    EXPECT_GT(rl, 0.3 * rv);
    EXPECT_LT(rl, 3.0 * rv);
}

TEST(Thermal, AdjacentCopiesSustainKelvinScaleDifference)
{
    // Drive one ALU of the ALU-constrained floorplan at a realistic
    // power and its neighbour at half: several K of difference
    // must survive (Table 5 measures >4 K across the ALU bank).
    ThermalParams params;
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::AluConstrained);
    RcModel rc(fp, params);
    rc.setPower(fp.indexOf("IntExec0"), 0.8);
    rc.setPower(fp.indexOf("IntExec2"), 0.4);
    rc.solveSteadyState();
    EXPECT_GT(rc.temperature(fp.indexOf("IntExec0")) -
                  rc.temperature(fp.indexOf("IntExec2")),
              2.0);
}

TEST(Thermal, TransientConvergesToSteadyState)
{
    ThermalParams params;
    params.timeScale = 1.0;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 2.0);
    rc.setPower(1, 0.5);
    RcModel reference(twoBlocks(), params);
    reference.setPower(0, 2.0);
    reference.setPower(1, 0.5);
    reference.solveSteadyState();
    // March the transient for many package time constants.
    for (int i = 0; i < 4000; ++i)
        rc.step(1e-3);
    EXPECT_NEAR(rc.temperature(0), reference.temperature(0), 0.05);
    EXPECT_NEAR(rc.temperature(1), reference.temperature(1), 0.05);
}

TEST(Thermal, TransientIsMonotoneOnStep)
{
    // A power step from equilibrium produces a monotone rise.
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    rc.solveSteadyState(); // ambient everywhere
    rc.setPower(0, 2.0);
    double prev = rc.temperature(0);
    for (int i = 0; i < 200; ++i) {
        rc.step(1e-4);
        const double t = rc.temperature(0);
        ASSERT_GE(t, prev - 1e-12);
        prev = t;
    }
}

TEST(Thermal, CoolingAfterPowerRemoval)
{
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    rc.setPower(0, 3.0);
    rc.solveSteadyState();
    const double hot = rc.temperature(0);
    rc.setPower(0, 0.0);
    rc.step(5e-3);
    EXPECT_LT(rc.temperature(0), hot);
    EXPECT_GT(rc.temperature(0), params.ambient);
}

TEST(Thermal, StabilityAcrossLargeSteps)
{
    // Substepping must keep explicit Euler stable for any dt.
    ThermalParams params;
    params.solver = ThermalSolver::Euler;
    params.timeScale = 0.05;
    RcModel rc(
        Floorplan::ev6Like(FloorplanVariant::IqConstrained),
        params);
    for (int b = 0; b < rc.numBlocks(); ++b)
        rc.setPower(b, 0.5);
    for (int i = 0; i < 50; ++i)
        rc.step(0.01); // far above maxStableDt
    for (int b = 0; b < rc.numBlocks(); ++b) {
        ASSERT_GT(rc.temperature(b), params.ambient - 1.0);
        ASSERT_LT(rc.temperature(b), 500.0);
    }
}

TEST(Thermal, TimeScaleCompressesDynamicsNotSteadyState)
{
    ThermalParams slow;
    ThermalParams fast;
    fast.timeScale = 0.1;
    RcModel a(singleBlock(), slow);
    RcModel b(singleBlock(), fast);
    a.setPower(0, 2.0);
    b.setPower(0, 2.0);
    a.step(1e-3);
    b.step(1e-3);
    // The compressed model heats faster...
    EXPECT_GT(b.temperature(0), a.temperature(0));
    // ...but reaches the same steady state.
    a.solveSteadyState();
    b.solveSteadyState();
    EXPECT_NEAR(a.temperature(0), b.temperature(0), 1e-9);
}

TEST(Thermal, SetTemperatureOverrides)
{
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    rc.setTemperature(0, 350.0);
    EXPECT_DOUBLE_EQ(rc.temperature(0), 350.0);
    rc.setAllTemperatures(320.0);
    EXPECT_DOUBLE_EQ(rc.temperature(0), 320.0);
}

TEST(Thermal, RejectsNegativePower)
{
    ThermalParams params;
    RcModel rc(singleBlock(), params);
    EXPECT_DEATH(rc.setPower(0, -1.0), "negative");
}

TEST(Thermal, ValidateCatchesBadParams)
{
    ThermalParams p;
    p.timeScale = 0.0;
    EXPECT_THROW(p.validate(), FatalError);
    p = ThermalParams{};
    p.rConvection = -1;
    EXPECT_THROW(p.validate(), FatalError);
    p = ThermalParams{};
    p.dieThickness = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Thermal, TotalPowerSums)
{
    ThermalParams params;
    RcModel rc(twoBlocks(), params);
    rc.setPower(0, 1.25);
    rc.setPower(1, 2.75);
    EXPECT_DOUBLE_EQ(rc.totalPower(), 4.0);
}

TEST(Thermal, StepHandlesLargeSubstepCounts)
{
    // Regression: ceil(dt / maxStableDt_) used to be cast to int,
    // which overflows (UB) for small timeScale. A count in the
    // tens of thousands must integrate fine...
    ThermalParams params;
    params.solver = ThermalSolver::Euler;
    RcModel rc(singleBlock(), params);
    rc.setPower(0, 1.0);
    rc.step(rc.maxStableDt() * 20000.5);
    EXPECT_GT(rc.temperature(0), params.ambient);
    EXPECT_TRUE(std::isfinite(rc.temperature(0)));
}

TEST(Thermal, StepRejectsAbsurdSubstepCountsNamingTimeScale)
{
    // ...while a count that would once have overflowed int is
    // rejected with a diagnostic naming timeScale. (The expm
    // solver has no substep limit; this guard is Euler-only.)
    ThermalParams params;
    params.solver = ThermalSolver::Euler;
    params.timeScale = 1e-12;
    RcModel rc(singleBlock(), params);
    try {
        rc.step(1.0);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("timeScale"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace tempest
