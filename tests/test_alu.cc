/**
 * @file
 * Unit tests for the functional-unit pool and turnoff masks.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "uarch/activity.hh"
#include "uarch/alu.hh"

namespace tempest
{
namespace
{

PipelineConfig
defaultConfig()
{
    PipelineConfig cfg;
    return cfg;
}

TEST(AluPool, AllAvailableInitially)
{
    AluPool pool(defaultConfig());
    for (int i = 0; i < pool.numIntAlus(); ++i)
        EXPECT_TRUE(pool.intAluAvailable(i));
    for (int i = 0; i < pool.numFpAdders(); ++i)
        EXPECT_TRUE(pool.fpAdderAvailable(i));
    EXPECT_EQ(pool.numIntAlusOff(), 0);
}

TEST(AluPool, ThermalTurnoffMasksUnit)
{
    AluPool pool(defaultConfig());
    pool.setIntAluOff(2, TurnoffReason::UnitThermal, true);
    EXPECT_FALSE(pool.intAluAvailable(2));
    EXPECT_EQ(pool.numIntAlusOff(), 1);
    pool.setIntAluOff(2, TurnoffReason::UnitThermal, false);
    EXPECT_TRUE(pool.intAluAvailable(2));
}

TEST(AluPool, ReasonsCompose)
{
    // An ALU turned off both for its own heat and its register
    // file's cooling stays off until BOTH reasons clear.
    AluPool pool(defaultConfig());
    pool.setIntAluOff(1, TurnoffReason::UnitThermal, true);
    pool.setIntAluOff(1, TurnoffReason::RegfileThermal, true);
    pool.setIntAluOff(1, TurnoffReason::UnitThermal, false);
    EXPECT_FALSE(pool.intAluAvailable(1));
    pool.setIntAluOff(1, TurnoffReason::RegfileThermal, false);
    EXPECT_TRUE(pool.intAluAvailable(1));
}

TEST(AluPool, ClearingAnUnsetReasonIsHarmless)
{
    AluPool pool(defaultConfig());
    pool.setIntAluOff(0, TurnoffReason::RegfileThermal, false);
    EXPECT_TRUE(pool.intAluAvailable(0));
}

TEST(AluPool, AllOffDetection)
{
    AluPool pool(defaultConfig());
    EXPECT_FALSE(pool.allIntAlusOff());
    for (int i = 0; i < pool.numIntAlus(); ++i)
        pool.setIntAluOff(i, TurnoffReason::UnitThermal, true);
    EXPECT_TRUE(pool.allIntAlusOff());
    pool.setIntAluOff(3, TurnoffReason::UnitThermal, false);
    EXPECT_FALSE(pool.allIntAlusOff());
}

TEST(AluPool, FpAdderTurnoff)
{
    AluPool pool(defaultConfig());
    for (int i = 0; i < pool.numFpAdders(); ++i)
        pool.setFpAdderOff(i, TurnoffReason::UnitThermal, true);
    EXPECT_TRUE(pool.allFpAddersOff());
    EXPECT_EQ(pool.numFpAddersOff(), pool.numFpAdders());
}

TEST(AluPool, ResetClearsEverything)
{
    AluPool pool(defaultConfig());
    pool.setIntAluOff(0, TurnoffReason::UnitThermal, true);
    pool.setFpAdderOff(0, TurnoffReason::RegfileThermal, true);
    pool.reset();
    EXPECT_EQ(pool.numIntAlusOff(), 0);
    EXPECT_EQ(pool.numFpAddersOff(), 0);
}

TEST(AluPool, IntAluCapabilities)
{
    // Table 2: the 6 integer units cover arithmetic, load/store
    // and branch work; FP classes execute elsewhere.
    EXPECT_TRUE(AluPool::intAluExecutes(OpClass::IntAlu));
    EXPECT_TRUE(AluPool::intAluExecutes(OpClass::IntMul));
    EXPECT_TRUE(AluPool::intAluExecutes(OpClass::Load));
    EXPECT_TRUE(AluPool::intAluExecutes(OpClass::Store));
    EXPECT_TRUE(AluPool::intAluExecutes(OpClass::Branch));
    EXPECT_FALSE(AluPool::intAluExecutes(OpClass::FpAdd));
    EXPECT_FALSE(AluPool::intAluExecutes(OpClass::FpMul));
}

TEST(AluPool, LatenciesFromConfig)
{
    PipelineConfig cfg;
    AluPool pool(cfg);
    EXPECT_EQ(pool.latencyOf(OpClass::IntAlu), cfg.intAluLatency);
    EXPECT_EQ(pool.latencyOf(OpClass::IntMul), cfg.intMulLatency);
    EXPECT_EQ(pool.latencyOf(OpClass::FpAdd), cfg.fpAddLatency);
    EXPECT_EQ(pool.latencyOf(OpClass::FpMul), cfg.fpMulLatency);
    EXPECT_EQ(pool.latencyOf(OpClass::Branch), cfg.intAluLatency);
}

TEST(PipelineConfig, ValidateCatchesBadShapes)
{
    PipelineConfig cfg;
    cfg.numIntAlus = 5; // does not divide across 2 copies
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = PipelineConfig{};
    cfg.intIqEntries = 31; // odd
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = PipelineConfig{};
    cfg.issueWidth = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ActivityRecord, AddAccumulatesEverything)
{
    ActivityRecord a, b;
    a.intAluOps[0] = 3;
    a.iqEntryMoves[0][1] = 5;
    a.cycles = 10;
    b.intAluOps[0] = 4;
    b.iqEntryMoves[0][1] = 6;
    b.cycles = 20;
    b.instructions = 7;
    a.add(b);
    EXPECT_EQ(a.intAluOps[0], 7u);
    EXPECT_EQ(a.iqEntryMoves[0][1], 11u);
    EXPECT_EQ(a.cycles, 30u);
    EXPECT_EQ(a.instructions, 7u);
    a.clear();
    EXPECT_EQ(a.cycles, 0u);
    EXPECT_EQ(a.intAluOps[0], 0u);
}

} // namespace
} // namespace tempest
