/**
 * @file
 * Golden-result regression test: the full `SimResult` of a matrix
 * of (benchmark × DTM/floorplan/port-mapping config) runs is
 * hashed field-by-field and compared against checked-in goldens.
 *
 * The paper's asymmetry phenomena (per-half issue-queue activity,
 * per-ALU utilization skew, per-copy register-file heating) live in
 * exactly the structures the perf work keeps rewriting — compacting
 * queues, select trees, wakeup, the workload sampler. A perf
 * refactor that silently changes simulation semantics shifts these
 * hashes and fails here loudly, instead of quietly invalidating
 * every table and figure.
 *
 * The hash covers ipc (bit pattern), cycles, instructions, stall
 * cycles, every ActivityRecord counter, the DTM event counts, and
 * all per-block temperature statistics (bit patterns). Runs are
 * short (200k cycles) so the matrix stays fast in Debug builds.
 *
 * Re-deriving goldens (only when a semantic change is intended and
 * documented, e.g. the PR-3 sampler rework — see DESIGN.md §10):
 * run with TEMPEST_PRINT_GOLDENS=1 and paste the printed table.
 * Goldens assume IEEE double evaluation without FP contraction;
 * the build sets -ffp-contract=off so Debug and Release agree.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace tempest
{
namespace
{

/** FNV-1a 64-bit, fed one 64-bit word at a time. */
class Fnv1a
{
  public:
    void
    word(std::uint64_t w)
    {
        for (int b = 0; b < 8; ++b) {
            hash_ ^= (w >> (8 * b)) & 0xff;
            hash_ *= 0x100000001b3ULL;
        }
    }

    void
    real(double d)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        word(bits);
    }

    void
    text(const std::string& s)
    {
        for (const char c : s) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::uint64_t
hashResult(const SimResult& r)
{
    Fnv1a h;
    h.text(r.benchmark);
    h.real(r.ipc);
    h.word(r.cycles);
    h.word(r.instructions);
    h.word(r.stallCycles);

    const ActivityRecord& a = r.activity;
    for (int q = 0; q < kNumIssueQueues; ++q) {
        for (int half = 0; half < 2; ++half) {
            h.word(a.iqEntryMoves[q][half]);
            h.word(a.iqMuxSelects[q][half]);
            h.word(a.iqLongCompactions[q][half]);
            h.word(a.iqCounterOps[q][half]);
            h.word(a.iqOccupiedCycles[q][half]);
            h.word(a.iqDispatchWrites[q][half]);
        }
        h.word(a.iqTagBroadcasts[q]);
        h.word(a.iqPayloadAccesses[q]);
        h.word(a.iqSelectAccesses[q]);
        h.word(a.iqClockGateCycles[q]);
    }
    for (int i = 0; i < kMaxIntAlus; ++i)
        h.word(a.intAluOps[i]);
    for (int i = 0; i < kMaxFpAdders; ++i)
        h.word(a.fpAddOps[i]);
    h.word(a.fpMulOps);
    for (int i = 0; i < kMaxRegfileCopies; ++i) {
        h.word(a.intRegReads[i]);
        h.word(a.intRegWrites[i]);
    }
    h.word(a.fpRegReads);
    h.word(a.fpRegWrites);
    h.word(a.l1iAccesses);
    h.word(a.l1dAccesses);
    h.word(a.l2Accesses);
    h.word(a.bpredAccesses);
    h.word(a.renameOps);
    h.word(a.lsqOps);
    h.word(a.commits);
    h.word(a.cycles);
    h.word(a.stallCycles);
    h.word(a.instructions);

    h.word(r.dtm.iqToggles);
    h.word(r.dtm.aluTurnoffEvents);
    h.word(r.dtm.fpAdderTurnoffEvents);
    h.word(r.dtm.regfileTurnoffEvents);
    h.word(r.dtm.globalStalls);
    h.word(r.dtm.fetchThrottleEvents);

    for (const BlockTempStats& b : r.blocks) {
        h.text(b.name);
        h.real(b.avg);
        h.real(b.max);
    }
    return h.value();
}

/** Short runs keep the 12-job matrix fast even in Debug builds. */
constexpr std::uint64_t kGoldenCycles = 200'000;

struct GoldenCase
{
    const char* config;
    const char* benchmark;
    std::uint64_t hash;
};

/**
 * Checked-in goldens. Derived once from the post-PR-3 sampler
 * (alias-table workload generation; DESIGN.md §10 documents the
 * one-time re-derivation); every config shares one workload stream
 * per benchmark, so cross-config asymmetries remain comparable.
 */
constexpr GoldenCase kGoldens[] = {
    {"iq_base", "art", 0x31247fe7bc36023bULL},
    {"iq_base", "facerec", 0x6741aedb7fa4d32aULL},
    {"iq_base", "mesa", 0x54273f6f1820625eULL},
    {"iq_toggling", "art", 0x31247fe7bc36023bULL},
    {"iq_toggling", "facerec", 0x6741aedb7fa4d32aULL},
    {"iq_toggling", "mesa", 0x3e647b7574d36182ULL},
    {"alu_turnoff", "art", 0xcad35a6df15dc1faULL},
    {"alu_turnoff", "facerec", 0xcc4ae242ea4954deULL},
    {"alu_turnoff", "mesa", 0xad042b9d31642ff3ULL},
    {"regfile_balanced", "art", 0xa3914234c1d2d9ccULL},
    {"regfile_balanced", "facerec", 0xfcb6de89ac972a26ULL},
    {"regfile_balanced", "mesa", 0x0d495c8a08bdf587ULL},
};

SimConfig
configFor(const std::string& name)
{
    if (name == "iq_base")
        return experiments::iqBase();
    if (name == "iq_toggling")
        return experiments::iqToggling();
    if (name == "alu_turnoff")
        return experiments::aluFineGrain();
    if (name == "regfile_balanced")
        return experiments::regfileConfig(PortMapping::Balanced,
                                          /*fine_grain=*/true);
    ADD_FAILURE() << "unknown golden config " << name;
    return experiments::iqBase();
}

TEST(Golden, SimResultBitIdentity)
{
    const bool print =
        std::getenv("TEMPEST_PRINT_GOLDENS") != nullptr;
    if (print)
        std::printf("constexpr GoldenCase kGoldens[] = {\n");
    for (const GoldenCase& c : kGoldens) {
        const SimResult r = experiments::runBenchmark(
            configFor(c.config), c.benchmark, kGoldenCycles);
        const std::uint64_t got = hashResult(r);
        if (print) {
            std::printf("    {\"%s\", \"%s\", 0x%016llxULL},\n",
                        c.config, c.benchmark,
                        static_cast<unsigned long long>(got));
            continue;
        }
        EXPECT_EQ(got, c.hash)
            << c.config << "/" << c.benchmark
            << ": SimResult changed (got 0x" << std::hex << got
            << ", golden 0x" << c.hash << std::dec
            << "). If the semantic change is intended, re-derive "
               "with TEMPEST_PRINT_GOLDENS=1 and document it.";
    }
    if (print)
        std::printf("};\n");
}

/** The goldens must not depend on which config ran first: each
 * run constructs its own stream, so running one case in isolation
 * yields the same hash (guards against hidden global state). */
TEST(Golden, RunsAreIndependent)
{
    const SimResult a = experiments::runBenchmark(
        configFor("iq_base"), "art", kGoldenCycles);
    const SimResult b = experiments::runBenchmark(
        configFor("iq_base"), "art", kGoldenCycles);
    EXPECT_EQ(hashResult(a), hashResult(b));
}

} // namespace
} // namespace tempest
