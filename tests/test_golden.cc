/**
 * @file
 * Golden-result regression test: the full `SimResult` of a matrix
 * of (benchmark × DTM/floorplan/port-mapping config) runs is
 * hashed field-by-field and compared against checked-in goldens.
 *
 * The paper's asymmetry phenomena (per-half issue-queue activity,
 * per-ALU utilization skew, per-copy register-file heating) live in
 * exactly the structures the perf work keeps rewriting — compacting
 * queues, select trees, wakeup, the workload sampler. A perf
 * refactor that silently changes simulation semantics shifts these
 * hashes and fails here loudly, instead of quietly invalidating
 * every table and figure.
 *
 * The hash covers ipc (bit pattern), cycles, instructions, stall
 * cycles, every ActivityRecord counter, the DTM event counts, and
 * all per-block temperature statistics (bit patterns). Runs are
 * short (200k cycles) so the matrix stays fast in Debug builds.
 *
 * Re-deriving goldens (only when a semantic change is intended and
 * documented, e.g. the PR-3 sampler rework — see DESIGN.md §10):
 * run with TEMPEST_PRINT_GOLDENS=1 and paste the printed table.
 * Goldens assume IEEE double evaluation without FP contraction;
 * the build sets -ffp-contract=off so Debug and Release agree.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace tempest
{
namespace
{

using experiments::hashSimResult;

/** Short runs keep the 12-job matrix fast even in Debug builds. */
constexpr std::uint64_t kGoldenCycles = 200'000;

struct GoldenCase
{
    const char* config;
    const char* benchmark;
    std::uint64_t hash;
};

/**
 * Checked-in goldens. Derived once from the post-PR-3 sampler
 * (alias-table workload generation; DESIGN.md §10 documents the
 * one-time re-derivation); every config shares one workload stream
 * per benchmark, so cross-config asymmetries remain comparable.
 */
constexpr GoldenCase kGoldens[] = {
    {"iq_base", "art", 0x31247fe7bc36023bULL},
    {"iq_base", "facerec", 0x6741aedb7fa4d32aULL},
    {"iq_base", "mesa", 0x54273f6f1820625eULL},
    {"iq_toggling", "art", 0x31247fe7bc36023bULL},
    {"iq_toggling", "facerec", 0x6741aedb7fa4d32aULL},
    {"iq_toggling", "mesa", 0x3e647b7574d36182ULL},
    {"alu_turnoff", "art", 0xcad35a6df15dc1faULL},
    {"alu_turnoff", "facerec", 0xcc4ae242ea4954deULL},
    {"alu_turnoff", "mesa", 0xad042b9d31642ff3ULL},
    {"regfile_balanced", "art", 0xa3914234c1d2d9ccULL},
    {"regfile_balanced", "facerec", 0xfcb6de89ac972a26ULL},
    {"regfile_balanced", "mesa", 0x0d495c8a08bdf587ULL},
};

SimConfig
configFor(const std::string& name)
{
    if (name == "iq_base")
        return experiments::iqBase();
    if (name == "iq_toggling")
        return experiments::iqToggling();
    if (name == "alu_turnoff")
        return experiments::aluFineGrain();
    if (name == "regfile_balanced")
        return experiments::regfileConfig(PortMapping::Balanced,
                                          /*fine_grain=*/true);
    ADD_FAILURE() << "unknown golden config " << name;
    return experiments::iqBase();
}

TEST(Golden, SimResultBitIdentity)
{
    const bool print =
        std::getenv("TEMPEST_PRINT_GOLDENS") != nullptr;
    if (print)
        std::printf("constexpr GoldenCase kGoldens[] = {\n");
    for (const GoldenCase& c : kGoldens) {
        const SimResult r = experiments::runBenchmark(
            configFor(c.config), c.benchmark, kGoldenCycles);
        const std::uint64_t got = hashSimResult(r);
        if (print) {
            std::printf("    {\"%s\", \"%s\", 0x%016llxULL},\n",
                        c.config, c.benchmark,
                        static_cast<unsigned long long>(got));
            continue;
        }
        EXPECT_EQ(got, c.hash)
            << c.config << "/" << c.benchmark
            << ": SimResult changed (got 0x" << std::hex << got
            << ", golden 0x" << c.hash << std::dec
            << "). If the semantic change is intended, re-derive "
               "with TEMPEST_PRINT_GOLDENS=1 and document it.";
    }
    if (print)
        std::printf("};\n");
}

/** The goldens must not depend on which config ran first: each
 * run constructs its own stream, so running one case in isolation
 * yields the same hash (guards against hidden global state). */
TEST(Golden, RunsAreIndependent)
{
    const SimResult a = experiments::runBenchmark(
        configFor("iq_base"), "art", kGoldenCycles);
    const SimResult b = experiments::runBenchmark(
        configFor("iq_base"), "art", kGoldenCycles);
    EXPECT_EQ(hashSimResult(a), hashSimResult(b));
}

} // namespace
} // namespace tempest
