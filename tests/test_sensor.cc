/**
 * @file
 * Unit tests for the temperature sensor bank.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/sensor.hh"

namespace tempest
{
namespace
{

Floorplan
plan()
{
    Floorplan fp;
    fp.addBlock("a", 0, 0, 1e-3, 1e-3);
    fp.addBlock("b", 1e-3, 0, 1e-3, 1e-3);
    return fp;
}

TEST(Sensor, IdealSensorsReadExactly)
{
    ThermalParams params;
    RcModel rc(plan(), params);
    rc.setTemperature(0, 351.25);
    rc.setTemperature(1, 349.5);
    SensorBank sensors(rc);
    EXPECT_DOUBLE_EQ(sensors.read(0), 351.25);
    EXPECT_DOUBLE_EQ(sensors.read(1), 349.5);
    EXPECT_EQ(sensors.numSensors(), 2);
}

TEST(Sensor, ReadAllMatchesIndividualReads)
{
    ThermalParams params;
    RcModel rc(plan(), params);
    rc.setTemperature(0, 340.0);
    rc.setTemperature(1, 345.0);
    SensorBank sensors(rc);
    const auto all = sensors.readAll();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_DOUBLE_EQ(all[0], 340.0);
    EXPECT_DOUBLE_EQ(all[1], 345.0);
}

TEST(Sensor, QuantizationRoundsToGrid)
{
    ThermalParams params;
    RcModel rc(plan(), params);
    rc.setTemperature(0, 351.37);
    SensorBank sensors(rc, /*quantum=*/0.25);
    const Kelvin t = sensors.read(0);
    EXPECT_NEAR(std::fmod(t, 0.25), 0.0, 1e-9);
    EXPECT_NEAR(t, 351.37, 0.125 + 1e-9);
}

TEST(Sensor, NoiseHasRequestedSpread)
{
    ThermalParams params;
    RcModel rc(plan(), params);
    rc.setTemperature(0, 350.0);
    SensorBank sensors(rc, 0.0, /*noise_sigma=*/0.5, 99);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double t = sensors.read(0);
        sum += t;
        sq += (t - 350.0) * (t - 350.0);
    }
    EXPECT_NEAR(sum / n, 350.0, 0.02);
    EXPECT_NEAR(std::sqrt(sq / n), 0.5, 0.03);
}

TEST(Sensor, NoiseIsDeterministicPerSeed)
{
    ThermalParams params;
    RcModel rc(plan(), params);
    rc.setTemperature(0, 350.0);
    SensorBank a(rc, 0.0, 0.3, 7);
    SensorBank b(rc, 0.0, 0.3, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.read(0), b.read(0));
}

} // namespace
} // namespace tempest
