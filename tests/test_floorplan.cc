/**
 * @file
 * Unit tests for the floorplan and its constrained variants.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "thermal/floorplan.hh"

namespace tempest
{
namespace
{

const char* const kRequiredBlocks[] = {
    "Icache", "Dcache", "Bpred", "ITB", "DTB", "LdStQ",
    "FPMap", "FPMul", "FPReg", "IntMap", "IntReg0", "IntReg1",
    "FPQ0", "FPQ1", "FPAdd0", "FPAdd1", "FPAdd2", "FPAdd3",
    "IntQ0", "IntQ1", "IntExec0", "IntExec1", "IntExec2",
    "IntExec3", "IntExec4", "IntExec5"};

class Variants
    : public ::testing::TestWithParam<FloorplanVariant>
{
};

TEST_P(Variants, HasAllPaperBlocks)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    for (const char* name : kRequiredBlocks)
        EXPECT_TRUE(fp.has(name)) << name;
    EXPECT_EQ(fp.numBlocks(), 26);
}

TEST_P(Variants, NoOverlapsAndFullCoverage)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_NO_THROW(fp.validate());
    // 4 mm x 4 mm die, fully tiled.
    EXPECT_NEAR(fp.totalArea(), 16e-6, 1e-9);
}

TEST_P(Variants, QueueHalvesAndCopiesMatch)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    const Block& q0 = fp.block(fp.indexOf("IntQ0"));
    const Block& q1 = fp.block(fp.indexOf("IntQ1"));
    EXPECT_NEAR(q0.area(), q1.area(), 1e-12);
    const Block& r0 = fp.block(fp.indexOf("IntReg0"));
    const Block& r1 = fp.block(fp.indexOf("IntReg1"));
    EXPECT_NEAR(r0.area(), r1.area(), 1e-12);
}

TEST_P(Variants, QueueHalvesAreAdjacent)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntQ0"),
                            fp.indexOf("IntQ1")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntReg0"),
                            fp.indexOf("IntReg1")),
              0.0);
}

TEST_P(Variants, AlusFormAdjacentBanks)
{
    // ALUs flank the queue stack: 4-2-0 | Q | 1-3-5.
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec4"),
                            fp.indexOf("IntExec2")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec2"),
                            fp.indexOf("IntExec0")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec0"),
                            fp.indexOf("IntQ0")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntQ1"),
                            fp.indexOf("IntExec1")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec1"),
                            fp.indexOf("IntExec3")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec3"),
                            fp.indexOf("IntExec5")),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, Variants,
    ::testing::Values(FloorplanVariant::Baseline,
                      FloorplanVariant::IqConstrained,
                      FloorplanVariant::AluConstrained,
                      FloorplanVariant::RegfileConstrained),
    [](const auto& info) {
        return std::string(floorplanVariantName(info.param))
                   .substr(0, 2) +
               std::to_string(static_cast<int>(info.param));
    });

TEST(Floorplan, ConstrainedVariantsShrinkTheirResource)
{
    const Floorplan base =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    const Floorplan iq =
        Floorplan::ev6Like(FloorplanVariant::IqConstrained);
    const Floorplan alu =
        Floorplan::ev6Like(FloorplanVariant::AluConstrained);
    const Floorplan reg =
        Floorplan::ev6Like(FloorplanVariant::RegfileConstrained);

    auto area = [](const Floorplan& fp, const char* name) {
        return fp.block(fp.indexOf(name)).area();
    };
    EXPECT_LT(area(iq, "IntQ1"), area(base, "IntQ1"));
    EXPECT_LT(area(alu, "IntExec0"), area(base, "IntExec0"));
    EXPECT_LT(area(reg, "IntReg0"), area(base, "IntReg0"));
    // Total area (and thus chip power) stays constant (§3.2).
    EXPECT_NEAR(iq.totalArea(), base.totalArea(), 1e-12);
    EXPECT_NEAR(alu.totalArea(), base.totalArea(), 1e-12);
    EXPECT_NEAR(reg.totalArea(), base.totalArea(), 1e-12);
}

TEST(Floorplan, SharedEdgeGeometry)
{
    Floorplan fp;
    fp.addBlock("a", 0, 0, 1e-3, 1e-3);
    fp.addBlock("b", 1e-3, 0, 1e-3, 2e-3); // right neighbour
    fp.addBlock("c", 0, 1e-3, 1e-3, 1e-3); // above a
    fp.addBlock("d", 5e-3, 5e-3, 1e-3, 1e-3); // far away
    EXPECT_NEAR(fp.sharedEdge(0, 1), 1e-3, 1e-12);
    EXPECT_NEAR(fp.sharedEdge(0, 2), 1e-3, 1e-12);
    EXPECT_EQ(fp.sharedEdge(0, 3), 0.0);
    // b's left edge meets c's right edge over c's height.
    EXPECT_NEAR(fp.sharedEdge(1, 2), 1e-3, 1e-12);
}

TEST(Floorplan, DuplicateNamesFatal)
{
    Floorplan fp;
    fp.addBlock("x", 0, 0, 1e-3, 1e-3);
    EXPECT_THROW(fp.addBlock("x", 1e-3, 0, 1e-3, 1e-3),
                 FatalError);
}

TEST(Floorplan, OverlapDetected)
{
    Floorplan fp;
    fp.addBlock("x", 0, 0, 2e-3, 2e-3);
    fp.addBlock("y", 1e-3, 1e-3, 2e-3, 2e-3);
    EXPECT_THROW(fp.validate(), FatalError);
}

TEST(Floorplan, UnknownBlockFatal)
{
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    EXPECT_THROW(fp.indexOf("L3"), FatalError);
}

} // namespace
} // namespace tempest
