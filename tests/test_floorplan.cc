/**
 * @file
 * Unit tests for the floorplan and its constrained variants.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/log.hh"
#include "thermal/floorplan.hh"

namespace tempest
{
namespace
{

const char* const kRequiredBlocks[] = {
    "Icache", "Dcache", "Bpred", "ITB", "DTB", "LdStQ",
    "FPMap", "FPMul", "FPReg", "IntMap", "IntReg0", "IntReg1",
    "FPQ0", "FPQ1", "FPAdd0", "FPAdd1", "FPAdd2", "FPAdd3",
    "IntQ0", "IntQ1", "IntExec0", "IntExec1", "IntExec2",
    "IntExec3", "IntExec4", "IntExec5"};

class Variants
    : public ::testing::TestWithParam<FloorplanVariant>
{
};

TEST_P(Variants, HasAllPaperBlocks)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    for (const char* name : kRequiredBlocks)
        EXPECT_TRUE(fp.has(name)) << name;
    EXPECT_EQ(fp.numBlocks(), 26);
}

TEST_P(Variants, NoOverlapsAndFullCoverage)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_NO_THROW(fp.validate());
    // 4 mm x 4 mm die, fully tiled.
    EXPECT_NEAR(fp.totalArea(), 16e-6, 1e-9);
}

TEST_P(Variants, QueueHalvesAndCopiesMatch)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    const Block& q0 = fp.block(fp.indexOf("IntQ0"));
    const Block& q1 = fp.block(fp.indexOf("IntQ1"));
    EXPECT_NEAR(q0.area(), q1.area(), 1e-12);
    const Block& r0 = fp.block(fp.indexOf("IntReg0"));
    const Block& r1 = fp.block(fp.indexOf("IntReg1"));
    EXPECT_NEAR(r0.area(), r1.area(), 1e-12);
}

TEST_P(Variants, QueueHalvesAreAdjacent)
{
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntQ0"),
                            fp.indexOf("IntQ1")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntReg0"),
                            fp.indexOf("IntReg1")),
              0.0);
}

TEST_P(Variants, AlusFormAdjacentBanks)
{
    // ALUs flank the queue stack: 4-2-0 | Q | 1-3-5.
    const Floorplan fp = Floorplan::ev6Like(GetParam());
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec4"),
                            fp.indexOf("IntExec2")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec2"),
                            fp.indexOf("IntExec0")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec0"),
                            fp.indexOf("IntQ0")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntQ1"),
                            fp.indexOf("IntExec1")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec1"),
                            fp.indexOf("IntExec3")),
              0.0);
    EXPECT_GT(fp.sharedEdge(fp.indexOf("IntExec3"),
                            fp.indexOf("IntExec5")),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, Variants,
    ::testing::Values(FloorplanVariant::Baseline,
                      FloorplanVariant::IqConstrained,
                      FloorplanVariant::AluConstrained,
                      FloorplanVariant::RegfileConstrained),
    [](const auto& info) {
        return std::string(floorplanVariantName(info.param))
                   .substr(0, 2) +
               std::to_string(static_cast<int>(info.param));
    });

TEST(Floorplan, ConstrainedVariantsShrinkTheirResource)
{
    const Floorplan base =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    const Floorplan iq =
        Floorplan::ev6Like(FloorplanVariant::IqConstrained);
    const Floorplan alu =
        Floorplan::ev6Like(FloorplanVariant::AluConstrained);
    const Floorplan reg =
        Floorplan::ev6Like(FloorplanVariant::RegfileConstrained);

    auto area = [](const Floorplan& fp, const char* name) {
        return fp.block(fp.indexOf(name)).area();
    };
    EXPECT_LT(area(iq, "IntQ1"), area(base, "IntQ1"));
    EXPECT_LT(area(alu, "IntExec0"), area(base, "IntExec0"));
    EXPECT_LT(area(reg, "IntReg0"), area(base, "IntReg0"));
    // Total area (and thus chip power) stays constant (§3.2).
    EXPECT_NEAR(iq.totalArea(), base.totalArea(), 1e-12);
    EXPECT_NEAR(alu.totalArea(), base.totalArea(), 1e-12);
    EXPECT_NEAR(reg.totalArea(), base.totalArea(), 1e-12);
}

TEST(Floorplan, SharedEdgeGeometry)
{
    Floorplan fp;
    fp.addBlock("a", 0, 0, 1e-3, 1e-3);
    fp.addBlock("b", 1e-3, 0, 1e-3, 2e-3); // right neighbour
    fp.addBlock("c", 0, 1e-3, 1e-3, 1e-3); // above a
    fp.addBlock("d", 5e-3, 5e-3, 1e-3, 1e-3); // far away
    EXPECT_NEAR(fp.sharedEdge(0, 1), 1e-3, 1e-12);
    EXPECT_NEAR(fp.sharedEdge(0, 2), 1e-3, 1e-12);
    EXPECT_EQ(fp.sharedEdge(0, 3), 0.0);
    // b's left edge meets c's right edge over c's height.
    EXPECT_NEAR(fp.sharedEdge(1, 2), 1e-3, 1e-12);
}

TEST(Floorplan, DuplicateNamesFatal)
{
    Floorplan fp;
    fp.addBlock("x", 0, 0, 1e-3, 1e-3);
    EXPECT_THROW(fp.addBlock("x", 1e-3, 0, 1e-3, 1e-3),
                 FatalError);
}

TEST(Floorplan, OverlapDetected)
{
    Floorplan fp;
    fp.addBlock("x", 0, 0, 2e-3, 2e-3);
    fp.addBlock("y", 1e-3, 1e-3, 2e-3, 2e-3);
    EXPECT_THROW(fp.validate(), FatalError);
}

TEST(Floorplan, UnknownBlockFatal)
{
    const Floorplan fp =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    EXPECT_THROW(fp.indexOf("L3"), FatalError);
}

/** A 1-core, no-DRAM cmpTiled must be ev6Like verbatim — same
 * count, names, coordinates. This anchors the CMP layer's N=1
 * bit-identity proof at the geometry level. */
TEST(CmpTiled, SingleCoreIsEv6Verbatim)
{
    const Floorplan single =
        Floorplan::ev6Like(FloorplanVariant::IqConstrained);
    const Floorplan tiled = Floorplan::cmpTiled(
        FloorplanVariant::IqConstrained, 1, true, false);
    ASSERT_EQ(tiled.numBlocks(), single.numBlocks());
    for (int b = 0; b < single.numBlocks(); ++b) {
        EXPECT_EQ(tiled.block(b).name, single.block(b).name);
        EXPECT_EQ(tiled.block(b).x, single.block(b).x);
        EXPECT_EQ(tiled.block(b).y, single.block(b).y);
        EXPECT_EQ(tiled.block(b).width, single.block(b).width);
        EXPECT_EQ(tiled.block(b).height, single.block(b).height);
        EXPECT_EQ(tiled.block(b).layer, 0);
    }
}

/** 2-core + shared-L2 geometry golden: block ordering contract,
 * tile offsets, the L2 strip's span, and total area. */
TEST(CmpTiled, DualCoreGeometry)
{
    const Floorplan fp = Floorplan::cmpTiled(
        FloorplanVariant::Baseline, 2, true, false);
    // C0 tile, C1 tile, then the L2 strip.
    ASSERT_EQ(fp.numBlocks(), 2 * 26 + 1);
    EXPECT_NO_THROW(fp.validate());
    EXPECT_EQ(fp.numLayers(), 1);

    const Floorplan tile =
        Floorplan::ev6Like(FloorplanVariant::Baseline);
    const double tile_w = 4.0e-3; // 8 x 0.5 mm grid units
    const double l2_h = 1.0e-3;   // 2 grid units
    for (int k = 0; k < 2; ++k) {
        for (int b = 0; b < 26; ++b) {
            const Block& got = fp.block(k * 26 + b);
            const Block& want = tile.block(b);
            EXPECT_EQ(got.name,
                      "C" + std::to_string(k) + "." + want.name);
            // Tiles shift right by one tile width per core and up
            // by the L2 strip's height.
            EXPECT_NEAR(got.x, want.x + k * tile_w, 1e-12);
            EXPECT_NEAR(got.y, want.y + l2_h, 1e-12);
            EXPECT_EQ(got.width, want.width);
            EXPECT_EQ(got.height, want.height);
        }
    }
    const Block& l2 = fp.block(fp.indexOf("L2"));
    EXPECT_EQ(l2.x, 0.0);
    EXPECT_EQ(l2.y, 0.0);
    EXPECT_NEAR(l2.width, 2 * tile_w, 1e-12);
    EXPECT_NEAR(l2.height, l2_h, 1e-12);
    // 2 x (4 mm)^2 tiles + the 8 mm x 1 mm L2 strip.
    EXPECT_NEAR(fp.totalArea(), 2 * 16.0e-6 + 8.0e-6, 1e-15);
}

/** The lateral couplings that make it one thermal die: tiles meet
 * at the seam and the L2 strip abuts both tiles' cache rows. */
TEST(CmpTiled, CrossTileAndL2Adjacency)
{
    const Floorplan fp = Floorplan::cmpTiled(
        FloorplanVariant::Baseline, 2, true, false);
    // ev6Like row A: Icache [0, 2 mm), Dcache [2 mm, 4 mm), each
    // 1.2 mm tall. C0.Dcache's right edge is the seam; C1.Icache
    // starts there at the same height.
    EXPECT_NEAR(fp.sharedEdge(fp.indexOf("C0.Dcache"),
                              fp.indexOf("C1.Icache")),
                1.2e-3, 1e-12);
    // Distinct rows across the seam touch only at a corner.
    EXPECT_EQ(fp.sharedEdge(fp.indexOf("C0.Dcache"),
                            fp.indexOf("C1.Bpred")),
              0.0);
    // The L2 strip runs under every tile's cache row.
    for (const char* cache :
         {"C0.Icache", "C0.Dcache", "C1.Icache", "C1.Dcache"}) {
        EXPECT_NEAR(fp.sharedEdge(fp.indexOf("L2"),
                                  fp.indexOf(cache)),
                    2.0e-3, 1e-12)
            << cache;
    }
    // But not blocks a row up.
    EXPECT_EQ(fp.sharedEdge(fp.indexOf("L2"),
                            fp.indexOf("C0.Bpred")),
              0.0);
}

/** Stacked-DRAM (3D) geometry: one bank per tile on layer 1,
 * covering the tile footprint. Banks never share lateral edges
 * with the silicon beneath; they couple by footprint overlap, and
 * validate() tolerates the by-design cross-layer overlap. */
TEST(CmpTiled, StackedDramBanksCoverTiles)
{
    const Floorplan fp = Floorplan::cmpTiled(
        FloorplanVariant::Baseline, 2, false, true);
    ASSERT_EQ(fp.numBlocks(), 2 * 26 + 2);
    EXPECT_NO_THROW(fp.validate());
    EXPECT_EQ(fp.numLayers(), 2);

    const double tile_w = 4.0e-3;
    for (int k = 0; k < 2; ++k) {
        const Block& bank =
            fp.block(fp.indexOf("DRAM" + std::to_string(k)));
        EXPECT_EQ(bank.layer, 1);
        EXPECT_NEAR(bank.x, k * tile_w, 1e-12);
        EXPECT_EQ(bank.y, 0.0); // no L2 strip -> tiles at y = 0
        EXPECT_NEAR(bank.width, tile_w, 1e-12);
        EXPECT_NEAR(bank.height, tile_w, 1e-12);
    }

    const int dram0 = fp.indexOf("DRAM0");
    const int icache0 = fp.indexOf("C0.Icache");
    // Cross-layer blocks share no lateral edge...
    EXPECT_EQ(fp.sharedEdge(dram0, icache0), 0.0);
    // ...their coupling is the footprint overlap: the bank covers
    // the whole block (Icache is 2 mm x 1.2 mm).
    EXPECT_NEAR(fp.overlapArea(dram0, icache0), 2.4e-6, 1e-15);
    // A bank overlaps only its own tile.
    EXPECT_EQ(fp.overlapArea(dram0, fp.indexOf("C1.Icache")),
              0.0);
    // DRAM0 and DRAM1 are same-layer neighbours at the seam.
    EXPECT_NEAR(fp.sharedEdge(dram0, fp.indexOf("DRAM1")),
                4.0e-3, 1e-12);
    // totalArea() counts the silicon die only.
    EXPECT_NEAR(fp.totalArea(), 2 * 16.0e-6, 1e-15);
}

} // namespace
} // namespace tempest
