/**
 * @file
 * Tests for the per-stage cycle profiler (common/profiler.hh).
 *
 * The library builds with TEMPEST_PROFILE off, so the simulator's
 * own instrumentation points are compiled out here; this TU defines
 * the macro itself to get the real Profiler/ScopedStageTimer
 * implementation (the class only exists under the macro, so there
 * is no ODR clash with the uninstrumented library). The "workload"
 * is a short real simulation chopped into slices, each slice
 * attributed to one ProfStage, which exercises the accumulators
 * with genuinely nonzero tick counts instead of hand-fed values.
 */

#define TEMPEST_PROFILE 1

#include "common/profiler.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace
{

using namespace experiments;

constexpr int kNumStages = static_cast<int>(ProfStage::NumStages);

/** Run a short simulation, attributing successive interval slices
 * round-robin to every profiled stage. */
void
runProfiledSim()
{
    Profiler::instance().reset();
    Simulator sim(baseConfig(FloorplanVariant::Baseline, 0.04),
                  spec2000("parser"));
    for (int slice = 0; slice < 4 * kNumStages; ++slice) {
        const auto stage =
            static_cast<ProfStage>(slice % kNumStages);
        TEMPEST_PROF_SCOPE(stage);
        sim.run(5000);
    }
}

struct ReportRow
{
    char name[32];
    unsigned long long ticks;
    double share;
    unsigned long long calls;
    double ticksPerCall;
};

/** Render the report into a temp file and parse it back. */
int
parseReport(ReportRow rows[kNumStages])
{
    std::FILE* f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    Profiler::instance().report(f);
    std::rewind(f);
    char line[256];
    int n = 0;
    bool header = true;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (header) { // column titles
            header = false;
            continue;
        }
        ReportRow& r = rows[n];
        if (std::sscanf(line, "%31s %llu %lf%% %llu %lf", r.name,
                        &r.ticks, &r.share, &r.calls,
                        &r.ticksPerCall) == 5 &&
            n < kNumStages) {
            ++n;
        }
    }
    std::fclose(f);
    return n;
}

TEST(StageProfiler, EveryStageAccumulatesNonzeroTicks)
{
    runProfiledSim();
    ReportRow rows[kNumStages];
    const int n = parseReport(rows);
    // Every stage got slices, so every stage must report.
    ASSERT_EQ(n, kNumStages);
    for (int i = 0; i < n; ++i) {
        EXPECT_GT(rows[i].ticks, 0u) << rows[i].name;
        EXPECT_EQ(rows[i].calls, 4u) << rows[i].name;
        EXPECT_GT(rows[i].ticksPerCall, 0.0) << rows[i].name;
    }
}

TEST(StageProfiler, ReportRowsFollowStageOrder)
{
    runProfiledSim();
    ReportRow rows[kNumStages];
    const int n = parseReport(rows);
    ASSERT_EQ(n, kNumStages);
    for (int i = 0; i < n; ++i) {
        EXPECT_STREQ(rows[i].name, profStageName(
                         static_cast<ProfStage>(i)));
    }
}

TEST(StageProfiler, SharesSumToOneHundredPercent)
{
    runProfiledSim();
    ReportRow rows[kNumStages];
    const int n = parseReport(rows);
    ASSERT_EQ(n, kNumStages);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rows[i].share;
    // Each printed share is rounded to 0.01%, so the sum can drift
    // by half an ulp per row.
    EXPECT_NEAR(sum, 100.0, 0.01 * kNumStages);
}

TEST(StageProfiler, ResetZeroesTheTable)
{
    runProfiledSim();
    Profiler::instance().reset();
    ReportRow rows[kNumStages];
    // Zero-call stages are skipped, so a reset table prints no
    // rows at all.
    EXPECT_EQ(parseReport(rows), 0);
}

TEST(StageProfiler, ScopedTimerChargesItsStageOnly)
{
    Profiler::instance().reset();
    {
        TEMPEST_PROF_SCOPE(ProfStage::Thermal);
        volatile unsigned sink = 0;
        for (unsigned i = 0; i < 100000; ++i)
            sink = sink + i;
    }
    ReportRow rows[kNumStages];
    const int n = parseReport(rows);
    ASSERT_EQ(n, 1);
    EXPECT_STREQ(rows[0].name,
                 profStageName(ProfStage::Thermal));
    EXPECT_EQ(rows[0].calls, 1u);
    EXPECT_GT(rows[0].ticks, 0u);
    Profiler::instance().reset();
}

} // namespace
} // namespace tempest
