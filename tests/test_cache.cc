/**
 * @file
 * Unit and property tests for the cache model.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "uarch/activity.hh"
#include "uarch/cache.hh"

namespace tempest
{
namespace
{

TEST(Cache, GeometryFromSizeWaysLine)
{
    Cache c(64 * 1024, 4, 64);
    EXPECT_EQ(c.sets(), 256);
    EXPECT_EQ(c.ways(), 4);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(1000, 3, 64), FatalError);
    EXPECT_THROW(Cache(64 * 1024, 0, 64), FatalError);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(42));
    EXPECT_TRUE(c.access(42));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.probe(7));
    EXPECT_FALSE(c.access(7)); // still a miss: probe did not fill
    EXPECT_TRUE(c.probe(7));
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, pick lines mapping to the same set: addr, addr+sets,
    // addr+2*sets share set (index = line % sets).
    Cache c(2 * 8 * 64, 2, 64); // 8 sets, 2 ways
    const std::uint64_t s = 8;
    EXPECT_FALSE(c.access(3));
    EXPECT_FALSE(c.access(3 + s));
    EXPECT_TRUE(c.access(3));         // touch 3: now 3+s is LRU
    EXPECT_FALSE(c.access(3 + 2 * s)); // evicts 3+s
    EXPECT_TRUE(c.access(3));          // 3 survives
    EXPECT_FALSE(c.access(3 + s));     // 3+s was evicted
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(1024, 2, 64);
    c.access(1);
    c.access(2);
    c.flush();
    EXPECT_FALSE(c.access(1));
    EXPECT_FALSE(c.access(2));
}

TEST(Cache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    // Property: a working set no larger than capacity, accessed
    // round-robin, never misses after the first pass (true LRU).
    Cache c(64 * 64, 4, 64); // 64 lines capacity, 16 sets
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t line = 0; line < 64; ++line)
            c.access(line);
    }
    EXPECT_EQ(c.misses(), 64u);
}

TEST(Cache, ThrashingSetMissesEveryTime)
{
    // Property: cycling W+1 lines through one set of a W-way cache
    // with LRU misses on every access after warmup.
    Cache c(2 * 8 * 64, 2, 64); // 8 sets, 2 ways
    const std::uint64_t s = 8;
    for (int round = 0; round < 20; ++round) {
        for (int k = 0; k < 3; ++k)
            c.access(1 + k * s);
    }
    EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, StatsReset)
{
    Cache c(1024, 2, 64);
    c.access(1);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.access(1)); // contents survive a stats reset
}

TEST(DataHierarchy, LatenciesMatchTable2)
{
    PipelineConfig cfg;
    DataHierarchy h(cfg);
    EXPECT_EQ(h.latency(MemLevel::L1), 2);
    EXPECT_EQ(h.latency(MemLevel::L2), 14);
    EXPECT_EQ(h.latency(MemLevel::Memory), 250);
}

TEST(DataHierarchy, LevelsFillDownward)
{
    PipelineConfig cfg;
    DataHierarchy h(cfg);
    ActivityRecord act;
    EXPECT_EQ(h.access(99, act), MemLevel::Memory);
    // Second access hits L1 (filled on the way in).
    EXPECT_EQ(h.access(99, act), MemLevel::L1);
    EXPECT_EQ(act.l1dAccesses, 2u);
    EXPECT_EQ(act.l2Accesses, 1u);
}

TEST(DataHierarchy, L2HoldsWhatL1Evicts)
{
    PipelineConfig cfg;
    DataHierarchy h(cfg);
    ActivityRecord act;
    // Fill far beyond L1 (1024 lines) but within L2 (32768 lines).
    for (std::uint64_t line = 0; line < 8192; ++line)
        h.access(line, act);
    // Early lines were evicted from L1 but still sit in L2.
    EXPECT_EQ(h.access(0, act), MemLevel::L2);
}

TEST(DataHierarchy, RandomStreamMissRatesAreConsistent)
{
    // Property: for a uniform random stream over a span far larger
    // than L1 but within L2, the measured L1 miss rate approaches
    // 1 - capacity/span and the L2 miss rate falls after warmup.
    PipelineConfig cfg;
    DataHierarchy h(cfg);
    ActivityRecord act;
    Rng rng(3);
    const std::uint64_t span = 4096; // 4x L1 capacity in lines
    for (int i = 0; i < 200000; ++i)
        h.access(rng.below(span), act);
    const double l1_miss = h.l1().missRate();
    EXPECT_GT(l1_miss, 0.5);
    EXPECT_LT(l1_miss, 0.95);
    EXPECT_LT(h.l2().missRate(), 0.05); // span fits L2
}

} // namespace
} // namespace tempest
