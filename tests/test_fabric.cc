/**
 * @file
 * Sweep-fabric tests (DESIGN.md §15): wire-protocol round trips,
 * bit-exact SimResult transport, and the coordinator/worker
 * process pool — including the contract the whole subsystem
 * exists for: fabric-merged sweeps are bit-identical to the
 * in-process runner at any worker count, before and after worker
 * death, re-queue, and respawn.
 */

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/fabric/coordinator.hh"
#include "sim/fabric/fabric_protocol.hh"
#include "sim/fabric/worker.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"
#include "workload/profile.hh"

using namespace tempest;
using namespace tempest::fabric;

namespace
{

/** Scratch directory for spill files, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/tempest_fabric_test_XXXXXX";
        if (!mkdtemp(tmpl))
            throw std::runtime_error("mkdtemp failed");
        path = tmpl;
    }

    ~TempDir()
    {
        const std::string cmd = "rm -rf " + path;
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
};

SimResult
smallResult()
{
    SimConfig config = experiments::iqBase();
    config.runSeed = 42;
    Simulator sim(config, spec2000("art"));
    return sim.run(20000);
}

std::vector<std::uint64_t>
hashesOf(const std::vector<ExperimentOutcome>& outcomes)
{
    std::vector<std::uint64_t> hashes;
    hashes.reserve(outcomes.size());
    for (const ExperimentOutcome& o : outcomes) {
        EXPECT_TRUE(o.ok) << o.tag << "/" << o.benchmark << ": "
                          << o.error;
        hashes.push_back(o.ok
                             ? experiments::hashSimResult(o.result)
                             : 0);
    }
    return hashes;
}

/** The small sweep every pool test runs: 2 configs x 2
 * benchmarks, dotted-key configs. */
SweepSpec
smallSweep()
{
    SweepSpec spec;
    Config base;
    Config toggling;
    toggling.set("dtm.toggling", "true");
    spec.configs = {{"base", base}, {"toggling", toggling}};
    spec.benchmarks = {"art", "mesa"};
    spec.measureCycles = 50000;
    return spec;
}

/** In-process reference for smallSweep() (cold path). */
std::vector<ExperimentOutcome>
smallSweepReference(std::uint64_t base_seed)
{
    const SweepSpec spec = smallSweep();
    std::vector<std::pair<std::string, SimConfig>> configs;
    for (const auto& [tag, cfg] : spec.configs)
        configs.emplace_back(tag, simConfigFromConfig(cfg));
    ExperimentRunner::Options options;
    options.threads = 2;
    options.baseSeed = base_seed;
    return experiments::runSweep(configs, spec.benchmarks,
                                 spec.measureCycles, options);
}

} // namespace

// ---------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------

TEST(FabricProtocol, HexRoundTrip)
{
    const std::string bytes("\x00\x01\xfe\xff\x80 abc", 9);
    EXPECT_EQ(hexDecode(hexEncode(bytes)), bytes);
    EXPECT_EQ(hexEncode(std::string()), "");
    EXPECT_THROW(hexDecode("abc"), FatalError);  // odd length
    EXPECT_THROW(hexDecode("zz"), FatalError);   // bad digit
    EXPECT_EQ(parseHexU64("0xffffffffffffffff"),
              0xffffffffffffffffULL);
    EXPECT_THROW(parseHexU64("gg"), FatalError);
}

TEST(FabricProtocol, JobRoundTrip)
{
    FabricJob job;
    job.kind = FabricJob::Kind::Run;
    job.index = 7;
    job.tag = "iq_toggling";
    job.benchmark = "mesa";
    job.cycles = 2'000'000;
    job.seed = 0xdeadbeefcafef00dULL;
    job.config.set("dtm.toggling", "true");
    job.config.set("thermal.time_scale", "0.04");
    job.snapshotPath = "/spill/warm_mesa.ckpt";
    job.resetMeasurement = false;

    const FabricJob back =
        parseJob(serve::Json::parse(encodeJob(job)));
    EXPECT_EQ(back.kind, job.kind);
    EXPECT_EQ(back.index, job.index);
    EXPECT_EQ(back.tag, job.tag);
    EXPECT_EQ(back.benchmark, job.benchmark);
    EXPECT_EQ(back.cycles, job.cycles);
    EXPECT_EQ(back.seed, job.seed);
    EXPECT_EQ(back.config.entries(), job.config.entries());
    EXPECT_EQ(back.snapshotPath, job.snapshotPath);
    EXPECT_EQ(back.resetMeasurement, job.resetMeasurement);
}

TEST(FabricProtocol, EmptyConfigJobRoundTrips)
{
    // An all-defaults config must survive as an empty object,
    // not degrade to null (the neutral warm-up config is empty).
    FabricJob job;
    job.kind = FabricJob::Kind::Warm;
    job.index = 0;
    job.tag = "warmup";
    job.benchmark = "art";
    job.cycles = 1000;
    job.seed = 1;
    job.snapshotPath = "/tmp/x.ckpt";
    const FabricJob back =
        parseJob(serve::Json::parse(encodeJob(job)));
    EXPECT_TRUE(back.config.entries().empty());
    EXPECT_EQ(back.kind, FabricJob::Kind::Warm);
}

TEST(FabricProtocol, WarmJobWithoutSnapshotPathIsFatal)
{
    FabricJob job;
    job.kind = FabricJob::Kind::Warm;
    job.tag = "warmup";
    job.benchmark = "art";
    job.cycles = 1000;
    EXPECT_THROW(parseJob(serve::Json::parse(encodeJob(job))),
                 FatalError);
}

TEST(FabricProtocol, ResultRoundTripPreservesEveryBit)
{
    FabricResult res;
    res.index = 3;
    res.ok = true;
    res.result = smallResult();
    res.hasResult = true;
    res.resultHash = experiments::hashSimResult(res.result);
    res.wallSeconds = 0.25;

    const FabricResult back =
        parseResult(serve::Json::parse(encodeResult(res)));
    EXPECT_EQ(back.index, res.index);
    EXPECT_TRUE(back.ok);
    EXPECT_TRUE(back.hasResult);
    EXPECT_EQ(back.resultHash, res.resultHash);
    // The decoded result must hash identically: every field,
    // every counter, every double bit pattern survived the trip.
    EXPECT_EQ(experiments::hashSimResult(back.result),
              res.resultHash);
    EXPECT_EQ(back.wallSeconds, res.wallSeconds);
}

TEST(FabricProtocol, ErrorResultRoundTrip)
{
    FabricResult res;
    res.index = 9;
    res.ok = false;
    res.error = "unknown benchmark 'nope'";
    const FabricResult back =
        parseResult(serve::Json::parse(encodeResult(res)));
    EXPECT_EQ(back.index, 9u);
    EXPECT_FALSE(back.ok);
    EXPECT_FALSE(back.hasResult);
    EXPECT_EQ(back.error, res.error);
}

TEST(FabricProtocol, BlobDetectsTrailingBytes)
{
    const std::string blob =
        encodeSimResultBlob(smallResult());
    EXPECT_THROW(decodeSimResultBlob(blob + "x"), FatalError);
    EXPECT_THROW(
        decodeSimResultBlob(blob.substr(0, blob.size() - 1)),
        FatalError);
}

// ---------------------------------------------------------------
// Worker job execution (no process plumbing)
// ---------------------------------------------------------------

TEST(FabricWorker, ExecuteJobMatchesInProcessRunner)
{
    FabricJob job;
    job.kind = FabricJob::Kind::Run;
    job.index = 0;
    job.tag = "base";
    job.benchmark = "art";
    job.cycles = 50000;
    job.seed = deriveRunSeed(1, "art", "base");

    ExperimentJob ref;
    ref.tag = "base";
    ref.benchmark = "art";
    ref.config = experiments::iqBase();
    ref.cycles = 50000;
    const ExperimentOutcome expected =
        ExperimentRunner::runJob(ref, 1);
    ASSERT_TRUE(expected.ok) << expected.error;

    const FabricResult got = executeJob(job);
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(got.hasResult);
    EXPECT_EQ(got.resultHash,
              experiments::hashSimResult(expected.result));
}

TEST(FabricWorker, ExecuteJobCapturesSimulationErrors)
{
    FabricJob job;
    job.kind = FabricJob::Kind::Run;
    job.benchmark = "no_such_benchmark";
    job.cycles = 1000;
    const FabricResult got = executeJob(job);
    EXPECT_FALSE(got.ok);
    EXPECT_FALSE(got.hasResult);
    EXPECT_NE(got.error.find("no_such_benchmark"),
              std::string::npos)
        << got.error;
}

TEST(FabricWorker, WarmJobWritesForkableSnapshot)
{
    TempDir dir;
    const std::uint64_t seed = deriveRunSeed(1, "art", "warmup");
    FabricJob warm;
    warm.kind = FabricJob::Kind::Warm;
    warm.index = 0;
    warm.tag = "warmup";
    warm.benchmark = "art";
    warm.cycles = 5000;
    warm.seed = seed;
    warm.snapshotPath = dir.path + "/warm_art.ckpt";
    const FabricResult wres = executeJob(warm);
    ASSERT_TRUE(wres.ok) << wres.error;

    FabricJob fork;
    fork.kind = FabricJob::Kind::Run;
    fork.index = 1;
    fork.tag = "base";
    fork.benchmark = "art";
    fork.cycles = 20000;
    fork.seed = seed;
    fork.snapshotPath = warm.snapshotPath;
    const FabricResult fres = executeJob(fork);
    ASSERT_TRUE(fres.ok) << fres.error;

    // Reference: the in-process warm-fork pair.
    SimConfig config = experiments::iqBase();
    const std::string snapshot =
        experiments::warmSnapshot(config, "art", seed, 5000);
    const SimResult expected = experiments::runFromSnapshot(
        config, "art", seed, snapshot, 20000, true);
    EXPECT_EQ(fres.resultHash,
              experiments::hashSimResult(expected));
}

// ---------------------------------------------------------------
// Coordinator pool: bit-identity at 1/2/8 workers
// ---------------------------------------------------------------

TEST(FabricCoordinatorPool, ColdSweepBitIdenticalAcrossWorkerCounts)
{
    const std::vector<ExperimentOutcome> reference =
        smallSweepReference(1);
    const std::vector<std::uint64_t> expected =
        hashesOf(reference);

    for (const int workers : {1, 2, 8}) {
        FabricOptions options;
        options.workers = workers;
        options.baseSeed = 1;
        FabricCoordinator coordinator(options);
        const std::vector<ExperimentOutcome> outcomes =
            coordinator.runSweep(smallSweep());
        ASSERT_EQ(outcomes.size(), reference.size());
        EXPECT_EQ(hashesOf(outcomes), expected)
            << "at " << workers << " workers";
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            EXPECT_EQ(outcomes[i].tag, reference[i].tag);
            EXPECT_EQ(outcomes[i].benchmark,
                      reference[i].benchmark);
            EXPECT_EQ(outcomes[i].seed, reference[i].seed);
        }
    }
}

TEST(FabricCoordinatorPool, WarmForkSweepBitIdenticalToRunner)
{
    TempDir fabric_dir;
    TempDir runner_dir;
    const SweepSpec spec = smallSweep();
    const WarmSpec warm_spec{Config{}, 5000, "warmup", true};

    std::vector<std::pair<std::string, SimConfig>> configs;
    for (const auto& [tag, cfg] : spec.configs)
        configs.emplace_back(tag, simConfigFromConfig(cfg));
    experiments::WarmForkOptions wf;
    wf.warmConfig = simConfigFromConfig(warm_spec.warmConfig);
    wf.warmupCycles = warm_spec.warmupCycles;
    wf.spillDir = runner_dir.path;
    ExperimentRunner::Options roptions;
    roptions.threads = 2;
    const std::vector<ExperimentOutcome> reference =
        experiments::runWarmForkSweep(configs, spec.benchmarks,
                                      spec.measureCycles, wf,
                                      roptions);

    FabricOptions options;
    options.workers = 2;
    options.spillDir = fabric_dir.path;
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runWarmForkSweep(spec, warm_spec);

    EXPECT_EQ(hashesOf(outcomes), hashesOf(reference));
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(outcomes[i].seed, reference[i].seed);
}

TEST(FabricCoordinatorPool, WarmForkNeedsSpillDir)
{
    FabricCoordinator coordinator(FabricOptions{});
    EXPECT_THROW(
        coordinator.runWarmForkSweep(smallSweep(), WarmSpec{}),
        FatalError);
}

TEST(FabricCoordinatorPool, SimulationFailureIsNotRetried)
{
    SweepSpec spec;
    spec.configs = {{"base", Config{}}};
    spec.benchmarks = {"art", "definitely_not_a_benchmark"};
    spec.measureCycles = 20000;

    std::mutex mu;
    std::vector<std::string> events;
    FabricOptions options;
    options.workers = 2;
    options.onEvent = [&](const std::string& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        events.push_back(msg);
    };
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runSweep(spec);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(
        outcomes[1].error.find("definitely_not_a_benchmark"),
        std::string::npos)
        << outcomes[1].error;
    for (const std::string& e : events)
        EXPECT_EQ(e.find("re-queued"), std::string::npos) << e;
}

// ---------------------------------------------------------------
// Failure recovery: death, re-queue, respawn, timeout
// ---------------------------------------------------------------

TEST(FabricRecovery, KilledWorkerShardsRequeueBitIdentically)
{
    const std::vector<std::uint64_t> expected =
        hashesOf(smallSweepReference(1));

    // Kill the worker that receives the first dispatched shard,
    // as soon as we see the dispatch event. The coordinator must
    // re-queue that shard onto a survivor (or respawn) and the
    // merged sweep must still be bit-identical.
    std::mutex mu;
    std::vector<std::string> events;
    std::atomic<bool> killed{false};
    FabricOptions options;
    options.workers = 2;
    options.baseSeed = 1;
    options.onEvent = [&](const std::string& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        events.push_back(msg);
        const std::string marker = " to worker ";
        const std::size_t at = msg.find(marker);
        if (msg.rfind("dispatched ", 0) == 0 &&
            at != std::string::npos &&
            !killed.exchange(true)) {
            const pid_t pid = static_cast<pid_t>(std::stol(
                msg.substr(at + marker.size())));
            kill(pid, SIGKILL);
        }
    };
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runSweep(smallSweep());

    EXPECT_EQ(hashesOf(outcomes), expected);
    bool requeued = false;
    {
        const std::lock_guard<std::mutex> lock(mu);
        for (const std::string& e : events)
            requeued |= e.find("re-queued") != std::string::npos;
    }
    EXPECT_TRUE(requeued)
        << "the killed worker's shard was never re-queued";
}

TEST(FabricRecovery, TotalPoolLossRespawnsWorkers)
{
    const std::vector<std::uint64_t> expected =
        hashesOf(smallSweepReference(1));

    // Kill EVERY worker once (by pid, as spawned). The pool hits
    // zero survivors at least once and must respawn from budget.
    std::mutex mu;
    std::vector<std::string> events;
    std::size_t kills = 0;
    FabricOptions options;
    options.workers = 1;
    options.baseSeed = 1;
    options.onEvent = [&](const std::string& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        events.push_back(msg);
        const std::string marker = " to worker ";
        const std::size_t at = msg.find(marker);
        if (kills < 2 && msg.rfind("dispatched ", 0) == 0 &&
            at != std::string::npos) {
            ++kills;
            const pid_t pid = static_cast<pid_t>(std::stol(
                msg.substr(at + marker.size())));
            kill(pid, SIGKILL);
        }
    };
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runSweep(smallSweep());

    EXPECT_EQ(hashesOf(outcomes), expected);
    bool respawned = false;
    {
        const std::lock_guard<std::mutex> lock(mu);
        for (const std::string& e : events)
            respawned |=
                e.find("respawning") != std::string::npos;
    }
    EXPECT_TRUE(respawned)
        << "pool never respawned after total loss";
}

TEST(FabricRecovery, PoisonShardFailsAfterAttemptBudget)
{
    // A worker command that dies before saying hello: every
    // spawn is lost, the respawn budget drains, and the jobs
    // fail cleanly instead of looping forever.
    SweepSpec spec;
    spec.configs = {{"base", Config{}}};
    spec.benchmarks = {"art"};
    spec.measureCycles = 1000;

    FabricOptions options;
    options.workers = 2;
    options.workerCommand = {"/bin/false"};
    options.respawnBudget = 2;
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runSweep(spec);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].error.empty());
}

TEST(FabricRecovery, HungJobIsKilledByTimeoutAndBounded)
{
    // One job big enough to blow the deadline every attempt: the
    // timeout must SIGKILL the worker, re-queue, and finally
    // fail the job after maxJobAttempts dispatches.
    SweepSpec spec;
    spec.configs = {{"base", Config{}}};
    spec.benchmarks = {"art"};
    spec.measureCycles = 2'000'000'000ULL;

    std::mutex mu;
    std::size_t timeouts = 0;
    FabricOptions options;
    options.workers = 1;
    options.jobTimeoutSeconds = 0.2;
    options.maxJobAttempts = 2;
    options.onEvent = [&](const std::string& msg) {
        const std::lock_guard<std::mutex> lock(mu);
        if (msg.find("exceeded") != std::string::npos)
            ++timeouts;
    };
    FabricCoordinator coordinator(options);
    const std::vector<ExperimentOutcome> outcomes =
        coordinator.runSweep(spec);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("job timeout"),
              std::string::npos)
        << outcomes[0].error;
    EXPECT_EQ(timeouts, 2u);
}
