/**
 * @file
 * Unit tests for the DTM controller (the paper's techniques).
 */

#include <gtest/gtest.h>

#include "dtm/dtm_policy.hh"

namespace tempest
{
namespace
{

struct DtmFixture : public ::testing::Test
{
    DtmFixture()
        : fp(Floorplan::ev6Like(FloorplanVariant::IqConstrained)),
          core(cfg, spec2000("gzip"), 1)
    {
    }

    /** Temperatures all at `base`, with named overrides. */
    std::vector<Kelvin>
    temps(Kelvin base,
          std::initializer_list<std::pair<const char*, Kelvin>>
              overrides = {})
    {
        std::vector<Kelvin> t(
            static_cast<std::size_t>(fp.numBlocks()), base);
        for (const auto& [name, v] : overrides)
            t[static_cast<std::size_t>(fp.indexOf(name))] = v;
        return t;
    }

    ResourceBalancingDtm
    make(DtmConfig dtm)
    {
        return ResourceBalancingDtm(dtm, core, fp);
    }

    PipelineConfig cfg;
    Floorplan fp;
    OooCore core;
};

TEST_F(DtmFixture, BaselineStallsOnAnyHotBlock)
{
    auto dtm = make(DtmConfig{});
    EXPECT_EQ(dtm.sample(temps(350.0)), DtmAction::Continue);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"IntQ1", 358.0}})),
              DtmAction::GlobalStall);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"IntExec3", 359.0}})),
              DtmAction::GlobalStall);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"IntReg0", 358.5}})),
              DtmAction::GlobalStall);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"Dcache", 358.5}})),
              DtmAction::GlobalStall);
    EXPECT_EQ(dtm.stats().globalStalls, 4u);
}

TEST_F(DtmFixture, TogglingFiresOnHalfDifferential)
{
    DtmConfig c;
    c.iqToggling = true;
    auto dtm = make(c);
    // Tail (IntQ1 in conventional mode) 0.6 K hotter: toggle.
    dtm.sample(temps(350.0, {{"IntQ1", 352.0}, {"IntQ0", 351.4}}));
    EXPECT_EQ(dtm.stats().iqToggles, 1u);
    EXPECT_EQ(core.intQueue().mode(), CompactionMode::Toggled);
    // In toggled mode the tail half is IntQ0; now IT must lead.
    dtm.sample(temps(350.0, {{"IntQ1", 352.0}, {"IntQ0", 351.4}}));
    EXPECT_EQ(dtm.stats().iqToggles, 1u); // no change
    dtm.sample(temps(350.0, {{"IntQ0", 353.0}, {"IntQ1", 352.0}}));
    EXPECT_EQ(dtm.stats().iqToggles, 2u);
    EXPECT_EQ(core.intQueue().mode(),
              CompactionMode::Conventional);
}

TEST_F(DtmFixture, NoToggleBelowHalfKelvin)
{
    DtmConfig c;
    c.iqToggling = true;
    auto dtm = make(c);
    dtm.sample(temps(350.0, {{"IntQ1", 351.4}, {"IntQ0", 351.0}}));
    EXPECT_EQ(dtm.stats().iqToggles, 0u);
}

TEST_F(DtmFixture, NoToggleOnceOverheated)
{
    // Overheating is the temporal fallback's business (§2.1.1).
    DtmConfig c;
    c.iqToggling = true;
    auto dtm = make(c);
    const auto action = dtm.sample(
        temps(350.0, {{"IntQ1", 358.5}, {"IntQ0", 352.0}}));
    EXPECT_EQ(action, DtmAction::GlobalStall);
    EXPECT_EQ(dtm.stats().iqToggles, 0u);
}

TEST_F(DtmFixture, ToggleProximityGateHoldsFarBelowThreshold)
{
    DtmConfig c;
    c.iqToggling = true;
    c.toggleProximityK = 2.0; // engage within 2 K of 358 only
    auto dtm = make(c);
    dtm.sample(temps(340.0, {{"IntQ1", 345.0}, {"IntQ0", 343.0}}));
    EXPECT_EQ(dtm.stats().iqToggles, 0u);
    dtm.sample(temps(350.0, {{"IntQ1", 356.5}, {"IntQ0", 355.0}}));
    EXPECT_EQ(dtm.stats().iqToggles, 1u);
}

TEST_F(DtmFixture, FpQueueTogglesIndependently)
{
    DtmConfig c;
    c.iqToggling = true;
    auto dtm = make(c);
    dtm.sample(temps(350.0, {{"FPQ1", 352.0}, {"FPQ0", 351.0}}));
    EXPECT_EQ(core.fpQueue().mode(), CompactionMode::Toggled);
    EXPECT_EQ(core.intQueue().mode(),
              CompactionMode::Conventional);
}

TEST_F(DtmFixture, FineGrainTurnoffMasksHotAluOnly)
{
    DtmConfig c;
    c.aluTurnoff = true;
    auto dtm = make(c);
    const auto action =
        dtm.sample(temps(350.0, {{"IntExec0", 358.2}}));
    EXPECT_EQ(action, DtmAction::Continue); // no global stall
    EXPECT_FALSE(core.alus().intAluAvailable(0));
    EXPECT_TRUE(core.alus().intAluAvailable(1));
    EXPECT_EQ(dtm.stats().aluTurnoffEvents, 1u);
}

TEST_F(DtmFixture, TurnoffReenablesWithHysteresis)
{
    DtmConfig c;
    c.aluTurnoff = true;
    c.reenableHysteresisK = 1.5;
    auto dtm = make(c);
    dtm.sample(temps(350.0, {{"IntExec0", 358.2}}));
    EXPECT_FALSE(core.alus().intAluAvailable(0));
    // Slightly below threshold: still off (hysteresis).
    dtm.sample(temps(350.0, {{"IntExec0", 357.5}}));
    EXPECT_FALSE(core.alus().intAluAvailable(0));
    // Below threshold - hysteresis: re-enabled.
    dtm.sample(temps(350.0, {{"IntExec0", 356.4}}));
    EXPECT_TRUE(core.alus().intAluAvailable(0));
    // Re-crossing counts a new event.
    dtm.sample(temps(350.0, {{"IntExec0", 358.1}}));
    EXPECT_EQ(dtm.stats().aluTurnoffEvents, 2u);
}

TEST_F(DtmFixture, AllAlusHotFallsBackToStall)
{
    DtmConfig c;
    c.aluTurnoff = true;
    auto dtm = make(c);
    std::vector<std::pair<const char*, Kelvin>> hot;
    auto t = temps(350.0);
    for (int i = 0; i < cfg.numIntAlus; ++i)
        t[static_cast<std::size_t>(fp.indexOf(
            "IntExec" + std::to_string(i)))] = 358.5;
    EXPECT_EQ(dtm.sample(t), DtmAction::GlobalStall);
    EXPECT_TRUE(core.alus().allIntAlusOff());
}

TEST_F(DtmFixture, RegfileTurnoffMarksMappedAlusBusy)
{
    DtmConfig c;
    c.regfileTurnoff = true;
    c.mapping = PortMapping::Priority;
    auto dtm = make(c);
    // Copy 0 crosses the lowered threshold (358 - 0.5).
    const auto action =
        dtm.sample(temps(350.0, {{"IntReg0", 357.6}}));
    EXPECT_EQ(action, DtmAction::Continue);
    EXPECT_EQ(dtm.stats().regfileTurnoffEvents, 1u);
    // Priority mapping: ALUs 0..2 belong to copy 0.
    EXPECT_FALSE(core.alus().intAluAvailable(0));
    EXPECT_FALSE(core.alus().intAluAvailable(1));
    EXPECT_FALSE(core.alus().intAluAvailable(2));
    EXPECT_TRUE(core.alus().intAluAvailable(3));
    EXPECT_TRUE(dtm.aluOffForRegfile(1));
    // Cooling re-enables them.
    dtm.sample(temps(350.0, {{"IntReg0", 355.0}}));
    EXPECT_TRUE(core.alus().intAluAvailable(0));
}

TEST_F(DtmFixture, BalancedMappingTurnsOffInterleavedAlus)
{
    DtmConfig c;
    c.regfileTurnoff = true;
    c.mapping = PortMapping::Balanced;
    auto dtm = make(c);
    dtm.sample(temps(350.0, {{"IntReg0", 357.6}}));
    EXPECT_FALSE(core.alus().intAluAvailable(0));
    EXPECT_TRUE(core.alus().intAluAvailable(1));
    EXPECT_FALSE(core.alus().intAluAvailable(2));
}

TEST_F(DtmFixture, BothCopiesHotStalls)
{
    DtmConfig c;
    c.regfileTurnoff = true;
    auto dtm = make(c);
    const auto action = dtm.sample(temps(
        350.0, {{"IntReg0", 357.7}, {"IntReg1", 357.8}}));
    EXPECT_EQ(action, DtmAction::GlobalStall);
}

TEST_F(DtmFixture, RegfilePastCriticalThresholdStalls)
{
    // Writes continue while cooling, but crossing the full
    // critical threshold engages the fallback.
    DtmConfig c;
    c.regfileTurnoff = true;
    auto dtm = make(c);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"IntReg0", 358.2}})),
              DtmAction::GlobalStall);
}

TEST_F(DtmFixture, WithoutRegfileTurnoffOneHotCopyStalls)
{
    DtmConfig c; // regfileTurnoff = false
    auto dtm = make(c);
    EXPECT_EQ(dtm.sample(temps(350.0, {{"IntReg1", 358.1}})),
              DtmAction::GlobalStall);
}

TEST_F(DtmFixture, ConfigPlumbsRoundRobinAndMapping)
{
    DtmConfig c;
    c.roundRobin = true;
    c.mapping = PortMapping::Balanced;
    auto dtm = make(c);
    EXPECT_TRUE(core.roundRobin());
    EXPECT_EQ(core.intRegfile().mapping(),
              PortMapping::Balanced);
}

} // namespace
} // namespace tempest
