/**
 * @file
 * Checkpoint/restore subsystem tests.
 *
 * The heart of the suite is bit-identity: saving at an interval
 * boundary, restoring into a *fresh* simulator, and running to the
 * end must produce exactly the same full-SimResult FNV-1a hash as
 * a straight-through run — per config, per benchmark, through the
 * in-memory fork path and through a disk round-trip. On top of
 * that: corruption (truncation, flipped payload bytes) must fail
 * with a clear FatalError, identity mismatches must be rejected,
 * unknown chunks must be skipped (forward compatibility), and the
 * warm-fork sweep must be bit-identical at 1/2/8 threads and
 * between the in-memory and spill-to-disk snapshot paths.
 *
 * Coverage of the visitors themselves is enforced statically by
 * tools/lint/tempest_lint.py (ctest: lint_tree; DESIGN.md §12):
 * each class implementing saveState/loadState must reference every
 * non-static member in both bodies, in the same order, with a
 * mirrored serializer-call sequence — so deleting any single field
 * write fails the lint before it can fail (or worse, silently
 * pass) the round-trip tests here. Members that are intentionally
 * not serialized carry `// ckpt:skip(<reason>)` on their
 * declaration; the reason is mandatory and must be one of:
 * derived/rebuildable cache, config-owned reference, sub-component
 * serialized in its own chunk (Simulator::saveCheckpoint), or
 * per-cycle scratch. When adding a member to a checkpointable
 * class, either wire it through both visitors (and extend the
 * round-trip coverage here) or annotate it — never leave it bare.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "uarch/bpred.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace
{

using experiments::hashSimResult;

/** 4 intervals at the experiment sampling interval; save at 2. */
constexpr std::uint64_t kRunCycles = 200'000;
constexpr std::uint64_t kSaveCycle = 100'000;

struct CaseId
{
    const char* config;
    const char* benchmark;
};

constexpr CaseId kCases[] = {
    {"iq_base", "art"},
    {"iq_base", "facerec"},
    {"iq_base", "mesa"},
    {"iq_toggling", "art"},
    {"iq_toggling", "facerec"},
    {"iq_toggling", "mesa"},
    {"alu_turnoff", "art"},
    {"alu_turnoff", "facerec"},
    {"alu_turnoff", "mesa"},
    {"regfile_balanced", "art"},
    {"regfile_balanced", "facerec"},
    {"regfile_balanced", "mesa"},
};

SimConfig
configFor(const std::string& name)
{
    if (name == "iq_base")
        return experiments::iqBase();
    if (name == "iq_toggling")
        return experiments::iqToggling();
    if (name == "alu_turnoff")
        return experiments::aluFineGrain();
    if (name == "regfile_balanced")
        return experiments::regfileConfig(PortMapping::Balanced,
                                          /*fine_grain=*/true);
    ADD_FAILURE() << "unknown config " << name;
    return experiments::iqBase();
}

SimConfig
seededConfig(const std::string& name, const std::string& benchmark)
{
    SimConfig config = configFor(name);
    config.runSeed = deriveRunSeed(1, benchmark, name);
    return config;
}

std::string
tempPath(const std::string& leaf)
{
    return (std::filesystem::temp_directory_path() / leaf).string();
}

TEST(Checkpoint, SaveRestoreBitIdentityAllConfigs)
{
    for (const CaseId& c : kCases) {
        const SimConfig config =
            seededConfig(c.config, c.benchmark);
        const BenchmarkProfile profile = spec2000(c.benchmark);

        Simulator straight(config, profile);
        const std::uint64_t golden =
            hashSimResult(straight.run(kRunCycles));

        // Save at interval k on a second simulator...
        Simulator saver(config, profile);
        saver.runTo(kSaveCycle);
        const std::string bytes = saver.saveCheckpoint();

        // ...restore into a *fresh* simulator (in-memory path).
        Simulator memResume(config, profile);
        memResume.restoreCheckpoint(bytes);
        memResume.runTo(kRunCycles);
        EXPECT_EQ(hashSimResult(memResume.result()), golden)
            << c.config << "/" << c.benchmark
            << ": in-memory restore diverged";

        // ...and through a disk round-trip.
        const std::string path = tempPath(
            std::string("tempest_ckpt_") + c.config + "_" +
            c.benchmark + ".ckpt");
        writeCheckpointFile(path, bytes);
        Simulator diskResume(config, profile);
        diskResume.restoreCheckpoint(readCheckpointFile(path));
        diskResume.runTo(kRunCycles);
        EXPECT_EQ(hashSimResult(diskResume.result()), golden)
            << c.config << "/" << c.benchmark
            << ": disk restore diverged";
        std::filesystem::remove(path);

        // The saver itself must also be unperturbed by the save.
        saver.runTo(kRunCycles);
        EXPECT_EQ(hashSimResult(saver.result()), golden)
            << c.config << "/" << c.benchmark
            << ": saveCheckpoint() perturbed the simulation";
    }
}

TEST(Checkpoint, ConcurrentWritersToOnePathNeverTearTheFile)
{
    // Regression: the staging file used to be the fixed
    // `path + ".tmp"`, so two concurrent writers (the serve
    // daemon's warm pool, parallel sweeps sharing a checkpoint
    // dir) interleaved writes into the same temporary and could
    // rename a torn file into place. With per-writer unique
    // staging, the final file must always parse and equal one
    // writer's payload exactly.
    const std::string path =
        tempPath("tempest_ckpt_concurrent.ckpt");
    std::filesystem::remove(path);

    constexpr int kWriters = 8;
    constexpr int kRounds = 25;
    std::vector<std::string> payloads;
    payloads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        CheckpointWriter writer;
        StateWriter& chunk = writer.chunk(chunkId("TEST"));
        // Distinct sizes so a torn mix of two payloads can't
        // accidentally reproduce a valid container.
        for (int i = 0; i <= w * 64; ++i)
            chunk.u64(static_cast<std::uint64_t>(w) * 1000 +
                      static_cast<std::uint64_t>(i));
        payloads.push_back(writer.serialize());
    }

    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            for (int r = 0; r < kRounds; ++r)
                writeCheckpointFile(path, payloads[
                    static_cast<std::size_t>(w)]);
        });
    }
    for (std::thread& t : threads)
        t.join();

    const std::string final_bytes = readCheckpointFile(path);
    EXPECT_NE(std::find(payloads.begin(), payloads.end(),
                        final_bytes),
              payloads.end())
        << "surviving file matches no single writer's payload";
    // Every chunk checksum must validate (no torn container).
    EXPECT_NO_THROW(CheckpointReader reader(final_bytes));

    // No abandoned staging files: every writer renamed or
    // failed loudly, nothing leaked `<path>.tmp.*` siblings.
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    const std::string stem =
        std::filesystem::path(path).filename().string() +
        ".tmp.";
    for (const auto& entry :
         std::filesystem::directory_iterator(parent)) {
        EXPECT_NE(
            entry.path().filename().string().find(stem), 0u)
            << "leaked staging file: " << entry.path();
    }
    std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileIsAClearError)
{
    const SimConfig config = seededConfig("iq_base", "art");
    Simulator sim(config, spec2000("art"));
    sim.runTo(kSaveCycle);
    const std::string bytes = sim.saveCheckpoint();

    // Truncation at any depth must surface as FatalError, not UB:
    // inside the header, inside the chunk table, and mid-payload.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{15},
          std::size_t{40}, bytes.size() / 2, bytes.size() - 1}) {
        Simulator fresh(config, spec2000("art"));
        EXPECT_THROW(
            fresh.restoreCheckpoint(bytes.substr(0, keep)),
            FatalError)
            << "truncated to " << keep << " bytes";
    }
}

TEST(Checkpoint, FlippedByteFailsTheChecksum)
{
    const SimConfig config = seededConfig("iq_base", "art");
    Simulator sim(config, spec2000("art"));
    sim.runTo(kSaveCycle);
    std::string bytes = sim.saveCheckpoint();

    // Flip one byte deep inside a chunk payload.
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    Simulator fresh(config, spec2000("art"));
    EXPECT_THROW(fresh.restoreCheckpoint(bytes), FatalError);
}

TEST(Checkpoint, BadMagicIsRejected)
{
    const SimConfig config = seededConfig("iq_base", "art");
    Simulator sim(config, spec2000("art"));
    EXPECT_THROW(
        sim.restoreCheckpoint("this is not a checkpoint at all"),
        FatalError);
}

TEST(Checkpoint, IdentityMismatchIsRejected)
{
    const SimConfig config = seededConfig("iq_base", "art");
    Simulator sim(config, spec2000("art"));
    sim.runTo(kSaveCycle);
    const std::string bytes = sim.saveCheckpoint();

    // Wrong benchmark.
    Simulator other(config, spec2000("mesa"));
    EXPECT_THROW(other.restoreCheckpoint(bytes), FatalError);

    // Wrong run seed.
    SimConfig reseeded = config;
    reseeded.runSeed ^= 1;
    Simulator wrongSeed(reseeded, spec2000("art"));
    EXPECT_THROW(wrongSeed.restoreCheckpoint(bytes), FatalError);
}

/** Append an unrecognised chunk to serialized checkpoint bytes
 * (simulating a newer writer): bump the chunk count in the header
 * and append an id/flags/len/payload/checksum record. */
std::string
withUnknownChunk(std::string bytes)
{
    const std::uint32_t count =
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(bytes[12])) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[13]))
         << 8) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[14]))
         << 16) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[15]))
         << 24);
    const std::uint32_t bumped = count + 1;
    for (int i = 0; i < 4; ++i) {
        bytes[static_cast<std::size_t>(12 + i)] =
            static_cast<char>((bumped >> (8 * i)) & 0xff);
    }

    CheckpointWriter extra;
    StateWriter& payload = extra.chunk(chunkId("XTRA"));
    payload.str("state from a component this build predates");
    const std::string serialized = extra.serialize();
    // Skip the 16-byte header of the single-chunk container and
    // append just the chunk record.
    bytes.append(serialized.substr(16));
    return bytes;
}

TEST(Checkpoint, UnknownChunksAreSkippedForwardCompatibly)
{
    const SimConfig config = seededConfig("iq_base", "art");
    const BenchmarkProfile profile = spec2000("art");

    Simulator straight(config, profile);
    const std::uint64_t golden =
        hashSimResult(straight.run(kRunCycles));

    Simulator saver(config, profile);
    saver.runTo(kSaveCycle);
    const std::string bytes =
        withUnknownChunk(saver.saveCheckpoint());

    const CheckpointReader reader(bytes);
    EXPECT_TRUE(reader.has(chunkId("XTRA")));
    EXPECT_TRUE(reader.has(chunkId("CORE")));

    Simulator resume(config, profile);
    resume.restoreCheckpoint(bytes);
    resume.runTo(kRunCycles);
    EXPECT_EQ(hashSimResult(resume.result()), golden);
}

TEST(Checkpoint, MissingChunkIsAClearError)
{
    CheckpointWriter cp;
    cp.chunk(chunkId("AAAA")).u32(7);
    const std::string bytes = cp.serialize();
    const CheckpointReader reader(bytes);
    EXPECT_TRUE(reader.has(chunkId("AAAA")));
    EXPECT_FALSE(reader.has(chunkId("BBBB")));
    EXPECT_THROW(reader.chunk(chunkId("BBBB")), FatalError);
}

TEST(Checkpoint, ReaderBoundsChecksChunkPayloads)
{
    CheckpointWriter cp;
    cp.chunk(chunkId("AAAA")).u32(7);
    const std::string bytes = cp.serialize();
    const CheckpointReader reader(bytes);
    StateReader r = reader.chunk(chunkId("AAAA"));
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_TRUE(r.atEnd());
    EXPECT_THROW(r.u32(), FatalError); // reads past the payload
}

TEST(Checkpoint, BranchPredictorRoundTrips)
{
    GsharePredictor a(/*table_bits=*/10);
    for (std::uint64_t pc = 0; pc < 4000; ++pc)
        a.update(pc * 37, (pc % 3) == 0);

    StateWriter w;
    a.saveState(w);

    GsharePredictor b(/*table_bits=*/10);
    StateReader r(w.bytes());
    b.loadState(r);
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(b.history(), a.history());
    EXPECT_EQ(b.lookups(), a.lookups());
    EXPECT_EQ(b.mispredicts(), a.mispredicts());
    for (std::uint64_t pc = 0; pc < 2000; ++pc)
        ASSERT_EQ(b.predict(pc * 13), a.predict(pc * 13));

    // Geometry mismatch is rejected.
    GsharePredictor wrong(/*table_bits=*/12);
    StateReader r2(w.bytes());
    EXPECT_THROW(wrong.loadState(r2), FatalError);
}

// ---- warm-state forking ----

std::vector<std::uint64_t>
warmForkHashes(int threads, const std::string& spill_dir)
{
    const std::vector<std::pair<std::string, SimConfig>> configs = {
        {"iq_base", configFor("iq_base")},
        {"iq_toggling", configFor("iq_toggling")},
    };
    const std::vector<std::string> benchmarks = {"art", "mesa"};

    experiments::WarmForkOptions warm;
    warm.warmConfig = configFor("iq_base");
    warm.warmupCycles = kSaveCycle;
    warm.spillDir = spill_dir;

    ExperimentRunner::Options options;
    options.threads = threads;
    options.baseSeed = 1;

    const std::vector<ExperimentOutcome> outcomes =
        experiments::runWarmForkSweep(configs, benchmarks,
                                      kRunCycles - kSaveCycle,
                                      warm, options);
    std::vector<std::uint64_t> hashes;
    for (const ExperimentOutcome& out : outcomes) {
        EXPECT_TRUE(out.ok) << out.tag << "/" << out.benchmark
                            << ": " << out.error;
        EXPECT_GE(out.wallSeconds, 0.0);
        hashes.push_back(hashSimResult(out.result));
    }
    return hashes;
}

TEST(WarmFork, BitIdenticalAcrossThreadCounts)
{
    const std::vector<std::uint64_t> serial =
        warmForkHashes(1, "");
    EXPECT_EQ(warmForkHashes(2, ""), serial);
    EXPECT_EQ(warmForkHashes(8, ""), serial);
}

TEST(WarmFork, SpillToDiskMatchesInMemory)
{
    const std::string dir = tempPath("tempest_warmfork_spill");
    std::filesystem::create_directories(dir);
    EXPECT_EQ(warmForkHashes(2, dir), warmForkHashes(1, ""));
    std::filesystem::remove_all(dir);
}

TEST(WarmFork, ForksShareTheWarmupSeedAndMeasureOnlyTheTail)
{
    const std::vector<std::pair<std::string, SimConfig>> configs = {
        {"iq_base", configFor("iq_base")},
        {"iq_toggling", configFor("iq_toggling")},
    };
    const std::vector<std::string> benchmarks = {"art"};

    experiments::WarmForkOptions warm;
    warm.warmConfig = configFor("iq_base");
    warm.warmupCycles = kSaveCycle;

    ExperimentRunner::Options options;
    options.threads = 1;
    options.baseSeed = 1;

    const auto outcomes = experiments::runWarmForkSweep(
        configs, benchmarks, kRunCycles - kSaveCycle, warm,
        options);
    ASSERT_EQ(outcomes.size(), 2u);
    const std::uint64_t warm_seed =
        deriveRunSeed(1, "art", "warmup");
    for (const ExperimentOutcome& out : outcomes) {
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_EQ(out.seed, warm_seed);
        // Measurement covers only the post-fork region: at least
        // the requested cycles, and strictly less than warm-up +
        // measure (cooling stalls can extend the last interval).
        EXPECT_GE(out.result.cycles, kRunCycles - kSaveCycle);
        EXPECT_LT(out.result.cycles, kRunCycles);
    }
}

} // namespace
} // namespace tempest
