/**
 * @file
 * Unit tests for the benchmark profile table.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/log.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace
{

TEST(Profile, TwentyTwoBenchmarks)
{
    EXPECT_EQ(spec2000Names().size(), 22u);
}

TEST(Profile, NamesMatchPaperSuite)
{
    // The 22 SPEC CPU2000 benchmarks the paper simulates.
    for (const char* name :
         {"applu", "apsi", "art", "bzip", "crafty", "eon",
          "facerec", "fma3d", "gcc", "gzip", "lucas", "mcf",
          "mesa", "mgrid", "parser", "perlbmk", "sixtrack",
          "swim", "twolf", "vortex", "vpr", "wupwise"}) {
        EXPECT_NO_THROW(spec2000(name)) << name;
    }
}

TEST(Profile, UnknownNameIsFatal)
{
    EXPECT_THROW(spec2000("quake"), FatalError);
}

class AllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllProfiles, MixSumsToOne)
{
    const BenchmarkProfile& p = spec2000(GetParam());
    double sum = 0;
    for (double f : p.mix)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(AllProfiles, RatesInRange)
{
    const BenchmarkProfile& p = spec2000(GetParam());
    EXPECT_GE(p.branchMispredictRate, 0.0);
    EXPECT_LE(p.branchMispredictRate, 0.2);
    EXPECT_GE(p.loadL2Frac, 0.0);
    EXPECT_GE(p.loadMemFrac, 0.0);
    EXPECT_LE(p.loadL2Frac + p.loadMemFrac, 1.0);
    EXPECT_GE(p.meanDepDist, 1.0);
    EXPECT_GE(p.nearDepFrac, 0.0);
    EXPECT_LE(p.nearDepFrac, 1.0);
    EXPECT_GE(p.burstiness, 0.0);
    EXPECT_LT(p.burstiness, 1.0);
}

TEST_P(AllProfiles, ValidatePasses)
{
    EXPECT_NO_THROW(spec2000(GetParam()).validate());
}

TEST_P(AllProfiles, UniqueSeeds)
{
    const BenchmarkProfile& p = spec2000(GetParam());
    for (const auto& other : spec2000Names()) {
        if (other != GetParam()) {
            EXPECT_NE(p.seed, spec2000(other).seed);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Spec2000, AllProfiles,
    ::testing::ValuesIn(spec2000Names()),
    [](const auto& info) { return info.param; });

TEST(Profile, MemoryBoundClassHasHighMissRates)
{
    // art and mcf are the paper's memory-bound, never-overheating
    // benchmarks; their memory-miss fraction must dominate the
    // suite.
    for (const char* cold : {"art", "mcf"}) {
        EXPECT_GE(spec2000(cold).loadMemFrac, 0.1) << cold;
    }
    for (const char* hot : {"eon", "perlbmk", "mesa"}) {
        EXPECT_LE(spec2000(hot).loadMemFrac, 0.01) << hot;
    }
}

TEST(Profile, HighIlpClassHasLongDependences)
{
    EXPECT_GT(spec2000("eon").meanDepDist,
              spec2000("mcf").meanDepDist);
    EXPECT_GT(spec2000("perlbmk").meanDepDist,
              spec2000("parser").meanDepDist);
}

TEST(Profile, FacerecIsBursty)
{
    // §4.1: facerec has high-IPC bursts that overheat regardless
    // of balancing.
    EXPECT_GE(spec2000("facerec").burstiness, 0.4);
    EXPECT_GE(spec2000("facerec").burstIlpScale, 2.0);
}

TEST(Profile, FpSuiteUsesFp)
{
    for (const char* fp :
         {"applu", "swim", "mesa", "wupwise", "art"}) {
        EXPECT_TRUE(spec2000(fp).usesFp()) << fp;
    }
    for (const char* intb : {"gcc", "eon", "perlbmk", "bzip"}) {
        EXPECT_FALSE(spec2000(intb).usesFp()) << intb;
    }
}

TEST(Profile, ValidateCatchesBadMix)
{
    BenchmarkProfile p = spec2000("eon");
    p.mix[0] += 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Profile, ValidateCatchesBadRates)
{
    BenchmarkProfile p = spec2000("eon");
    p.loadL2Frac = 0.9;
    p.loadMemFrac = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Profile, SyntheticPeakSaturates)
{
    const BenchmarkProfile& p = syntheticIntPeak();
    EXPECT_GT(p.fracOf(OpClass::IntAlu), 0.9);
    EXPECT_GE(p.meanDepDist, 32.0);
    EXPECT_NO_THROW(p.validate());
    EXPECT_NO_THROW(syntheticFpPeak().validate());
    EXPECT_NO_THROW(syntheticIdle().validate());
}

} // namespace
} // namespace tempest
