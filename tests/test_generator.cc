/**
 * @file
 * Unit and property tests for the synthetic instruction stream.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/generator.hh"

namespace tempest
{
namespace
{

TEST(Generator, Deterministic)
{
    InstructionStream a(spec2000("gcc"), 7);
    InstructionStream b(spec2000("gcc"), 7);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a.next();
        const MicroOp y = b.next();
        ASSERT_EQ(x.seq, y.seq);
        ASSERT_EQ(x.cls, y.cls);
        ASSERT_EQ(x.src[0], y.src[0]);
        ASSERT_EQ(x.src[1], y.src[1]);
        ASSERT_EQ(x.lineAddr, y.lineAddr);
        ASSERT_EQ(x.mispredicted, y.mispredicted);
    }
}

TEST(Generator, RunSeedDecorrelates)
{
    InstructionStream a(spec2000("gcc"), 1);
    InstructionStream b(spec2000("gcc"), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().cls == b.next().cls;
    EXPECT_LT(same, 600); // far from identical
}

TEST(Generator, SequenceNumbersMonotone)
{
    InstructionStream s(spec2000("eon"), 0);
    std::uint64_t prev = 0;
    for (int i = 0; i < 1000; ++i) {
        const MicroOp op = s.next();
        EXPECT_EQ(op.seq, prev + 1);
        prev = op.seq;
    }
}

TEST(Generator, ProducersPrecedeConsumersAndWriteRegisters)
{
    InstructionStream s(spec2000("vortex"), 3);
    std::map<std::uint64_t, bool> has_dest;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = s.next();
        for (int k = 0; k < op.numSrcs; ++k) {
            if (op.src[k] == 0)
                continue;
            ASSERT_LT(op.src[k], op.seq);
            auto it = has_dest.find(op.src[k]);
            if (it != has_dest.end()) {
                ASSERT_TRUE(it->second)
                    << "dependence on a non-writing instruction";
            }
        }
        has_dest[op.seq] = op.hasDest;
    }
}

TEST(Generator, ClassShapes)
{
    InstructionStream s(spec2000("swim"), 4);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = s.next();
        switch (op.cls) {
          case OpClass::Load:
            EXPECT_EQ(op.numSrcs, 1);
            EXPECT_TRUE(op.hasDest);
            EXPECT_NE(op.lineAddr, 0u);
            break;
          case OpClass::Store:
            EXPECT_EQ(op.numSrcs, 2);
            EXPECT_FALSE(op.hasDest);
            break;
          case OpClass::Branch:
            EXPECT_EQ(op.numSrcs, 1);
            EXPECT_FALSE(op.hasDest);
            break;
          default:
            EXPECT_TRUE(op.hasDest);
            EXPECT_LE(op.numSrcs, 2);
            break;
        }
    }
}

TEST(Generator, MixMatchesProfile)
{
    const BenchmarkProfile& p = spec2000("gzip");
    InstructionStream s(p, 5);
    const int n = 200000;
    int counts[static_cast<int>(OpClass::NumOpClasses)] = {};
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(s.next().cls)];
    for (int c = 0; c < static_cast<int>(OpClass::NumOpClasses);
         ++c) {
        EXPECT_NEAR(counts[c] / double(n), p.mix[c], 0.01)
            << opClassName(static_cast<OpClass>(c));
    }
}

TEST(Generator, MispredictRateMatchesProfile)
{
    const BenchmarkProfile& p = spec2000("parser");
    InstructionStream s(p, 6);
    int branches = 0, mispredicts = 0;
    for (int i = 0; i < 400000; ++i) {
        const MicroOp op = s.next();
        if (op.cls == OpClass::Branch) {
            ++branches;
            mispredicts += op.mispredicted;
        }
    }
    ASSERT_GT(branches, 1000);
    EXPECT_NEAR(mispredicts / double(branches),
                p.branchMispredictRate, 0.01);
}

TEST(Generator, AddressPoolsMatchMissFractions)
{
    // Pool membership is observable from the address ranges.
    const BenchmarkProfile& p = spec2000("art");
    InstructionStream s(p, 8);
    int mem_ops = 0, hot = 0, warm = 0, cold = 0;
    for (int i = 0; i < 400000; ++i) {
        const MicroOp op = s.next();
        if (!isMemClass(op.cls))
            continue;
        ++mem_ops;
        if (op.lineAddr >= 0x4000'0000ULL)
            ++cold;
        else if (op.lineAddr >= 0x0100'0000ULL)
            ++warm;
        else
            ++hot;
    }
    ASSERT_GT(mem_ops, 10000);
    EXPECT_NEAR(cold / double(mem_ops), p.loadMemFrac, 0.02);
    EXPECT_NEAR(warm / double(mem_ops), p.loadL2Frac, 0.02);
    EXPECT_GT(hot, 0);
}

TEST(Generator, SteadyProfileNeverBursts)
{
    InstructionStream s(spec2000("eon"), 9); // burstiness 0
    for (int i = 0; i < 50000; ++i)
        s.next();
    EXPECT_EQ(s.burstCount(), 0u);
    EXPECT_FALSE(s.inBurst());
}

TEST(Generator, BurstyProfileAlternatesPhases)
{
    BenchmarkProfile p = spec2000("facerec");
    p.phaseLenInsts = 5000.0; // shorten phases for the test
    InstructionStream s(p, 10);
    for (int i = 0; i < 200000; ++i)
        s.next();
    EXPECT_GE(s.burstCount(), 3u);
}

TEST(Generator, GeneratedCounterTracksCalls)
{
    InstructionStream s(spec2000("mcf"), 11);
    for (int i = 0; i < 123; ++i)
        s.next();
    EXPECT_EQ(s.generated(), 123u);
}

} // namespace
} // namespace tempest
