/**
 * @file
 * tempest_serve subsystem tests (DESIGN.md §13).
 *
 * Component level: the JSON codec round-trips the protocol types
 * (with 64-bit integers intact and deterministic key order), the
 * request parser enforces the protocol contract, the result cache
 * is a correct bounded LRU, the token bucket sheds exactly when
 * its virtual-time budget says so, and the warm pool builds each
 * snapshot once no matter how many threads race for it.
 *
 * Daemon level (in-process, real sockets, real simulations at
 * smoke scale): a cold run and its cached replay return the same
 * result_hash; a *fresh* daemon recomputes the same hash — the
 * cache is provably transparent; identical concurrent cold
 * requests coalesce into one simulation (single-flight); an
 * over-limit client gets an explicit retry_after; shutdown joins
 * everything and removes the socket file.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "serve/throttler.hh"
#include "serve/warm_pool.hh"

namespace tempest
{
namespace serve
{
namespace
{

// ---------------------------------------------------------------
// Json
// ---------------------------------------------------------------

TEST(ServeJson, RoundTripsScalarsAndContainers)
{
    const Json doc = Json::parse(
        R"({"b":true,"n":null,"i":-7,"d":0.5,"s":"x\n\"y\"",)"
        R"("a":[1,2,3],"o":{"k":"v"}})");
    EXPECT_TRUE(doc.find("b")->asBool());
    EXPECT_TRUE(doc.find("n")->isNull());
    EXPECT_EQ(doc.find("i")->asInt(), -7);
    EXPECT_DOUBLE_EQ(doc.find("d")->asDouble(), 0.5);
    EXPECT_EQ(doc.find("s")->asString(), "x\n\"y\"");
    EXPECT_EQ(doc.find("a")->asArray().size(), 3u);
    EXPECT_EQ(
        doc.find("o")->asObject().at("k").asString(), "v");
    // dump() -> parse() -> dump() is a fixed point.
    EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(ServeJson, PreservesLargeIntegersExactly)
{
    // Above 2^53 (a double-only number type would corrupt it)
    // but within int64, the wire integer range — full u64 values
    // (seeds, hashes) travel as hex strings, not numbers.
    const std::uint64_t big = 0x7edcba9876543210ull;
    Json v(big);
    EXPECT_EQ(v.asUnsigned(), big);
    const Json back = Json::parse(v.dump());
    EXPECT_EQ(back.asUnsigned(), big);
}

TEST(ServeJson, DumpsObjectsInSortedKeyOrder)
{
    Json obj;
    obj["zeta"] = Json(1);
    obj["alpha"] = Json(2);
    EXPECT_EQ(obj.dump(), R"({"alpha":2,"zeta":1})");
}

TEST(ServeJson, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("{} trailing"), FatalError);
    EXPECT_THROW(Json::parse("\"\\ud800\""), FatalError);
    EXPECT_THROW(Json(1.5).asInt(), FatalError);
    EXPECT_THROW(Json(std::int64_t(-1)).asUnsigned(),
                 FatalError);
}

TEST(ServeJson, DeepNestingFailsTheParseNotTheStack)
{
    // A request line full of '[' fits under kMaxLineBytes but
    // would recurse once per byte: it must produce a parse error
    // (-> per-request error reply), not a stack overflow.
    EXPECT_THROW(Json::parse(std::string(100000, '[')),
                 FatalError);
    std::string objects;
    for (int i = 0; i < 100000; ++i)
        objects += R"({"k":)";
    EXPECT_THROW(Json::parse(objects), FatalError);
    // Balanced but over-limit nesting is rejected too...
    EXPECT_THROW(Json::parse(std::string(70, '[') +
                             std::string(70, ']')),
                 FatalError);
    // ...while any sane protocol document parses fine.
    const std::string ok =
        std::string(16, '[') + std::string(16, ']');
    EXPECT_EQ(Json::parse(ok).dump(), ok);
}

TEST(ServeJson, OverRangeNumbersDoNotSilentlyClamp)
{
    // strtoll saturates at INT64_MAX with ERANGE; the parser
    // must fall through to the double representation.
    const Json big = Json::parse("99999999999999999999");
    EXPECT_DOUBLE_EQ(big.asDouble(), 1e20);
    EXPECT_THROW(big.asInt(), FatalError);
    const Json neg = Json::parse("-99999999999999999999");
    EXPECT_DOUBLE_EQ(neg.asDouble(), -1e20);
    // Beyond double range there is nothing left to fall back to.
    EXPECT_THROW(Json::parse("1e999"), FatalError);
}

TEST(ServeJson, HugeUnsignedSerializesAsNonNegative)
{
    // > INT64_MAX: a wrapped int64 would dump a negative number.
    const std::uint64_t huge = 0xffffffffffffffffull;
    const Json v(huge);
    const std::string text = v.dump();
    EXPECT_EQ(text.find('-'), std::string::npos) << text;
    EXPECT_DOUBLE_EQ(Json::parse(text).asDouble(),
                     static_cast<double>(huge));
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(ServeProtocol, ParsesRunRequest)
{
    const Request req = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":1000,)"
        R"("seed":9,"warm":false,"client":"c1",)"
        R"("config":{"dtm.toggling":"true"}})");
    EXPECT_EQ(req.op, RequestOp::Run);
    EXPECT_EQ(req.benchmark, "eon");
    EXPECT_EQ(req.cycles, 1000u);
    EXPECT_EQ(req.seed, 9u);
    EXPECT_FALSE(req.warm);
    EXPECT_EQ(req.client, "c1");
    EXPECT_TRUE(req.config.getBool("dtm.toggling", false));
    EXPECT_EQ(req.config.getInt("run.seed", 0), 9);
}

TEST(ServeProtocol, ExplicitConfigSeedWinsOverShorthand)
{
    const Request req = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":1,)"
        R"("seed":9,"config":{"run.seed":"42"}})");
    EXPECT_EQ(req.seed, 42u);
}

TEST(ServeProtocol, RejectsInvalidRequests)
{
    EXPECT_THROW(parseRequest("not json"), FatalError);
    EXPECT_THROW(parseRequest(R"({"op":"dance"})"),
                 FatalError);
    EXPECT_THROW(
        parseRequest(R"({"op":"run","cycles":10})"),
        FatalError); // no benchmark
    EXPECT_THROW(
        parseRequest(
            R"({"op":"run","benchmark":"eon","cycles":0})"),
        FatalError); // zero cycles
    EXPECT_THROW(
        parseRequest(
            R"({"op":"run","benchmark":"eon","cycles":-5})"),
        FatalError); // the tempest_run wrap bug, at the wire
}

TEST(ServeProtocol, CanonicalIdentityIsOrderInsensitive)
{
    const Request a = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":10,)"
        R"("seed":3,"config":{"dtm.toggling":"true",)"
        R"("thermal.ambient":"318.15"}})");
    const Request b = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":10,)"
        R"("config":{"thermal.ambient":"318.15",)"
        R"("run.seed":"3","dtm.toggling":"true"}})");
    EXPECT_EQ(canonicalRunIdentity(a),
              canonicalRunIdentity(b));
    // The client name is serving metadata, not identity.
    const Request c = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":10,)"
        R"("seed":3,"client":"someone-else",)"
        R"("config":{"dtm.toggling":"true",)"
        R"("thermal.ambient":"318.15"}})");
    EXPECT_EQ(canonicalRunIdentity(a),
              canonicalRunIdentity(c));
    // Cycles are identity.
    Request d = a;
    d.cycles = 11;
    EXPECT_NE(canonicalRunIdentity(a),
              canonicalRunIdentity(d));
}

TEST(ServeProtocol, EncodeRequestRoundTripsThroughParse)
{
    // encodeRequest is the C++ client half of the wire schema the
    // lint protocol-schema pass holds in lockstep with
    // parseRequest; this proves the lockstep is semantic, not just
    // syntactic: parse(encode(parse(line))) reproduces the request
    // field for field. The original goes through parseRequest so
    // it carries the normalized run.seed config entry.
    const Request req = parseRequest(
        R"({"op":"run","benchmark":"eon","cycles":123456,)"
        R"("seed":305419896,"warm":false,"client":"sweeper-7",)"
        R"("config":{"dtm.toggling":"true",)"
        R"("thermal.ambient":"318.15"}})");

    const Request back = parseRequest(encodeRequest(req));
    EXPECT_EQ(back.op, RequestOp::Run);
    EXPECT_EQ(back.client, req.client);
    EXPECT_EQ(back.benchmark, req.benchmark);
    EXPECT_EQ(back.cycles, req.cycles);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.warm, req.warm);
    EXPECT_TRUE(back.config.getBool("dtm.toggling", false));
    // The full config overlay survives verbatim.
    EXPECT_EQ(back.config.render(), req.config.render());
    // Same canonical identity: the encoded form names the same
    // deterministic simulation (and thus the same cache entry).
    EXPECT_EQ(canonicalRunIdentity(req),
              canonicalRunIdentity(back));

    // Non-run ops survive too.
    Request stats;
    stats.op = RequestOp::Stats;
    stats.client = "ops";
    const Request statsBack = parseRequest(encodeRequest(stats));
    EXPECT_EQ(statsBack.op, RequestOp::Stats);
    EXPECT_EQ(statsBack.client, "ops");
    Request ping;
    ping.op = RequestOp::Ping;
    EXPECT_EQ(parseRequest(encodeRequest(ping)).op,
              RequestOp::Ping);
    Request down;
    down.op = RequestOp::Shutdown;
    EXPECT_EQ(parseRequest(encodeRequest(down)).op,
              RequestOp::Shutdown);
}

// ---------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------

CachedResult
cached(std::uint64_t hash)
{
    CachedResult r;
    r.resultHash = hash;
    return r;
}

TEST(ServeResultCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache(2);
    cache.put("a", cached(1));
    cache.put("b", cached(2));
    ASSERT_TRUE(cache.get("a")); // refresh a; b is now LRU
    cache.put("c", cached(3));   // evicts b
    EXPECT_TRUE(cache.get("a"));
    EXPECT_FALSE(cache.get("b"));
    EXPECT_TRUE(cache.get("c"));

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(ServeResultCache, PutRefreshesExistingKey)
{
    ResultCache cache(8);
    cache.put("k", cached(1));
    cache.put("k", cached(2));
    const auto hit = cache.get("k");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->resultHash, 2u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------
// Throttler (virtual time: fully deterministic)
// ---------------------------------------------------------------

TEST(ServeThrottler, BucketShedsAfterBurstAndRefills)
{
    TokenBucket bucket(/*rate=*/1.0, /*burst=*/2.0);
    EXPECT_TRUE(bucket.acquire(0.0).admitted);
    EXPECT_TRUE(bucket.acquire(0.0).admitted);
    const AdmitDecision shed = bucket.acquire(0.0);
    EXPECT_FALSE(shed.admitted);
    EXPECT_DOUBLE_EQ(shed.retryAfter, 1.0);
    // Waiting exactly retryAfter refills exactly one token.
    EXPECT_TRUE(bucket.acquire(shed.retryAfter).admitted);
    EXPECT_FALSE(bucket.acquire(shed.retryAfter).admitted);
}

TEST(ServeThrottler, ClientsAreIndependentPrincipals)
{
    ClientThrottler throttler(/*rate=*/1.0, /*burst=*/1.0);
    EXPECT_TRUE(throttler.acquire("a", 0.0).admitted);
    EXPECT_FALSE(throttler.acquire("a", 0.0).admitted);
    EXPECT_TRUE(throttler.acquire("b", 0.0).admitted);
    EXPECT_EQ(throttler.rejected(), 1u);
}

TEST(ServeThrottler, ZeroRateAdmitsEverything)
{
    ClientThrottler throttler(0.0, 0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(throttler.acquire("a", 0.0).admitted);
    EXPECT_EQ(throttler.rejected(), 0u);
}

// ---------------------------------------------------------------
// Warm pool
// ---------------------------------------------------------------

TEST(ServeWarmPool, BuildsOnceUnderContention)
{
    WarmSnapshotPool pool;
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    std::atomic<bool> mismatch{false};
    threads.reserve(8);
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&] {
            const auto snap = pool.get("key", [&] {
                builds.fetch_add(1);
                return std::string("snapshot-bytes");
            });
            if (*snap != "snapshot-bytes")
                mismatch.store(true);
        });
    }
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1);
    EXPECT_FALSE(mismatch.load());
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.builds(), 1u);
}

TEST(ServeWarmPool, FailedBuildIsRetriable)
{
    WarmSnapshotPool pool;
    EXPECT_THROW(
        pool.get("key",
                 []() -> std::string {
                     fatal("builder exploded");
                 }),
        FatalError);
    // The failure was not cached: a later request retries.
    const auto snap =
        pool.get("key", [] { return std::string("ok"); });
    EXPECT_EQ(*snap, "ok");
    EXPECT_EQ(pool.builds(), 2u);
}

// ---------------------------------------------------------------
// Daemon end to end
// ---------------------------------------------------------------

/** Minimal blocking client: one connection, line in, line out. */
class TestClient
{
  public:
    explicit TestClient(const std::string& sock_path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            fatal("client socket: no fd");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path),
                      "%s", sock_path.c_str());
        if (::connect(fd_,
                      reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            fatal("client connect failed");
        }
    }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    /** Fire a framed line without reading a reply; false once
     * the daemon has dropped us. */
    bool sendOnly(const std::string& line)
    {
        std::string framed = line;
        framed += '\n';
        std::size_t sent = 0;
        while (sent < framed.size()) {
            const ssize_t n =
                ::send(fd_, framed.data() + sent,
                       framed.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    Json rpc(const std::string& line)
    {
        if (!sendOnly(line))
            fatal("client send failed");
        std::string reply;
        char c = 0;
        for (;;) {
            const ssize_t n = ::recv(fd_, &c, 1, 0);
            if (n <= 0)
                fatal("client recv failed");
            if (c == '\n')
                break;
            reply.push_back(c);
        }
        return Json::parse(reply);
    }

  private:
    int fd_ = -1;
};

std::string
tempSocketPath(const std::string& tag)
{
    // Short (AF_UNIX sun_path limit) and per-process unique.
    return "/tmp/tsrv_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

std::string
runLine(const std::string& extra = "")
{
    return R"({"op":"run","benchmark":"eon","cycles":200000,)"
           R"("seed":5)" +
           extra + "}";
}

TEST(ServeDaemonTest, CachedReplayAndFreshDaemonAgree)
{
    const std::string sock = tempSocketPath("replay");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 2;
    options.warmupCycles = 100'000;

    std::string cold_hash;
    std::string warm_flag_hash;
    {
        ServeDaemon daemon(options);
        daemon.start();
        TestClient client(sock);

        const Json cold = client.rpc(runLine());
        ASSERT_TRUE(cold.find("ok")->asBool())
            << cold.dump();
        EXPECT_FALSE(cold.find("cached")->asBool());
        cold_hash = cold.find("result_hash")->asString();

        const Json hot = client.rpc(runLine());
        ASSERT_TRUE(hot.find("ok")->asBool());
        EXPECT_TRUE(hot.find("cached")->asBool());
        EXPECT_EQ(hot.find("result_hash")->asString(),
                  cold_hash);

        // warm=false is a different simulation: same tuple,
        // different execution mode, so a different cache row.
        const Json cold_mode =
            client.rpc(runLine(R"(,"warm":false)"));
        ASSERT_TRUE(cold_mode.find("ok")->asBool());
        warm_flag_hash =
            cold_mode.find("result_hash")->asString();
        EXPECT_NE(warm_flag_hash, cold_hash);

        daemon.stop();
        EXPECT_FALSE(std::filesystem::exists(sock));
    }

    // A brand-new daemon (empty cache, empty warm pool) must
    // recompute bit-identical hashes for both modes.
    ServeDaemon daemon(options);
    daemon.start();
    TestClient client(sock);
    const Json again = client.rpc(runLine());
    ASSERT_TRUE(again.find("ok")->asBool());
    EXPECT_FALSE(again.find("cached")->asBool());
    EXPECT_EQ(again.find("result_hash")->asString(),
              cold_hash);
    const Json again_cold =
        client.rpc(runLine(R"(,"warm":false)"));
    EXPECT_EQ(again_cold.find("result_hash")->asString(),
              warm_flag_hash);
    daemon.stop();
}

TEST(ServeDaemonTest, ConcurrentIdenticalRequestsCoalesce)
{
    const std::string sock = tempSocketPath("flight");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 2;
    ServeDaemon daemon(options);
    daemon.start();

    constexpr int kClients = 6;
    std::vector<std::string> hashes(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            TestClient client(sock);
            const Json r = client.rpc(runLine());
            if (r.find("ok")->asBool())
                hashes[static_cast<std::size_t>(i)] =
                    r.find("result_hash")->asString();
        });
    }
    for (std::thread& t : threads)
        t.join();

    for (const std::string& h : hashes)
        EXPECT_EQ(h, hashes[0]);
    EXPECT_FALSE(hashes[0].empty());

    // Single-flight: duplicates attached as waiters, so the
    // daemon simulated strictly fewer times than it answered.
    const ServeStats stats = daemon.stats();
    EXPECT_GE(stats.jobsDone, 1u);
    EXPECT_LT(stats.jobsDone,
              static_cast<std::uint64_t>(kClients));
    daemon.stop();
}

TEST(ServeDaemonTest, OverLimitClientGetsRetryAfter)
{
    const std::string sock = tempSocketPath("rate");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 1;
    options.ratePerSecond = 0.5;
    options.rateBurst = 1;
    ServeDaemon daemon(options);
    daemon.start();
    TestClient client(sock);

    // Unique identities (cache hits bypass the throttler by
    // design), same principal, back to back.
    const Json first = client.rpc(
        R"({"op":"run","benchmark":"eon","cycles":1000,)"
        R"("seed":100,"client":"greedy"})");
    EXPECT_TRUE(first.find("ok")->asBool());
    const Json second = client.rpc(
        R"({"op":"run","benchmark":"eon","cycles":1000,)"
        R"("seed":101,"client":"greedy"})");
    ASSERT_FALSE(second.find("ok")->asBool());
    const Json* retry = second.find("retry_after");
    ASSERT_NE(retry, nullptr);
    EXPECT_GT(retry->asDouble(), 0.0);
    EXPECT_EQ(daemon.stats().rateLimited, 1u);
    daemon.stop();
}

TEST(ServeDaemonTest, StatsPingAndErrorsOverTheWire)
{
    const std::string sock = tempSocketPath("stats");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 1;
    ServeDaemon daemon(options);
    daemon.start();
    TestClient client(sock);

    EXPECT_TRUE(
        client.rpc(R"({"op":"ping"})").find("ok")->asBool());

    // Malformed line -> error reply, connection stays usable.
    const Json err = client.rpc("this is not json");
    EXPECT_FALSE(err.find("ok")->asBool());

    // Unknown benchmark -> error reply, not a dead worker.
    const Json bad = client.rpc(
        R"({"op":"run","benchmark":"nope","cycles":10})");
    EXPECT_FALSE(bad.find("ok")->asBool());

    // Oversized request -> shed up front.
    const Json huge = client.rpc(
        R"({"op":"run","benchmark":"eon",)"
        R"("cycles":999999999999})");
    EXPECT_FALSE(huge.find("ok")->asBool());

    // The id is echoed for correlation.
    const Json tagged =
        client.rpc(R"({"op":"ping","id":17})");
    ASSERT_NE(tagged.find("id"), nullptr);
    EXPECT_EQ(tagged.find("id")->asInt(), 17);

    const Json stats = client.rpc(R"({"op":"stats"})");
    EXPECT_TRUE(stats.find("ok")->asBool());
    EXPECT_EQ(stats.find("jobs_done")->asInt(), 0);
    EXPECT_GE(stats.find("jobs_failed")->asInt(), 1);
    daemon.stop();
}

TEST(ServeDaemonTest, WakeFdByteStopsTheDaemonLikeASignal)
{
    const std::string sock = tempSocketPath("sig");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 1;
    ServeDaemon daemon(options);
    daemon.start();
    // Exactly what tools/tempest_serve.cc's SIGINT/SIGTERM
    // handler does: one 'q' byte into the wake pipe. Without
    // the poll loop translating it into requestStop(), this
    // test hangs in waitStopped() forever.
    const char byte = 'q';
    ASSERT_EQ(::write(daemon.wakeFd(), &byte, 1), 1);
    daemon.waitStopped();
    daemon.stop();
    EXPECT_FALSE(std::filesystem::exists(sock));
}

TEST(ServeDaemonTest, SlowReaderCannotStallTheDaemon)
{
    const std::string sock = tempSocketPath("slow");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 1;
    ServeDaemon daemon(options);
    daemon.start();
    TestClient slow(sock);
    TestClient live(sock);

    // ~1 KiB of echoed correlation id per ping; a few thousand
    // unread replies overflow the socket buffer and then the
    // daemon's per-connection outbox cap. The daemon must shed
    // the non-reading peer, not block sending to it.
    const std::string line =
        std::string(R"({"op":"ping","id":")") +
        std::string(1024, 'x') + R"("})";
    for (int i = 0; i < 4096; ++i) {
        if (!slow.sendOnly(line))
            break; // daemon dropped us: the intended outcome
    }

    // Before the non-blocking outbox, the poll thread was stuck
    // in send() to `slow` here and this rpc would never return.
    const Json pong = live.rpc(R"({"op":"ping"})");
    EXPECT_TRUE(pong.find("ok")->asBool());
    daemon.stop();
}

TEST(ServeDaemonTest, ShutdownOpStopsTheDaemon)
{
    const std::string sock = tempSocketPath("bye");
    ServeOptions options;
    options.socketPath = sock;
    options.threads = 1;
    ServeDaemon daemon(options);
    daemon.start();
    {
        TestClient client(sock);
        EXPECT_TRUE(client.rpc(R"({"op":"shutdown"})")
                        .find("ok")
                        ->asBool());
    }
    daemon.waitStopped(); // returns because shutdown was seen
    daemon.stop();
    EXPECT_FALSE(std::filesystem::exists(sock));
}

} // namespace
} // namespace serve
} // namespace tempest
