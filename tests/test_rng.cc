/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace tempest
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(77);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange)
{
    Rng rng(7);
    int counts[5] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(5)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(8);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(11);
    const double p = 0.25;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of geometric (failures before success) is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(14);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, CategoricalFollowsCdf)
{
    Rng rng(15);
    const double cdf[3] = {0.2, 0.5, 1.0};
    int counts[3] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.categoricalFromCdf(cdf, 3)];
    EXPECT_NEAR(counts[0] / double(n), 0.2, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.5, 0.01);
}

} // namespace
} // namespace tempest
