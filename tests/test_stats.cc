/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/stats.hh"

namespace tempest
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(10.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, ApproxMean)
{
    Histogram h(0.0, 10.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.sample(3.0);
    EXPECT_NEAR(h.approxMean(), 3.0, 0.06);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 10.0, 0), FatalError);
    EXPECT_THROW(Histogram(5.0, 5.0, 4), FatalError);
    EXPECT_THROW(Histogram(5.0, 1.0, 4), FatalError);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(StatGroup, SetGetHas)
{
    StatGroup g("core");
    EXPECT_FALSE(g.has("ipc"));
    g.set("ipc", 1.5);
    EXPECT_TRUE(g.has("ipc"));
    EXPECT_DOUBLE_EQ(g.get("ipc"), 1.5);
    g.set("ipc", 2.0); // overwrite
    EXPECT_DOUBLE_EQ(g.get("ipc"), 2.0);
}

TEST(StatGroup, MissingStatIsFatal)
{
    StatGroup g("core");
    EXPECT_THROW(g.get("nope"), FatalError);
}

TEST(StatGroup, RenderSortedLines)
{
    StatGroup g("x");
    g.set("b", 2);
    g.set("a", 1);
    EXPECT_EQ(g.render(), "x.a 1\nx.b 2\n");
}

} // namespace
} // namespace tempest
