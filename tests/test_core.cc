/**
 * @file
 * Unit and behaviour tests for the out-of-order core.
 */

#include <gtest/gtest.h>

#include "uarch/core.hh"

namespace tempest
{

/** White-box access for writeback tests: stages producers in the
 * ROB/wheel directly so a single cycle can complete more results
 * than any organic schedule would. */
struct CoreTestPeer
{
    /** Mark a producer seq dispatched-but-incomplete. */
    static void
    markInFlight(OooCore& core, std::uint64_t seq)
    {
        core.markInFlight(seq);
    }

    /** Append a ROB entry; @return its ring index. */
    static int
    addRobEntry(OooCore& core, std::uint64_t seq)
    {
        int idx = core.robHead_ + core.robCount_;
        if (idx >= core.config_.activeListEntries)
            idx -= core.config_.activeListEntries;
        core.robSeq_[static_cast<std::size_t>(idx)] = seq;
        const std::uint64_t bit = 1ULL << (idx & 63);
        core.robCompleted_[idx >> 6] &= ~bit;
        core.robIsMem_[idx >> 6] &= ~bit;
        ++core.robCount_;
        return idx;
    }

    static void
    scheduleCompletion(OooCore& core, std::uint64_t seq,
                       int rob_idx, int latency)
    {
        core.schedule({seq, rob_idx, /*hasDest=*/true,
                       /*fpDest=*/false,
                       /*mispredictedBranch=*/false},
                      latency);
    }

    static void
    advanceCycle(OooCore& core)
    {
        ++core.cycle_;
    }

    static void
    writeback(OooCore& core, ActivityRecord& activity)
    {
        core.doWriteback(activity);
    }
};

namespace
{

ActivityRecord
runCycles(OooCore& core, int n)
{
    ActivityRecord act;
    for (int i = 0; i < n; ++i)
        core.tick(act);
    return act;
}

TEST(Core, MakesForwardProgress)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("gzip"), 1);
    runCycles(core, 100000);
    EXPECT_GT(core.committed(), 50000u);
    EXPECT_GT(core.ipc(), 0.3);
    EXPECT_LT(core.ipc(), 6.0);
}

TEST(Core, Deterministic)
{
    PipelineConfig cfg;
    OooCore a(cfg, spec2000("eon"), 9);
    OooCore b(cfg, spec2000("eon"), 9);
    const ActivityRecord ra = runCycles(a, 50000);
    const ActivityRecord rb = runCycles(b, 50000);
    EXPECT_EQ(a.committed(), b.committed());
    EXPECT_EQ(ra.intAluOps[0], rb.intAluOps[0]);
    EXPECT_EQ(ra.iqEntryMoves[0][1], rb.iqEntryMoves[0][1]);
    EXPECT_EQ(ra.l1dAccesses, rb.l1dAccesses);
}

TEST(Core, PeakWorkloadApproachesFullWidth)
{
    PipelineConfig cfg;
    OooCore core(cfg, syntheticIntPeak(), 2);
    // Warm up past the compulsory misses of the hot pool (each
    // blocks the ROB head for ~memCycles), then measure steady
    // state.
    runCycles(core, 400000);
    const ActivityRecord act = runCycles(core, 100000);
    const double steady_ipc =
        static_cast<double>(act.instructions) /
        static_cast<double>(act.cycles);
    EXPECT_GT(steady_ipc, 5.0); // 6-wide machine, no hazards
}

TEST(Core, MemoryBoundWorkloadIsSlow)
{
    PipelineConfig cfg;
    OooCore hot(cfg, spec2000("eon"), 3);
    OooCore cold(cfg, spec2000("mcf"), 3);
    runCycles(hot, 200000);
    runCycles(cold, 200000);
    EXPECT_GT(hot.ipc(), 3.0 * cold.ipc());
}

TEST(Core, StaticPrioritySkewsAluUtilization)
{
    // §2.2: ALU0 executes far more operations than ALU5.
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("parser"), 4);
    const ActivityRecord act = runCycles(core, 300000);
    EXPECT_GT(act.intAluOps[0], 3 * act.intAluOps[5]);
}

TEST(Core, RoundRobinEvensAluUtilization)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("parser"), 4);
    core.setRoundRobin(true);
    const ActivityRecord act = runCycles(core, 300000);
    ASSERT_GT(act.intAluOps[5], 0u);
    const double ratio =
        static_cast<double>(act.intAluOps[0]) /
        static_cast<double>(act.intAluOps[5]);
    EXPECT_LT(ratio, 1.6);
    EXPECT_GT(ratio, 0.6);
}

TEST(Core, TurnedOffAluReceivesNoWork)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("gzip"), 5);
    core.alus().setIntAluOff(0, TurnoffReason::UnitThermal, true);
    const ActivityRecord act = runCycles(core, 100000);
    EXPECT_EQ(act.intAluOps[0], 0u);
    EXPECT_GT(act.intAluOps[1], 0u);
    EXPECT_GT(core.ipc(), 0.5); // others pick up the slack
}

TEST(Core, AllAlusOffStopsIntegerIssueButNotDeadlocksTest)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("gzip"), 6);
    for (int i = 0; i < cfg.numIntAlus; ++i)
        core.alus().setIntAluOff(i, TurnoffReason::UnitThermal,
                                 true);
    const ActivityRecord act = runCycles(core, 20000);
    std::uint64_t total = 0;
    for (int i = 0; i < cfg.numIntAlus; ++i)
        total += act.intAluOps[i];
    EXPECT_EQ(total, 0u);
    EXPECT_LT(core.committed(), 200u); // a few pre-stall commits
}

TEST(Core, RegfileReadsFollowMapping)
{
    PipelineConfig cfg;
    OooCore pri(cfg, spec2000("gzip"), 7);
    pri.intRegfile().setMapping(PortMapping::Priority);
    const ActivityRecord a = runCycles(pri, 200000);
    // Priority mapping concentrates reads in copy 0.
    EXPECT_GT(a.intRegReads[0], 2 * a.intRegReads[1]);

    OooCore bal(cfg, spec2000("gzip"), 7);
    bal.intRegfile().setMapping(PortMapping::Balanced);
    const ActivityRecord b = runCycles(bal, 200000);
    const double ratio = static_cast<double>(b.intRegReads[0]) /
                         static_cast<double>(b.intRegReads[1]);
    EXPECT_LT(ratio, 1.8);
}

TEST(Core, WritesGoToBothCopies)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("gzip"), 8);
    const ActivityRecord act = runCycles(core, 100000);
    EXPECT_EQ(act.intRegWrites[0], act.intRegWrites[1]);
    EXPECT_GT(act.intRegWrites[0], 0u);
}

TEST(Core, FpWorkloadUsesFpResources)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("swim"), 9);
    const ActivityRecord act = runCycles(core, 200000);
    std::uint64_t fp_ops = act.fpMulOps;
    for (int i = 0; i < cfg.numFpAdders; ++i)
        fp_ops += act.fpAddOps[i];
    EXPECT_GT(fp_ops, 10000u);
    EXPECT_GT(act.fpRegReads, 0u);
    EXPECT_GT(act.fpRegWrites, 0u);
}

TEST(Core, IntWorkloadLeavesFpIdle)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("bzip"), 10);
    const ActivityRecord act = runCycles(core, 100000);
    std::uint64_t fp_ops = act.fpMulOps;
    for (int i = 0; i < cfg.numFpAdders; ++i)
        fp_ops += act.fpAddOps[i];
    EXPECT_EQ(fp_ops, 0u);
}

TEST(Core, StallCyclesFreezeEverything)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("gzip"), 11);
    runCycles(core, 10000);
    const std::uint64_t committed = core.committed();
    ActivityRecord act;
    core.stallCycles(5000, act);
    EXPECT_EQ(core.committed(), committed);
    EXPECT_EQ(act.stallCycles, 5000u);
    EXPECT_EQ(act.cycles, 5000u);
    EXPECT_EQ(core.cycle(), 15000u);
    // Execution resumes cleanly after a stall.
    runCycles(core, 10000);
    EXPECT_GT(core.committed(), committed);
}

TEST(Core, MemPortLimitRespected)
{
    // With one L1D port, memory throughput halves relative to two.
    PipelineConfig one;
    one.l1dPorts = 1;
    PipelineConfig two;
    OooCore c1(one, spec2000("mcf"), 12);
    OooCore c2(two, spec2000("mcf"), 12);
    runCycles(c1, 200000);
    runCycles(c2, 200000);
    EXPECT_LE(c1.committed(), c2.committed());
}

TEST(Core, ActivityConservation)
{
    // Committed instructions match the activity record, and issue
    // events are bounded by commit events plus in-flight work.
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("vortex"), 13);
    const ActivityRecord act = runCycles(core, 100000);
    EXPECT_EQ(act.instructions, core.committed());
    std::uint64_t issued = act.fpMulOps;
    for (int i = 0; i < cfg.numIntAlus; ++i)
        issued += act.intAluOps[i];
    for (int i = 0; i < cfg.numFpAdders; ++i)
        issued += act.fpAddOps[i];
    EXPECT_GE(issued, core.committed());
    EXPECT_LE(issued, core.committed() +
                          static_cast<std::uint64_t>(
                              cfg.activeListEntries));
}

TEST(Core, WritebackWakesBeyondSixtyFourSameCycleCompletions)
{
    // Regression: writeback used to collect completing result tags
    // into a fixed 64-slot list before broadcasting. With more than
    // 64 destinations completing in one cycle the overflow tags
    // were silently dropped, so their dependents slept in the issue
    // queues forever (deadlock). The scoreboard wakeup has no cap.
    PipelineConfig cfg;
    cfg.issueWidth = 16; // completion-wheel slot bound >= 80
    cfg.intIqEntries = 128;
    OooCore core(cfg, spec2000("gzip"), 1);
    ActivityRecord act;

    constexpr int kProducers = 80; // > the old 64-tag cap
    IssueQueue& iq = core.intQueue();
    for (int i = 0; i < kProducers; ++i) {
        const std::uint64_t producer_seq =
            static_cast<std::uint64_t>(i + 1);
        const int rob_idx =
            CoreTestPeer::addRobEntry(core, producer_seq);
        CoreTestPeer::markInFlight(core, producer_seq);

        IqEntry waiter;
        waiter.seq = static_cast<std::uint64_t>(1000 + i);
        waiter.cls = OpClass::IntAlu;
        waiter.numSrcs = 1;
        waiter.src[0] = producer_seq;
        waiter.srcReady[0] = false;
        ASSERT_TRUE(iq.canDispatch());
        iq.dispatch(waiter, act);

        CoreTestPeer::scheduleCompletion(core, producer_seq,
                                         rob_idx, 1);
    }
    ASSERT_EQ(iq.waitingCount(), kProducers);

    CoreTestPeer::advanceCycle(core);
    CoreTestPeer::writeback(core, act);

    for (int p = 0; p < kProducers; ++p)
        EXPECT_TRUE(iq.entryAtPhys(p).ready()) << "entry " << p;
    EXPECT_EQ(iq.waitingCount(), 0);
    // One tag-broadcast charge per completing destination.
    EXPECT_EQ(act.iqTagBroadcasts[0],
              static_cast<std::uint64_t>(kProducers));
}

TEST(Core, RobAndLsqBounded)
{
    PipelineConfig cfg;
    OooCore core(cfg, spec2000("mcf"), 14);
    ActivityRecord act;
    for (int i = 0; i < 50000; ++i) {
        core.tick(act);
        ASSERT_LE(core.robCount(), cfg.activeListEntries);
        ASSERT_LE(core.lsqCount(), cfg.lsqEntries);
        ASSERT_GE(core.robCount(), 0);
        ASSERT_GE(core.lsqCount(), 0);
    }
}

} // namespace
} // namespace tempest
