/**
 * @file
 * Integration tests asserting the paper's qualitative results
 * (the orderings of §4) on shortened runs.
 *
 * These use reduced cycle counts to stay fast; the bench binaries
 * regenerate the full tables and figures.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace tempest
{
namespace
{

using namespace experiments;

constexpr std::uint64_t kCycles = 12'000'000;

TEST(Calibration, ConstrainedFloorplansPinTheirResource)
{
    // §3.2's criterion: under a hot workload, the constrained
    // resource is the hottest backend block of its floorplan.
    {
        Simulator sim(iqBase(), spec2000("eon"));
        const SimResult r = sim.run(6'000'000);
        EXPECT_GT(r.block("IntQ1").max, r.block("IntExec0").max);
        EXPECT_GT(r.block("IntQ1").max, r.block("IntReg0").max);
    }
    {
        Simulator sim(aluBase(), spec2000("eon"));
        const SimResult r = sim.run(6'000'000);
        EXPECT_GT(r.block("IntExec0").max, r.block("IntQ1").max);
        EXPECT_GT(r.block("IntExec0").max, r.block("IntReg0").max);
    }
    {
        Simulator sim(
            regfileConfig(PortMapping::Priority, false),
            spec2000("eon"));
        const SimResult r = sim.run(6'000'000);
        EXPECT_GT(r.block("IntReg0").max, r.block("IntQ1").max);
        EXPECT_GT(r.block("IntReg0").max,
                  r.block("IntExec0").max);
    }
}

TEST(IssueQueueExperiment, TailRunsHotterThanHeadInBase)
{
    // Table 4's base rows: the tail half leads the head half.
    Simulator sim(iqBase(), spec2000("eon"));
    const SimResult r = sim.run(kCycles);
    EXPECT_GT(r.block("IntQ1").avg, r.block("IntQ0").avg + 0.3);
}

TEST(IssueQueueExperiment, TogglingEqualizesHalves)
{
    // Table 4's activity-toggling rows: halves equalize.
    SimResult base = runBenchmark(iqBase(), "eon", kCycles);
    SimResult tog = runBenchmark(iqToggling(), "eon", kCycles);
    const double base_gap =
        base.block("IntQ1").avg - base.block("IntQ0").avg;
    const double tog_gap =
        tog.block("IntQ1").avg - tog.block("IntQ0").avg;
    EXPECT_LT(std::abs(tog_gap), std::abs(base_gap));
    EXPECT_GT(tog.dtm.iqToggles, 0u);
}

TEST(IssueQueueExperiment, TogglingNeverHurtsAndHelpsConstrained)
{
    for (const char* b : {"eon", "perlbmk"}) {
        SimResult base = runBenchmark(iqBase(), b, kCycles);
        SimResult tog = runBenchmark(iqToggling(), b, kCycles);
        EXPECT_GE(tog.ipc, base.ipc * 0.995) << b;
        EXPECT_LE(tog.stallCycles,
                  base.stallCycles + kCycles / 100)
            << b;
    }
    // Unconstrained benchmarks are untouched.
    SimResult base = runBenchmark(iqBase(), "art", kCycles / 3);
    SimResult tog =
        runBenchmark(iqToggling(), "art", kCycles / 3);
    EXPECT_DOUBLE_EQ(base.ipc, tog.ipc);
}

TEST(AluExperiment, FineGrainTurnoffBeatsBase)
{
    // §4.2: large speedups on ALU-constrained benchmarks.
    SimResult base = runBenchmark(aluBase(), "perlbmk", kCycles);
    SimResult fg =
        runBenchmark(aluFineGrain(), "perlbmk", kCycles);
    EXPECT_GT(fg.ipc, base.ipc * 1.10);
    EXPECT_LT(fg.stallCycles, base.stallCycles);
    EXPECT_GT(fg.dtm.aluTurnoffEvents, 0u);
}

TEST(AluExperiment, RoundRobinIsCloseToFineGrain)
{
    // Figure 7: fine-grain turnoff approaches ideal round-robin.
    SimResult fg =
        runBenchmark(aluFineGrain(), "perlbmk", kCycles);
    SimResult rr =
        runBenchmark(aluRoundRobin(), "perlbmk", kCycles);
    EXPECT_NEAR(fg.ipc, rr.ipc, 0.15 * rr.ipc);
}

TEST(AluExperiment, UnconstrainedBenchmarkUnaffected)
{
    // Table 5's parser row: no overheating, no turnoffs, same IPC.
    SimResult base = runBenchmark(aluBase(), "parser", kCycles / 2);
    SimResult fg =
        runBenchmark(aluFineGrain(), "parser", kCycles / 2);
    EXPECT_DOUBLE_EQ(base.ipc, fg.ipc);
    EXPECT_EQ(fg.dtm.aluTurnoffEvents, 0u);
}

TEST(AluExperiment, BaseAluTemperatureGradient)
{
    // Table 5: ALU0 runs several K hotter than ALU5 under static
    // priority even without overheating (parser).
    Simulator sim(aluBase(), spec2000("parser"));
    const SimResult r = sim.run(kCycles / 2);
    EXPECT_GT(r.block("IntExec0").avg,
              r.block("IntExec5").avg + 2.0);
}

TEST(RegfileExperiment, PaperOrderingHolds)
{
    // §4.3 / Figure 8 on eon: priority+turnoff >= balanced+turnoff
    // >= balanced-only >= priority-only.
    const std::uint64_t cyc = kCycles;
    SimResult po = runBenchmark(
        regfileConfig(PortMapping::Priority, false), "eon", cyc);
    SimResult bo = runBenchmark(
        regfileConfig(PortMapping::Balanced, false), "eon", cyc);
    SimResult bf = runBenchmark(
        regfileConfig(PortMapping::Balanced, true), "eon", cyc);
    SimResult pf = runBenchmark(
        regfileConfig(PortMapping::Priority, true), "eon", cyc);
    EXPECT_GE(pf.ipc, bf.ipc * 0.99);
    // Stop-go quantization adds a few percent of noise at this
    // run length; the full-length bench shows the strict order.
    EXPECT_GE(bf.ipc, bo.ipc * 0.96);
    EXPECT_GE(bo.ipc, po.ipc * 0.99);
    // And the combination is a strict improvement over the
    // unmanaged priority mapping. The margin is small at this
    // run length: cooling stalls are quantized to 1.68M-cycle
    // events, so whether the last one lands inside the 12M-cycle
    // window moves IPC by ~14%; the full-length bench shows the
    // >5% gap.
    EXPECT_GT(pf.ipc, po.ipc * 1.01);
}

TEST(RegfileExperiment, PriorityMappingConcentratesHeat)
{
    // Table 6: under priority mapping copy 0 leads copy 1; under
    // balanced mapping the copies are close.
    SimResult po = runBenchmark(
        regfileConfig(PortMapping::Priority, false), "eon",
        kCycles / 2);
    SimResult bo = runBenchmark(
        regfileConfig(PortMapping::Balanced, false), "eon",
        kCycles / 2);
    const double po_gap =
        po.block("IntReg0").avg - po.block("IntReg1").avg;
    const double bo_gap =
        bo.block("IntReg0").avg - bo.block("IntReg1").avg;
    EXPECT_GT(po_gap, 0.5);
    EXPECT_LT(std::abs(bo_gap), po_gap);
}

TEST(RegfileExperiment, TurnoffEventsCountedUnderPressure)
{
    SimResult pf = runBenchmark(
        regfileConfig(PortMapping::Priority, true), "eon",
        kCycles);
    EXPECT_GT(pf.dtm.regfileTurnoffEvents, 0u);
}

} // namespace
} // namespace tempest
