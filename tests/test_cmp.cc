/**
 * @file
 * CMP-layer tests: the N=1 bit-identity anchor against the
 * single-core Simulator, 2-core golden hashes (stable across
 * Debug/Release and runner thread counts), cross-core migration
 * mechanics, mid-flight checkpoint round-trips, and the stacked
 * DRAM (3D) heating path.
 *
 * The N=1 test is the load-bearing one: CmpSimulator reimplements
 * the closed simulation loop over a shared thermal network, and
 * proving a 1-core CMP hashes identically to the single-core
 * engine pins every floating-point operation — floorplan assembly,
 * RC edge order, sensor RNG draws, stall chunking — to the
 * existing goldens without re-deriving them.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/cmp/cmp_simulator.hh"
#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace
{

using experiments::hashSimResult;

constexpr std::uint64_t kCycles = 200'000;

CmpSimConfig
cmpConfigFor(int cores, std::vector<std::string> benchmarks)
{
    CmpSimConfig cmp;
    cmp.base = experiments::iqBase();
    cmp.cores = cores;
    cmp.benchmarks = std::move(benchmarks);
    return cmp;
}

/** Aggressive migration knobs so short runs migrate. */
CmpMigrationConfig
eagerMigration()
{
    CmpMigrationConfig mig;
    mig.enabled = true;
    mig.marginK = 400.0; // any tile counts as hot
    mig.minGapK = 0.0;   // any strictly cooler tile accepts
    mig.cooldownIntervals = 2;
    mig.baseStallCycles = 10'000;
    mig.busBytesPerCycle = 64;
    return mig;
}

TEST(Cmp, SingleCoreMatchesSimulatorBitExactly)
{
    for (const char* benchmark : {"art", "mesa"}) {
        Simulator single(experiments::iqBase(),
                         spec2000(benchmark));
        const SimResult expect = single.run(kCycles);

        CmpSimulator cmp(cmpConfigFor(1, {benchmark}));
        const CmpResult got = cmp.run(kCycles);

        ASSERT_EQ(got.cores.size(), 1u);
        EXPECT_TRUE(got.shared.empty());
        EXPECT_EQ(hashSimResult(got.cores[0]),
                  hashSimResult(expect))
            << benchmark
            << ": 1-core CMP diverged from the single-core engine";
        EXPECT_EQ(got.cycles, expect.cycles);
    }
}

/** The N=1 floorplan must literally be the single-core one: same
 * blocks, same names, no L2 strip, no prefixes. */
TEST(Cmp, SingleCoreFloorplanIsUnchanged)
{
    CmpSimulator cmp(cmpConfigFor(1, {"eon"}));
    const Floorplan single =
        Floorplan::ev6Like(FloorplanVariant::IqConstrained);
    ASSERT_EQ(cmp.floorplan().numBlocks(), single.numBlocks());
    for (int b = 0; b < single.numBlocks(); ++b) {
        EXPECT_EQ(cmp.floorplan().block(b).name,
                  single.block(b).name);
    }
}

struct CmpGoldenCase
{
    const char* name;
    int cores;
    std::vector<std::string> benchmarks;
    bool migration;
    bool dram;
    std::uint64_t hash;
};

/**
 * Checked-in CMP goldens (TEMPEST_PRINT_GOLDENS=1 re-derives).
 * Cover the 2-core migration sweep and the stacked-DRAM scenario;
 * ci.yml's cmp-smoke job runs this under Debug, Release, and TSan.
 */
const std::vector<CmpGoldenCase>&
cmpGoldens()
{
    static const std::vector<CmpGoldenCase> cases = {
        {"dual_art_mesa", 2, {"art", "mesa"}, false, false,
         0xed82730c0504e414ULL},
        {"dual_art_mesa_migration", 2, {"art", "mesa"}, true,
         false, 0xc48c84254526ce41ULL},
        {"dual_art_dram", 2, {"art", "art"}, false, true,
         0xba5e7c66254d07cbULL},
    };
    return cases;
}

CmpJob
jobFor(const CmpGoldenCase& c)
{
    CmpJob job;
    job.tag = c.name;
    job.config = cmpConfigFor(c.cores, c.benchmarks);
    if (c.migration)
        job.config.migration = eagerMigration();
    job.config.stack.dram = c.dram;
    job.cycles = kCycles;
    return job;
}

TEST(Cmp, GoldenBitIdentity)
{
    const bool print =
        std::getenv("TEMPEST_PRINT_GOLDENS") != nullptr;
    for (const CmpGoldenCase& c : cmpGoldens()) {
        CmpSimulator sim(jobFor(c).config);
        const std::uint64_t got = hashCmpResult(sim.run(kCycles));
        if (print) {
            std::printf("    {\"%s\", ..., 0x%016llxULL},\n",
                        c.name,
                        static_cast<unsigned long long>(got));
            continue;
        }
        EXPECT_EQ(got, c.hash)
            << c.name << ": CmpResult changed (got 0x" << std::hex
            << got << ", golden 0x" << c.hash << std::dec
            << "). If the semantic change is intended, re-derive "
               "with TEMPEST_PRINT_GOLDENS=1 and document it.";
    }
}

/** Job outcomes must not depend on the worker thread count. */
TEST(Cmp, RunCmpJobsIsThreadCountInvariant)
{
    std::vector<CmpJob> jobs;
    for (const CmpGoldenCase& c : cmpGoldens())
        jobs.push_back(jobFor(c));

    const std::vector<CmpJobOutcome> t1 = runCmpJobs(jobs, 1);
    const std::vector<CmpJobOutcome> t2 = runCmpJobs(jobs, 2);
    const std::vector<CmpJobOutcome> t8 = runCmpJobs(jobs, 8);
    ASSERT_EQ(t1.size(), jobs.size());
    ASSERT_EQ(t2.size(), jobs.size());
    ASSERT_EQ(t8.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(t1[i].tag, jobs[i].tag);
        EXPECT_EQ(t1[i].hash, t2[i].hash) << jobs[i].tag;
        EXPECT_EQ(t1[i].hash, t8[i].hash) << jobs[i].tag;
    }
}

TEST(Cmp, MigrationFiresAndPricesTransfer)
{
    CmpSimConfig config = cmpConfigFor(2, {"art", "mesa"});
    config.migration = eagerMigration();
    CmpSimulator sim(config);
    const CmpResult r = sim.run(kCycles);

    ASSERT_GE(r.migration.migrations, 1u);
    EXPECT_GT(r.migration.bytesMoved, 0u);
    // Stall = 2 * (base + bytes/bandwidth) per swap, so the charge
    // must exceed the base cost alone on both endpoints.
    EXPECT_GE(r.migration.migrationStallCycles,
              r.migration.migrations * 2 *
                  config.migration.baseStallCycles);
    // Migration stalls are served as real clock-gated cycles.
    std::uint64_t stall_cycles = 0;
    for (const SimResult& c : r.cores)
        stall_cycles += c.stallCycles;
    EXPECT_GT(stall_cycles, 0u);
    // The placement stays a permutation.
    ASSERT_EQ(r.tileOfJob.size(), 2u);
    EXPECT_NE(r.tileOfJob[0], r.tileOfJob[1]);
}

TEST(Cmp, MigrationDisabledNeverMigrates)
{
    CmpSimConfig config = cmpConfigFor(2, {"art", "mesa"});
    CmpSimulator sim(config);
    const CmpResult r = sim.run(kCycles);
    EXPECT_EQ(r.migration.migrations, 0u);
    EXPECT_EQ(r.tileOfJob[0], 0);
    EXPECT_EQ(r.tileOfJob[1], 1);
}

/**
 * Checkpoint taken immediately after a migration fired — both
 * endpoints still owe transfer-stall cycles — must restore
 * bit-identically and replay to the same end-of-run hash.
 */
TEST(Cmp, CheckpointRoundTripsMidFlightMigration)
{
    CmpSimConfig config = cmpConfigFor(2, {"art", "mesa"});
    config.migration = eagerMigration();

    CmpSimulator sim(config);
    bool migrated = false;
    for (int i = 0; i < 200 && !migrated; ++i) {
        sim.stepOnce();
        migrated = sim.migrationStats().migrations >= 1;
    }
    ASSERT_TRUE(migrated)
        << "eager migration never fired within 200 steps";

    const std::string ckpt = sim.saveCheckpoint();
    const std::uint64_t end = sim.cycle() + kCycles;

    sim.runTo(end);
    const std::uint64_t direct = hashCmpResult(sim.result());

    CmpSimulator resumed(config);
    resumed.restoreCheckpoint(ckpt);
    resumed.runTo(end);
    EXPECT_EQ(hashCmpResult(resumed.result()), direct)
        << "mid-flight migration state did not round-trip";
}

/** Piecewise runTo (the checkpoint loop's shape) must replay the
 * same step sequence as one monolithic call. */
TEST(Cmp, PiecewiseRunToMatchesMonolithic)
{
    CmpSimConfig config = cmpConfigFor(2, {"art", "mesa"});
    config.migration = eagerMigration();

    CmpSimulator mono(config);
    mono.runTo(kCycles);
    const std::uint64_t expect = hashCmpResult(mono.result());

    CmpSimulator piecewise(config);
    piecewise.runTo(kCycles / 4);
    piecewise.runTo(kCycles / 2);
    piecewise.runTo(kCycles);
    EXPECT_EQ(hashCmpResult(piecewise.result()), expect);
}

TEST(Cmp, StackedDramHeatsTheCoreBeneath)
{
    // Lift the DTM threshold out of the way so the comparison sees
    // pure thermal coupling, not stop-go clamping.
    CmpSimConfig cool = cmpConfigFor(1, {"art"});
    cool.base.dtm.maxTemperature = 1000.0;

    CmpSimConfig stacked = cool;
    stacked.stack.dram = true;

    CmpSimulator without(cool);
    const CmpResult base = without.run(kCycles);
    CmpSimulator with(stacked);
    const CmpResult dram = with.run(kCycles);

    ASSERT_EQ(dram.shared.size(), 1u);
    EXPECT_EQ(dram.shared[0].name, "DRAM0");
    EXPECT_GT(dram.shared[0].max, cool.base.thermal.ambient);

    // Every core block sits under the bank; the hottest one must
    // run measurably hotter with the stacked die present.
    Kelvin base_peak = 0.0;
    Kelvin dram_peak = 0.0;
    for (int b = 0; b < 26; ++b) {
        base_peak = std::max(base_peak, base.cores[0].blocks
                                            [static_cast<std::size_t>(
                                                b)].max);
        dram_peak = std::max(dram_peak, dram.cores[0].blocks
                                            [static_cast<std::size_t>(
                                                b)].max);
    }
    EXPECT_GT(dram_peak, base_peak + 0.1);
}

/**
 * Memory-bound workloads on a 3D stack must engage the DTM. The
 * scenario uses a tightened thermal envelope (stacking a die over
 * the cores raises the package resistance, so 3D parts trip DTM at
 * a lower sensor reading): under it, flat art stays clear of the
 * threshold and stacked art — its Dcache sitting beneath a busy
 * DRAM bank — crosses it and draws cooling stalls.
 */
TEST(Cmp, StackedDramTriggersDtmOnMemoryBoundWorkloads)
{
    CmpSimConfig flat = cmpConfigFor(1, {"art"});
    flat.base.dtm.maxTemperature = 335.5; // 3D envelope
    CmpSimConfig stacked = flat;
    stacked.stack.dram = true;

    CmpSimulator flat_sim(flat);
    const CmpResult flat_r = flat_sim.run(kCycles);
    CmpSimulator stacked_sim(stacked);
    const CmpResult stacked_r = stacked_sim.run(kCycles);

    EXPECT_EQ(flat_r.cores[0].dtm.globalStalls, 0u)
        << "flat art should stay under the 3D envelope";
    EXPECT_GT(stacked_r.cores[0].dtm.globalStalls, 0u)
        << "stacked DRAM heat should push art over the envelope";
}

} // namespace
} // namespace tempest
