/**
 * @file
 * Unit tests for the gshare branch predictor.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "uarch/bpred.hh"

namespace tempest
{
namespace
{

TEST(Gshare, RejectsBadTableBits)
{
    EXPECT_THROW(GsharePredictor(1), FatalError);
    EXPECT_THROW(GsharePredictor(25), FatalError);
}

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor p(10);
    for (int i = 0; i < 1000; ++i)
        p.update(0x400100, true);
    p.resetStats();
    for (int i = 0; i < 1000; ++i)
        p.update(0x400100, true);
    EXPECT_EQ(p.mispredicts(), 0u);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    // A strict T/N/T/N pattern is perfectly predictable with
    // global history.
    GsharePredictor p(12);
    bool taken = false;
    for (int i = 0; i < 4000; ++i) {
        p.update(0x400200, taken);
        taken = !taken;
    }
    p.resetStats();
    for (int i = 0; i < 2000; ++i) {
        p.update(0x400200, taken);
        taken = !taken;
    }
    EXPECT_LT(p.mispredictRate(), 0.01);
}

TEST(Gshare, RandomBranchesHoverAtHalf)
{
    GsharePredictor p(12);
    Rng rng(4);
    for (int i = 0; i < 20000; ++i)
        p.update(0x400300 + (rng.next() & 0xff0), rng.chance(0.5));
    EXPECT_NEAR(p.mispredictRate(), 0.5, 0.05);
}

TEST(Gshare, BiasedBranchesBeatTheBias)
{
    GsharePredictor p(12);
    Rng rng(5);
    for (int i = 0; i < 40000; ++i)
        p.update(0x400400, rng.chance(0.9));
    EXPECT_LT(p.mispredictRate(), 0.2);
}

TEST(Gshare, HistorySpeculationAndRecovery)
{
    GsharePredictor p(10);
    const std::uint64_t saved = p.history();
    p.speculate(true);
    p.speculate(false);
    EXPECT_NE(p.history(), saved);
    p.restoreHistory(saved);
    EXPECT_EQ(p.history(), saved);
}

TEST(Gshare, StatsCountLookups)
{
    GsharePredictor p(10);
    for (int i = 0; i < 10; ++i)
        p.update(4 * i, true);
    EXPECT_EQ(p.lookups(), 10u);
    p.resetStats();
    EXPECT_EQ(p.lookups(), 0u);
}

} // namespace
} // namespace tempest
