/**
 * @file
 * Drift guard for the dotted-key config vocabulary now that three
 * consumers share it (tempest_run, tempest_serve, and the sweep
 * fabric): every key simConfigFromConfig() accepts must survive
 * render -> parse -> render unchanged, the defaults must keep
 * reproducing the experiment preset builders bit-for-bit, and
 * range validation must stay fatal.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/sim_config_io.hh"

namespace tempest
{
namespace
{

/** Every documented (key, non-default sample value) pair the
 * translation accepts. New keys join this list or the round-trip
 * coverage check below fails the build. */
std::vector<std::pair<std::string, std::string>>
allKeys()
{
    return {
        {"floorplan.variant", "regfile"},
        {"thermal.time_scale", "0.125"},
        {"thermal.ambient", "308.15"},
        {"thermal.convection", "0.6"},
        {"thermal.solver", "euler"},
        {"sim.sample_interval", "12500"},
        {"sim.warm_start", "false"},
        {"run.seed", "12345"},
        {"dtm.max_temperature", "370.5"},
        {"dtm.toggling", "true"},
        {"dtm.toggle_delta", "2.5"},
        {"dtm.alu_turnoff", "true"},
        {"dtm.regfile_turnoff", "true"},
        {"dtm.round_robin", "true"},
        {"dtm.fetch_throttling", "true"},
        {"dtm.cooling_time", "0.002"},
        {"dtm.mapping", "completely-balanced"},
    };
}

/** Field-by-field SimConfig comparison (no operator==). */
void
expectSameConfig(const SimConfig& a, const SimConfig& b)
{
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.thermal.timeScale, b.thermal.timeScale);
    EXPECT_EQ(a.thermal.ambient, b.thermal.ambient);
    EXPECT_EQ(a.thermal.rConvection, b.thermal.rConvection);
    EXPECT_EQ(a.thermal.maxTemperature, b.thermal.maxTemperature);
    EXPECT_EQ(a.thermal.solver, b.thermal.solver);
    EXPECT_EQ(a.sampleIntervalCycles, b.sampleIntervalCycles);
    EXPECT_EQ(a.warmStart, b.warmStart);
    EXPECT_EQ(a.dtm.maxTemperature, b.dtm.maxTemperature);
    EXPECT_EQ(a.dtm.iqToggling, b.dtm.iqToggling);
    EXPECT_EQ(a.dtm.toggleDeltaK, b.dtm.toggleDeltaK);
    EXPECT_EQ(a.dtm.aluTurnoff, b.dtm.aluTurnoff);
    EXPECT_EQ(a.dtm.regfileTurnoff, b.dtm.regfileTurnoff);
    EXPECT_EQ(a.dtm.roundRobin, b.dtm.roundRobin);
    EXPECT_EQ(a.dtm.fetchThrottling, b.dtm.fetchThrottling);
    EXPECT_EQ(a.dtm.coolingTime, b.dtm.coolingTime);
    EXPECT_EQ(a.dtm.mapping, b.dtm.mapping);
}

TEST(SimConfigIo, EveryKeySurvivesRenderParseRender)
{
    Config cfg;
    for (const auto& [key, value] : allKeys())
        cfg.set(key, value);

    const std::string once = cfg.render();
    Config back;
    back.parseText(once);
    EXPECT_EQ(back.entries(), cfg.entries());
    EXPECT_EQ(back.render(), once);

    // And the re-parsed config still names the same simulation.
    expectSameConfig(simConfigFromConfig(back),
                     simConfigFromConfig(cfg));
}

TEST(SimConfigIo, SampleListCoversEveryAcceptedKey)
{
    // A non-default value for every key must actually change the
    // translated SimConfig relative to the defaults — proving
    // each list entry names a live key (a typo'd key would be
    // silently ignored by the default-taking getters).
    const SimConfig defaults = simConfigFromConfig(Config{});
    for (const auto& [key, value] : allKeys()) {
        Config cfg;
        cfg.set(key, value);
        if (key == "run.seed") {
            EXPECT_NE(simConfigFromConfig(cfg).runSeed,
                      defaults.runSeed);
            continue;
        }
        const SimConfig translated = simConfigFromConfig(cfg);
        const bool differs =
            translated.variant != defaults.variant ||
            translated.thermal.timeScale !=
                defaults.thermal.timeScale ||
            translated.thermal.ambient !=
                defaults.thermal.ambient ||
            translated.thermal.rConvection !=
                defaults.thermal.rConvection ||
            translated.thermal.solver !=
                defaults.thermal.solver ||
            translated.sampleIntervalCycles !=
                defaults.sampleIntervalCycles ||
            translated.warmStart != defaults.warmStart ||
            translated.dtm.maxTemperature !=
                defaults.dtm.maxTemperature ||
            translated.dtm.iqToggling !=
                defaults.dtm.iqToggling ||
            translated.dtm.toggleDeltaK !=
                defaults.dtm.toggleDeltaK ||
            translated.dtm.aluTurnoff !=
                defaults.dtm.aluTurnoff ||
            translated.dtm.regfileTurnoff !=
                defaults.dtm.regfileTurnoff ||
            translated.dtm.roundRobin !=
                defaults.dtm.roundRobin ||
            translated.dtm.fetchThrottling !=
                defaults.dtm.fetchThrottling ||
            translated.dtm.coolingTime !=
                defaults.dtm.coolingTime ||
            translated.dtm.mapping != defaults.dtm.mapping;
        EXPECT_TRUE(differs)
            << key << "=" << value
            << " did not change the translated SimConfig";
    }
}

TEST(SimConfigIo, DefaultsReproduceIqBase)
{
    // The empty config IS the neutral iqBase() preset — the
    // property the fabric's paper-scale parity rests on.
    SimConfig expected = experiments::iqBase();
    SimConfig got = simConfigFromConfig(Config{});
    got.runSeed = expected.runSeed; // seed is not preset-defined
    expectSameConfig(got, expected);
}

TEST(SimConfigIo, DottedTogglingReproducesIqToggling)
{
    Config cfg;
    cfg.set("dtm.toggling", "true");
    SimConfig expected = experiments::iqToggling();
    SimConfig got = simConfigFromConfig(cfg);
    got.runSeed = expected.runSeed;
    expectSameConfig(got, expected);
}

TEST(SimConfigIo, RangeValidationStaysFatal)
{
    Config bad_interval;
    bad_interval.set("sim.sample_interval", "0");
    EXPECT_THROW(simConfigFromConfig(bad_interval), FatalError);

    Config negative_seed;
    negative_seed.set("run.seed", "-1");
    EXPECT_THROW(simConfigFromConfig(negative_seed), FatalError);

    Config bad_variant;
    bad_variant.set("floorplan.variant", "hexagon");
    EXPECT_THROW(simConfigFromConfig(bad_variant), FatalError);

    Config bad_solver;
    bad_solver.set("thermal.solver", "magic");
    EXPECT_THROW(simConfigFromConfig(bad_solver), FatalError);

    Config bad_mapping;
    bad_mapping.set("dtm.mapping", "sideways");
    EXPECT_THROW(simConfigFromConfig(bad_mapping), FatalError);
}

} // namespace
} // namespace tempest
