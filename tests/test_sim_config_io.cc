/**
 * @file
 * Drift guard for the dotted-key config vocabulary now that three
 * consumers share it (tempest_run, tempest_serve, and the sweep
 * fabric): every key simConfigFromConfig() accepts must survive
 * render -> parse -> render unchanged, the defaults must keep
 * reproducing the experiment preset builders bit-for-bit, and
 * range validation must stay fatal.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/sim_config_io.hh"

namespace tempest
{
namespace
{

/** Every documented (key, non-default sample value) pair the
 * translation accepts. New keys join this list or the round-trip
 * coverage check below fails the build. */
std::vector<std::pair<std::string, std::string>>
allKeys()
{
    return {
        {"floorplan.variant", "regfile"},
        {"thermal.time_scale", "0.125"},
        {"thermal.ambient", "308.15"},
        {"thermal.convection", "0.6"},
        {"thermal.solver", "euler"},
        {"thermal.max_cached_propagators", "4"},
        {"thermal.r_stack_bond", "8.0e-6"},
        {"thermal.stacked_die_thickness", "0.2e-3"},
        {"sim.sample_interval", "12500"},
        {"sim.warm_start", "false"},
        {"run.seed", "12345"},
        {"dtm.max_temperature", "370.5"},
        {"dtm.toggling", "true"},
        {"dtm.toggle_delta", "2.5"},
        {"dtm.alu_turnoff", "true"},
        {"dtm.regfile_turnoff", "true"},
        {"dtm.round_robin", "true"},
        {"dtm.fetch_throttling", "true"},
        {"dtm.cooling_time", "0.002"},
        {"dtm.mapping", "completely-balanced"},
    };
}

/** Field-by-field SimConfig comparison (no operator==). */
void
expectSameConfig(const SimConfig& a, const SimConfig& b)
{
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.thermal.timeScale, b.thermal.timeScale);
    EXPECT_EQ(a.thermal.ambient, b.thermal.ambient);
    EXPECT_EQ(a.thermal.rConvection, b.thermal.rConvection);
    EXPECT_EQ(a.thermal.maxTemperature, b.thermal.maxTemperature);
    EXPECT_EQ(a.thermal.solver, b.thermal.solver);
    EXPECT_EQ(a.thermal.maxCachedPropagators,
              b.thermal.maxCachedPropagators);
    EXPECT_EQ(a.thermal.rStackBondPerArea,
              b.thermal.rStackBondPerArea);
    EXPECT_EQ(a.thermal.stackedDieThickness,
              b.thermal.stackedDieThickness);
    EXPECT_EQ(a.sampleIntervalCycles, b.sampleIntervalCycles);
    EXPECT_EQ(a.warmStart, b.warmStart);
    EXPECT_EQ(a.dtm.maxTemperature, b.dtm.maxTemperature);
    EXPECT_EQ(a.dtm.iqToggling, b.dtm.iqToggling);
    EXPECT_EQ(a.dtm.toggleDeltaK, b.dtm.toggleDeltaK);
    EXPECT_EQ(a.dtm.aluTurnoff, b.dtm.aluTurnoff);
    EXPECT_EQ(a.dtm.regfileTurnoff, b.dtm.regfileTurnoff);
    EXPECT_EQ(a.dtm.roundRobin, b.dtm.roundRobin);
    EXPECT_EQ(a.dtm.fetchThrottling, b.dtm.fetchThrottling);
    EXPECT_EQ(a.dtm.coolingTime, b.dtm.coolingTime);
    EXPECT_EQ(a.dtm.mapping, b.dtm.mapping);
}

TEST(SimConfigIo, EveryKeySurvivesRenderParseRender)
{
    Config cfg;
    for (const auto& [key, value] : allKeys())
        cfg.set(key, value);

    const std::string once = cfg.render();
    Config back;
    back.parseText(once);
    EXPECT_EQ(back.entries(), cfg.entries());
    EXPECT_EQ(back.render(), once);

    // And the re-parsed config still names the same simulation.
    expectSameConfig(simConfigFromConfig(back),
                     simConfigFromConfig(cfg));
}

TEST(SimConfigIo, SampleListCoversEveryAcceptedKey)
{
    // A non-default value for every key must actually change the
    // translated SimConfig relative to the defaults — proving
    // each list entry names a live key (a typo'd key would be
    // silently ignored by the default-taking getters).
    const SimConfig defaults = simConfigFromConfig(Config{});
    for (const auto& [key, value] : allKeys()) {
        Config cfg;
        cfg.set(key, value);
        if (key == "run.seed") {
            EXPECT_NE(simConfigFromConfig(cfg).runSeed,
                      defaults.runSeed);
            continue;
        }
        const SimConfig translated = simConfigFromConfig(cfg);
        const bool differs =
            translated.variant != defaults.variant ||
            translated.thermal.timeScale !=
                defaults.thermal.timeScale ||
            translated.thermal.ambient !=
                defaults.thermal.ambient ||
            translated.thermal.rConvection !=
                defaults.thermal.rConvection ||
            translated.thermal.solver !=
                defaults.thermal.solver ||
            translated.thermal.maxCachedPropagators !=
                defaults.thermal.maxCachedPropagators ||
            translated.thermal.rStackBondPerArea !=
                defaults.thermal.rStackBondPerArea ||
            translated.thermal.stackedDieThickness !=
                defaults.thermal.stackedDieThickness ||
            translated.sampleIntervalCycles !=
                defaults.sampleIntervalCycles ||
            translated.warmStart != defaults.warmStart ||
            translated.dtm.maxTemperature !=
                defaults.dtm.maxTemperature ||
            translated.dtm.iqToggling !=
                defaults.dtm.iqToggling ||
            translated.dtm.toggleDeltaK !=
                defaults.dtm.toggleDeltaK ||
            translated.dtm.aluTurnoff !=
                defaults.dtm.aluTurnoff ||
            translated.dtm.regfileTurnoff !=
                defaults.dtm.regfileTurnoff ||
            translated.dtm.roundRobin !=
                defaults.dtm.roundRobin ||
            translated.dtm.fetchThrottling !=
                defaults.dtm.fetchThrottling ||
            translated.dtm.coolingTime !=
                defaults.dtm.coolingTime ||
            translated.dtm.mapping != defaults.dtm.mapping;
        EXPECT_TRUE(differs)
            << key << "=" << value
            << " did not change the translated SimConfig";
    }
}

TEST(SimConfigIo, DefaultsReproduceIqBase)
{
    // The empty config IS the neutral iqBase() preset — the
    // property the fabric's paper-scale parity rests on.
    SimConfig expected = experiments::iqBase();
    SimConfig got = simConfigFromConfig(Config{});
    got.runSeed = expected.runSeed; // seed is not preset-defined
    expectSameConfig(got, expected);
}

TEST(SimConfigIo, DottedTogglingReproducesIqToggling)
{
    Config cfg;
    cfg.set("dtm.toggling", "true");
    SimConfig expected = experiments::iqToggling();
    SimConfig got = simConfigFromConfig(cfg);
    got.runSeed = expected.runSeed;
    expectSameConfig(got, expected);
}

/** Every cmp.* / stack.* key with a non-default sample value. */
std::vector<std::pair<std::string, std::string>>
cmpKeys()
{
    return {
        {"cmp.cores", "4"},
        {"cmp.l2", "false"},
        {"cmp.benchmarks", "art, mesa, eon, mcf"},
        {"cmp.migration.enabled", "true"},
        {"cmp.migration.margin", "5.5"},
        {"cmp.migration.min_gap", "0.25"},
        {"cmp.migration.cooldown_intervals", "7"},
        {"cmp.migration.stall_cycles", "12345"},
        {"cmp.migration.bytes_per_cycle", "32"},
        {"stack.dram", "true"},
        {"stack.dram_energy_per_access", "1.5e-8"},
        {"stack.dram_static_w", "2.25"},
    };
}

/** Field-by-field CmpSimConfig comparison (base covered above). */
void
expectSameCmpConfig(const CmpSimConfig& a, const CmpSimConfig& b)
{
    expectSameConfig(a.base, b.base);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.sharedL2, b.sharedL2);
    EXPECT_EQ(a.benchmarks, b.benchmarks);
    EXPECT_EQ(a.migration.enabled, b.migration.enabled);
    EXPECT_EQ(a.migration.marginK, b.migration.marginK);
    EXPECT_EQ(a.migration.minGapK, b.migration.minGapK);
    EXPECT_EQ(a.migration.cooldownIntervals,
              b.migration.cooldownIntervals);
    EXPECT_EQ(a.migration.baseStallCycles,
              b.migration.baseStallCycles);
    EXPECT_EQ(a.migration.busBytesPerCycle,
              b.migration.busBytesPerCycle);
    EXPECT_EQ(a.stack.dram, b.stack.dram);
    EXPECT_EQ(a.stack.dramEnergyPerAccess,
              b.stack.dramEnergyPerAccess);
    EXPECT_EQ(a.stack.dramStaticW, b.stack.dramStaticW);
}

TEST(SimConfigIo, CmpKeysSurviveRenderParseRender)
{
    Config cfg;
    for (const auto& [key, value] : cmpKeys())
        cfg.set(key, value);

    const std::string once = cfg.render();
    Config back;
    back.parseText(once);
    EXPECT_EQ(back.entries(), cfg.entries());
    EXPECT_EQ(back.render(), once);
    expectSameCmpConfig(cmpConfigFromConfig(back),
                        cmpConfigFromConfig(cfg));
}

TEST(SimConfigIo, CmpSampleListCoversEveryAcceptedKey)
{
    const CmpSimConfig defaults = cmpConfigFromConfig(Config{});
    for (const auto& [key, value] : cmpKeys()) {
        Config cfg;
        cfg.set(key, value);
        if (key == "cmp.benchmarks") {
            // A per-core list needs a matching core count; the
            // benchmarks field still differs from the default.
            cfg.set("cmp.cores", "4");
        }
        const CmpSimConfig t = cmpConfigFromConfig(cfg);
        const bool differs =
            t.cores != defaults.cores ||
            t.sharedL2 != defaults.sharedL2 ||
            t.benchmarks != defaults.benchmarks ||
            t.migration.enabled != defaults.migration.enabled ||
            t.migration.marginK != defaults.migration.marginK ||
            t.migration.minGapK != defaults.migration.minGapK ||
            t.migration.cooldownIntervals !=
                defaults.migration.cooldownIntervals ||
            t.migration.baseStallCycles !=
                defaults.migration.baseStallCycles ||
            t.migration.busBytesPerCycle !=
                defaults.migration.busBytesPerCycle ||
            t.stack.dram != defaults.stack.dram ||
            t.stack.dramEnergyPerAccess !=
                defaults.stack.dramEnergyPerAccess ||
            t.stack.dramStaticW != defaults.stack.dramStaticW;
        EXPECT_TRUE(differs)
            << key << "=" << value
            << " did not change the translated CmpSimConfig";
    }
}

TEST(SimConfigIo, CmpDefaultsNameTheSingleCoreSimulation)
{
    const CmpSimConfig cmp = cmpConfigFromConfig(Config{});
    EXPECT_EQ(cmp.cores, 1);
    EXPECT_TRUE(cmp.sharedL2);
    EXPECT_EQ(cmp.benchmarks,
              std::vector<std::string>{"eon"});
    EXPECT_FALSE(cmp.migration.enabled);
    EXPECT_FALSE(cmp.stack.dram);
}

TEST(SimConfigIo, CmpBenchmarksFollowRunBenchmark)
{
    Config cfg;
    cfg.set("run.benchmark", "art");
    cfg.set("cmp.cores", "2");
    const CmpSimConfig cmp = cmpConfigFromConfig(cfg);
    EXPECT_EQ(cmp.benchmarks,
              std::vector<std::string>{"art"});
}

TEST(SimConfigIo, CmpRangeValidationStaysFatal)
{
    Config zero_cores;
    zero_cores.set("cmp.cores", "0");
    EXPECT_THROW(cmpConfigFromConfig(zero_cores), FatalError);

    Config too_many;
    too_many.set("cmp.cores", "9");
    EXPECT_THROW(cmpConfigFromConfig(too_many), FatalError);

    Config bad_bus;
    bad_bus.set("cmp.migration.bytes_per_cycle", "0");
    EXPECT_THROW(cmpConfigFromConfig(bad_bus), FatalError);

    Config negative_stall;
    negative_stall.set("cmp.migration.stall_cycles", "-1");
    EXPECT_THROW(cmpConfigFromConfig(negative_stall), FatalError);

    Config mismatched;
    mismatched.set("cmp.cores", "4");
    mismatched.set("cmp.benchmarks", "art,mesa");
    EXPECT_THROW(cmpConfigFromConfig(mismatched), FatalError);

    Config bad_cache;
    bad_cache.set("thermal.max_cached_propagators", "0");
    EXPECT_THROW(simConfigFromConfig(bad_cache), FatalError);
}

TEST(SimConfigIo, RangeValidationStaysFatal)
{
    Config bad_interval;
    bad_interval.set("sim.sample_interval", "0");
    EXPECT_THROW(simConfigFromConfig(bad_interval), FatalError);

    Config negative_seed;
    negative_seed.set("run.seed", "-1");
    EXPECT_THROW(simConfigFromConfig(negative_seed), FatalError);

    Config bad_variant;
    bad_variant.set("floorplan.variant", "hexagon");
    EXPECT_THROW(simConfigFromConfig(bad_variant), FatalError);

    Config bad_solver;
    bad_solver.set("thermal.solver", "magic");
    EXPECT_THROW(simConfigFromConfig(bad_solver), FatalError);

    Config bad_mapping;
    bad_mapping.set("dtm.mapping", "sideways");
    EXPECT_THROW(simConfigFromConfig(bad_mapping), FatalError);
}

} // namespace
} // namespace tempest
