/**
 * @file
 * Unit tests for the configuration store.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"

namespace tempest
{
namespace
{

TEST(Config, TypedRoundTrip)
{
    Config c;
    c.setInt("a", -7);
    c.setDouble("b", 2.5);
    c.setBool("c", true);
    c.set("d", "hello");
    EXPECT_EQ(c.getInt("a"), -7);
    EXPECT_DOUBLE_EQ(c.getDouble("b"), 2.5);
    EXPECT_TRUE(c.getBool("c"));
    EXPECT_EQ(c.getString("d"), "hello");
}

TEST(Config, DefaultsForMissingKeys)
{
    Config c;
    EXPECT_EQ(c.getInt("nope", 9), 9);
    EXPECT_DOUBLE_EQ(c.getDouble("nope", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("nope", false));
    EXPECT_EQ(c.getString("nope", "x"), "x");
}

TEST(Config, MissingKeyWithoutDefaultIsFatal)
{
    Config c;
    EXPECT_THROW(c.getInt("nope"), FatalError);
    EXPECT_THROW(c.getString("nope"), FatalError);
}

TEST(Config, StrictParsing)
{
    Config c;
    c.set("bad_int", "12abc");
    c.set("bad_double", "1.5x");
    c.set("bad_bool", "maybe");
    EXPECT_THROW(c.getInt("bad_int"), FatalError);
    EXPECT_THROW(c.getDouble("bad_double"), FatalError);
    EXPECT_THROW(c.getBool("bad_bool"), FatalError);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char* t : {"true", "1", "yes", "TRUE", "Yes"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k")) << t;
    }
    for (const char* f : {"false", "0", "no", "FALSE"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k")) << f;
    }
}

TEST(Config, HexIntegers)
{
    Config c;
    c.set("k", "0x10");
    EXPECT_EQ(c.getInt("k"), 16);
}

TEST(Config, ParseIniText)
{
    Config c;
    c.parseText("# comment\n"
                "top = 1\n"
                "[thermal]\n"
                "time_scale = 0.5 ; inline comment\n"
                "max = 358\n");
    EXPECT_EQ(c.getInt("top"), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("thermal.time_scale"), 0.5);
    EXPECT_EQ(c.getInt("thermal.max"), 358);
}

TEST(Config, ParseRejectsMalformedLines)
{
    Config c;
    EXPECT_THROW(c.parseText("just words\n"), FatalError);
    EXPECT_THROW(c.parseText("[unterminated\n"), FatalError);
    EXPECT_THROW(c.parseText("= value\n"), FatalError);
}

TEST(Config, OverlayWins)
{
    Config base, over;
    base.setInt("a", 1);
    base.setInt("b", 2);
    over.setInt("b", 20);
    over.setInt("c", 30);
    base.overlay(over);
    EXPECT_EQ(base.getInt("a"), 1);
    EXPECT_EQ(base.getInt("b"), 20);
    EXPECT_EQ(base.getInt("c"), 30);
}

TEST(Config, RenderListsAllEntries)
{
    Config c;
    c.setInt("b", 2);
    c.setInt("a", 1);
    EXPECT_EQ(c.render(), "a = 1\nb = 2\n");
}

} // namespace
} // namespace tempest
