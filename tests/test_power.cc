/**
 * @file
 * Unit tests for the Wattch-like power model, pinned against
 * hand-computed energies from the paper's Table 3.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "power/power_model.hh"
#include "uarch/core.hh"

namespace tempest
{
namespace
{

struct PowerFixture : public ::testing::Test
{
    PowerFixture()
        : fp(Floorplan::ev6Like(FloorplanVariant::Baseline)),
          model(params, fp, cfg, cfg.frequencyHz)
    {
    }

    PipelineConfig cfg;
    EnergyParams params;
    Floorplan fp;
    PowerModel model;
};

TEST_F(PowerFixture, Table3EnergiesAreThePaperValues)
{
    EXPECT_DOUBLE_EQ(params.iqCompactEntry, 0.0123e-9);
    EXPECT_DOUBLE_EQ(params.iqCompactMux, 0.0023e-9);
    EXPECT_DOUBLE_EQ(params.iqCounterStage1, 0.0011e-9);
    EXPECT_DOUBLE_EQ(params.iqCounterStage2, 0.0021e-9);
    EXPECT_DOUBLE_EQ(params.iqClockGateLogic, 0.0015e-9);
    EXPECT_DOUBLE_EQ(params.iqTagBroadcast, 0.0450e-9);
    EXPECT_DOUBLE_EQ(params.iqPayloadAccess, 0.0675e-9);
    EXPECT_DOUBLE_EQ(params.iqSelectAccess, 0.0051e-9);
    // The paper's long-compaction figure stays available even
    // though the default models segmented wrap drivers.
    EXPECT_DOUBLE_EQ(EnergyParams::paperLongCompaction, 0.0687e-9);
}

TEST_F(PowerFixture, IqHalfEnergyHandComputed)
{
    ActivityRecord a;
    a.cycles = 1000;
    a.iqEntryMoves[0][0] = 10;
    a.iqMuxSelects[0][0] = 4;
    a.iqCounterOps[0][0] = 10;
    a.iqDispatchWrites[0][0] = 2;
    a.iqTagBroadcasts[0] = 6;
    a.iqPayloadAccesses[0] = 8;
    a.iqSelectAccesses[0] = 4;
    a.iqClockGateCycles[0] = 1000;
    const Joule expected =
        10 * params.iqCompactEntry + 4 * params.iqCompactMux +
        10 * (params.iqCounterStage1 + params.iqCounterStage2) +
        2 * params.iqDispatchWrite +
        0.5 * (6 * params.iqTagBroadcast +
               8 * params.iqPayloadAccess +
               4 * params.iqSelectAccess +
               1000 * params.iqClockGateLogic);
    EXPECT_NEAR(model.iqHalfEnergy(a, 0, 0), expected, 1e-18);
}

TEST_F(PowerFixture, LongCompactionSharedAcrossHalves)
{
    // The wrap wires span the queue: both halves receive half the
    // energy regardless of which entry drove them.
    ActivityRecord a;
    a.cycles = 100;
    a.iqLongCompactions[0][0] = 10;
    EXPECT_NEAR(model.iqHalfEnergy(a, 0, 0),
                model.iqHalfEnergy(a, 0, 1), 1e-20);
    EXPECT_NEAR(model.iqHalfEnergy(a, 0, 0),
                5 * params.iqLongCompaction, 1e-18);
}

TEST_F(PowerFixture, BlockPowersMapEventsToBlocks)
{
    ActivityRecord a;
    a.cycles = 42000; // 10 microseconds at 4.2 GHz
    a.intAluOps[0] = 1000;
    a.intRegReads[1] = 500;
    a.fpMulOps = 200;
    std::vector<Watt> p;
    model.blockPowers(a, p);

    const Seconds dt = 42000 / cfg.frequencyHz;
    // Background = leakage + (fully active) clock tree.
    auto background = [&](int block) {
        return model.idlePower(block) +
               params.clockWattsPerSquareMeter *
                   fp.block(block).area();
    };
    const int alu0 = fp.indexOf("IntExec0");
    const int reg1 = fp.indexOf("IntReg1");
    const int mul = fp.indexOf("FPMul");
    EXPECT_NEAR(p[alu0] - background(alu0),
                1000 * params.intAluOp / dt, 1e-6);
    EXPECT_NEAR(p[reg1] - background(reg1),
                500 * params.intRegRead / dt, 1e-6);
    EXPECT_NEAR(p[mul] - background(mul),
                200 * params.fpMulOp / dt, 1e-6);
}

TEST_F(PowerFixture, IdlePowerScalesWithArea)
{
    const int big = fp.indexOf("Icache");
    const int small = fp.indexOf("IntExec0");
    EXPECT_GT(model.idlePower(big), model.idlePower(small));
    EXPECT_NEAR(model.idlePower(big) /
                    fp.block(big).area(),
                params.idleWattsPerSquareMeter, 1e-6);
}

TEST_F(PowerFixture, StalledIntervalGatesTheClockTree)
{
    ActivityRecord active;
    active.cycles = 10000;
    ActivityRecord stalled;
    stalled.cycles = 10000;
    stalled.stallCycles = 10000;
    std::vector<Watt> pa, ps;
    model.blockPowers(active, pa);
    model.blockPowers(stalled, ps);
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_LT(ps[i], pa[i]);
        // Leakage floor remains.
        EXPECT_GT(ps[i], 0.0);
    }
}

TEST_F(PowerFixture, ZeroCycleIntervalIsFatal)
{
    ActivityRecord a;
    std::vector<Watt> p;
    EXPECT_THROW(model.blockPowers(a, p), FatalError);
}

TEST_F(PowerFixture, EndToEndPowersAreSane)
{
    // A real benchmark interval lands in a plausible chip-power
    // envelope (tens of watts, every block positive).
    OooCore core(cfg, spec2000("gzip"), 21);
    ActivityRecord act;
    for (int i = 0; i < 100000; ++i)
        core.tick(act);
    std::vector<Watt> p;
    model.blockPowers(act, p);
    Watt total = 0;
    for (Watt w : p) {
        EXPECT_GT(w, 0.0);
        total += w;
    }
    EXPECT_GT(total, 5.0);
    EXPECT_LT(total, 120.0);
}

TEST_F(PowerFixture, HigherIpcBurnsMorePower)
{
    OooCore hot(cfg, spec2000("eon"), 22);
    OooCore cold(cfg, spec2000("mcf"), 22);
    ActivityRecord ha, ca;
    for (int i = 0; i < 100000; ++i) {
        hot.tick(ha);
        cold.tick(ca);
    }
    std::vector<Watt> hp, cp;
    model.blockPowers(ha, hp);
    model.blockPowers(ca, cp);
    Watt ht = 0, ct = 0;
    for (Watt w : hp)
        ht += w;
    for (Watt w : cp)
        ct += w;
    EXPECT_GT(ht, ct);
}

} // namespace
} // namespace tempest
