/**
 * @file
 * Unit and property tests for the compacting issue queue (§2.1).
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "uarch/issue_queue.hh"

namespace tempest
{

/** Test-only access to the reference compaction pass. */
struct IqTestPeer
{
    static void
    compactGeneric(IssueQueue& iq, ActivityRecord& act)
    {
        iq.compactStepImpl(act, true);
    }
};

namespace
{

IqEntry
makeEntry(std::uint64_t seq, bool ready = true)
{
    IqEntry e;
    e.seq = seq;
    e.cls = OpClass::IntAlu;
    e.numSrcs = ready ? 0 : 1;
    e.src[0] = ready ? 0 : seq + 1000000; // never woken by default
    e.srcReady[0] = ready;
    return e;
}

/** Valid (non-pending) seqs in priority order. */
std::vector<std::uint64_t>
validSeqsInPriorityOrder(const IssueQueue& iq)
{
    std::vector<std::uint64_t> seqs;
    for (int l = 0; l < iq.size(); ++l) {
        const IqEntry& e = iq.entryAtPhys(iq.physOfLogical(l));
        if (e.valid && !e.pendingInvalid)
            seqs.push_back(e.seq);
    }
    return seqs;
}

TEST(IssueQueue, RejectsBadGeometry)
{
    EXPECT_THROW(IssueQueue(31, 6, QueueKind::Int), FatalError);
    EXPECT_THROW(IssueQueue(32, 0, QueueKind::Int), FatalError);
}

TEST(IssueQueue, DispatchFillsFromHead)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 8; ++s) {
        ASSERT_TRUE(iq.canDispatch());
        iq.dispatch(makeEntry(s), act);
    }
    EXPECT_FALSE(iq.canDispatch());
    EXPECT_EQ(iq.count(), 8);
    const auto seqs = validSeqsInPriorityOrder(iq);
    for (std::uint64_t s = 1; s <= 8; ++s)
        EXPECT_EQ(seqs[s - 1], s);
}

TEST(IssueQueue, DispatchChargesPayloadAndTailHalf)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 6; ++s)
        iq.dispatch(makeEntry(s), act);
    EXPECT_EQ(act.iqPayloadAccesses[0], 6u);
    // 8-entry queue: first 4 dispatches land in half 0, rest in 1.
    EXPECT_EQ(act.iqDispatchWrites[0][0], 4u);
    EXPECT_EQ(act.iqDispatchWrites[0][1], 2u);
}

TEST(IssueQueue, IssueCreatesHoleNextCycleOnly)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 8; ++s)
        iq.dispatch(makeEntry(s), act);
    iq.markIssued(iq.physOfLogical(0), act);
    // Still counted until the next compaction (replay window).
    EXPECT_EQ(iq.count(), 8);
    EXPECT_FALSE(iq.canDispatch());
    iq.compactStep(act);
    EXPECT_EQ(iq.count(), 7);
    EXPECT_TRUE(iq.canDispatch());
}

TEST(IssueQueue, CompactionPreservesProgramOrder)
{
    IssueQueue iq(16, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 16; ++s)
        iq.dispatch(makeEntry(s), act);
    // Issue three entries scattered through the queue.
    iq.markIssued(iq.physOfLogical(2), act);
    iq.markIssued(iq.physOfLogical(7), act);
    iq.markIssued(iq.physOfLogical(11), act);
    iq.compactStep(act);
    iq.compactStep(act);
    const auto seqs = validSeqsInPriorityOrder(iq);
    EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
    EXPECT_EQ(seqs.size(), 13u);
}

TEST(IssueQueue, CompactionLimitedToIssueWidthPerCycle)
{
    IssueQueue iq(16, 2, QueueKind::Int); // width 2
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 16; ++s)
        iq.dispatch(makeEntry(s), act);
    // Open 5 holes at the head end.
    for (int l = 0; l < 5; ++l)
        iq.markIssued(iq.physOfLogical(l), act);
    iq.compactStep(act); // holes appear; shifts limited to 2
    // The tail entry (seq 16) was at logical 15 and can have
    // moved at most 2 positions.
    bool found = false;
    for (int l = 13; l < 16; ++l) {
        const IqEntry& e = iq.entryAtPhys(iq.physOfLogical(l));
        if (e.valid && e.seq == 16) {
            EXPECT_GE(l, 13);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // After enough cycles everything is fully compacted.
    for (int i = 0; i < 5; ++i)
        iq.compactStep(act);
    EXPECT_EQ(validSeqsInPriorityOrder(iq).front(), 6u);
    EXPECT_TRUE(iq.entryAtPhys(iq.physOfLogical(10)).valid);
    EXPECT_FALSE(iq.entryAtPhys(iq.physOfLogical(11)).valid);
}

TEST(IssueQueue, ClockGatingOnlyMovedEntriesCharge)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 8; ++s)
        iq.dispatch(makeEntry(s), act);
    iq.compactStep(act); // no holes: nothing moves
    EXPECT_EQ(act.iqEntryMoves[0][0] + act.iqEntryMoves[0][1], 0u);
    EXPECT_EQ(act.iqMuxSelects[0][0] + act.iqMuxSelects[0][1], 0u);

    // Issue the head: all 7 entries above it move exactly once.
    iq.markIssued(iq.physOfLogical(0), act);
    iq.compactStep(act);
    iq.compactStep(act);
    EXPECT_EQ(act.iqEntryMoves[0][0] + act.iqEntryMoves[0][1], 7u);
    EXPECT_EQ(act.iqMuxSelects[0][0] + act.iqMuxSelects[0][1], 7u);
}

TEST(IssueQueue, TailIssueMovesNothing)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 8; ++s)
        iq.dispatch(makeEntry(s), act);
    iq.markIssued(iq.physOfLogical(7), act); // newest entry
    iq.compactStep(act);
    EXPECT_EQ(act.iqEntryMoves[0][0] + act.iqEntryMoves[0][1], 0u);
}

TEST(IssueQueue, BroadcastWakesMatchingSources)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    IqEntry waiting = makeEntry(5, /*ready=*/false);
    waiting.src[0] = 42;
    iq.dispatch(waiting, act);
    iq.compactStep(act); // rebuild waiting list
    int ready_before = 0, ready_after = 0;
    iq.forEachReadyInPriorityOrder(
        [&](int, const IqEntry&) { ++ready_before; return true; });
    iq.broadcast(42, act);
    iq.forEachReadyInPriorityOrder(
        [&](int, const IqEntry&) { ++ready_after; return true; });
    EXPECT_EQ(ready_before, 0);
    EXPECT_EQ(ready_after, 1);
    EXPECT_EQ(act.iqTagBroadcasts[0], 1u);
}

TEST(IssueQueue, BroadcastOfWrongTagWakesNothing)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    IqEntry waiting = makeEntry(5, false);
    waiting.src[0] = 42;
    iq.dispatch(waiting, act);
    iq.compactStep(act);
    iq.broadcast(43, act);
    int ready = 0;
    iq.forEachReadyInPriorityOrder(
        [&](int, const IqEntry&) { ++ready; return true; });
    EXPECT_EQ(ready, 0);
}

TEST(IssueQueue, BroadcastWakesAcrossModeToggle)
{
    // Regression: a mode toggle rotates logical order without
    // moving entries, so seq_ is not sorted along logical
    // positions afterwards. The watch index must still resolve
    // consumer seqs (an early version binary-searched the logical
    // order and deadlocked every waiter after the first DTM
    // toggle).
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 5; s <= 7; ++s) {
        IqEntry waiting = makeEntry(s, /*ready=*/false);
        waiting.src[0] = 37 + s;
        iq.dispatch(waiting, act);
    }
    iq.compactStep(act);
    iq.toggleMode();
    for (std::uint64_t tag = 42; tag <= 44; ++tag)
        iq.broadcast(tag, act);
    int ready = 0;
    iq.forEachReadyInPriorityOrder(
        [&](int, const IqEntry&) { ++ready; return true; });
    EXPECT_EQ(ready, 3);
}

TEST(IssueQueue, ToggledModeMapsHeadToMiddle)
{
    IssueQueue iq(32, 6, QueueKind::Int);
    EXPECT_EQ(iq.physOfLogical(0), 0);
    iq.toggleMode();
    EXPECT_EQ(iq.mode(), CompactionMode::Toggled);
    EXPECT_EQ(iq.physOfLogical(0), 16); // head at the middle
    EXPECT_EQ(iq.physOfLogical(15), 31);
    EXPECT_EQ(iq.physOfLogical(16), 0); // wraps to the bottom
    EXPECT_EQ(iq.physOfLogical(31), 15); // tail one below head
    for (int l = 0; l < 32; ++l)
        EXPECT_EQ(iq.logicalOfPhys(iq.physOfLogical(l)), l);
}

TEST(IssueQueue, WrapCompactionsChargedAsLong)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    iq.toggleMode();
    // Fill beyond half so entries occupy the wrap region.
    for (std::uint64_t s = 1; s <= 6; ++s)
        iq.dispatch(makeEntry(s), act);
    // Head (logical 0, phys 4) issues; logical 4 sits at phys 0
    // and must wrap to phys 7 when it compacts.
    iq.markIssued(iq.physOfLogical(0), act);
    iq.compactStep(act);
    iq.compactStep(act);
    EXPECT_EQ(act.iqLongCompactions[0][0] +
                  act.iqLongCompactions[0][1],
              1u);
    const auto seqs = validSeqsInPriorityOrder(iq);
    EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
}

TEST(IssueQueue, ConventionalModeNeverWraps)
{
    IssueQueue iq(16, 6, QueueKind::Int);
    ActivityRecord act;
    Rng rng(3);
    std::uint64_t seq = 0;
    for (int cycle = 0; cycle < 2000; ++cycle) {
        while (iq.canDispatch() && rng.chance(0.7))
            iq.dispatch(makeEntry(++seq), act);
        iq.forEachReadyInPriorityOrder(
            [&](int phys, const IqEntry&) {
                if (rng.chance(0.3))
                    iq.markIssued(phys, act);
                return true;
            });
        iq.compactStep(act);
    }
    EXPECT_EQ(act.iqLongCompactions[0][0] +
                  act.iqLongCompactions[0][1],
              0u);
}

TEST(IssueQueue, ToggleCountsAndPreservesEntries)
{
    IssueQueue iq(16, 4, QueueKind::Fp);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 10; ++s)
        iq.dispatch(makeEntry(s), act);
    iq.toggleMode();
    EXPECT_EQ(iq.toggleCount(), 1u);
    EXPECT_EQ(iq.count(), 10);
    // Entries stay in their physical slots; the logical order
    // changes, which transiently inverts priorities (§2.1.1:
    // "older instructions ... may become lower priority than
    // newer instructions"). No correctness problem: nothing is
    // lost or duplicated, and compaction defragments toward the
    // new head while preserving relative order within runs.
    for (int i = 0; i < 10; ++i)
        iq.compactStep(act);
    auto seqs = validSeqsInPriorityOrder(iq);
    EXPECT_EQ(seqs.size(), 10u);
    std::sort(seqs.begin(), seqs.end());
    for (std::uint64_t s = 1; s <= 10; ++s)
        EXPECT_EQ(seqs[s - 1], s);
    // The transient inversion resolves through issue: the two
    // highest-priority entries are the post-toggle front-runners.
    int granted = 0;
    iq.forEachReadyInPriorityOrder(
        [&](int phys, const IqEntry&) {
            iq.markIssued(phys, act);
            return ++granted < 2;
        });
    iq.compactStep(act);
    EXPECT_EQ(iq.count(), 8);
}

TEST(IssueQueue, FpQueueChargesFpCounters)
{
    IssueQueue iq(8, 4, QueueKind::Fp);
    ActivityRecord act;
    iq.dispatch(makeEntry(1), act);
    EXPECT_EQ(act.iqPayloadAccesses[1], 1u);
    EXPECT_EQ(act.iqPayloadAccesses[0], 0u);
}

TEST(IssueQueue, OccupancyPerHalfTracksPlacement)
{
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    for (std::uint64_t s = 1; s <= 5; ++s)
        iq.dispatch(makeEntry(s), act);
    EXPECT_EQ(iq.occupancyOfHalf(0), 4);
    EXPECT_EQ(iq.occupancyOfHalf(1), 1);
}

/** Property: random dispatch/issue/toggle traffic never loses or
 * duplicates instructions and always keeps age order among the
 * surviving entries (between toggles). */
class IssueQueueFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IssueQueueFuzz, NoLossNoDuplication)
{
    IssueQueue iq(32, 6, QueueKind::Int);
    ActivityRecord act;
    Rng rng(GetParam());
    std::uint64_t next_seq = 0;
    std::uint64_t dispatched = 0, issued = 0;
    for (int cycle = 0; cycle < 5000; ++cycle) {
        iq.compactStep(act);
        int grants = 0;
        iq.forEachReadyInPriorityOrder(
            [&](int phys, const IqEntry&) {
                if (grants < 6 && rng.chance(0.4)) {
                    iq.markIssued(phys, act);
                    ++grants;
                    ++issued;
                }
                return true;
            });
        for (int d = 0; d < 6 && iq.canDispatch(); ++d) {
            if (rng.chance(0.8)) {
                iq.dispatch(makeEntry(++next_seq), act);
                ++dispatched;
            }
        }
        if (rng.chance(0.01))
            iq.toggleMode();
        // Invariants.
        ASSERT_EQ(iq.occupancyOfHalf(0) + iq.occupancyOfHalf(1),
                  iq.count());
        auto seqs = validSeqsInPriorityOrder(iq);
        auto sorted = seqs;
        std::sort(sorted.begin(), sorted.end());
        ASSERT_TRUE(std::adjacent_find(sorted.begin(),
                                       sorted.end()) ==
                    sorted.end())
            << "duplicate entry";
    }
    // Conservation: everything dispatched is either issued or
    // still waiting in the queue (issued-but-uncompacted entries
    // belong to the issued count).
    int pending = 0;
    for (int p = 0; p < iq.size(); ++p) {
        const IqEntry& e = iq.entryAtPhys(p);
        pending += (e.valid && !e.pendingInvalid) ? 1 : 0;
    }
    EXPECT_EQ(dispatched, issued + static_cast<std::uint64_t>(
                                       pending));
}

TEST(IssueQueue, ReadyAtDispatchIsNeverWatchedByWakeup)
{
    // Regression for the dead condition in dispatch(): an entry
    // whose sources are all ready when it enters the queue must
    // not join the wakeup list, and tag broadcasts must not touch
    // it.
    IssueQueue iq(8, 4, QueueKind::Int);
    ActivityRecord act;
    IqEntry e = makeEntry(1);
    e.numSrcs = 1;
    e.src[0] = 7;
    e.srcReady[0] = true; // producer completed before dispatch
    iq.dispatch(e, act);
    EXPECT_EQ(iq.waitingCount(), 0);
    EXPECT_TRUE(iq.entryAtPhys(0).ready());

    // An unready entry is watched; broadcasting the ready entry's
    // (already satisfied) tag wakes nothing.
    iq.dispatch(makeEntry(2, /*ready=*/false), act);
    EXPECT_EQ(iq.waitingCount(), 1);
    const std::uint64_t tag = 7;
    iq.broadcastMany(&tag, 1, act);
    EXPECT_EQ(iq.waitingCount(), 1);
    EXPECT_FALSE(iq.entryAtPhys(1).ready());
    EXPECT_TRUE(iq.entryAtPhys(0).ready());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IssueQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7,
                                           8));

/** Drive two identical queues, one compacting through the public
 * single-word fast pass and one pinned to the per-entry reference
 * pass, and require identical visible state and activity charges
 * every cycle (stale bits at holes are the one tolerated
 * difference — they are dead state, overwritten before use). */
TEST(IssueQueue, WordAndGenericCompactionAgree)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        IssueQueue a(32, 6, QueueKind::Int);
        IssueQueue b(32, 6, QueueKind::Int);
        ActivityRecord act_a;
        ActivityRecord act_b;
        Rng rng(seed);
        std::uint64_t next_seq = 1;
        std::vector<std::uint64_t> outstanding; // unwoken tags
        std::vector<int> ready_phys;
        for (int cycle = 0; cycle < 3000; ++cycle) {
            while (a.canDispatch() && rng.chance(0.6)) {
                const std::uint64_t s = next_seq++;
                IqEntry e = makeEntry(s, rng.chance(0.5));
                if (!e.srcReady[0]) {
                    e.src[0] = s + 1000000;
                    outstanding.push_back(e.src[0]);
                }
                a.dispatch(e, act_a);
                b.dispatch(e, act_b);
            }
            // Wake a random prefix of the oldest sleepers.
            if (!outstanding.empty() && rng.chance(0.7)) {
                const auto n = 1 + rng.below(outstanding.size());
                a.broadcastMany(outstanding.data(),
                                static_cast<int>(n), act_a);
                b.broadcastMany(outstanding.data(),
                                static_cast<int>(n), act_b);
                outstanding.erase(outstanding.begin(),
                                  outstanding.begin() +
                                      static_cast<long>(n));
            }
            // Issue a random subset of ready entries (same slots
            // in both queues — their state is identical).
            ready_phys.clear();
            a.forEachReadyInPriorityOrder(
                [&](int p, const IqEntry&) {
                    ready_phys.push_back(p);
                    return true;
                });
            int budget = 6;
            for (const int p : ready_phys) {
                if (budget == 0 || !rng.chance(0.5))
                    continue;
                a.markIssued(p, act_a);
                b.markIssued(p, act_b);
                --budget;
            }
            if (rng.chance(0.03)) {
                a.toggleMode();
                b.toggleMode();
            }
            a.compactStep(act_a);
            IqTestPeer::compactGeneric(b, act_b);

            ASSERT_EQ(a.count(), b.count()) << "cycle " << cycle;
            ASSERT_EQ(a.waitingCount(), b.waitingCount());
            ASSERT_EQ(a.canDispatch(), b.canDispatch());
            for (int h = 0; h < 2; ++h)
                ASSERT_EQ(a.occupancyOfHalf(h),
                          b.occupancyOfHalf(h));
            ASSERT_EQ(a.readyBits()[0], b.readyBits()[0])
                << "cycle " << cycle;
            for (int p = 0; p < a.size(); ++p) {
                const IqEntry ea = a.entryAtPhys(p);
                const IqEntry eb = b.entryAtPhys(p);
                ASSERT_EQ(ea.valid, eb.valid)
                    << "cycle " << cycle << " slot " << p;
                ASSERT_EQ(ea.pendingInvalid, eb.pendingInvalid);
                if (!ea.valid)
                    continue;
                ASSERT_EQ(ea.seq, eb.seq);
                ASSERT_EQ(ea.numSrcs, eb.numSrcs);
                ASSERT_EQ(ea.src[0], eb.src[0]);
                ASSERT_EQ(ea.srcReady[0], eb.srcReady[0]);
                ASSERT_EQ(ea.srcReady[1], eb.srcReady[1]);
            }
            for (int h = 0; h < 2; ++h) {
                ASSERT_EQ(act_a.iqEntryMoves[0][h],
                          act_b.iqEntryMoves[0][h])
                    << "cycle " << cycle;
                ASSERT_EQ(act_a.iqLongCompactions[0][h],
                          act_b.iqLongCompactions[0][h])
                    << "cycle " << cycle;
                ASSERT_EQ(act_a.iqMuxSelects[0][h],
                          act_b.iqMuxSelects[0][h]);
                ASSERT_EQ(act_a.iqCounterOps[0][h],
                          act_b.iqCounterOps[0][h]);
                ASSERT_EQ(act_a.iqOccupiedCycles[0][h],
                          act_b.iqOccupiedCycles[0][h]);
                ASSERT_EQ(act_a.iqDispatchWrites[0][h],
                          act_b.iqDispatchWrites[0][h]);
            }
            ASSERT_EQ(act_a.iqClockGateCycles[0],
                      act_b.iqClockGateCycles[0]);
            ASSERT_EQ(act_a.iqTagBroadcasts[0],
                      act_b.iqTagBroadcasts[0]);
        }
    }
}

} // namespace
} // namespace tempest
