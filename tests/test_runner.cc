/**
 * @file
 * Tests for the parallel experiment runner: deterministic seed
 * derivation, bit-identical serial/parallel results at several
 * thread counts, per-job error capture, and progress reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace tempest
{
namespace
{

using namespace experiments;

constexpr std::uint64_t kCycles = 1'000'000;

/** A small but representative sweep: a stalling benchmark and a
 * cool one under two configurations. */
std::vector<ExperimentJob>
sweepJobs()
{
    std::vector<ExperimentJob> jobs;
    const std::vector<std::pair<std::string, SimConfig>> configs{
        {"base", iqBase()}, {"toggling", iqToggling()}};
    for (const auto& [tag, config] : configs) {
        for (const char* bench : {"eon", "art"}) {
            ExperimentJob job;
            job.tag = tag;
            job.benchmark = bench;
            job.config = config;
            job.cycles = kCycles;
            jobs.push_back(job);
        }
    }
    return jobs;
}

/** Bit-identical comparison (EXPECT_EQ on doubles is exact). */
void
expectIdentical(const SimResult& a, const SimResult& b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.dtm.globalStalls, b.dtm.globalStalls);
    EXPECT_EQ(a.dtm.iqToggles, b.dtm.iqToggles);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].name, b.blocks[i].name);
        EXPECT_EQ(a.blocks[i].avg, b.blocks[i].avg) << a.blocks[i].name;
        EXPECT_EQ(a.blocks[i].max, b.blocks[i].max) << a.blocks[i].name;
    }
}

TEST(DeriveRunSeed, StableAndSensitiveToEveryComponent)
{
    const std::uint64_t s = deriveRunSeed(1, "eon", "base");
    EXPECT_EQ(s, deriveRunSeed(1, "eon", "base"));
    EXPECT_NE(s, deriveRunSeed(2, "eon", "base"));
    EXPECT_NE(s, deriveRunSeed(1, "art", "base"));
    EXPECT_NE(s, deriveRunSeed(1, "eon", "toggling"));
    // The separator keeps (benchmark, tag) concatenations apart.
    EXPECT_NE(deriveRunSeed(1, "ab", "c"),
              deriveRunSeed(1, "a", "bc"));
}

/**
 * Hard-coded goldens: deriveRunSeed is part of the experiment
 * identity (a (baseSeed, benchmark, tag) triple names the same
 * simulation forever), so its values must never drift across
 * refactors, platforms, or library versions. Re-deriving these is
 * a breaking change to every recorded result and checkpoint.
 */
TEST(DeriveRunSeed, GoldenValues)
{
    struct SeedGolden
    {
        std::uint64_t base;
        const char* benchmark;
        const char* tag;
        std::uint64_t seed;
    };
    constexpr SeedGolden kSeedGoldens[] = {
        {1ULL, "art", "iq_base", 0x6fc8a890a2e1b61aULL},
        {1ULL, "mesa", "warmup", 0xec7fe97c80456028ULL},
        {1ULL, "eon", "base", 0x386a22ba51a8050eULL},
        {7ULL, "facerec", "toggling", 0x53e444de671b00aeULL},
        {42ULL, "gzip", "alu_turnoff", 0xbdab593c41dff752ULL},
        {3735928559ULL, "equake", "regfile_balanced",
         0x9cb02942abe8f8b0ULL},
    };
    for (const SeedGolden& g : kSeedGoldens) {
        EXPECT_EQ(deriveRunSeed(g.base, g.benchmark, g.tag),
                  g.seed)
            << g.base << "/" << g.benchmark << "/" << g.tag;
    }
}

TEST(Runner, SerialAndParallelAreBitIdentical)
{
    const std::vector<ExperimentJob> jobs = sweepJobs();
    const std::uint64_t base_seed = 7;

    // Serial reference: one job after another on this thread.
    std::vector<ExperimentOutcome> serial;
    for (const ExperimentJob& job : jobs)
        serial.push_back(ExperimentRunner::runJob(job, base_seed));
    for (const ExperimentOutcome& o : serial)
        ASSERT_TRUE(o.ok) << o.error;

    for (const int threads : {1, 2, 8}) {
        ExperimentRunner::Options options;
        options.threads = threads;
        options.baseSeed = base_seed;
        ExperimentRunner runner(options);
        for (const ExperimentJob& job : jobs)
            runner.add(job);
        const std::vector<ExperimentOutcome> parallel =
            runner.run();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << "threads=" << threads << " job="
                         << serial[i].tag << "/"
                         << serial[i].benchmark);
            ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
            EXPECT_EQ(parallel[i].tag, serial[i].tag);
            EXPECT_EQ(parallel[i].benchmark,
                      serial[i].benchmark);
            EXPECT_EQ(parallel[i].seed, serial[i].seed);
            expectIdentical(parallel[i].result,
                            serial[i].result);
        }
    }
}

TEST(Runner, MatchesLegacySerialPathForSameSeed)
{
    // runBenchmark with an explicitly derived seed is the serial
    // path; the parallel runner must reproduce it bit for bit.
    SimConfig config = iqBase();
    config.runSeed = deriveRunSeed(5, "gzip", "base");
    const SimResult serial = runBenchmark(config, "gzip", kCycles);

    ExperimentRunner::Options options;
    options.threads = 2;
    options.baseSeed = 5;
    ExperimentRunner runner(options);
    runner.add("base", iqBase(), "gzip", kCycles);
    const std::vector<ExperimentOutcome> out = runner.run();
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0].ok) << out[0].error;
    expectIdentical(out[0].result, serial);
}

TEST(Runner, CapturesJobErrorsWithoutAbortingTheSweep)
{
    ExperimentRunner::Options options;
    options.threads = 2;
    ExperimentRunner runner(options);
    runner.add("base", iqBase(), "nosuchbenchmark", 100'000);
    runner.add("base",
               baseConfig(FloorplanVariant::Baseline), "gzip",
               100'000);
    const std::vector<ExperimentOutcome> outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("nosuchbenchmark"),
              std::string::npos);
    ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
    EXPECT_GT(outcomes[1].result.instructions, 0u);
}

TEST(Runner, RunBenchmarkRethrowsCapturedFatal)
{
    EXPECT_THROW(runBenchmark(iqBase(), "nosuchbenchmark", 1000),
                 FatalError);
}

TEST(Runner, ProgressCallbackSeesEveryCompletion)
{
    std::vector<std::string> seen; // serialized by the runner
    std::size_t last_total = 0;
    std::size_t max_done = 0;
    ExperimentRunner::Options options;
    options.threads = 4;
    options.progress = [&](const ExperimentOutcome& o,
                           std::size_t done, std::size_t total) {
        seen.push_back(o.tag + "/" + o.benchmark);
        last_total = total;
        max_done = std::max(max_done, done);
    };
    ExperimentRunner runner(options);
    const SimConfig config =
        baseConfig(FloorplanVariant::Baseline);
    for (const char* bench : {"gzip", "art", "mcf", "gcc"})
        runner.add("base", config, bench, 100'000);
    const std::vector<ExperimentOutcome> outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(last_total, 4u);
    EXPECT_EQ(max_done, 4u);
}

TEST(Runner, RunSweepCoversTheCrossProductInSubmissionOrder)
{
    ExperimentRunner::Options options;
    options.threads = 3;
    const std::vector<ExperimentOutcome> outcomes = runSweep(
        {{"a", baseConfig(FloorplanVariant::Baseline)},
         {"b", iqBase()}},
        {"gzip", "art"}, 100'000, options);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(outcomes[0].tag, "a");
    EXPECT_EQ(outcomes[0].benchmark, "gzip");
    EXPECT_EQ(outcomes[1].tag, "a");
    EXPECT_EQ(outcomes[1].benchmark, "art");
    EXPECT_EQ(outcomes[2].tag, "b");
    EXPECT_EQ(outcomes[2].benchmark, "gzip");
    EXPECT_EQ(outcomes[3].tag, "b");
    EXPECT_EQ(outcomes[3].benchmark, "art");
    for (const ExperimentOutcome& o : outcomes)
        EXPECT_TRUE(o.ok) << o.error;
}

} // namespace
} // namespace tempest
