/**
 * @file
 * Unit tests for register-file copies and port mappings (Figure 4).
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "uarch/regfile.hh"

namespace tempest
{
namespace
{

TEST(RegisterFile, PriorityMappingGroupsHighPriorityAlus)
{
    RegisterFile rf(2, 6, PortMapping::Priority);
    EXPECT_EQ(rf.copyForAlu(0), 0);
    EXPECT_EQ(rf.copyForAlu(1), 0);
    EXPECT_EQ(rf.copyForAlu(2), 0);
    EXPECT_EQ(rf.copyForAlu(3), 1);
    EXPECT_EQ(rf.copyForAlu(4), 1);
    EXPECT_EQ(rf.copyForAlu(5), 1);
}

TEST(RegisterFile, BalancedMappingInterleaves)
{
    RegisterFile rf(2, 6, PortMapping::Balanced);
    EXPECT_EQ(rf.copyForAlu(0), 0);
    EXPECT_EQ(rf.copyForAlu(1), 1);
    EXPECT_EQ(rf.copyForAlu(2), 0);
    EXPECT_EQ(rf.copyForAlu(3), 1);
    EXPECT_EQ(rf.copyForAlu(4), 0);
    EXPECT_EQ(rf.copyForAlu(5), 1);
}

TEST(RegisterFile, CompletelyBalancedHasNoSingleCopy)
{
    RegisterFile rf(2, 6, PortMapping::CompletelyBalanced);
    EXPECT_THROW(rf.copyForAlu(0), FatalError);
}

TEST(RegisterFile, AlusOfCopyIsInverseOfCopyForAlu)
{
    for (PortMapping m :
         {PortMapping::Priority, PortMapping::Balanced}) {
        RegisterFile rf(2, 6, m);
        for (int c = 0; c < 2; ++c) {
            const auto alus = rf.alusOfCopy(c);
            EXPECT_EQ(alus.size(), 3u);
            for (int a : alus)
                EXPECT_EQ(rf.copyForAlu(a), c);
        }
    }
}

TEST(RegisterFile, CompletelyBalancedCopyServesAllAlus)
{
    RegisterFile rf(2, 6, PortMapping::CompletelyBalanced);
    EXPECT_EQ(rf.alusOfCopy(0).size(), 6u);
    EXPECT_EQ(rf.alusOfCopy(1).size(), 6u);
}

TEST(RegisterFile, ReadsChargeTheMappedCopy)
{
    RegisterFile rf(2, 6, PortMapping::Priority);
    ActivityRecord act;
    rf.chargeReads(0, 2, act); // ALU0 -> copy 0
    rf.chargeReads(5, 1, act); // ALU5 -> copy 1
    EXPECT_EQ(act.intRegReads[0], 2u);
    EXPECT_EQ(act.intRegReads[1], 1u);
}

TEST(RegisterFile, CompletelyBalancedSplitsReads)
{
    RegisterFile rf(2, 6, PortMapping::CompletelyBalanced);
    ActivityRecord act;
    rf.chargeReads(0, 2, act); // one read per copy
    EXPECT_EQ(act.intRegReads[0], 1u);
    EXPECT_EQ(act.intRegReads[1], 1u);
}

TEST(RegisterFile, WritesBroadcastToAllCopies)
{
    RegisterFile rf(2, 6, PortMapping::Priority);
    ActivityRecord act;
    rf.chargeWrite(act);
    rf.chargeWrite(act);
    EXPECT_EQ(act.intRegWrites[0], 2u);
    EXPECT_EQ(act.intRegWrites[1], 2u);
}

TEST(RegisterFile, ZeroReadsChargeNothing)
{
    RegisterFile rf(2, 6, PortMapping::Priority);
    ActivityRecord act;
    rf.chargeReads(3, 0, act);
    EXPECT_EQ(act.intRegReads[0], 0u);
    EXPECT_EQ(act.intRegReads[1], 0u);
}

TEST(RegisterFile, MappingSwitchableAtRuntime)
{
    RegisterFile rf(2, 6, PortMapping::Priority);
    EXPECT_EQ(rf.copyForAlu(1), 0);
    rf.setMapping(PortMapping::Balanced);
    EXPECT_EQ(rf.copyForAlu(1), 1);
}

TEST(RegisterFile, RejectsUnevenAluSplit)
{
    EXPECT_THROW(RegisterFile(2, 5, PortMapping::Priority),
                 FatalError);
}

TEST(RegisterFile, MappingNames)
{
    EXPECT_STREQ(portMappingName(PortMapping::Priority),
                 "priority");
    EXPECT_STREQ(portMappingName(PortMapping::Balanced),
                 "balanced");
    EXPECT_STREQ(
        portMappingName(PortMapping::CompletelyBalanced),
        "completely-balanced");
}

} // namespace
} // namespace tempest
