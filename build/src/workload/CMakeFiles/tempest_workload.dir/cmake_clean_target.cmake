file(REMOVE_RECURSE
  "libtempest_workload.a"
)
