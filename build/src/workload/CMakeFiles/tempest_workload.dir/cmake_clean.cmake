file(REMOVE_RECURSE
  "CMakeFiles/tempest_workload.dir/generator.cc.o"
  "CMakeFiles/tempest_workload.dir/generator.cc.o.d"
  "CMakeFiles/tempest_workload.dir/profile.cc.o"
  "CMakeFiles/tempest_workload.dir/profile.cc.o.d"
  "libtempest_workload.a"
  "libtempest_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
