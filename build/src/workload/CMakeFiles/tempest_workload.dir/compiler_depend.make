# Empty compiler generated dependencies file for tempest_workload.
# This may be replaced when dependencies are built.
