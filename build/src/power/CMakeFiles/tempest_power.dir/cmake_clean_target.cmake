file(REMOVE_RECURSE
  "libtempest_power.a"
)
