# Empty dependencies file for tempest_power.
# This may be replaced when dependencies are built.
