file(REMOVE_RECURSE
  "CMakeFiles/tempest_power.dir/power_model.cc.o"
  "CMakeFiles/tempest_power.dir/power_model.cc.o.d"
  "libtempest_power.a"
  "libtempest_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
