# Empty dependencies file for tempest_dtm.
# This may be replaced when dependencies are built.
