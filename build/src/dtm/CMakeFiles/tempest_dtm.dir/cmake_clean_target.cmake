file(REMOVE_RECURSE
  "libtempest_dtm.a"
)
