file(REMOVE_RECURSE
  "CMakeFiles/tempest_dtm.dir/dtm_policy.cc.o"
  "CMakeFiles/tempest_dtm.dir/dtm_policy.cc.o.d"
  "libtempest_dtm.a"
  "libtempest_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
