
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/activity.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/activity.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/activity.cc.o.d"
  "/root/repo/src/uarch/alu.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/alu.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/alu.cc.o.d"
  "/root/repo/src/uarch/bpred.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/bpred.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/bpred.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/issue_queue.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/issue_queue.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/issue_queue.cc.o.d"
  "/root/repo/src/uarch/regfile.cc" "src/uarch/CMakeFiles/tempest_uarch.dir/regfile.cc.o" "gcc" "src/uarch/CMakeFiles/tempest_uarch.dir/regfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tempest_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
