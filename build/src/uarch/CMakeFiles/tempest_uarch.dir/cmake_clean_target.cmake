file(REMOVE_RECURSE
  "libtempest_uarch.a"
)
