# Empty compiler generated dependencies file for tempest_uarch.
# This may be replaced when dependencies are built.
