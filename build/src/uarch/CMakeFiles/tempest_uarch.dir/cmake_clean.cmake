file(REMOVE_RECURSE
  "CMakeFiles/tempest_uarch.dir/activity.cc.o"
  "CMakeFiles/tempest_uarch.dir/activity.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/alu.cc.o"
  "CMakeFiles/tempest_uarch.dir/alu.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/bpred.cc.o"
  "CMakeFiles/tempest_uarch.dir/bpred.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/cache.cc.o"
  "CMakeFiles/tempest_uarch.dir/cache.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/core.cc.o"
  "CMakeFiles/tempest_uarch.dir/core.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/issue_queue.cc.o"
  "CMakeFiles/tempest_uarch.dir/issue_queue.cc.o.d"
  "CMakeFiles/tempest_uarch.dir/regfile.cc.o"
  "CMakeFiles/tempest_uarch.dir/regfile.cc.o.d"
  "libtempest_uarch.a"
  "libtempest_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
