file(REMOVE_RECURSE
  "libtempest_thermal.a"
)
