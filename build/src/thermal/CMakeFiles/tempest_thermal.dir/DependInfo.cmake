
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/floorplan.cc" "src/thermal/CMakeFiles/tempest_thermal.dir/floorplan.cc.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/floorplan.cc.o.d"
  "/root/repo/src/thermal/rc_model.cc" "src/thermal/CMakeFiles/tempest_thermal.dir/rc_model.cc.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/rc_model.cc.o.d"
  "/root/repo/src/thermal/sensor.cc" "src/thermal/CMakeFiles/tempest_thermal.dir/sensor.cc.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
