file(REMOVE_RECURSE
  "CMakeFiles/tempest_thermal.dir/floorplan.cc.o"
  "CMakeFiles/tempest_thermal.dir/floorplan.cc.o.d"
  "CMakeFiles/tempest_thermal.dir/rc_model.cc.o"
  "CMakeFiles/tempest_thermal.dir/rc_model.cc.o.d"
  "CMakeFiles/tempest_thermal.dir/sensor.cc.o"
  "CMakeFiles/tempest_thermal.dir/sensor.cc.o.d"
  "libtempest_thermal.a"
  "libtempest_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
