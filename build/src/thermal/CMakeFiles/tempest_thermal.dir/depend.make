# Empty dependencies file for tempest_thermal.
# This may be replaced when dependencies are built.
