file(REMOVE_RECURSE
  "CMakeFiles/tempest_sim.dir/experiment.cc.o"
  "CMakeFiles/tempest_sim.dir/experiment.cc.o.d"
  "CMakeFiles/tempest_sim.dir/simulator.cc.o"
  "CMakeFiles/tempest_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tempest_sim.dir/trace.cc.o"
  "CMakeFiles/tempest_sim.dir/trace.cc.o.d"
  "libtempest_sim.a"
  "libtempest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
