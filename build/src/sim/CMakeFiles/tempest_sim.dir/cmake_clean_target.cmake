file(REMOVE_RECURSE
  "libtempest_sim.a"
)
