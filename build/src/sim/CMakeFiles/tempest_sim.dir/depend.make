# Empty dependencies file for tempest_sim.
# This may be replaced when dependencies are built.
