file(REMOVE_RECURSE
  "CMakeFiles/tempest_common.dir/config.cc.o"
  "CMakeFiles/tempest_common.dir/config.cc.o.d"
  "CMakeFiles/tempest_common.dir/log.cc.o"
  "CMakeFiles/tempest_common.dir/log.cc.o.d"
  "CMakeFiles/tempest_common.dir/rng.cc.o"
  "CMakeFiles/tempest_common.dir/rng.cc.o.d"
  "CMakeFiles/tempest_common.dir/stats.cc.o"
  "CMakeFiles/tempest_common.dir/stats.cc.o.d"
  "libtempest_common.a"
  "libtempest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
