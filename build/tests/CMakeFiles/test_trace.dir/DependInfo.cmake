
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/test_trace.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tempest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/tempest_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tempest_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/tempest_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tempest_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
