file(REMOVE_RECURSE
  "CMakeFiles/test_dtm.dir/test_dtm.cc.o"
  "CMakeFiles/test_dtm.dir/test_dtm.cc.o.d"
  "test_dtm"
  "test_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
