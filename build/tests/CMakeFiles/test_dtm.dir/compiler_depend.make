# Empty compiler generated dependencies file for test_dtm.
# This may be replaced when dependencies are built.
