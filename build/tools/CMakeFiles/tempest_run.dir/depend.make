# Empty dependencies file for tempest_run.
# This may be replaced when dependencies are built.
