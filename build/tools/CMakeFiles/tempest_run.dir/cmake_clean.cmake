file(REMOVE_RECURSE
  "CMakeFiles/tempest_run.dir/tempest_run.cc.o"
  "CMakeFiles/tempest_run.dir/tempest_run.cc.o.d"
  "tempest_run"
  "tempest_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
