file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_longwire.dir/bench_ablation_longwire.cc.o"
  "CMakeFiles/bench_ablation_longwire.dir/bench_ablation_longwire.cc.o.d"
  "bench_ablation_longwire"
  "bench_ablation_longwire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_longwire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
