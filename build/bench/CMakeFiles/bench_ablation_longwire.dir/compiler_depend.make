# Empty compiler generated dependencies file for bench_ablation_longwire.
# This may be replaced when dependencies are built.
