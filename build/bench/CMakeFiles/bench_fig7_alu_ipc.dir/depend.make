# Empty dependencies file for bench_fig7_alu_ipc.
# This may be replaced when dependencies are built.
