file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_regfile_temps.dir/bench_table6_regfile_temps.cc.o"
  "CMakeFiles/bench_table6_regfile_temps.dir/bench_table6_regfile_temps.cc.o.d"
  "bench_table6_regfile_temps"
  "bench_table6_regfile_temps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_regfile_temps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
