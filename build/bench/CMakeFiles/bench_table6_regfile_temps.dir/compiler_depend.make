# Empty compiler generated dependencies file for bench_table6_regfile_temps.
# This may be replaced when dependencies are built.
