# Empty compiler generated dependencies file for bench_fig6_iq_ipc.
# This may be replaced when dependencies are built.
