# Empty dependencies file for bench_micro_issue_queue.
# This may be replaced when dependencies are built.
