file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_issue_queue.dir/bench_micro_issue_queue.cc.o"
  "CMakeFiles/bench_micro_issue_queue.dir/bench_micro_issue_queue.cc.o.d"
  "bench_micro_issue_queue"
  "bench_micro_issue_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_issue_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
