# Empty dependencies file for bench_table4_iq_temps.
# This may be replaced when dependencies are built.
