# Empty dependencies file for bench_table5_alu_temps.
# This may be replaced when dependencies are built.
