file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_regfile_ipc.dir/bench_fig8_regfile_ipc.cc.o"
  "CMakeFiles/bench_fig8_regfile_ipc.dir/bench_fig8_regfile_ipc.cc.o.d"
  "bench_fig8_regfile_ipc"
  "bench_fig8_regfile_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_regfile_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
