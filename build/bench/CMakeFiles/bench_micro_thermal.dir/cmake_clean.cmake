file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_thermal.dir/bench_micro_thermal.cc.o"
  "CMakeFiles/bench_micro_thermal.dir/bench_micro_thermal.cc.o.d"
  "bench_micro_thermal"
  "bench_micro_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
