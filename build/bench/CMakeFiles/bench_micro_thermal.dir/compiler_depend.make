# Empty compiler generated dependencies file for bench_micro_thermal.
# This may be replaced when dependencies are built.
