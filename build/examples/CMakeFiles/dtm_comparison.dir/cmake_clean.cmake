file(REMOVE_RECURSE
  "CMakeFiles/dtm_comparison.dir/dtm_comparison.cc.o"
  "CMakeFiles/dtm_comparison.dir/dtm_comparison.cc.o.d"
  "dtm_comparison"
  "dtm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
