# Empty compiler generated dependencies file for dtm_comparison.
# This may be replaced when dependencies are built.
