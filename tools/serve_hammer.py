#!/usr/bin/env python3
"""Load-test and acceptance-check client for tempest_serve.

Drives the daemon through the full serving contract and fails
loudly when any part of it regresses:

  1. cold phase     unique run requests in parallel -> all misses;
                    records the result_hash of every identity
  2. mixed phase    the same identities re-requested repeatedly ->
                    cache hits; every hash must be bit-identical
                    to its cold run, and the aggregate throughput
                    must be >= 2x the all-cold projection
  3. rate phase     one greedy client fires uncached requests
                    back-to-back and must be shed with an explicit
                    retry_after (never an unbounded queue)
  4. stats phase    the stats op must report a cache hit rate
                    consistent with the mix, and a drained queue
  5. shutdown       the shutdown op must stop the daemon cleanly
                    (exit 0, socket file removed)

Run against an already-listening daemon:

    tools/serve_hammer.py --socket /tmp/tempest.sock

or let the hammer own the daemon lifecycle (CI does this):

    tools/serve_hammer.py --daemon build/tools/tempest_serve --ci

Stdlib only; exit code 0 iff every assertion held.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import threading
import time


def request(sock_path, obj, timeout=300.0):
    """One request on a fresh connection; returns the reply dict."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(timeout)
        s.connect(sock_path)
        s.sendall((json.dumps(obj) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                raise RuntimeError("daemon closed the connection")
            buf += chunk
        return json.loads(buf.decode())


class Hammer:
    def __init__(self, sock_path):
        self.sock_path = sock_path
        self.failures = []

    def check(self, ok, message):
        tag = "ok  " if ok else "FAIL"
        print(f"  [{tag}] {message}")
        if not ok:
            self.failures.append(message)

    def run_parallel(self, jobs):
        """Issue run requests concurrently; returns replies in
        job order plus the aggregate wall time."""
        replies = [None] * len(jobs)

        def worker(i, job):
            replies[i] = request(self.sock_path, job)

        threads = [
            threading.Thread(target=worker, args=(i, j))
            for i, j in enumerate(jobs)
        ]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return replies, time.monotonic() - t0


def build_jobs(benchmarks, cycles):
    """Unique run identities: benchmark x DTM config variants."""
    variants = [
        {},
        {"dtm.toggling": "true"},
        {"dtm.toggling": "true", "dtm.round_robin": "true"},
    ]
    jobs = []
    for b, bench in enumerate(benchmarks):
        for v, cfg in enumerate(variants):
            jobs.append({
                "op": "run",
                "benchmark": bench,
                "cycles": cycles,
                "seed": 7,
                "config": cfg,
                "client": f"hammer-{b}-{v}",
            })
    return jobs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", default=None,
                    help="socket path (default: a per-process "
                         "path under /tmp)")
    ap.add_argument("--daemon", default=None,
                    help="tempest_serve binary: the hammer spawns "
                         "and owns the daemon itself")
    ap.add_argument("--benchmarks", default="eon,gcc",
                    help="comma-separated benchmark list")
    ap.add_argument("--cycles", type=int, default=400_000)
    ap.add_argument("--warmup-cycles", type=int, default=200_000)
    ap.add_argument("--repeats", type=int, default=3,
                    help="hot re-requests per identity in the "
                         "mixed phase")
    ap.add_argument("--min-speedup", type=float, default=2.0)
    ap.add_argument("--ci", action="store_true",
                    help="small fixed workload for CI")
    ap.add_argument("--keep", action="store_true",
                    help="leave the daemon running (skip the "
                         "shutdown phase)")
    args = ap.parse_args()

    if args.ci:
        args.benchmarks = "eon"
        args.cycles = 300_000
        args.warmup_cycles = 150_000

    if args.socket is None:
        args.socket = f"/tmp/tempest_serve_{os.getpid()}.sock"
    benchmarks = [b for b in args.benchmarks.split(",") if b]
    daemon = None
    if args.daemon:
        try:
            os.unlink(args.socket)
        except FileNotFoundError:
            pass
        daemon = subprocess.Popen([
            args.daemon,
            "--socket", args.socket,
            "--threads", "2",
            "--queue-depth", "8",
            "--rate", "2",
            "--burst", "3",
            "--warmup-cycles", str(args.warmup_cycles),
        ])
        deadline = time.monotonic() + 15
        while not os.path.exists(args.socket):
            if time.monotonic() > deadline:
                daemon.kill()
                sys.exit("daemon never bound its socket")
            time.sleep(0.05)

    h = Hammer(args.socket)
    jobs = build_jobs(benchmarks, args.cycles)

    print(f"== cold phase: {len(jobs)} unique identities ==")
    cold, cold_wall = h.run_parallel(jobs)
    h.check(all(r and r.get("ok") for r in cold),
            "every cold request succeeded")
    h.check(all(r.get("cached") is False for r in cold),
            "no cold request was served from cache")
    hashes = [r["result_hash"] for r in cold]
    compute_seconds = sum(r["wall_seconds"] for r in cold)
    print(f"  cold aggregate: {cold_wall:.2f}s wall, "
          f"{compute_seconds:.2f}s compute")

    print(f"== mixed phase: {args.repeats}x re-request ==")
    mixed_jobs = jobs * args.repeats
    mixed, mixed_wall = h.run_parallel(mixed_jobs)
    h.check(all(r and r.get("ok") for r in mixed),
            "every mixed request succeeded")
    identical = all(
        r["result_hash"] == hashes[i % len(jobs)]
        for i, r in enumerate(mixed)
    )
    h.check(identical,
            "cached result_hash bit-identical to the cold run")
    hits = sum(1 for r in mixed if r.get("cached"))
    h.check(hits == len(mixed_jobs),
            f"all {len(mixed_jobs)} mixed requests were hits "
            f"(got {hits})")
    # All-cold projection for the same request count, from the
    # measured per-request cold wall time.
    projected = cold_wall / len(jobs) * len(mixed_jobs)
    speedup = projected / max(mixed_wall, 1e-9)
    h.check(speedup >= args.min_speedup,
            f"mixed vs all-cold speedup {speedup:.1f}x >= "
            f"{args.min_speedup:.1f}x")

    print("== rate phase: one greedy client ==")
    greedy_probes = 8
    shed = []
    for i in range(greedy_probes):
        r = request(args.socket, {
            "op": "run",
            "benchmark": benchmarks[0],
            # tiny and unique: never cached, nearly free
            "cycles": 1000,
            "seed": 1000 + i,
            "client": "greedy",
        })
        if not r.get("ok"):
            shed.append(r)
    h.check(len(shed) > 0,
            f"greedy client was shed "
            f"({len(shed)}/{greedy_probes} rejected)")
    h.check(all(r.get("retry_after", 0) > 0 for r in shed),
            "every rejection carried retry_after > 0")

    print("== stats phase ==")
    stats = request(args.socket, {"op": "stats"})
    h.check(stats.get("ok") is True, "stats op answered")
    # Every count is deterministic from the request ledger: each
    # cold identity and each greedy probe (shed or not — the
    # lookup precedes admission) is one miss; every mixed
    # re-request is one hit.
    expected = len(mixed_jobs) / (
        len(mixed_jobs) + len(jobs) + greedy_probes)
    hit_rate = stats["cache"]["hit_rate"]
    h.check(abs(hit_rate - expected) < 1e-9,
            f"cache hit rate {hit_rate:.3f} matches the "
            f"ledger-predicted {expected:.3f}")
    h.check(stats["rate_limited"] == len(shed),
            "rate_limited counter matches observed rejections")
    print(f"  stats: {json.dumps(stats)}")

    if not args.keep:
        print("== shutdown phase ==")
        r = request(args.socket, {"op": "shutdown"})
        h.check(r.get("ok") is True, "shutdown acknowledged")
        if daemon is not None:
            code = daemon.wait(timeout=30)
            h.check(code == 0, f"daemon exited cleanly ({code})")
            h.check(not os.path.exists(args.socket),
                    "socket file removed on shutdown")

    if h.failures:
        print(f"\n{len(h.failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
