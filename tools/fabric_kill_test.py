#!/usr/bin/env python3
"""Worker-kill integration test for the sweep fabric.

Exercises the property the fabric's failure recovery exists to
provide: a sweep whose worker process is SIGKILLed mid-shard
finishes with exactly the same per-job result hashes and final
sweep_hash (merge-order FNV-1a chain) as an undisturbed run. The
coordinator must detect the death, re-queue the dead worker's
shard onto a survivor, and merge by job index — never by arrival
order — so the recovery is invisible in the results.

Procedure:
  1. Reference: tempest_sweep --paper-scale to completion at 2
     workers, record sweep_hash and the per-job hash table.
  2. Run the same sweep again; as soon as a worker process
     (tempest_sweep --worker-fd) appears, SIGKILL it. Repeat for
     a second victim mid-sweep.
  3. The disturbed run must exit 0, its stderr must show the
     coordinator re-queueing (or respawning after) the lost
     shard, and its hashes must equal the reference exactly.

Usage:
    python3 tools/fabric_kill_test.py [--build-dir build]
        [--cycles 200000] [--workers 2]

Stdlib only; no third-party dependencies. Exits non-zero on any
mismatch, so CI can gate on it.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def sweep_hash(stdout):
    m = re.search(r"sweep_hash\s+(0x[0-9a-f]{16})", stdout)
    if not m:
        sys.exit("fabric-kill: no sweep_hash in output:\n"
                 + stdout)
    return m.group(1)


def job_hashes(stdout):
    """(config, bench) -> result_hash rows of the report table."""
    rows = {}
    for line in stdout.splitlines():
        m = re.match(r"(\S+)\s+(\S+)\s+.*(0x[0-9a-f]{16})$", line)
        if m and m.group(1) != "sweep_hash":
            rows[(m.group(1), m.group(2))] = m.group(3)
    return rows


def worker_pids(parent_pid):
    """Child PIDs of the coordinator that are worker processes."""
    try:
        out = subprocess.run(
            ["ps", "-o", "pid=,args=", "--ppid", str(parent_pid)],
            capture_output=True, text=True).stdout
    except OSError:
        return []
    pids = []
    for line in out.splitlines():
        parts = line.strip().split(None, 1)
        if len(parts) == 2 and "--worker-fd" in parts[1]:
            pids.append(int(parts[0]))
    return pids


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--cycles", type=int, default=200_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kills", type=int, default=2,
                        help="workers to SIGKILL mid-sweep")
    args = parser.parse_args()

    root = repo_root()
    binary = os.path.join(root, args.build_dir, "tools",
                          "tempest_sweep")
    if not os.path.exists(binary):
        sys.exit(f"fabric-kill: {binary} not found; build the "
                 "project first")
    cmd = [binary, "--paper-scale", str(args.cycles),
           "--workers", str(args.workers)]

    # 1. Undisturbed reference run.
    ref = subprocess.run(cmd, capture_output=True, text=True)
    if ref.returncode != 0:
        sys.exit("fabric-kill: reference run failed "
                 f"(rc={ref.returncode}):\n{ref.stderr}")
    ref_hash = sweep_hash(ref.stdout)
    ref_rows = job_hashes(ref.stdout)
    if len(ref_rows) != 12:
        sys.exit("fabric-kill: expected 12 job rows, got "
                 f"{len(ref_rows)}:\n{ref.stdout}")
    print(f"[ok  ] reference sweep: {ref_hash} "
          f"({len(ref_rows)} jobs)")

    # 2. Disturbed run: SIGKILL worker processes as they appear.
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    kills = 0
    victims = set()
    deadline = time.monotonic() + 120
    while (kills < args.kills and proc.poll() is None and
           time.monotonic() < deadline):
        for pid in worker_pids(proc.pid):
            if pid in victims or kills >= args.kills:
                continue
            # Let the victim get a shard dispatched to it before
            # it dies, so the re-queue path actually runs.
            time.sleep(0.05)
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                continue
            victims.add(pid)
            kills += 1
            print(f"[ok  ] SIGKILLed worker {pid}")
        time.sleep(0.01)
    out, err = proc.communicate(timeout=300)

    if kills == 0:
        sys.exit("fabric-kill: never saw a worker process to "
                 f"kill; stderr:\n{err}")
    if proc.returncode != 0:
        sys.exit("fabric-kill: disturbed run failed "
                 f"(rc={proc.returncode}):\n{err}")

    # 3. Recovery must be visible in events...
    recovered = ("re-queued" in err) or ("respawning" in err)
    if not recovered:
        sys.exit("fabric-kill: killed a worker but the "
                 "coordinator never re-queued or respawned; "
                 f"stderr:\n{err}")
    print("[ok  ] coordinator re-queued the lost shard(s)")

    # ...and invisible in the results.
    got_hash = sweep_hash(out)
    got_rows = job_hashes(out)
    if got_rows != ref_rows:
        diff = [f"  {k}: {ref_rows.get(k)} != {got_rows.get(k)}"
                for k in sorted(set(ref_rows) | set(got_rows))
                if ref_rows.get(k) != got_rows.get(k)]
        sys.exit("fabric-kill: per-job hashes diverged after "
                 "worker kill:\n" + "\n".join(diff))
    if got_hash != ref_hash:
        sys.exit(f"fabric-kill: sweep_hash diverged: {ref_hash} "
                 f"!= {got_hash}")
    print(f"[ok  ] disturbed sweep bit-identical: {got_hash}")
    print("fabric-kill: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
