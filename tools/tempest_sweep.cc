/**
 * @file
 * Sharded multi-process sweep driver (DESIGN.md §15).
 *
 *   tempest_sweep --paper-scale [measure_cycles]
 *                 [--workers N] [--base-seed S]
 *                 [--spill-dir DIR] [--job-timeout SECONDS]
 *                 [--in-process]
 *   tempest_sweep --cmp-scale [cycles] [--workers N]
 *   tempest_sweep --worker-fd N       (internal: worker mode)
 *
 * --cmp-scale runs the CMP/3D scaling matrix: 1-, 2- and 4-core
 * dies, flat and with a stacked DRAM layer, cross-core migration
 * on for every multicore job. Jobs run on an in-process thread
 * pool (each is one independent lockstep CmpSimulator); rows end
 * in the job's hashCmpResult and the table ends in a sweep_hash
 * with the same merge-order chain as --paper-scale, so the
 * scheduled CI sweep can gate on one digest.
 *
 * Runs the paper-scale DTM sweep (the same four IQ-floorplan
 * configurations x three benchmarks as `tempest_run
 * --paper-scale`, warm-fork discipline included) across a pool of
 * worker *processes* coordinated by src/sim/fabric. Workers are
 * exec'd copies of this binary in --worker-fd mode, so the sweep
 * exercises the exact process topology the fabric uses in CI.
 *
 * --in-process runs the identical job graph through the
 * single-process experiments::runWarmForkSweep instead — the
 * reference the fabric is gated against. Both paths print one row
 * per job ending in its result_hash, plus a final `sweep_hash`
 * (FNV-1a over the per-job hashes in merge order); bit-identity
 * of the two paths means the sweep_hash lines match at any worker
 * count and across any failure/recovery history.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"
#include "sim/cmp/cmp_simulator.hh"
#include "sim/experiment.hh"
#include "sim/fabric/coordinator.hh"
#include "sim/fabric/worker.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"

namespace
{

using namespace tempest;

/** The paper-scale matrix in dotted config keys: exactly the
 * SimConfigs tempest_run --paper-scale builds (an empty config is
 * iqBase(); see sim_config_io defaults). */
std::vector<std::pair<std::string, Config>>
paperScaleConfigs()
{
    auto make = [](bool toggling, bool throttle) {
        Config cfg;
        if (toggling)
            cfg.set("dtm.toggling", "true");
        if (throttle)
            cfg.set("dtm.fetch_throttling", "true");
        return cfg;
    };
    return {
        {"iq_base", make(false, false)},
        {"iq_toggling", make(true, false)},
        {"iq_throttle", make(false, true)},
        {"iq_toggle_throttle", make(true, true)},
    };
}

std::uint64_t
parseCycles(const char* text, const char* what)
{
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        text[0] == '-' || v == 0)
        fatal(what, ": '", text, "' is not a valid cycle count");
    return v;
}

/** Print the result table; @return (all ok, sweep hash). */
std::pair<bool, std::uint64_t>
report(const std::vector<ExperimentOutcome>& outcomes)
{
    bool all_ok = true;
    std::uint64_t sweep_hash = 0xcbf29ce484222325ULL;
    std::printf("%-20s %-8s %6s %8s %7s  %s\n", "config", "bench",
                "ipc", "cycles_M", "wall_s", "result_hash");
    for (const ExperimentOutcome& o : outcomes) {
        if (!o.ok) {
            std::printf("%-20s %-8s FAILED: %s\n", o.tag.c_str(),
                        o.benchmark.c_str(), o.error.c_str());
            all_ok = false;
            continue;
        }
        const std::uint64_t h =
            experiments::hashSimResult(o.result);
        std::printf("%-20s %-8s %6.3f %8.1f %7.2f  0x%016llx\n",
                    o.tag.c_str(), o.benchmark.c_str(),
                    o.result.ipc, o.result.cycles / 1e6,
                    o.wallSeconds,
                    static_cast<unsigned long long>(h));
        // Merge-order hash chain: any reordering, dropped shard,
        // or bit difference changes the final digest.
        sweep_hash = fnv1a64(&h, sizeof(h), sweep_hash);
    }
    return {all_ok, sweep_hash};
}

/**
 * The CMP/3D scaling matrix: core count x {flat, stacked DRAM},
 * mixed SPEC2000 benchmarks (one per core, memory-bound first so
 * the 3D rows heat), migration on for every multicore die.
 */
std::vector<CmpJob>
cmpScaleJobs(std::uint64_t cycles)
{
    const std::vector<std::string> mix = {"art", "mesa", "eon",
                                          "mcf"};
    std::vector<CmpJob> jobs;
    for (const int cores : {1, 2, 4}) {
        for (const bool dram : {false, true}) {
            CmpJob job;
            job.tag = std::to_string(cores) + "core" +
                      (dram ? "_3d" : "");
            job.config.base = experiments::iqBase();
            job.config.cores = cores;
            job.config.benchmarks.assign(
                mix.begin(), mix.begin() + cores);
            job.config.migration.enabled = cores > 1;
            job.config.stack.dram = dram;
            job.cycles = cycles;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

int
runCmpScale(std::uint64_t cycles, int threads)
{
    const std::vector<CmpJob> jobs = cmpScaleJobs(cycles);
    std::printf("cmp-scale sweep: %zu jobs (1/2/4 cores x "
                "flat/3d), %llu cycles per job, %d thread%s\n",
                jobs.size(),
                static_cast<unsigned long long>(cycles), threads,
                threads == 1 ? "" : "s");

    const auto start = std::chrono::steady_clock::now();
    const std::vector<CmpJobOutcome> outcomes =
        runCmpJobs(jobs, threads);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::uint64_t sweep_hash = 0xcbf29ce484222325ULL;
    std::printf("%-10s %6s %7s %7s %6s %8s %7s  %s\n", "job",
                "ipc", "max_K", "stalls", "migr", "cycles_M",
                "wall_s", "result_hash");
    for (const CmpJobOutcome& o : outcomes) {
        double ipc = 0.0;
        Kelvin max_t = 0.0;
        std::uint64_t stalls = 0;
        for (const SimResult& c : o.result.cores) {
            ipc += c.ipc;
            stalls += c.dtm.globalStalls;
            for (const BlockTempStats& b : c.blocks)
                max_t = std::max(max_t, b.max);
        }
        for (const BlockTempStats& b : o.result.shared)
            max_t = std::max(max_t, b.max);
        std::printf("%-10s %6.3f %7.2f %7llu %6llu %8.1f %7.2f  "
                    "0x%016llx\n",
                    o.tag.c_str(), ipc, max_t,
                    static_cast<unsigned long long>(stalls),
                    static_cast<unsigned long long>(
                        o.result.migration.migrations),
                    o.result.cycles / 1e6, o.wallSeconds,
                    static_cast<unsigned long long>(o.hash));
        sweep_hash =
            fnv1a64(&o.hash, sizeof(o.hash), sweep_hash);
    }
    std::printf("%zu jobs in %.1f s wall\n", outcomes.size(),
                wall);
    std::printf("sweep_hash 0x%016llx\n",
                static_cast<unsigned long long>(sweep_hash));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tempest;

    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: tempest_sweep --paper-scale [measure_cycles] "
            "[--workers N] [--base-seed S] [--spill-dir DIR] "
            "[--job-timeout SECONDS] [--in-process]\n"
            "       tempest_sweep --cmp-scale [cycles] "
            "[--workers N]\n"
            "       tempest_sweep --worker-fd N\n");
        return 2;
    }

    if (std::strcmp(argv[1], "--worker-fd") == 0) {
        if (argc < 3) {
            std::fprintf(stderr,
                         "--worker-fd needs a descriptor\n");
            return 2;
        }
        const int fd = std::atoi(argv[2]);
        if (fd < 0) {
            std::fprintf(stderr, "bad worker fd '%s'\n", argv[2]);
            return 2;
        }
        return fabric::workerMain(fd);
    }

    if (std::strcmp(argv[1], "--cmp-scale") == 0) {
        try {
            std::uint64_t cycles = 10'000'000;
            int threads = 1;
            for (int i = 2; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--workers") {
                    if (++i >= argc)
                        fatal("--workers needs a count");
                    threads = std::atoi(argv[i]);
                    if (threads < 1)
                        fatal("--workers must be >= 1");
                } else {
                    cycles = parseCycles(argv[i], "--cmp-scale");
                }
            }
            return runCmpScale(cycles, threads);
        } catch (const tempest::FatalError&) {
            return 1;
        }
    }

    if (std::strcmp(argv[1], "--paper-scale") != 0) {
        std::fprintf(stderr, "unknown mode '%s'\n", argv[1]);
        return 2;
    }

    try {
        std::uint64_t measure_cycles = 100'000'000;
        int workers = 1;
        std::uint64_t base_seed = 1;
        std::string spill_dir;
        double job_timeout = 0;
        bool in_process = false;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--workers") {
                if (++i >= argc)
                    fatal("--workers needs a count");
                workers = std::atoi(argv[i]);
                if (workers < 1)
                    fatal("--workers must be >= 1");
            } else if (arg == "--base-seed") {
                if (++i >= argc)
                    fatal("--base-seed needs a value");
                base_seed = parseCycles(argv[i], "--base-seed");
            } else if (arg == "--spill-dir") {
                if (++i >= argc)
                    fatal("--spill-dir needs a directory");
                spill_dir = argv[i];
            } else if (arg == "--job-timeout") {
                if (++i >= argc)
                    fatal("--job-timeout needs seconds");
                job_timeout = std::atof(argv[i]);
                if (job_timeout < 0)
                    fatal("--job-timeout must be >= 0");
            } else if (arg == "--in-process") {
                in_process = true;
            } else {
                measure_cycles =
                    parseCycles(argv[i], "--paper-scale");
            }
        }

        // The fabric ships warm snapshots by file path; give it a
        // private spill directory when the caller didn't.
        char made_dir[] = "/tmp/tempest_sweep_XXXXXX";
        bool own_spill = false;
        if (spill_dir.empty() && !in_process) {
            if (!mkdtemp(made_dir))
                fatal("cannot create spill dir: errno ", errno);
            spill_dir = made_dir;
            own_spill = true;
        }

        fabric::SweepSpec spec;
        spec.configs = paperScaleConfigs();
        spec.benchmarks = {"art", "facerec", "mesa"};
        spec.measureCycles = measure_cycles;
        fabric::WarmSpec warm;
        // warmConfig left empty: the dotted-key default IS the
        // neutral iqBase() warm-up tempest_run uses.
        warm.warmupCycles = measure_cycles / 10;

        const std::string pool =
            in_process ? "in-process"
                       : std::to_string(workers) +
                             " worker process(es)";
        std::printf("paper-scale sweep: %zu configs x %zu "
                    "benchmarks, %llu warm-up + %llu measure "
                    "cycles per job, %s\n",
                    spec.configs.size(), spec.benchmarks.size(),
                    static_cast<unsigned long long>(
                        warm.warmupCycles),
                    static_cast<unsigned long long>(
                        measure_cycles),
                    pool.c_str());

        // det:allow is a src/-only lint rule, but keep the idiom:
        // wall time here is reporting only.
        const auto start = std::chrono::steady_clock::now();
        std::vector<ExperimentOutcome> outcomes;
        if (in_process) {
            std::vector<std::pair<std::string, SimConfig>>
                configs;
            configs.reserve(spec.configs.size());
            for (const auto& [tag, cfg] : spec.configs)
                configs.emplace_back(tag,
                                     simConfigFromConfig(cfg));
            experiments::WarmForkOptions wf;
            wf.warmConfig =
                simConfigFromConfig(warm.warmConfig);
            wf.warmupCycles = warm.warmupCycles;
            wf.warmTag = warm.warmTag;
            wf.spillDir = spill_dir;
            ExperimentRunner::Options options;
            options.threads = workers;
            options.baseSeed = base_seed;
            outcomes = experiments::runWarmForkSweep(
                configs, spec.benchmarks, measure_cycles, wf,
                options);
        } else {
            fabric::FabricOptions options;
            options.workers = workers;
            options.baseSeed = base_seed;
            options.spillDir = spill_dir;
            options.workerCommand = {argv[0]};
            options.jobTimeoutSeconds = job_timeout;
            options.onEvent = [](const std::string& msg) {
                std::fprintf(stderr, "fabric: %s\n", msg.c_str());
            };
            fabric::FabricCoordinator coordinator(options);
            outcomes = coordinator.runWarmForkSweep(spec, warm);
        }
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        const auto [all_ok, sweep_hash] = report(outcomes);
        std::printf("%zu jobs in %.1f s wall\n", outcomes.size(),
                    wall);
        std::printf("sweep_hash 0x%016llx\n",
                    static_cast<unsigned long long>(sweep_hash));

        if (own_spill) {
            for (const std::string& b : spec.benchmarks)
                ::unlink((spill_dir + "/warm_" + b + ".ckpt")
                             .c_str());
            ::rmdir(spill_dir.c_str());
        }
        return all_ok ? 0 : 1;
    } catch (const tempest::FatalError&) {
        return 1;
    }
}
