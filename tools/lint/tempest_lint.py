#!/usr/bin/env python3
"""tempest_lint: domain-aware static analysis for Tempest.

Three checkers guard the invariants the bit-identity test gates
(goldens, warm-fork, kill/resume) rely on:

  checkpoint   Every class implementing saveState(StateWriter&) /
               loadState(StateReader&) must reference each non-static
               data member in *both* methods, in the same relative
               order, and the static sequence of serializer calls
               (w.u32/r.u32, ...) must match call-for-call between
               the two methods.  Members that are config-derived or
               rebuildable are exempted with an annotation on (or on
               the line above) their declaration:

                   int half_;  // ckpt:skip(derived: size_ / 2)

               Structure-of-arrays members serialized with a bulk
               blob write are annotated with their array group:

                   std::uint64_t* seq_;  // ckpt:bulk(iq-soa)

               The tag must trail the member on its own line (the
               above-the-line placement ckpt:skip accepts would
               bleed the group onto the next member).  A ckpt:bulk
               member must be written by a
               <param>.blob(...) call in *both* saveState and
               loadState; dropping one array of a group corrupts
               every array serialized after it, so the checker
               reports these with a group-aware diagnostic.

  determinism  Bans wall-clock and entropy sources and
               iteration-order hazards anywhere under src/:
               std::random_device, rand()/srand()/time()/clock()
               and friends, system/steady/high_resolution_clock,
               __rdtsc, iteration over std::unordered_map/set, and
               pointer-keyed std::map/std::set.  Measurement-only
               sites are exempted line-by-line:

                   t = std::chrono::steady_clock::now();  // det:allow(wall-clock metric only)

  hygiene      Headers must carry an include guard (or #pragma
               once), must not contain `using namespace`, and
               std::endl is banned under src/ (hot-path flush).

  lock         Lock discipline (DESIGN.md §17): every member
               annotated GUARDED_BY(m) in common/thread_annotations.hh
               vocabulary may only be referenced inside a scope that
               acquired m (MutexLock/lock_guard/unique_lock/
               scoped_lock) or inside a function annotated
               REQUIRES(m); calls to REQUIRES(m) functions must hold
               m.  This is the GCC-build / inside-lambda complement
               of clang's -Wthread-safety, which the thread-safety
               CI job runs for real.  Known approximations: guard
               and member matching is by name, not by object
               identity; bare (un-prefixed) member references are
               only checked in the declaring file and its .cc/.hh
               sibling (so locals shadowing a guarded name in other
               translation units cannot false-positive); manual
               mutex_.lock() calls are not modeled (the tree locks
               through RAII only).  Escapes: lint:allow(<reason>)
               on the offending line.

  protocol     Wire-schema drift (serve JSON protocol + fabric job
               protocol): for every encodeX with a parseX/decodeX
               in the same file, the JSON keys the encoder writes
               (msg["k"] = ...) must equal the keys the decoder
               reads (find("k") / field(doc, "k")), in the same
               relative order, and StateWriter/StateReader blob
               codecs must agree serializer-call-for-call.  A key
               intentionally read elsewhere (e.g. "op", consumed by
               the dispatch loop rather than the parser) is
               exempted with proto:skip(<key>: <reason>) on or near
               the function.

  chunks       Checkpoint chunk registry: chunkId("XXXX") FourCCs
               must be globally unique across the tree, and
               tools/lint/chunk_registry.json pins every class's
               serializer-call sequence against the current
               kCheckpointVersion — changing a sequence without
               bumping the version is a finding; after a bump,
               --update-chunk-registry re-baselines the registry.

Annotation grammar is enforced centrally: every ckpt:skip /
det:allow / lint:allow / proto:skip annotation must carry a
non-empty reason, and proto:skip must use the "key: reason" form.

Backends: the driver prefers libclang (clang.cindex) when importable
for accurate class/member/method extraction, and falls back to a
robust tokenizer-based C++ parser otherwise (the default in
environments without libclang).  Both feed the same analysis core;
determinism, hygiene, lock, protocol, and chunks are token-based in
either backend.

Usage:
  tempest_lint.py --all                      # lint the whole tree
  tempest_lint.py --checkpoint src/uarch/..  # one checker, some files
  tempest_lint.py --backend text fixture.cc  # force the text backend
  tempest_lint.py --update-chunk-registry    # re-baseline chunks

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Source scrubbing: blank out comments and literals (preserving line
# structure) and harvest lint annotations from the comment text.
# --------------------------------------------------------------------------

ANNOT_RE = re.compile(
    r"(ckpt:skip|ckpt:bulk|det:allow|lint:allow|proto:skip)"
    r"\(([^)]*)\)")


def scrub(text, keep_strings=False):
    """Return (scrubbed_text, annotations).

    Comments, string literals, and char literals are replaced with
    spaces so offsets and line numbers survive.  annotations maps a
    1-based line number to a list of (kind, reason) pairs found in
    comments on that line.  With keep_strings the string literals
    stay in place (the protocol checker reads JSON keys out of
    them); comments are still blanked either way.
    """
    out = []
    annotations = {}
    i, n, line = 0, len(text), 1

    def note_annotations(comment, start_line):
        cline = start_line
        for chunk in comment.split("\n"):
            for m in ANNOT_RE.finditer(chunk):
                annotations.setdefault(cline, []).append(
                    (m.group(1), m.group(2).strip()))
            cline += 1

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            note_annotations(text[i:j], line)
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            note_annotations(text[i:j], line)
            seg = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in seg))
            line += seg.count("\n")
            i = j
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append('""' + " " * (j - i - 2))
            i = j
        elif c == "'":
            # Digit separator (1'000) is not a literal.
            prev = text[i - 1] if i else ""
            nxt = text[i + 1] if i + 1 < n else ""
            if prev.isdigit() and (nxt.isdigit() or nxt.isalpha()):
                out.append(c)
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("''" + " " * (j - i - 2))
            i = j
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), annotations


TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d[\w.]*|::|->|.", re.S)


def tokenize(scrubbed):
    """Tokenize scrubbed C++ into (text, line) pairs, skipping
    whitespace and preprocessor directives."""
    toks = []
    for lineno, raw in enumerate(scrubbed.split("\n"), start=1):
        stripped = raw.lstrip()
        if stripped.startswith("#"):
            continue
        for m in TOKEN_RE.finditer(raw):
            t = m.group(0)
            if not t.strip():
                continue
            toks.append((t, lineno))
    return toks


def is_ident(t):
    return bool(re.match(r"[A-Za-z_]\w*$", t))


# --------------------------------------------------------------------------
# Thread-safety annotation macros (common/thread_annotations.hh).
# They are stripped from the token stream before any structural
# parsing (a GUARDED_BY(m) on a member would otherwise read as a
# function declaration to the member parser) and recorded so the
# lock-discipline checker can reconstruct guard relationships.
# --------------------------------------------------------------------------

TSA_PAREN_MACROS = {
    "CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES",
    "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED", "RELEASE",
    "RELEASE_SHARED", "TRY_ACQUIRE", "EXCLUDES", "ACQUIRED_BEFORE",
    "ACQUIRED_AFTER", "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
}

TSA_BARE_MACROS = {"SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS"}


class TsaRecord:
    """One stripped thread-safety macro.

    idx is the position in the *stripped* token stream where the
    macro stood: stripped[idx - 1] is the token immediately before
    it (the member name for GUARDED_BY, usually the signature's
    closing paren for REQUIRES) and stripped[idx] the token after.
    """

    def __init__(self, macro, args, line, idx):
        self.macro = macro
        self.args = args  # token texts inside the macro's parens
        self.line = line
        self.idx = idx


def strip_tsa_macros(toks):
    """Return (stripped_toks, [TsaRecord])."""
    clean = []
    records = []
    i = 0
    n = len(toks)
    while i < n:
        t, ln = toks[i]
        if t in TSA_BARE_MACROS:
            records.append(TsaRecord(t, [], ln, len(clean)))
            i += 1
            continue
        if (t in TSA_PAREN_MACROS and i + 1 < n and
                toks[i + 1][0] == "("):
            depth = 0
            j = i + 1
            args = []
            while j < n:
                tt = toks[j][0]
                if tt == "(":
                    depth += 1
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth >= 1:
                    args.append(tt)
                j += 1
            records.append(TsaRecord(t, args, ln, len(clean)))
            i = j + 1
            continue
        clean.append((t, ln))
        i += 1
    return clean, records


def has_annotation(annotations, kind, first_line, last_line=None):
    """An annotation exempts its own line(s) and the line below it."""
    return annotation_value(annotations, kind, first_line,
                            last_line) is not None


def annotation_value(annotations, kind, first_line, last_line=None):
    """The annotation's parenthesized value, or None if absent.
    Same placement rules as has_annotation()."""
    last_line = last_line if last_line is not None else first_line
    for ln in range(first_line - 1, last_line + 1):
        for k, reason in annotations.get(ln, []):
            if k == kind:
                return reason
    return None


def same_line_annotation_value(annotations, kind, line):
    """Like annotation_value, but only the given line counts.
    ckpt:bulk uses this: group tags are trailing comments on the
    member they tag, so the above-the-line placement rule would
    bleed a group onto the next (unrelated) member."""
    for k, reason in annotations.get(line, []):
        if k == kind:
            return reason
    return None


# --------------------------------------------------------------------------
# Intermediate representation shared by both backends.
# --------------------------------------------------------------------------


class MethodBody:
    def __init__(self, path, param, toks, line):
        self.path = path
        self.param = param  # StateWriter/StateReader parameter name
        self.toks = toks    # [(text, line)] of the body, braces included
        self.line = line


class ClassInfo:
    def __init__(self, name, path, line):
        self.name = name
        self.path = path
        self.line = line
        self.members = []  # [(name, line, skipped, path, bulk_group)]
        self.save = None   # MethodBody
        self.load = None   # MethodBody


# --------------------------------------------------------------------------
# Text backend: class/member/method extraction with a brace-matching
# statement parser.  Robust to nested types, inline method bodies,
# brace initializers, templates, and multi-line declarations.
# --------------------------------------------------------------------------

ACCESS = {"public", "private", "protected"}
CLASS_KEYS = {"class", "struct", "union"}
NON_MEMBER_KEYS = {"using", "typedef", "friend", "template", "operator",
                   "static_assert"}


def match_brace(toks, i):
    """toks[i] is '{'; return index just past its matching '}'."""
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def member_names_from_stmt(stmt):
    """Classify one class-scope statement; return [(name, line)] of the
    data members it declares (usually 0 or 1)."""
    toks = [t for t in stmt if t[0] not in ("mutable", "inline")]
    if not toks:
        return []
    words = {t[0] for t in toks}
    if words & NON_MEMBER_KEYS or "static" in words:
        return []
    if words & CLASS_KEYS or "enum" in words:
        return []
    if toks[0][0] in ACCESS:
        return []
    # Function declarations have a top-level paren.
    depth_a = 0
    for t, _ in toks:
        if t == "<":
            depth_a += 1
        elif t == ">":
            depth_a = max(0, depth_a - 1)
        elif t == "(" and depth_a == 0:
            return []
    # Split on top-level commas (multi-declarator support).
    segments, seg = [], []
    da = db = dc = 0
    for tok in toks:
        t = tok[0]
        if t == "<":
            da += 1
        elif t == ">":
            da = max(0, da - 1)
        elif t == "[":
            db += 1
        elif t == "]":
            db -= 1
        elif t == "{":
            dc += 1
        elif t == "}":
            dc -= 1
        elif t == "," and da == db == dc == 0:
            segments.append(seg)
            seg = []
            continue
        seg.append(tok)
    segments.append(seg)

    out = []
    for k, seg in enumerate(segments):
        # Cut the declarator at '=' / '{' / ':' (bitfield) at top level.
        da = db = 0
        decl = []
        for tok in seg:
            t = tok[0]
            if t == "<":
                da += 1
            elif t == ">":
                da = max(0, da - 1)
            elif t == "[":
                db += 1
            elif t == "]":
                db -= 1
            if da == 0 and db == 0 and t in ("=", "{", ":"):
                break
            decl.append(tok)
        # Only identifiers at template/array depth 0 can be the
        # declared name (`MicroOp batch_[batchSize_]` declares batch_,
        # not batchSize_; `std::vector<IqEntry> phys_` declares phys_).
        ids = []
        da = db = 0
        for tok in decl:
            t = tok[0]
            if t == "<":
                da += 1
            elif t == ">":
                da = max(0, da - 1)
            elif t == "[":
                db += 1
            elif t == "]":
                db = max(0, db - 1)
            elif (da == 0 and db == 0 and is_ident(t) and
                  t not in ("const", "volatile")):
                ids.append(tok)
        if not ids:
            continue
        # First segment: the last top-level identifier is the name
        # (everything before it is the type).  Later segments are
        # bare declarators: the first identifier is the name.
        name_tok = ids[-1] if k == 0 else ids[0]
        if len(ids) < 2 and k == 0:
            continue  # a lone type name is not a declaration
        out.append((name_tok[0], name_tok[1]))
    return out


def param_name_from_sig(sig_toks):
    """Last identifier inside the () of a one-parameter signature."""
    ids = [t for t, _ in sig_toks if is_ident(t)]
    return ids[-1] if ids else None


def parse_class_body(toks, i, cls, classes, annotations, path):
    """toks[i] is the '{' opening the class body.  Returns the index
    just past the matching '}'."""
    end = match_brace(toks, i)
    j = i + 1
    stmt = []
    while j < end - 1:
        t, ln = toks[j]
        if t in CLASS_KEYS and not stmt or (
                t in CLASS_KEYS and stmt and stmt[-1][0] != "enum"):
            # Possible nested type definition.
            consumed = try_parse_class(toks, j, classes, annotations, path)
            if consumed:
                j = consumed
                stmt = []
                if j < end - 1 and toks[j][0] == ";":
                    j += 1
                continue
        if t == ":" and len(stmt) == 1 and stmt[0][0] in ACCESS:
            stmt = []
            j += 1
            continue
        if t == "{":
            top = [x[0] for x in stmt]
            eq_at = top.index("=") if "=" in top else None
            paren_at = top.index("(") if "(" in top else None
            if eq_at is not None and (paren_at is None or
                                      eq_at < paren_at):
                # Brace initializer inside `= { ... }`.
                j = match_brace(toks, j)
                continue
            if paren_at is not None:
                # Inline method definition: capture save/load bodies.
                name = None
                sig = []
                depth_a = 0
                for k2, (tt, _) in enumerate(stmt):
                    if tt == "<":
                        depth_a += 1
                    elif tt == ">":
                        depth_a = max(0, depth_a - 1)
                    elif tt == "(" and depth_a == 0:
                        name = stmt[k2 - 1][0] if k2 else None
                        depth_p = 0
                        for k3 in range(k2, len(stmt)):
                            if stmt[k3][0] == "(":
                                depth_p += 1
                            elif stmt[k3][0] == ")":
                                depth_p -= 1
                                if depth_p == 0:
                                    break
                        sig = stmt[k2 + 1:k3]
                        break
                body_end = match_brace(toks, j)
                if name in ("saveState", "loadState"):
                    body = MethodBody(path, param_name_from_sig(sig),
                                      toks[j:body_end], ln)
                    if name == "saveState":
                        cls.save = body
                    else:
                        cls.load = body
                j = body_end
                stmt = []
                if j < end - 1 and toks[j][0] == ";":
                    j += 1
                continue
            if "enum" in top:
                j = match_brace(toks, j)
                continue
            # Brace-init member (`std::vector<int> v{...};`): skip the
            # braces, keep accumulating until the ';'.
            j = match_brace(toks, j)
            continue
        if t == ";":
            for name, mline in member_names_from_stmt(stmt):
                first = stmt[0][1]
                skipped = has_annotation(annotations, "ckpt:skip",
                                         first, mline)
                bulk = same_line_annotation_value(
                    annotations, "ckpt:bulk", mline)
                cls.members.append((name, mline, skipped, path,
                                    bulk))
            stmt = []
            j += 1
            continue
        stmt.append((t, ln))
        j += 1
    return end


def try_parse_class(toks, i, classes, annotations, path):
    """If toks[i] starts a class/struct *definition*, parse it and
    return the index past it; otherwise return None."""
    if toks[i][0] not in ("class", "struct"):
        return None
    if i > 0 and toks[i - 1][0] == "enum":
        return None
    j = i + 1
    name = None
    while j < len(toks):
        t = toks[j][0]
        if is_ident(t) and t not in ("final", "alignas"):
            name = t
            j += 1
            break
        if t in (";", "{", "(", ")"):
            break
        j += 1
    if name is None:
        return None
    # Scan past a possible base-clause for '{'; a ';', '(' or ')'
    # first means forward declaration / parameter / variable.
    depth_a = 0
    while j < len(toks):
        t = toks[j][0]
        if t == "<":
            depth_a += 1
        elif t == ">":
            depth_a = max(0, depth_a - 1)
        elif depth_a == 0:
            if t == "{":
                tmp = ClassInfo(name, path, toks[i][1])
                end = parse_class_body(toks, j, tmp, classes,
                                       annotations, path)
                cls = classes.setdefault(name, tmp)
                if cls is not tmp:
                    # Class seen before (e.g. its methods were defined
                    # in an earlier-scanned .cc): merge, never clobber.
                    if not cls.members:
                        cls.members = tmp.members
                    cls.save = cls.save or tmp.save
                    cls.load = cls.load or tmp.load
                return end
            if t in (";", "(", ")", "=") or t in CLASS_KEYS:
                return None
        j += 1
    return None


def parse_file_text_backend(path, toks, annotations, classes):
    """Collect class definitions and out-of-line saveState/loadState
    definitions from one file."""
    i = 0
    n = len(toks)
    while i < n:
        consumed = try_parse_class(toks, i, classes, annotations, path)
        if consumed:
            i = consumed
            continue
        t, ln = toks[i]
        # Out-of-line definition: Class::saveState(...) ... {
        if (t == "::" and i + 1 < n and
                toks[i + 1][0] in ("saveState", "loadState") and
                i >= 1 and is_ident(toks[i - 1][0]) and
                i + 2 < n and toks[i + 2][0] == "("):
            cname = toks[i - 1][0]
            kind = toks[i + 1][0]
            j = i + 2
            depth = 0
            sig = []
            while j < n:
                tt = toks[j][0]
                if tt == "(":
                    depth += 1
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth >= 1:
                    sig.append(toks[j])
                j += 1
            # Skip qualifiers (const, noexcept...) up to '{' or ';'.
            while j < n and toks[j][0] not in ("{", ";"):
                j += 1
            if j < n and toks[j][0] == "{":
                body_end = match_brace(toks, j)
                cls = classes.setdefault(cname,
                                         ClassInfo(cname, path, ln))
                body = MethodBody(path, param_name_from_sig(sig),
                                  toks[j:body_end], ln)
                if kind == "saveState":
                    cls.save = body
                else:
                    cls.load = body
                i = body_end
                continue
        i += 1


# --------------------------------------------------------------------------
# libclang backend: same IR, built from the AST.  Any failure is
# reported and the caller falls back to the text backend.
# --------------------------------------------------------------------------


def build_ir_libclang(files, root, compile_commands, file_cache):
    from clang import cindex  # noqa: imported lazily on purpose

    index = cindex.Index.create()
    args = ["-xc++", "-std=c++20", "-I", os.path.join(root, "src")]
    db = None
    if compile_commands:
        db = cindex.CompilationDatabase.fromDirectory(
            os.path.dirname(os.path.abspath(compile_commands)))

    classes = {}
    wanted = {os.path.abspath(f) for f in files}

    def body_from_cursor(cur, param):
        path = os.path.abspath(cur.extent.start.file.name)
        text, annotations = file_cache.get_scrubbed(path)
        lines = text.split("\n")
        s, e = cur.extent.start, cur.extent.end
        snippet = "\n" * (s.line - 1) + "\n".join(lines[s.line - 1:e.line])
        toks = tokenize(snippet)
        # Trim to the compound body (from the first '{').
        for k, (t, _) in enumerate(toks):
            if t == "{":
                toks = toks[k:]
                break
        return MethodBody(path, param, toks, s.line)

    def visit(cur):
        for c in cur.get_children():
            loc_file = c.location.file
            if loc_file is None:
                visit(c)
                continue
            path = os.path.abspath(loc_file.name)
            if path not in wanted:
                continue
            if c.kind in (cindex.CursorKind.CLASS_DECL,
                          cindex.CursorKind.STRUCT_DECL) and \
                    c.is_definition():
                cls = classes.setdefault(
                    c.spelling, ClassInfo(c.spelling, path,
                                          c.location.line))
                if not cls.members:
                    _t, annotations = file_cache.get_scrubbed(path)
                    for f in c.get_children():
                        if f.kind == cindex.CursorKind.FIELD_DECL:
                            ml = f.location.line
                            skipped = has_annotation(
                                annotations, "ckpt:skip", ml)
                            bulk = same_line_annotation_value(
                                annotations, "ckpt:bulk", ml)
                            cls.members.append(
                                (f.spelling, ml, skipped, path,
                                 bulk))
            if c.kind == cindex.CursorKind.CXX_METHOD and \
                    c.spelling in ("saveState", "loadState") and \
                    c.is_definition():
                parent = c.semantic_parent
                cls = classes.setdefault(
                    parent.spelling,
                    ClassInfo(parent.spelling, path, parent.location.line))
                params = list(c.get_arguments())
                pname = params[0].spelling if params else None
                body = body_from_cursor(c, pname)
                if c.spelling == "saveState":
                    cls.save = body
                else:
                    cls.load = body
            visit(c)

    tus = [f for f in files if f.endswith(".cc")] or list(files)
    for f in tus:
        t_args = list(args)
        if db:
            cmds = db.getCompileCommands(os.path.abspath(f))
            if cmds:
                t_args = [a for a in list(cmds[0].arguments)[1:-1]
                          if a != "-c" and not a.endswith(f)]
        tu = index.parse(f, args=t_args)
        fatal_diags = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal_diags:
            raise RuntimeError(
                "libclang failed on %s: %s" % (f, fatal_diags[0].spelling))
        visit(tu.cursor)
    # Headers not reached through any TU still contribute members.
    for f in files:
        if f.endswith(".hh") or f.endswith(".h"):
            path = os.path.abspath(f)
            known = {c.path for c in classes.values()}
            if path not in known:
                toks, annotations = file_cache.get_tokens(path)
                parse_file_text_backend(path, toks, annotations, classes)
    return classes


# --------------------------------------------------------------------------
# Checkpoint-coverage analysis (backend-independent).
# --------------------------------------------------------------------------

SERIALIZER_METHODS = {"u8", "u32", "u64", "i32", "i64", "boolean", "f64",
                      "str", "blob"}


def serializer_sequence(body):
    """Ordered list of (method, line, attributed_member_candidates) for
    every `<param>.<method>(...)` call in a save/load body."""
    toks = body.toks
    out = []
    i = 0
    while i + 3 < len(toks):
        if (toks[i][0] == body.param and toks[i + 1][0] == "." and
                toks[i + 2][0] in SERIALIZER_METHODS and
                toks[i + 3][0] == "("):
            # Collect identifiers in the surrounding statement for
            # attribution in diagnostics.
            s = i
            while s > 0 and toks[s][0] not in (";", "{", "}"):
                s -= 1
            e = i
            while e < len(toks) and toks[e][0] not in (";", "{", "}"):
                e += 1
            idents = [t for t, _ in toks[s:e] if is_ident(t)]
            out.append((toks[i + 2][0], toks[i][1], idents))
        i += 1
    return out


def body_refs(body):
    """Map identifier -> (first_index, count) over a method body."""
    refs = {}
    for idx, (t, _ln) in enumerate(body.toks):
        if is_ident(t):
            if t not in refs:
                refs[t] = [idx, 0]
            refs[t][1] += 1
    return refs


def check_checkpoint(classes, findings):
    for name in sorted(classes):
        cls = classes[name]
        if cls.save is None and cls.load is None:
            continue
        if cls.save is None or cls.load is None:
            missing = "saveState" if cls.save is None else "loadState"
            present = cls.load or cls.save
            findings.append((present.path, present.line, "checkpoint",
                             "class %s implements %s but no matching %s "
                             "was found" % (name,
                                            "loadState" if cls.save is None
                                            else "saveState", missing)))
            continue
        save_refs = body_refs(cls.save)
        load_refs = body_refs(cls.load)
        save_calls = serializer_sequence(cls.save)
        load_calls = serializer_sequence(cls.load)

        def blob_covers(calls, member):
            return any(m == "blob" and member in idents
                       for m, _ln, idents in calls)

        ordered = []
        for mname, mline, skipped, mpath, bulk in cls.members:
            if skipped:
                continue
            in_save = mname in save_refs
            in_load = mname in load_refs
            if in_save and in_load:
                ordered.append((mname, save_refs[mname][0],
                                load_refs[mname][0]))
                # A bulk-group array must actually flow through a
                # blob call on both sides; an incidental mention
                # (say, a memset in loadState) must not count as
                # serialization.
                if bulk is not None:
                    sides = [side for side, calls in
                             (("saveState", save_calls),
                              ("loadState", load_calls))
                             if not blob_covers(calls, mname)]
                    if sides:
                        findings.append(
                            (mpath, mline, "checkpoint",
                             "class %s: member '%s' of bulk group "
                             "'%s' is not written by a blob(...) "
                             "call in %s" % (name, mname, bulk,
                                             " or ".join(sides))))
                continue
            if not in_save and not in_load:
                side = "saveState or loadState"
            elif not in_save:
                side = "saveState"
            else:
                side = "loadState"
            if bulk is not None:
                findings.append(
                    (mpath, mline, "checkpoint",
                     "class %s: member '%s' of bulk group '%s' is not "
                     "referenced in %s — a dropped array in a "
                     "bulk-serialized group corrupts every array "
                     "restored after it" % (name, mname, bulk, side)))
            else:
                findings.append(
                    (mpath, mline, "checkpoint",
                     "class %s: member '%s' is not referenced in %s and has "
                     "no ckpt:skip(<reason>) annotation" % (name, mname,
                                                            side)))

        # Relative order of first references must match.
        by_save = [m for m, _s, _l in
                   sorted(ordered, key=lambda x: x[1])]
        by_load = [m for m, _s, _l in
                   sorted(ordered, key=lambda x: x[2])]
        for a, b in zip(by_save, by_load):
            if a != b:
                findings.append(
                    (cls.save.path, cls.save.line, "checkpoint",
                     "class %s: member order differs between saveState "
                     "and loadState (saveState touches '%s' where "
                     "loadState touches '%s' first)" % (name, a, b)))
                break

        # Static serializer-call sequences must match call-for-call.
        sseq = serializer_sequence(cls.save)
        lseq = serializer_sequence(cls.load)
        member_set = {m[0] for m in cls.members}
        if [m for m, _l, _i in sseq] != [m for m, _l, _i in lseq]:
            k = 0
            while (k < len(sseq) and k < len(lseq) and
                   sseq[k][0] == lseq[k][0]):
                k += 1

            def describe(seq, k):
                if k >= len(seq):
                    return "nothing (sequence ends after %d calls)" % len(seq)
                method, line, idents = seq[k]
                members = [i for i in idents if i in member_set]
                attr = (" near member '%s'" % members[0]) if members else ""
                return "%s at line %d%s" % (method, line, attr)

            findings.append(
                (cls.save.path, cls.save.line, "checkpoint",
                 "class %s: serializer call sequences diverge at call "
                 "#%d: saveState has %s, loadState has %s"
                 % (name, k + 1, describe(sseq, k), describe(lseq, k))))


# --------------------------------------------------------------------------
# Determinism checker (token-based).
# --------------------------------------------------------------------------

BANNED_IDENTS = {
    "random_device": "std::random_device is non-deterministic entropy",
    "system_clock": "wall-clock read",
    "steady_clock": "wall-clock read",
    "high_resolution_clock": "wall-clock read",
    "__rdtsc": "timestamp-counter read",
}

BANNED_CALLS = {
    "rand": "C PRNG with global hidden state",
    "srand": "C PRNG with global hidden state",
    "rand_r": "C PRNG",
    "random": "C PRNG with global hidden state",
    "srandom": "C PRNG with global hidden state",
    "drand48": "C PRNG with global hidden state",
    "lrand48": "C PRNG with global hidden state",
    "mrand48": "C PRNG with global hidden state",
    "time": "wall-clock read",
    "clock": "CPU-clock read",
    "gettimeofday": "wall-clock read",
    "clock_gettime": "wall-clock read",
    "timespec_get": "wall-clock read",
}

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
ORDERED_ASSOC = {"map", "set", "multimap", "multiset"}
ITER_METHODS = {"begin", "end", "cbegin", "cend", "rbegin", "rend"}


def skip_template_args(toks, i):
    """toks[i] is '<'; return index past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i][0]
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in (";", "{"):
            return i  # not actually template args
        i += 1
    return len(toks)


def check_determinism(path, toks, annotations, findings):
    def allowed(line):
        return has_annotation(annotations, "det:allow", line)

    def add(line, msg):
        if not allowed(line):
            findings.append((path, line, "determinism", msg))

    # Pass 1: collect names declared with unordered container types.
    unordered_vars = set()
    for i, (t, ln) in enumerate(toks):
        if t in UNORDERED_TYPES:
            j = i + 1
            if j < len(toks) and toks[j][0] == "<":
                j = skip_template_args(toks, j)
            while j < len(toks) and toks[j][0] in ("&", "*", "const"):
                j += 1
            if j < len(toks) and is_ident(toks[j][0]):
                unordered_vars.add(toks[j][0])

    # Pass 2: banned tokens and calls, unordered iteration,
    # pointer-keyed ordered containers.
    n = len(toks)
    for i, (t, ln) in enumerate(toks):
        prev = toks[i - 1][0] if i else ""
        nxt = toks[i + 1][0] if i + 1 < n else ""

        if t in BANNED_IDENTS and prev != ".":
            add(ln, "banned identifier '%s': %s (annotate the line with "
                "det:allow(<reason>) if measurement-only)"
                % (t, BANNED_IDENTS[t]))
            continue

        if t in BANNED_CALLS and nxt == "(":
            if prev == ".":
                continue  # member call on some object, not the libc one
            if prev == "::" and (i < 2 or toks[i - 2][0] != "std"):
                continue  # qualified call into a project namespace
            add(ln, "banned call '%s()': %s undermines bit-identical "
                "replay" % (t, BANNED_CALLS[t]))
            continue

        # Range-for over an unordered container.
        if t == "for" and nxt == "(":
            end = i + 1
            depth = 0
            colon = None
            while end < n:
                tt = toks[end][0]
                if tt == "(":
                    depth += 1
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif tt == ":" and depth == 1 and colon is None:
                    colon = end
                end += 1
            if colon is not None:
                range_ids = [x for x, _ in toks[colon + 1:end]
                             if is_ident(x)]
                bad = [x for x in range_ids
                       if x in unordered_vars or x in UNORDERED_TYPES]
                if bad:
                    add(ln, "iteration over unordered container '%s': "
                        "traversal order is implementation-defined and "
                        "breaks bit-identical replay" % bad[0])

        # something.begin() on a known unordered container.
        if (t in unordered_vars and nxt == "." and i + 3 < n and
                toks[i + 2][0] in ITER_METHODS and toks[i + 3][0] == "("):
            add(ln, "iterator over unordered container '%s': traversal "
                "order is implementation-defined" % t)

        # Pointer-keyed ordered containers: std::map<T*, ...> etc.
        if (t in ORDERED_ASSOC and prev == "::" and i >= 2 and
                toks[i - 2][0] == "std" and nxt == "<"):
            j = i + 1
            depth = 0
            first_arg = []
            while j < n:
                tt = toks[j][0]
                if tt == "<":
                    depth += 1
                elif tt == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif tt == "," and depth == 1:
                    break
                elif depth >= 1:
                    first_arg.append(tt)
                j += 1
            if "*" in first_arg:
                add(ln, "pointer-keyed std::%s: key order depends on "
                    "allocation addresses, which vary run to run" % t)


# --------------------------------------------------------------------------
# Generic hygiene checker.
# --------------------------------------------------------------------------


def check_hygiene(path, raw_text, toks, findings):
    is_header = path.endswith((".hh", ".h", ".hpp"))
    if is_header:
        has_guard = "#pragma once" in raw_text
        m = re.search(r"^\s*#\s*ifndef\s+(\w+)", raw_text, re.M)
        if m:
            if re.search(r"^\s*#\s*define\s+%s\b" % re.escape(m.group(1)),
                         raw_text, re.M):
                has_guard = True
        if not has_guard:
            findings.append((path, 1, "hygiene",
                             "header has no include guard "
                             "(#ifndef/#define pair or #pragma once)"))
    for i, (t, ln) in enumerate(toks):
        if (is_header and t == "using" and i + 1 < len(toks) and
                toks[i + 1][0] == "namespace"):
            findings.append((path, ln, "hygiene",
                             "'using namespace' in a header leaks into "
                             "every includer"))
        if t == "endl" and i >= 2 and toks[i - 1][0] == "::" and \
                toks[i - 2][0] == "std":
            findings.append((path, ln, "hygiene",
                             "std::endl flushes the stream; use '\\n'"))


# --------------------------------------------------------------------------
# Lock-discipline checker (token-based; DESIGN.md §17).
#
# The static complement of clang's -Wthread-safety: it enforces the
# same GUARDED_BY/REQUIRES vocabulary in builds where the macros
# expand to nothing (GCC) and in lambda bodies (which clang analyzes
# as separate, unannotated functions).  Matching is by *name*, not
# object identity — precise enough for this tree, where guarded
# member names are unique per guard — and RAII-only: acquisitions
# are MutexLock/lock_guard/unique_lock/scoped_lock constructions,
# releases are scope exit or an explicit <lockvar>.unlock().
# --------------------------------------------------------------------------

LOCK_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}
SIG_QUALIFIERS = {"const", "noexcept", "override", "final", "volatile",
                  "mutable"}


def _guard_of(arg_toks):
    """Guard name of one capability expression: its last identifier
    (`conn->writeMutex` -> writeMutex, `mutex_` -> mutex_)."""
    ids = [t for t in arg_toks if is_ident(t)]
    return ids[-1] if ids else None


def _guards_of(arg_toks):
    """Guard names of a comma-separated capability list."""
    out, seg = [], []
    for t in arg_toks:
        if t == ",":
            g = _guard_of(seg)
            if g:
                out.append(g)
            seg = []
        else:
            seg.append(t)
    g = _guard_of(seg)
    if g:
        out.append(g)
    return out


def _stem(path):
    return os.path.basename(path).split(".", 1)[0]


def _requires_function_name(toks, rec):
    """Function a REQUIRES record is attached to: walk back over
    trailing qualifiers to the signature's ')' and take the
    identifier before the matching '('."""
    k = rec.idx - 1
    while k >= 0 and toks[k][0] in SIG_QUALIFIERS:
        k -= 1
    if k < 0 or toks[k][0] != ")":
        return None
    depth = 0
    while k >= 0:
        t = toks[k][0]
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                break
        k -= 1
    if k > 0 and is_ident(toks[k - 1][0]):
        return toks[k - 1][0]
    return None


def collect_lock_model(files, cache):
    """Cross-file lock model.

    Returns (guarded, decl_skip, requires_funcs):
      guarded        member name -> (guard name, declaring path)
      decl_skip      path -> token indexes of the declarations
                     themselves (a declaration is not a reference)
      requires_funcs function name -> ordered guard list callers
                     must hold (REQUIRES contract)
    """
    guarded = {}
    decl_skip = {}
    requires_funcs = {}
    for path in files:
        apath = os.path.abspath(path)
        toks, _ann = cache.get_tokens(apath)
        for rec in cache.get_tsa(apath):
            if rec.macro in ("GUARDED_BY", "PT_GUARDED_BY"):
                k = rec.idx - 1
                if k >= 0 and is_ident(toks[k][0]):
                    guard = _guard_of(rec.args)
                    if guard:
                        guarded[toks[k][0]] = (guard, apath)
                        decl_skip.setdefault(apath, set()).add(k)
            elif rec.macro in ("REQUIRES", "REQUIRES_SHARED"):
                name = _requires_function_name(toks, rec)
                guards = _guards_of(rec.args)
                if name and guards:
                    have = requires_funcs.setdefault(name, [])
                    for g in guards:
                        if g not in have:
                            have.append(g)
    return guarded, decl_skip, requires_funcs


def _requires_body_braces(toks, tsa):
    """Brace token index -> guards, for REQUIRES on *definitions*
    (a '{' follows the annotation, possibly past qualifiers)."""
    out = {}
    for rec in tsa:
        if rec.macro not in ("REQUIRES", "REQUIRES_SHARED"):
            continue
        j = rec.idx
        while j < len(toks) and toks[j][0] in SIG_QUALIFIERS:
            j += 1
        if j < len(toks) and toks[j][0] == "{":
            out.setdefault(j, []).extend(_guards_of(rec.args))
    return out


def _lambda_body_braces(toks):
    """Token indexes of '{' that open lambda bodies.  Outer locks
    are not visible inside them: a lambda may run on another thread
    (thread entry, deferred callback), so only locks acquired
    *inside* the body count.  This is exactly the hole clang's
    analysis has the other way around (it silently trusts lambdas);
    the tree's style rule is: no guarded access in lambdas without
    acquiring the lock in the lambda."""
    opens = set()
    n = len(toks)
    i = 0
    while i < n:
        if toks[i][0] != "[":
            i += 1
            continue
        prev = toks[i - 1][0] if i else ""
        if is_ident(prev) or prev in ("]", ")"):
            i += 1
            continue  # array subscript, not a lambda-intro
        d = 0
        j = i
        while j < n:
            if toks[j][0] == "[":
                d += 1
            elif toks[j][0] == "]":
                d -= 1
                if d == 0:
                    break
            j += 1
        j += 1
        if j < n and toks[j][0] == "(":
            d = 0
            while j < n:
                if toks[j][0] == "(":
                    d += 1
                elif toks[j][0] == ")":
                    d -= 1
                    if d == 0:
                        break
                j += 1
            j += 1
        # Skip specifiers / trailing return type up to the body.
        while j < n and toks[j][0] not in ("{", ";", ")", ",", "=",
                                           "}", "]"):
            j += 1
        if j < n and toks[j][0] == "{":
            opens.add(j)
        i += 1
    return opens


# Keywords that may directly precede a call expression; an identifier
# before `name(` that is NOT one of these marks a declaration
# (`void flushLocked(...)`), which is a contract, not a call.
CALL_CONTEXT_KEYWORDS = {"return", "throw", "case", "else", "do",
                         "co_return", "co_await", "co_yield"}


def check_lock_discipline(path, toks, tsa, annotations, guarded,
                          decl_skip, requires_funcs, findings):
    apath = os.path.abspath(path)
    skip = decl_skip.get(apath, set())
    req_bodies = _requires_body_braces(toks, tsa)
    lambda_opens = _lambda_body_braces(toks)

    def exempt(line):
        return has_annotation(annotations, "lint:allow", line)

    # Held entries: [entry_depth, guard, lockvar, suspended_at].
    # suspended_at models `lock.unlock()` inside a nested block
    # that exits early (shed paths): the lock is invisible until
    # that block closes, then live again on the fall-through path
    # that never executed the unlock. An unlock at the acquisition
    # depth itself is a plain linear early release.
    held = []
    barriers = []   # brace depths at which a lambda body opened
    lockvar_guards = {}  # lock variable -> [guards] (for re-lock)
    depth = 0
    n = len(toks)
    i = 0
    while i < n:
        t, ln = toks[i]
        if t == "{":
            depth += 1
            if i in lambda_opens:
                barriers.append(depth)
            for g in req_bodies.get(i, []):
                held.append([depth, g, None, None])
            i += 1
            continue
        if t == "}":
            held = [h for h in held if h[0] < depth]
            for h in held:
                if h[3] is not None and h[3] >= depth:
                    h[3] = None
            while barriers and barriers[-1] >= depth:
                barriers.pop()
            depth = max(0, depth - 1)
            i += 1
            continue

        # RAII acquisition: LockType [<...>] var ( args ) .
        if t in LOCK_TYPES:
            j = i + 1
            if j < n and toks[j][0] == "<":
                j = skip_template_args(toks, j)
            if (j + 1 < n and is_ident(toks[j][0]) and
                    toks[j + 1][0] == "("):
                var = toks[j][0]
                d = 0
                k = j + 1
                args = []
                while k < n:
                    tt = toks[k][0]
                    if tt == "(":
                        d += 1
                    elif tt == ")":
                        d -= 1
                        if d == 0:
                            break
                    elif d >= 1:
                        args.append(tt)
                    k += 1
                guards = _guards_of(args)
                if guards:
                    for g in guards:
                        held.append([depth, g, var, None])
                    lockvar_guards[var] = guards
                i = k + 1
                continue

        # Explicit early release / re-acquire through a lock var.
        if (is_ident(t) and t in lockvar_guards and i + 3 < n and
                toks[i + 1][0] == "." and
                toks[i + 2][0] in ("unlock", "lock") and
                toks[i + 3][0] == "("):
            if toks[i + 2][0] == "unlock":
                kept = []
                for h in held:
                    if h[2] != t:
                        kept.append(h)
                    elif h[0] < depth:
                        h[3] = depth  # early-exit branch release
                        kept.append(h)
                held = kept
            else:
                held = [h for h in held if h[2] != t]
                for g in lockvar_guards[t]:
                    held.append([depth, g, t, None])
            i += 4
            continue

        prev = toks[i - 1][0] if i else ""
        nxt = toks[i + 1][0] if i + 1 < n else ""

        def visible(guard):
            floor = barriers[-1] if barriers else 0
            return any(h[1] == guard and h[0] >= floor and
                       h[3] is None for h in held)

        # Call-site contract: callers of REQUIRES(m) functions must
        # hold m.
        if (is_ident(t) and t in requires_funcs and nxt == "(" and
                prev not in (".", "->", "::") and
                not (is_ident(prev) and
                     prev not in CALL_CONTEXT_KEYWORDS)):
            for g in requires_funcs[t]:
                if not visible(g) and not exempt(ln):
                    findings.append(
                        (apath, ln, "lock",
                         "call to '%s' REQUIRES(%s) but '%s' is not "
                         "held here" % (t, g, g)))
            i += 1
            continue

        # Guarded-member reference.
        if is_ident(t) and t in guarded and i not in skip:
            guard, decl_path = guarded[t]
            member_access = prev in (".", "->")
            bare_ref = (prev not in (".", "->", "::") and nxt != "(" and
                        t.endswith("_") and
                        _stem(apath) == _stem(decl_path))
            if (member_access or bare_ref) and not visible(guard) \
                    and not exempt(ln):
                findings.append(
                    (apath, ln, "lock",
                     "member '%s' (GUARDED_BY %s) referenced without "
                     "holding '%s' — acquire the lock in this scope, "
                     "mark the function REQUIRES(%s), or annotate "
                     "the line lint:allow(<reason>)"
                     % (t, guard, guard, guard)))
        i += 1


# --------------------------------------------------------------------------
# Protocol-schema checker: encoder/decoder key sets must match,
# mirrored-order, and StateWriter/StateReader blob codecs must agree
# serializer-call-for-call (same discipline as the checkpoint
# checker, applied to the serve JSON protocol and the fabric wire
# format).
# --------------------------------------------------------------------------

PROTO_NAME_RE = re.compile(r"^(encode|parse|decode)[A-Z0-9_]")
PROTO_WRITE_RE = re.compile(r'\[\s*"([^"]+)"\s*\]\s*=')
PROTO_READ_RE = re.compile(
    r'\b(?:find|field)\s*\(\s*(?:[A-Za-z_]\w*\s*,\s*)?"([^"]+)"')
BLOB_CODEC_TYPES = {"StateWriter", "StateReader"}


class ProtoFunc:
    def __init__(self, name, path, start_line, end_line, toks):
        self.name = name
        self.path = path
        self.start_line = start_line
        self.end_line = end_line
        self.toks = toks  # body tokens, braces included


def collect_proto_functions(path, toks):
    """encode*/parse*/decode* function *definitions* in one file."""
    funcs = {}
    n = len(toks)
    i = 0
    while i < n:
        t, ln = toks[i]
        if (is_ident(t) and PROTO_NAME_RE.match(t) and i + 1 < n and
                toks[i + 1][0] == "("):
            d = 0
            j = i + 1
            while j < n:
                tt = toks[j][0]
                if tt == "(":
                    d += 1
                elif tt == ")":
                    d -= 1
                    if d == 0:
                        break
                j += 1
            k = j + 1
            while k < n and toks[k][0] in SIG_QUALIFIERS:
                k += 1
            if k < n and toks[k][0] == "{":
                end = match_brace(toks, k)
                end_line = toks[end - 1][1] if end - 1 < n else ln
                funcs[t] = ProtoFunc(t, path, ln, end_line,
                                     toks[k:end])
                i = end
                continue
        i += 1
    return funcs


def _ordered_unique(keys):
    seen = set()
    out = []
    for k in keys:
        if k not in seen:
            seen.add(k)
            out.append(k)
    return out


def _proto_skips(annotations, start_line, end_line):
    """proto:skip(<key>: <reason>) keys on or near a function (three
    lines above its signature through its closing brace)."""
    keys = set()
    for ln in range(max(1, start_line - 3), end_line + 1):
        for kind, reason in annotations.get(ln, []):
            if kind == "proto:skip" and ":" in reason:
                keys.add(reason.split(":", 1)[0].strip())
    return keys


def _codec_sequence(body_toks):
    """Serializer calls through locally declared StateWriter /
    StateReader variables, in order: [(method, line)]."""
    var_names = set()
    n = len(body_toks)
    for i, (t, _ln) in enumerate(body_toks):
        if t in BLOB_CODEC_TYPES and i + 1 < n and \
                is_ident(body_toks[i + 1][0]):
            var_names.add(body_toks[i + 1][0])
    out = []
    i = 0
    while i + 3 < n:
        if (body_toks[i][0] in var_names and
                body_toks[i + 1][0] == "." and
                body_toks[i + 2][0] in SERIALIZER_METHODS and
                body_toks[i + 3][0] == "("):
            out.append((body_toks[i + 2][0], body_toks[i][1]))
        i += 1
    return out


def check_protocol(path, toks, annotations, cache, findings):
    apath = os.path.abspath(path)
    funcs = collect_proto_functions(apath, toks)
    if not funcs:
        return
    lines = cache.get_scrubbed_keep_strings(apath).split("\n")

    def body_text(fn):
        return "\n".join(lines[fn.start_line - 1:fn.end_line])

    for name in sorted(funcs):
        if not name.startswith("encode"):
            continue
        enc = funcs[name]
        suffix = name[len("encode"):]
        dec = funcs.get("parse" + suffix) or \
            funcs.get("decode" + suffix)
        if dec is None:
            continue  # one-sided (peer implemented elsewhere, e.g. Python)
        writes = _ordered_unique(PROTO_WRITE_RE.findall(body_text(enc)))
        reads = _ordered_unique(PROTO_READ_RE.findall(body_text(dec)))
        skips = (_proto_skips(annotations, enc.start_line,
                              enc.end_line) |
                 _proto_skips(annotations, dec.start_line,
                              dec.end_line))
        for k in writes:
            if k not in reads and k not in skips:
                findings.append(
                    (apath, enc.start_line, "protocol",
                     "%s writes key '%s' that %s never reads — a "
                     "write-only field silently drifts out of the "
                     "schema (proto:skip(%s: <reason>) if it is "
                     "consumed elsewhere)"
                     % (enc.name, k, dec.name, k)))
        for k in reads:
            if k not in writes and k not in skips:
                findings.append(
                    (apath, dec.start_line, "protocol",
                     "%s reads key '%s' that %s never writes"
                     % (dec.name, k, enc.name)))
        common_w = [k for k in writes if k in reads]
        common_r = [k for k in reads if k in writes]
        for a, b in zip(common_w, common_r):
            if a != b:
                findings.append(
                    (apath, enc.start_line, "protocol",
                     "key order differs between %s and %s: encoder "
                     "writes '%s' where decoder reads '%s' first — "
                     "mirrored order keeps the schema reviewable "
                     "side by side" % (enc.name, dec.name, a, b)))
                break
        eseq = _codec_sequence(enc.toks)
        dseq = _codec_sequence(dec.toks)
        if [m for m, _l in eseq] != [m for m, _l in dseq]:
            k = 0
            while (k < len(eseq) and k < len(dseq) and
                   eseq[k][0] == dseq[k][0]):
                k += 1

            def describe(seq, k):
                if k >= len(seq):
                    return ("nothing (sequence ends after %d calls)"
                            % len(seq))
                return "%s at line %d" % (seq[k][0], seq[k][1])

            findings.append(
                (apath, enc.start_line, "protocol",
                 "blob codec sequences diverge between %s and %s at "
                 "call #%d: encoder has %s, decoder has %s"
                 % (enc.name, dec.name, k + 1, describe(eseq, k),
                    describe(dseq, k))))


# --------------------------------------------------------------------------
# Chunk-registry checker: FourCC uniqueness plus a committed
# baseline (tools/lint/chunk_registry.json) of every class's
# serializer-call sequence against the current kCheckpointVersion.
# A sequence change without a version bump is exactly the failure
# the versioned checkpoint format exists to prevent: an old-format
# file read by new code with no way to tell.
# --------------------------------------------------------------------------

CHUNK_RE = re.compile(r'chunkId\s*\(\s*"([^"]*)"\s*\)')
VERSION_RE = re.compile(r"kCheckpointVersion\s*=\s*(\d+)")


def current_checkpoint_version(root, cache):
    path = os.path.join(root, "src", "sim", "checkpoint",
                        "checkpoint.hh")
    if not os.path.exists(path):
        return None
    m = VERSION_RE.search(cache.get_raw(path))
    return int(m.group(1)) if m else None


def collect_fourccs(files, cache):
    """FourCC tag -> [(path, line)] from chunkId("XXXX") literals."""
    tags = {}
    for path in files:
        apath = os.path.abspath(path)
        text = cache.get_scrubbed_keep_strings(apath)
        for lineno, line in enumerate(text.split("\n"), start=1):
            for m in CHUNK_RE.finditer(line):
                tags.setdefault(m.group(1), []).append(
                    (apath, lineno))
    return tags


def serializer_registry(classes):
    """Class name -> saveState serializer-method sequence."""
    return {name: [m for m, _l, _i in serializer_sequence(cls.save)]
            for name, cls in classes.items() if cls.save}


def update_chunk_registry(files, cache, classes, registry_path,
                          root):
    tags = collect_fourccs(files, cache)
    data = {
        "checkpoint_version": current_checkpoint_version(root,
                                                         cache),
        "fourccs": {tag: os.path.relpath(sites[0][0], root)
                    for tag, sites in sorted(tags.items())},
        "serializers": serializer_registry(classes),
    }
    with open(registry_path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def check_chunks(files, cache, classes, registry_path, root,
                 check_registry, findings):
    tags = collect_fourccs(files, cache)
    for tag in sorted(tags):
        sites = tags[tag]
        for path, line in sites[1:]:
            _t, ann = cache.get_scrubbed(path)
            if has_annotation(ann, "lint:allow", line):
                continue
            findings.append(
                (path, line, "chunks",
                 "chunk FourCC '%s' already used at %s:%d — FourCCs "
                 "must be globally unique so a reader can never "
                 "mistake one chunk format for another"
                 % (tag, os.path.relpath(sites[0][0], root),
                    sites[0][1])))
    if not check_registry:
        return
    if not os.path.exists(registry_path):
        findings.append(
            (registry_path, 1, "chunks",
             "chunk registry missing; generate it with "
             "--update-chunk-registry"))
        return
    with open(registry_path) as f:
        reg = json.load(f)
    version = current_checkpoint_version(root, cache)
    reg_version = reg.get("checkpoint_version")
    reg_sers = reg.get("serializers", {})
    reg_tags = reg.get("fourccs", {})
    for tag in sorted(tags):
        if tag not in reg_tags:
            path, line = tags[tag][0]
            findings.append(
                (path, line, "chunks",
                 "chunk FourCC '%s' is not in the chunk registry — "
                 "review the format change, then run "
                 "--update-chunk-registry" % tag))
    current = serializer_registry(classes)
    for name in sorted(current):
        seq = current[name]
        cls = classes[name]
        if name not in reg_sers:
            findings.append(
                (cls.save.path, cls.save.line, "chunks",
                 "serializer sequence of class %s is not in the "
                 "chunk registry — run --update-chunk-registry"
                 % name))
        elif reg_sers[name] != seq:
            if (version is not None and reg_version is not None and
                    version == reg_version):
                findings.append(
                    (cls.save.path, cls.save.line, "chunks",
                     "class %s changed its serializer call sequence "
                     "[%s] -> [%s] but kCheckpointVersion is still "
                     "%d — an old checkpoint would be misread with "
                     "no way to tell; bump the version in "
                     "checkpoint.hh, then run --update-chunk-registry"
                     % (name, ",".join(reg_sers[name]) or "<empty>",
                        ",".join(seq) or "<empty>", version)))
            else:
                findings.append(
                    (cls.save.path, cls.save.line, "chunks",
                     "class %s changed its serializer call sequence "
                     "and kCheckpointVersion was bumped — run "
                     "--update-chunk-registry to re-baseline"
                     % name))
    # Stale registry entries (deleted classes/tags) are not findings:
    # they cannot corrupt anything, and the next --update cleans them.


# --------------------------------------------------------------------------
# Annotation grammar, centrally enforced: every annotation kind
# requires a non-empty reason/value (the individual passes used to
# accept an empty one silently), and proto:skip must name its key.
# --------------------------------------------------------------------------


def check_annotation_grammar(path, annotations, findings):
    for line in sorted(annotations):
        for kind, reason in annotations[line]:
            if not reason.strip():
                findings.append(
                    (path, line, "annotation",
                     "%s() needs a reason: %s(<why this is safe>)"
                     % (kind, kind)))
            elif kind == "proto:skip" and ":" not in reason:
                findings.append(
                    (path, line, "annotation",
                     "proto:skip(%s) must use the form "
                     "proto:skip(<key>: <reason>)" % reason))


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


class FileCache:
    def __init__(self):
        self._raw = {}
        self._scrubbed = {}
        self._keyed = {}
        self._tokens = {}
        self._tsa = {}

    def get_raw(self, path):
        path = os.path.abspath(path)
        if path not in self._raw:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                self._raw[path] = f.read()
        return self._raw[path]

    def get_scrubbed(self, path):
        path = os.path.abspath(path)
        if path not in self._scrubbed:
            self._scrubbed[path] = scrub(self.get_raw(path))
        return self._scrubbed[path]

    def get_scrubbed_keep_strings(self, path):
        """Comment-blanked text with string literals intact (the
        protocol and chunk checkers read keys out of literals)."""
        path = os.path.abspath(path)
        if path not in self._keyed:
            text, _annotations = scrub(self.get_raw(path),
                                       keep_strings=True)
            self._keyed[path] = text
        return self._keyed[path]

    def get_tokens(self, path):
        """Token stream with thread-safety macros stripped (see
        strip_tsa_macros) plus the comment annotations."""
        path = os.path.abspath(path)
        if path not in self._tokens:
            scrubbed, annotations = self.get_scrubbed(path)
            toks, tsa = strip_tsa_macros(tokenize(scrubbed))
            self._tokens[path] = (toks, annotations)
            self._tsa[path] = tsa
        return self._tokens[path]

    def get_tsa(self, path):
        path = os.path.abspath(path)
        if path not in self._tsa:
            self.get_tokens(path)
        return self._tsa[path]


def collect_files(root, explicit):
    if explicit:
        return [os.path.abspath(p) for p in explicit]
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirs, names in os.walk(src):
        for nm in sorted(names):
            if nm.endswith((".cc", ".hh", ".h", ".hpp", ".cpp")):
                out.append(os.path.join(dirpath, nm))
    return sorted(out)


def build_ir_text(files, file_cache):
    classes = {}
    for path in files:
        toks, annotations = file_cache.get_tokens(path)
        parse_file_text_backend(os.path.abspath(path), toks, annotations,
                                classes)
    return classes


def main(argv):
    ap = argparse.ArgumentParser(
        description="Tempest domain-aware static analysis")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above "
                         "this script)")
    ap.add_argument("--all", action="store_true",
                    help="run every checker (default when no checker "
                         "flag is given)")
    ap.add_argument("--checkpoint", action="store_true",
                    help="run the checkpoint-coverage checker")
    ap.add_argument("--determinism", action="store_true",
                    help="run the determinism checker")
    ap.add_argument("--hygiene", action="store_true",
                    help="run the generic hygiene checker")
    ap.add_argument("--lock", action="store_true",
                    help="run the lock-discipline checker")
    ap.add_argument("--protocol", action="store_true",
                    help="run the protocol-schema checker")
    ap.add_argument("--chunks", action="store_true",
                    help="run the chunk-registry checker")
    ap.add_argument("--chunk-registry", default=None,
                    help="registry JSON baseline (default: "
                         "chunk_registry.json next to this script; "
                         "only compared on full-tree runs unless "
                         "given explicitly)")
    ap.add_argument("--update-chunk-registry", action="store_true",
                    help="re-baseline the chunk registry from the "
                         "current tree and exit")
    ap.add_argument("--backend", choices=["auto", "libclang", "text"],
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the libclang backend")
    ap.add_argument("files", nargs="*",
                    help="explicit files to lint (default: src/ tree)")
    opts = ap.parse_args(argv)

    root = opts.root or os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                     ".."))
    files = collect_files(root, opts.files)
    if not files:
        print("tempest_lint: no input files", file=sys.stderr)
        return 2

    none_given = not (opts.checkpoint or opts.determinism or
                      opts.hygiene or opts.lock or opts.protocol or
                      opts.chunks)
    run_ckpt = opts.checkpoint or opts.all or none_given
    run_det = opts.determinism or opts.all or none_given
    run_hyg = opts.hygiene or opts.all or none_given
    run_lock = opts.lock or opts.all or none_given
    run_proto = opts.protocol or opts.all or none_given
    run_chunks = opts.chunks or opts.all or none_given

    registry_path = opts.chunk_registry or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "chunk_registry.json")
    # Registry comparison needs the whole tree to be meaningful: a
    # partial file list would mis-read every absent class as
    # unchanged and every fixture as unregistered. Explicit
    # --chunk-registry opts in regardless (fixture tests use it).
    check_registry = bool(opts.chunk_registry) or not opts.files

    cache = FileCache()
    findings = []

    classes = None
    if run_ckpt or run_chunks or opts.update_chunk_registry:
        if opts.backend in ("auto", "libclang"):
            try:
                classes = build_ir_libclang(files, root,
                                            opts.compile_commands, cache)
                implementers = [c for c in classes.values()
                                if c.save or c.load]
                if not implementers and opts.backend == "auto":
                    # Sanity cross-check: libclang saw no checkpoint
                    # classes at all; trust the text parser instead.
                    classes = None
            except Exception as e:  # noqa: libclang is best-effort
                if opts.backend == "libclang":
                    print("tempest_lint: libclang backend failed: %s"
                          % e, file=sys.stderr)
                    return 2
                classes = None
        if classes is None:
            classes = build_ir_text(files, cache)

    if opts.update_chunk_registry:
        update_chunk_registry(files, cache, classes, registry_path,
                              root)
        print("tempest_lint: wrote %s"
              % os.path.relpath(registry_path, root))
        return 0

    if run_ckpt:
        check_checkpoint(classes, findings)
    if run_chunks:
        check_chunks(files, cache, classes, registry_path, root,
                     check_registry, findings)

    lock_model = None
    if run_lock:
        lock_model = collect_lock_model(files, cache)

    for path in files:
        apath = os.path.abspath(path)
        toks, annotations = cache.get_tokens(path)
        check_annotation_grammar(apath, annotations, findings)
        if run_det:
            check_determinism(apath, toks, annotations, findings)
        if run_hyg:
            check_hygiene(apath, cache.get_raw(path), toks, findings)
        if run_lock:
            guarded, decl_skip, requires_funcs = lock_model
            check_lock_discipline(apath, toks, cache.get_tsa(apath),
                                  annotations, guarded, decl_skip,
                                  requires_funcs, findings)
        if run_proto:
            check_protocol(apath, toks, annotations, cache, findings)

    findings.sort(key=lambda f: (f[0], f[1]))
    for path, line, checker, msg in findings:
        rel = os.path.relpath(path, root)
        print("%s:%d: [%s] %s" % (rel, line, checker, msg))
    if findings:
        print("tempest_lint: %d finding(s)" % len(findings),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
