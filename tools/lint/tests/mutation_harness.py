#!/usr/bin/env python3
"""Mutation tests for the tempest_lint lock and protocol passes.

A checker that never fires is indistinguishable from one that
works; this harness proves the new passes fire by breaking the real
tree in controlled ways and demanding a diagnostic for each break:

  lock      delete one `MutexLock lock(...);` acquisition line from
            an annotated translation unit and lint the mutant pair —
            every deletion that exposes a GUARDED_BY member or a
            REQUIRES call site must produce a [lock] finding.
  protocol  delete every write of one schema key from a paired
            encoder (keys the paired decoder actually reads; skip-
            listed routing keys cannot produce a schema diff), and
            separately delete single serializer calls from the blob
            codec writer — each mutation must produce a [protocol]
            finding.

Gates: >= 95% of lock mutations caught (the one tolerated survivor
is the stopMutex_ acquisition in ServeDaemon::waitStopped, which
guards a condition-variable handshake and no data — there is
nothing for the checker to see), 100% of protocol mutations caught.

src/sim/runner.cc is not a lock target: its two progress mutexes
are function-locals serializing stdout writes, with no guarded
members for a deletion to expose.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT_DIR = os.path.abspath(os.path.join(HERE, ".."))
LINT = os.path.join(LINT_DIR, "tempest_lint.py")
ROOT = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

sys.path.insert(0, LINT_DIR)
import tempest_lint as TL  # noqa: E402

# (.cc with acquisitions, header with the GUARDED_BY declarations)
LOCK_TARGETS = [
    ("src/serve/result_cache.cc", "src/serve/result_cache.hh"),
    ("src/serve/server.cc", "src/serve/server.hh"),
    ("src/serve/throttler.cc", "src/serve/throttler.hh"),
    ("src/serve/warm_pool.cc", "src/serve/warm_pool.hh"),
]

PROTO_TARGETS = [
    "src/serve/protocol.cc",
    "src/sim/fabric/fabric_protocol.cc",
]

ACQUIRE_RE = re.compile(r"^\s*MutexLock\s+\w+\(.*\);\s*$")
LOCK_GATE = 0.95


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT, "--backend", "text", "--root", ROOT]
        + args, capture_output=True, text=True)


def read_lines(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read().split("\n")


def write_mutant(tmp, name, lines, dropped):
    out = os.path.join(tmp, name)
    with open(out, "w", encoding="utf-8") as f:
        f.write("\n".join(l for i, l in enumerate(lines, start=1)
                          if i not in dropped))
    return out


def mutate_locks(tmp):
    caught, survivors, total = 0, [], 0
    for cc_rel, hh_rel in LOCK_TARGETS:
        cc = os.path.join(ROOT, cc_rel)
        hh = os.path.join(ROOT, hh_rel)
        lines = read_lines(cc)
        shutil.copy(hh, os.path.join(tmp, os.path.basename(hh)))
        sites = [i for i, l in enumerate(lines, start=1)
                 if ACQUIRE_RE.match(l)]
        for site in sites:
            total += 1
            mutant = write_mutant(tmp, os.path.basename(cc), lines,
                                  {site})
            r = run_lint(["--lock", mutant,
                          os.path.join(tmp, os.path.basename(hh))])
            if r.returncode == 1 and "[lock]" in r.stdout:
                caught += 1
            else:
                survivors.append("%s:%d: %s"
                                 % (cc_rel, site, lines[site - 1].strip()))
    return caught, total, survivors


def proto_pairs(path):
    cache = TL.FileCache()
    toks, _ann = cache.get_tokens(path)
    funcs = TL.collect_proto_functions(path, toks)
    lines = cache.get_scrubbed_keep_strings(path).split("\n")
    pairs = []
    for name in sorted(funcs):
        if not name.startswith("encode"):
            continue
        suffix = name[len("encode"):]
        dec = funcs.get("parse" + suffix) or \
            funcs.get("decode" + suffix)
        if dec is not None:
            pairs.append((funcs[name], dec))
    return pairs, lines


def mutate_protocol(tmp):
    caught, survivors, total = 0, [], 0
    for rel in PROTO_TARGETS:
        path = os.path.join(ROOT, rel)
        src_lines = read_lines(path)
        pairs, scrub_lines = proto_pairs(path)
        for enc, dec in pairs:
            enc_text = "\n".join(
                scrub_lines[enc.start_line - 1:enc.end_line])
            dec_text = "\n".join(
                scrub_lines[dec.start_line - 1:dec.end_line])
            writes = TL._ordered_unique(
                TL.PROTO_WRITE_RE.findall(enc_text))
            reads = set(TL.PROTO_READ_RE.findall(dec_text))
            for key in writes:
                if key not in reads:
                    continue  # skip-listed routing key: no diff
                key_re = re.compile(r'\[\s*"%s"\s*\]\s*='
                                    % re.escape(key))
                dropped = {
                    i for i in range(enc.start_line,
                                     enc.end_line + 1)
                    if key_re.search(scrub_lines[i - 1])}
                total += 1
                mutant = write_mutant(tmp, os.path.basename(path),
                                      src_lines, dropped)
                r = run_lint(["--protocol", mutant])
                if r.returncode == 1 and "[protocol]" in r.stdout:
                    caught += 1
                else:
                    survivors.append("%s: %s key '%s'"
                                     % (rel, enc.name, key))
            # Blob codec: drop one writer-side serializer call.
            for method, line in TL._codec_sequence(enc.toks):
                total += 1
                mutant = write_mutant(tmp, os.path.basename(path),
                                      src_lines, {line})
                r = run_lint(["--protocol", mutant])
                if r.returncode == 1 and "[protocol]" in r.stdout:
                    caught += 1
                else:
                    survivors.append("%s: %s %s() at line %d"
                                     % (rel, enc.name, method, line))
    return caught, total, survivors


def main():
    tmp = tempfile.mkdtemp(prefix="tempest_lint_mut_")
    try:
        lock_caught, lock_total, lock_miss = mutate_locks(tmp)
        proto_caught, proto_total, proto_miss = mutate_protocol(tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    lock_ratio = lock_caught / lock_total if lock_total else 0.0
    proto_ratio = proto_caught / proto_total if proto_total else 0.0
    print("mutation_harness: lock %d/%d caught (%.1f%%)"
          % (lock_caught, lock_total, 100.0 * lock_ratio))
    for s in lock_miss:
        print("  survivor: " + s)
    print("mutation_harness: protocol %d/%d caught (%.1f%%)"
          % (proto_caught, proto_total, 100.0 * proto_ratio))
    for s in proto_miss:
        print("  survivor: " + s)

    ok = True
    if lock_total == 0 or lock_ratio < LOCK_GATE:
        print("FAIL: lock mutation catch rate below %.0f%%"
              % (100.0 * LOCK_GATE))
        ok = False
    if proto_total == 0 or proto_caught != proto_total:
        print("FAIL: protocol mutations must all be caught")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
