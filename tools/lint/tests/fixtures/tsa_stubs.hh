// Thread-safety stand-ins so lock fixtures parse standalone under
// the libclang backend. The lock checker itself is token-based and
// recognizes the macro names directly, so these definitions are
// never linted (fixtures are passed as explicit files; headers in
// this directory are not).
#ifndef TEMPEST_LINT_FIXTURE_TSA_STUBS_HH
#define TEMPEST_LINT_FIXTURE_TSA_STUBS_HH

#define CAPABILITY(x)
#define SCOPED_CAPABILITY
#define GUARDED_BY(x)
#define REQUIRES(...)
#define ACQUIRE(...)
#define RELEASE(...)
#define EXCLUDES(...)

namespace tempest
{

class Mutex
{
  public:
    void lock();
    void unlock();
};

class MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex);
    ~MutexLock();
    void unlock();
    void lock();
};

} // namespace tempest

#endif // TEMPEST_LINT_FIXTURE_TSA_STUBS_HH
