// Fixture: a lock held in the enclosing scope does not protect a
// lambda body — the lambda may run on another thread after the
// scope unlocked (thread entry, deferred callback). Touching the
// guarded member inside it must be flagged; this is the exact hole
// clang's analysis leaves open (it treats lambdas as separate,
// unannotated functions and trusts them silently).
#include "tsa_stubs.hh"

namespace tempest
{

template <typename F>
void runLater(F f);

class Publisher
{
  public:
    void
    publish(int v)
    {
        MutexLock lock(mutex_);
        value_ = v; // fine: lock held
        runLater([this] {
            ++value_; // inside lambda: must be flagged
        });
    }

  private:
    Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};

} // namespace tempest
