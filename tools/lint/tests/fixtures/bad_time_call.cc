// Fixture: wall-clock seeds (time(nullptr)) and C PRNGs (rand)
// break bit-identical replay.  Both calls must be flagged.
#include <cstdlib>
#include <ctime>

namespace tempest
{

int
wallClockDraw()
{
    std::srand(static_cast<unsigned>(time(nullptr)));
    return std::rand();
}

} // namespace tempest
