// Fixture: a std::map keyed on pointers orders its elements by
// allocation address, which varies run to run (ASLR, allocator
// state).  Must be flagged.
#include <map>

namespace tempest
{

struct Block;

std::map<Block*, double> powerOfBlock;

} // namespace tempest
