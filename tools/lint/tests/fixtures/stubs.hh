// Minimal serializer stubs so fixtures parse standalone under the
// libclang backend (the text backend does not need them).
#ifndef TEMPEST_LINT_FIXTURE_STUBS_HH
#define TEMPEST_LINT_FIXTURE_STUBS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tempest
{

class StateWriter
{
  public:
    void u8(std::uint8_t);
    void u32(std::uint32_t);
    void u64(std::uint64_t);
    void i32(std::int32_t);
    void i64(std::int64_t);
    void boolean(bool);
    void f64(double);
    void str(const std::string&);
    void blob(const void*, std::size_t);
};

class StateReader
{
  public:
    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    std::int64_t i64();
    bool boolean();
    double f64();
    std::string str();
    void blob(void*, std::size_t);
};

} // namespace tempest

#endif // TEMPEST_LINT_FIXTURE_STUBS_HH
