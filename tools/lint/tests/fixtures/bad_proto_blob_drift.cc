// Fixture: a blob codec pair whose serializer call sequences
// diverge — the writer emits u32 where the reader consumes u64.
// Exactly the checkpoint save/load discipline applied to wire
// blobs; must be flagged call-for-call.
#include "proto_stubs.hh"
#include "stubs.hh"

namespace tempest
{

struct Sample
{
    std::string tag;
    std::uint64_t ticks = 0;
};

std::string
encodeSampleBlob(const Sample& s)
{
    StateWriter w;
    w.str(s.tag);
    w.u32(static_cast<std::uint32_t>(s.ticks)); // writer: u32
    return std::string();
}

Sample
decodeSampleBlob(const std::string& bytes)
{
    StateReader r;
    Sample s;
    s.tag = r.str();
    s.ticks = r.u64(); // reader: u64 — must be flagged
    return s;
}

} // namespace tempest
