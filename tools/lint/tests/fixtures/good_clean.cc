// Fixture: a fully covered component — every member serialized in
// both directions, same order, matching serializer types.  Must
// lint clean.
#include "stubs.hh"

namespace tempest
{

class CleanComponent
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(count_);
        w.f64(value_);
        w.boolean(armed_);
        w.str(name_);
    }

    void
    loadState(StateReader& r)
    {
        count_ = r.u32();
        value_ = r.f64();
        armed_ = r.boolean();
        name_ = r.str();
    }

  private:
    std::uint32_t count_ = 0;
    double value_ = 0.0;
    bool armed_ = false;
    std::string name_;
};

} // namespace tempest
