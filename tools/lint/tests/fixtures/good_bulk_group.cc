// Fixture: a complete bulk group — every annotated array is blobbed
// in both directions, in the same order, plus a derived index that
// is rebuilt rather than serialized.  Must lint clean.
#include "stubs.hh"

namespace tempest
{

class BulkGroupComplete
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(count_);
        w.blob(head_, 64);
        w.blob(mid_, 64);
        w.blob(tail_, 64);
    }

    void
    loadState(StateReader& r)
    {
        count_ = r.u32();
        r.blob(head_, 64);
        r.blob(mid_, 64);
        r.blob(tail_, 64);
        rebuildIndex();
    }

  private:
    void rebuildIndex();

    std::uint32_t count_ = 0;
    std::uint64_t* head_; // ckpt:bulk(soa)
    std::uint64_t* mid_;  // ckpt:bulk(soa)
    std::uint64_t* tail_; // ckpt:bulk(soa)
    std::uint64_t* index_; // ckpt:skip(derived, rebuildIndex)
};

} // namespace tempest
