// Fixture: 'lost_' is written by saveState but never read back by
// loadState.  The checkpoint-coverage checker must flag the missing
// side (this is the drift mode that silently corrupts resumed runs).
#include "stubs.hh"

namespace tempest
{

class MissingLoadMember
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u64(kept_);
        w.u64(lost_);
    }

    void
    loadState(StateReader& r)
    {
        kept_ = r.u64();
    }

  private:
    std::uint64_t kept_ = 0;
    std::uint64_t lost_ = 0;
};

} // namespace tempest
