// Fixture: iterating a std::unordered_map visits elements in an
// implementation-defined (and libstdc++-version-dependent) order.
// Any simulation statistic accumulated in FP across that iteration
// loses bit-identity.  Must be flagged.
#include <cstdint>
#include <unordered_map>

namespace tempest
{

double
sumAll(const std::unordered_map<std::uint64_t, double>& watts)
{
    double total = 0.0;
    for (const auto& kv : watts)
        total += kv.second;
    return total;
}

} // namespace tempest
