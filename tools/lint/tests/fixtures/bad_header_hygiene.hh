// Fixture: a header with no include guard and a file-scope
// `using namespace` — both hygiene findings.

#include <vector>

using namespace std;

namespace tempest
{

inline vector<int>
makeVector()
{
    return {};
}

} // namespace tempest
