// Fixture: GUARDED_BY members touched without the guard held —
// a bare reference in a method that never locks, and a ->access
// from a helper outside any critical section. Both must be
// flagged by the lock checker.
#include "tsa_stubs.hh"

namespace tempest
{

class Counter
{
  public:
    void
    bump()
    {
        MutexLock lock(mutex_);
        ++count_;
    }

    long
    read() const
    {
        return count_; // no lock: must be flagged
    }

  private:
    mutable Mutex mutex_;
    long count_ GUARDED_BY(mutex_) = 0;
};

struct Slot
{
    Mutex slotMutex;
    int value GUARDED_BY(slotMutex) = 0;
};

inline int
peek(Slot* slot)
{
    return slot->value; // no lock: must be flagged
}

} // namespace tempest
