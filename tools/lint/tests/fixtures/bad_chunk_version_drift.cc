// Fixture: a class whose serializer call sequence no longer
// matches the committed registry baseline while the checkpoint
// version stayed put (the paired registry JSON records the old
// [u32] sequence at the current version). An old-format file
// would be misread with no way to tell; must be flagged with the
// bump-the-version remedy.
#include "stubs.hh"

namespace tempest
{

class DriftClass
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(count_);
        w.u64(extra_); // grew a field; version not bumped
    }

    void
    loadState(StateReader& r)
    {
        count_ = r.u32();
        extra_ = r.u64();
    }

  private:
    std::uint32_t count_ = 0;
    std::uint64_t extra_ = 0;
};

} // namespace tempest
