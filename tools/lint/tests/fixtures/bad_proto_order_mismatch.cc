// Fixture: encoder and decoder agree on the key set but not the
// order. Mirrored order is the rule that keeps the two halves of a
// schema reviewable side by side; the swap must be flagged.
#include "proto_stubs.hh"

namespace tempest
{

struct Probe
{
    std::string name;
    std::uint64_t cycles = 0;
};

std::string
encodeProbe(const Probe& p)
{
    Json msg;
    msg["name"] = Json(p.name);
    msg["cycles"] = Json(p.cycles);
    return msg.dump();
}

Probe
parseProbe(const Json& doc)
{
    Probe p;
    p.cycles = field(doc, "cycles").asUnsigned(); // swapped order
    p.name = field(doc, "name").asString();
    return p;
}

} // namespace tempest
