// Fixture: two checkpoint chunks claiming the same FourCC. A
// reader seeking by tag could land on either format; the second
// use must be flagged.
#include "stubs.hh"

namespace tempest
{

std::uint32_t chunkId(const char* tag);

void
saveAlpha(StateWriter& w)
{
    w.u32(chunkId("DUPE"));
}

void
saveBeta(StateWriter& w)
{
    w.u32(chunkId("DUPE")); // duplicate FourCC: must be flagged
}

} // namespace tempest
