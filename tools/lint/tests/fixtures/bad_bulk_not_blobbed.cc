// Fixture: 'mid_' of bulk group 'soa' is mentioned in loadState
// (a memset), which satisfies the plain referenced-in-both-bodies
// rule — but it never flows through a blob(...) call there, so its
// restored contents are whatever the memset left.  The bulk check
// must flag it anyway.
#include "stubs.hh"

#include <cstring>

namespace tempest
{

class BulkNotBlobbed
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.blob(head_, 64);
        w.blob(mid_, 64);
    }

    void
    loadState(StateReader& r)
    {
        r.blob(head_, 64);
        std::memset(mid_, 0, 64);
    }

  private:
    std::uint64_t* head_; // ckpt:bulk(soa)
    std::uint64_t* mid_;  // ckpt:bulk(soa)
};

} // namespace tempest
