// Fixture: saveState writes 'wide_' as u64 but loadState reads it as
// u32 — the static serializer-call sequences diverge, which the
// checker must flag even though every member is referenced on both
// sides in the same order.
#include "stubs.hh"

namespace tempest
{

class SerializerTypeMismatch
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u64(wide_);
        w.boolean(flag_);
    }

    void
    loadState(StateReader& r)
    {
        wide_ = r.u32();
        flag_ = r.boolean();
    }

  private:
    std::uint64_t wide_ = 0;
    bool flag_ = false;
};

} // namespace tempest
