// Minimal JSON stand-in so protocol fixtures parse standalone under
// the libclang backend; the protocol checker is token-based and
// only looks at msg["key"] writes and find/field("key") reads.
#ifndef TEMPEST_LINT_FIXTURE_PROTO_STUBS_HH
#define TEMPEST_LINT_FIXTURE_PROTO_STUBS_HH

#include <cstdint>
#include <string>

namespace tempest
{

struct Json
{
    Json();
    explicit Json(const char* text);
    explicit Json(const std::string& text);
    explicit Json(std::uint64_t value);
    explicit Json(bool value);
    Json& operator[](const std::string& key);
    const Json* find(const char* key) const;
    std::string asString() const;
    std::uint64_t asUnsigned() const;
    bool asBool() const;
    std::string dump() const;
};

const Json& field(const Json& doc, const char* key);

} // namespace tempest

#endif // TEMPEST_LINT_FIXTURE_PROTO_STUBS_HH
