// Fixture: a REQUIRES(mutex_) helper called without the lock held.
// The helper's own body is fine (REQUIRES seeds the held set); the
// unlocked call site must be flagged.
#include "tsa_stubs.hh"

namespace tempest
{

class Queue
{
  public:
    void
    push(int v)
    {
        MutexLock lock(mutex_);
        pushLocked(v); // fine: lock held
    }

    void
    pushRacy(int v)
    {
        pushLocked(v); // no lock: must be flagged
    }

  private:
    void
    pushLocked(int v) REQUIRES(mutex_)
    {
        last_ = v;
        ++size_;
    }

    Mutex mutex_;
    int last_ GUARDED_BY(mutex_) = 0;
    int size_ GUARDED_BY(mutex_) = 0;
};

} // namespace tempest
