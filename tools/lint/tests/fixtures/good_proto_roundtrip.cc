// Fixture: a well-formed protocol pair — mirrored key order, a
// routing key legitimately consumed elsewhere excused with
// proto:skip, and a blob codec that matches call-for-call. Must
// lint clean.
#include "proto_stubs.hh"
#include "stubs.hh"

namespace tempest
{

struct Report
{
    std::string host;
    std::uint64_t jobs = 0;
    bool healthy = true;
    std::string payload;
};

// proto:skip(op: routing key consumed by the dispatch loop)
std::string
encodeReport(const Report& r)
{
    Json msg;
    msg["op"] = Json("report");
    msg["host"] = Json(r.host);
    msg["jobs"] = Json(r.jobs);
    msg["healthy"] = Json(r.healthy);
    return msg.dump();
}

Report
parseReport(const Json& doc)
{
    Report r;
    r.host = field(doc, "host").asString();
    r.jobs = field(doc, "jobs").asUnsigned();
    r.healthy = field(doc, "healthy").asBool();
    return r;
}

std::string
encodeReportBlob(const Report& rep)
{
    StateWriter w;
    w.str(rep.host);
    w.u64(rep.jobs);
    w.boolean(rep.healthy);
    return std::string();
}

Report
decodeReportBlob(const std::string& bytes)
{
    StateReader r;
    Report rep;
    rep.host = r.str();
    rep.jobs = r.u64();
    rep.healthy = r.boolean();
    return rep;
}

} // namespace tempest
