// Fixture: annotation grammar violations — an escape hatch without
// a reason and a proto:skip missing its key. Reasons are the audit
// trail that makes every suppression reviewable; both must be
// flagged by the central grammar check.
#include "stubs.hh"

namespace tempest
{

class SilentSkip
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(kept_);
    }

    void
    loadState(StateReader& r)
    {
        kept_ = r.u32();
    }

  private:
    std::uint32_t kept_ = 0;
    std::uint32_t scratch_ = 0; // ckpt:skip()
};

// proto:skip(op)
int placeholder();

} // namespace tempest
