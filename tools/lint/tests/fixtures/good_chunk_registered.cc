// Fixture: a checkpoint class whose FourCC and serializer sequence
// match the committed registry baseline exactly. Must lint clean
// against chunk_registry_good.json.
#include "stubs.hh"

namespace tempest
{

std::uint32_t chunkId(const char* tag);

class SteadyClass
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(chunkId("STDY"));
        w.u32(count_);
        w.f64(value_);
    }

    void
    loadState(StateReader& r)
    {
        (void)r.u32(); // chunk tag, validated by the caller
        count_ = r.u32();
        value_ = r.f64();
    }

  private:
    std::uint32_t count_ = 0;
    double value_ = 0.0;
};

} // namespace tempest
