// Fixture: both members travel in both directions, but loadState
// reads them in the opposite order — a byte-stream aliasing bug the
// order checker must flag.
#include "stubs.hh"

namespace tempest
{

class OrderMismatch
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u64(first_);
        w.u64(second_);
    }

    void
    loadState(StateReader& r)
    {
        second_ = r.u64();
        first_ = r.u64();
    }

  private:
    std::uint64_t first_ = 0;
    std::uint64_t second_ = 0;
};

} // namespace tempest
