// Fixture: every lock-discipline shape the checker must accept —
// RAII sections, a REQUIRES helper used under the lock, an early
// unlock on a nested early-exit branch (the fall-through path still
// holds the lock), explicit unlock/relock through the lock
// variable, a lock acquired inside the lambda that needs it, and a
// lint:allow escape with a reason. Must lint clean.
#include "tsa_stubs.hh"

namespace tempest
{

template <typename F>
void runLater(F f);

bool shouldShed();
void replyBusy();

class Pipeline
{
  public:
    void
    submit(int v)
    {
        MutexLock lock(mutex_);
        if (depth_ > 8) {
            if (shouldShed()) {
                lock.unlock();
                replyBusy(); // lock released on the shed path only
                return;
            }
        }
        ++depth_; // fall-through path: still locked
        appendLocked(v);
    }

    void
    relock()
    {
        MutexLock lock(mutex_);
        ++depth_;
        lock.unlock();
        lock.lock();
        --depth_; // re-acquired: fine
    }

    void
    later(int v)
    {
        runLater([this, v] {
            MutexLock lock(mutex_);
            appendLocked(v); // lock acquired inside the lambda
        });
    }

    int
    depthRelaxed() const
    {
        // lint:allow(monitoring probe, torn reads acceptable here)
        return depth_;
    }

  private:
    void
    appendLocked(int v) REQUIRES(mutex_)
    {
        tail_ = v;
    }

    mutable Mutex mutex_;
    int depth_ GUARDED_BY(mutex_) = 0;
    int tail_ GUARDED_BY(mutex_) = 0;
};

} // namespace tempest
