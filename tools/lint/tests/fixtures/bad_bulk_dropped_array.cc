// Fixture: three SoA arrays form bulk group 'soa', but saveState
// blobs only two of them.  The restored bytes of every array after
// the dropped one land in the wrong member, so the checker must
// flag 'mid_' with a group-aware diagnostic.
#include "stubs.hh"

namespace tempest
{

class BulkDroppedArray
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(count_);
        w.blob(head_, 64);
        w.blob(tail_, 64);
    }

    void
    loadState(StateReader& r)
    {
        count_ = r.u32();
        r.blob(head_, 64);
        r.blob(mid_, 64);
        r.blob(tail_, 64);
    }

  private:
    std::uint32_t count_ = 0;
    std::uint64_t* head_; // ckpt:bulk(soa)
    std::uint64_t* mid_;  // ckpt:bulk(soa)
    std::uint64_t* tail_; // ckpt:bulk(soa)
};

} // namespace tempest
