// Fixture: 'orphan_' is read by loadState but saveState never wrote
// it — the restored value comes from bytes belonging to some other
// field.  Must be flagged.
#include "stubs.hh"

namespace tempest
{

class MissingSaveMember
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(kept_);
    }

    void
    loadState(StateReader& r)
    {
        kept_ = r.u32();
        orphan_ = r.u32();
    }

  private:
    std::uint32_t kept_ = 0;
    std::uint32_t orphan_ = 0;
};

} // namespace tempest
