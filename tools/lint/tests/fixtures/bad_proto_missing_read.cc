// Fixture: encoder/decoder key-set drift in both directions — the
// encoder writes a key the decoder never reads, and the decoder
// reads a key the encoder never writes. Both must be flagged.
#include "proto_stubs.hh"

namespace tempest
{

struct Ticket
{
    std::string owner;
    std::uint64_t cost = 0;
    bool rush = false;
};

std::string
encodeTicket(const Ticket& t)
{
    Json msg;
    msg["owner"] = Json(t.owner);
    msg["cost"] = Json(t.cost);
    msg["legacy_flag"] = Json(true); // never read: must be flagged
    return msg.dump();
}

Ticket
parseTicket(const Json& doc)
{
    Ticket t;
    t.owner = field(doc, "owner").asString();
    t.cost = field(doc, "cost").asUnsigned();
    t.rush = field(doc, "rush").asBool(); // never written: flagged
    return t;
}

} // namespace tempest
