// Fixture: std::random_device is hardware entropy — two runs with
// the same seed diverge.  The determinism checker must flag it.
#include <random>

namespace tempest
{

unsigned
nondeterministicSeed()
{
    std::random_device rd;
    return rd();
}

} // namespace tempest
