// Fixture: the annotation grammar in action — must lint clean.
//
//   - derived_ and scratch_ are exempt from checkpoint coverage via
//     ckpt:skip(<reason>) (trailing or preceding-line form),
//   - the steady_clock read is exempt via det:allow(<reason>).
#include <chrono>
#include <cstdint>
#include <vector>

#include "stubs.hh"

namespace tempest
{

class AnnotatedComponent
{
  public:
    void
    saveState(StateWriter& w) const
    {
        w.u32(size_);
        w.u64(ticks_);
    }

    void
    loadState(StateReader& r)
    {
        size_ = r.u32();
        ticks_ = r.u64();
    }

    double
    wallSeconds() const
    {
        return std::chrono::duration<double>(
                   // det:allow(measurement only, fixture)
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::uint32_t size_ = 0;
    std::uint64_t ticks_ = 0;
    std::uint32_t derived_ = 0; // ckpt:skip(derived: size_ squared)
    // ckpt:skip(per-cycle scratch, fixture)
    std::vector<double> scratch_;
    // ckpt:skip(measurement baseline, fixture) det:allow(measurement only)
    std::chrono::steady_clock::time_point start_;
};

} // namespace tempest
