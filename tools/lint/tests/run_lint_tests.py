#!/usr/bin/env python3
"""Self-test for tempest_lint.py.

Every known-bad fixture must be flagged by the right checker with
the right diagnostic; the good fixtures and the real tree must lint
clean.  Run directly or through ctest (registered as `lint_self_test`
and `lint_tree` in tools/CMakeLists.txt).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "..", "tempest_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
ROOT = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

# fixture -> (expected exit, [required diagnostic substrings])
# or    -> (expected exit, [substrings], [extra lint arguments])
CASES = {
    "bad_lock_unguarded_access.cc": (1, [
        "[lock]",
        "member 'count_' (GUARDED_BY mutex_) referenced without "
        "holding 'mutex_'",
        "member 'value' (GUARDED_BY slotMutex)",
    ]),
    "bad_lock_requires_caller.cc": (1, [
        "call to 'pushLocked' REQUIRES(mutex_) but 'mutex_' is not "
        "held here",
    ]),
    "bad_lock_lambda_capture.cc": (1, [
        "member 'value_' (GUARDED_BY mutex_) referenced without "
        "holding 'mutex_'",
    ]),
    "good_lock_discipline.cc": (0, []),
    "bad_proto_missing_read.cc": (1, [
        "encodeTicket writes key 'legacy_flag' that parseTicket "
        "never reads",
        "parseTicket reads key 'rush' that encodeTicket never "
        "writes",
    ]),
    "bad_proto_order_mismatch.cc": (1, [
        "key order differs between encodeProbe and parseProbe",
    ]),
    "bad_proto_blob_drift.cc": (1, [
        "blob codec sequences diverge between encodeSampleBlob and "
        "decodeSampleBlob at call #2",
    ]),
    "good_proto_roundtrip.cc": (0, []),
    "bad_chunk_duplicate.cc": (1, [
        "chunk FourCC 'DUPE' already used at",
    ]),
    "bad_chunk_version_drift.cc": (1, [
        "class DriftClass changed its serializer call sequence",
        "kCheckpointVersion is still 1",
    ], ["--chunk-registry",
        os.path.join(FIXTURES, "chunk_registry_drift.json")]),
    "good_chunk_registered.cc": (0, [],
                                 ["--chunk-registry",
                                  os.path.join(
                                      FIXTURES,
                                      "chunk_registry_good.json")]),
    "bad_empty_reason.cc": (1, [
        "ckpt:skip() needs a reason",
        "proto:skip(op) must use the form "
        "proto:skip(<key>: <reason>)",
    ]),
    "bad_missing_load_member.cc": (1, [
        "class MissingLoadMember",
        "'lost_' is not referenced in loadState",
    ]),
    "bad_missing_save_member.cc": (1, [
        "class MissingSaveMember",
        "'orphan_' is not referenced in saveState",
    ]),
    "bad_bulk_dropped_array.cc": (1, [
        "class BulkDroppedArray",
        "'mid_' of bulk group 'soa'",
        "is not referenced in saveState",
    ]),
    "bad_bulk_not_blobbed.cc": (1, [
        "class BulkNotBlobbed",
        "'mid_' of bulk group 'soa'",
        "not written by a blob(...) call in loadState",
    ]),
    "bad_order_mismatch.cc": (1, [
        "class OrderMismatch",
        "member order differs between saveState and loadState",
    ]),
    "bad_serializer_type_mismatch.cc": (1, [
        "class SerializerTypeMismatch",
        "serializer call sequences diverge",
    ]),
    "bad_random_device.cc": (1, [
        "banned identifier 'random_device'",
    ]),
    "bad_time_call.cc": (1, [
        "banned call 'time()'",
        "banned call 'srand()'",
        "banned call 'rand()'",
    ]),
    "bad_unordered_iteration.cc": (1, [
        "iteration over unordered container",
    ]),
    "bad_pointer_keyed_map.cc": (1, [
        "pointer-keyed std::map",
    ]),
    "bad_header_hygiene.hh": (1, [
        "no include guard",
        "'using namespace' in a header",
    ]),
    "good_annotated.cc": (0, []),
    "good_bulk_group.cc": (0, []),
    "good_clean.cc": (0, []),
}


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT] + args,
        capture_output=True, text=True)


def main():
    failures = []
    backend = ["--backend", os.environ.get("TEMPEST_LINT_BACKEND", "text")]

    for fixture, case in sorted(CASES.items()):
        want_rc, want_msgs = case[0], case[1]
        extra = list(case[2]) if len(case) > 2 else []
        path = os.path.join(FIXTURES, fixture)
        r = run_lint(["--all", "--root", ROOT] + backend + extra +
                     [path])
        label = "fixture %s" % fixture
        if r.returncode != want_rc:
            failures.append("%s: expected exit %d, got %d\nstdout:\n%s"
                            "\nstderr:\n%s"
                            % (label, want_rc, r.returncode, r.stdout,
                               r.stderr))
            continue
        for msg in want_msgs:
            if msg not in r.stdout:
                failures.append("%s: diagnostic %r not found in:\n%s"
                                % (label, msg, r.stdout))

    # Clean-fixture/annotation behavior verified; the real tree must
    # also pass every checker (the gate the CI lint job enforces).
    r = run_lint(["--all", "--root", ROOT] + backend)
    if r.returncode != 0:
        failures.append("real tree should lint clean, got exit %d:\n%s%s"
                        % (r.returncode, r.stdout, r.stderr))

    if failures:
        print("run_lint_tests: %d failure(s)" % len(failures))
        for f in failures:
            print("---\n" + f)
        return 1
    print("run_lint_tests: %d fixtures + tree OK" % len(CASES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
