#!/usr/bin/env python3
"""Advisory perf-smoke check against the recorded bench history.

Runs bench_wallclock in smoke mode and compares serial (1-thread)
throughput against the most recent entry in BENCH_wallclock.json.
Prints a loud warning when throughput drops more than the threshold
below the recorded value, but always exits 0: smoke runs on shared
CI machines are too noisy to gate merges, they exist to make a real
regression visible in the log.

Only serial rows are compared. Multi-thread rows depend on the
machine's core count (see hardware_concurrency in the history
entries); comparing them across machines conflates oversubscription
with regression.

Usage:
    python3 tools/perf_smoke.py [--build-dir build]
        [--history BENCH_wallclock.json] [--threshold 0.10]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def serial_best(runs):
    vals = [r.get("sim_cycles_per_second") for r in runs
            if isinstance(r, dict) and r.get("threads") == 1
            and isinstance(r.get("sim_cycles_per_second"),
                           (int, float))]
    return max(vals) if vals else None


def latest_serial_baseline(history):
    """Most recent history entry that actually has serial runs.

    A recording made on a machine that only ran multi-thread rows
    must not mask older serial baselines: walk backwards until an
    entry yields a serial throughput. Returns (baseline, entry) or
    (None, None).
    """
    for entry in reversed(history):
        if not isinstance(entry, dict):
            continue
        baseline = serial_best(entry.get("runs", []))
        if baseline is not None:
            return baseline, entry
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--history", default=None,
                        help="recorded trajectory (default: "
                             "BENCH_wallclock.json at repo root)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that triggers the "
                             "warning (default: 0.10)")
    args = parser.parse_args()

    root = repo_root()
    history_path = args.history or os.path.join(
        root, "BENCH_wallclock.json")
    if not os.path.exists(history_path):
        print(f"perf-smoke: no history at {history_path}; "
              "nothing to compare against")
        return 0
    try:
        with open(history_path) as f:
            history = json.load(f).get("history", [])
    except (OSError, json.JSONDecodeError, AttributeError) as e:
        print(f"perf-smoke: cannot read {history_path} ({e}); "
              "nothing to compare against")
        return 0
    if not isinstance(history, list) or len(history) < 2:
        # A single entry is typically this commit's own recording;
        # comparing a run against itself says nothing.
        print(f"perf-smoke: {len(history) if isinstance(history, list) else 0} "
              "history entries (need >= 2); nothing to compare")
        return 0
    baseline, baseline_entry = latest_serial_baseline(history)
    if baseline is None:
        print("perf-smoke: no history entry has serial runs")
        return 0

    binary = os.path.join(root, args.build_dir, "bench",
                          "bench_wallclock")
    if not os.path.exists(binary):
        print(f"perf-smoke: {binary} not found; skipping")
        return 0

    env = dict(os.environ)
    env["TEMPEST_SMOKE"] = "1"
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        env["TEMPEST_BENCH_JSON"] = tmp.name
        try:
            subprocess.run([binary], env=env, check=True)
            tmp.seek(0)
            payload = json.load(tmp)
        finally:
            os.unlink(tmp.name)

    current = serial_best(payload.get("runs", []))
    if current is None:
        print("perf-smoke: smoke run produced no serial rows")
        return 0

    ratio = current / baseline
    print(f"perf-smoke: serial throughput {current / 1e6:.2f} "
          f"Mcycles/s vs recorded {baseline / 1e6:.2f} Mcycles/s "
          f"({ratio:.2f}x)")
    if ratio < 1.0 - args.threshold:
        drop = (1.0 - ratio) * 100.0
        print("::warning title=perf-smoke::wall-clock throughput "
              f"is {drop:.0f}% below the last recorded bench "
              f"entry ({baseline_entry.get('git_rev', '?')}); "
              "advisory only, but worth a look", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
