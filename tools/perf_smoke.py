#!/usr/bin/env python3
"""Perf-smoke gate against the recorded bench history.

Runs bench_wallclock in smoke mode and compares throughput against
the recorded trajectory in BENCH_wallclock.json.

Serial (1-thread) rows are a hard gate: if the smoke run's best
serial throughput falls below ``--serial-floor`` (default 0.85) of
the best serial throughput ever recorded, the check exits nonzero.
Serial throughput is the one number that is comparable across the
machines this project records on, and every optimization PR raises
it; a >15% drop is a real regression, not noise.

Multi-thread rows stay advisory. They depend on the machine's core
count (see hardware_concurrency in the history entries); comparing
them across machines conflates oversubscription with regression, so
a drop only prints a warning.

Fabric (worker-process) rows from the bench's ``fabric`` section
are advisory for the same reason: process-pool throughput folds in
fork/IPC cost and the core count, so a drop warns but never fails.

Usage:
    python3 tools/perf_smoke.py [--build-dir build]
        [--history BENCH_wallclock.json] [--threshold 0.10]
        [--serial-floor 0.85]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def serial_best(runs):
    vals = [r.get("sim_cycles_per_second") for r in runs
            if isinstance(r, dict) and r.get("threads") == 1
            and isinstance(r.get("sim_cycles_per_second"),
                           (int, float))]
    return max(vals) if vals else None


def threaded_best(runs):
    """Best recorded throughput per thread count (> 1)."""
    best = {}
    for r in runs:
        if not isinstance(r, dict):
            continue
        t = r.get("threads")
        v = r.get("sim_cycles_per_second")
        if (isinstance(t, int) and t > 1 and
                isinstance(v, (int, float))):
            best[t] = max(best.get(t, 0), v)
    return best


def best_recorded_serial(history):
    """Best serial throughput across the whole history.

    The gate compares against the best entry ever recorded, not the
    most recent one: a regression that slipped into one recording
    must not lower the bar for the next. Returns (baseline, entry)
    or (None, None).
    """
    best, best_entry = None, None
    for entry in history:
        if not isinstance(entry, dict):
            continue
        v = serial_best(entry.get("runs", []))
        if v is not None and (best is None or v > best):
            best, best_entry = v, entry
    return best, best_entry


def best_recorded_threaded(history):
    best = {}
    for entry in history:
        if not isinstance(entry, dict):
            continue
        for t, v in threaded_best(entry.get("runs", [])).items():
            best[t] = max(best.get(t, 0), v)
    return best


def fabric_pools(section):
    """workers -> sim_cycles_per_second of a bench fabric section.

    The multi-process sweep fabric rows are advisory-only, like
    thread rows: process-pool throughput depends on the machine's
    core count and fork/IPC cost, so a drop warns but never fails.
    """
    pools = {}
    if not isinstance(section, dict):
        return pools
    for r in section.get("pools", []):
        if not isinstance(r, dict):
            continue
        w = r.get("workers")
        v = r.get("sim_cycles_per_second")
        if (isinstance(w, int) and w > 0 and
                isinstance(v, (int, float))):
            pools[w] = max(pools.get(w, 0), v)
    return pools


def best_recorded_fabric(history):
    """Best recorded fabric throughput per worker count."""
    best = {}
    for entry in history:
        if not isinstance(entry, dict):
            continue
        for w, v in fabric_pools(entry.get("fabric")).items():
            best[w] = max(best.get(w, 0), v)
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--history", default=None,
                        help="recorded trajectory (default: "
                             "BENCH_wallclock.json at repo root)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional drop that triggers the "
                             "advisory warning (default: 0.10)")
    parser.add_argument("--serial-floor", type=float, default=0.85,
                        help="hard-fail when serial throughput is "
                             "below this fraction of the best "
                             "recorded serial entry (default: 0.85)")
    args = parser.parse_args()

    root = repo_root()
    history_path = args.history or os.path.join(
        root, "BENCH_wallclock.json")
    if not os.path.exists(history_path):
        print(f"perf-smoke: no history at {history_path}; "
              "nothing to compare against")
        return 0
    try:
        with open(history_path) as f:
            history = json.load(f).get("history", [])
    except (OSError, json.JSONDecodeError, AttributeError) as e:
        print(f"perf-smoke: cannot read {history_path} ({e}); "
              "nothing to compare against")
        return 0
    if not isinstance(history, list) or len(history) < 2:
        # A single entry is typically this commit's own recording;
        # comparing a run against itself says nothing.
        print(f"perf-smoke: {len(history) if isinstance(history, list) else 0} "
              "history entries (need >= 2); nothing to compare")
        return 0
    baseline, baseline_entry = best_recorded_serial(history)
    if baseline is None:
        print("perf-smoke: no history entry has serial runs")
        return 0

    binary = os.path.join(root, args.build_dir, "bench",
                          "bench_wallclock")
    if not os.path.exists(binary):
        print(f"perf-smoke: {binary} not found; skipping")
        return 0

    env = dict(os.environ)
    env["TEMPEST_SMOKE"] = "1"
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        env["TEMPEST_BENCH_JSON"] = tmp.name
        try:
            subprocess.run([binary], env=env, check=True)
            tmp.seek(0)
            payload = json.load(tmp)
        finally:
            os.unlink(tmp.name)

    runs = payload.get("runs", [])
    current = serial_best(runs)
    if current is None:
        print("perf-smoke: smoke run produced no serial rows")
        return 0

    # ---- threaded rows: advisory only ----
    recorded_threaded = best_recorded_threaded(history)
    for t, v in sorted(threaded_best(runs).items()):
        rec = recorded_threaded.get(t)
        if not rec:
            continue
        ratio = v / rec
        print(f"perf-smoke: {t}-thread throughput "
              f"{v / 1e6:.2f} Mcycles/s vs recorded "
              f"{rec / 1e6:.2f} Mcycles/s ({ratio:.2f}x)")
        if ratio < 1.0 - args.threshold:
            drop = (1.0 - ratio) * 100.0
            print(f"::warning title=perf-smoke::{t}-thread "
                  f"throughput is {drop:.0f}% below the best "
                  "recorded bench entry; advisory only (thread "
                  "rows are machine-dependent)", file=sys.stderr)

    # ---- fabric (worker-process) rows: advisory only ----
    recorded_fabric = best_recorded_fabric(history)
    for w, v in sorted(fabric_pools(payload.get("fabric")).items()):
        rec = recorded_fabric.get(w)
        if not rec:
            continue
        ratio = v / rec
        print(f"perf-smoke: fabric {w}-worker throughput "
              f"{v / 1e6:.2f} Mcycles/s vs recorded "
              f"{rec / 1e6:.2f} Mcycles/s ({ratio:.2f}x)")
        if ratio < 1.0 - args.threshold:
            drop = (1.0 - ratio) * 100.0
            print(f"::warning title=perf-smoke::fabric {w}-worker "
                  f"throughput is {drop:.0f}% below the best "
                  "recorded bench entry; advisory only (process-"
                  "pool rows are machine-dependent)",
                  file=sys.stderr)

    # ---- serial rows: hard gate ----
    ratio = current / baseline
    print(f"perf-smoke: serial throughput {current / 1e6:.2f} "
          f"Mcycles/s vs best recorded {baseline / 1e6:.2f} "
          f"Mcycles/s ({ratio:.2f}x)")
    if ratio < args.serial_floor:
        drop = (1.0 - ratio) * 100.0
        print("::error title=perf-smoke::serial wall-clock "
              f"throughput is {drop:.0f}% below the best recorded "
              f"bench entry ({baseline_entry.get('git_rev', '?')}, "
              f"floor {args.serial_floor:.2f}x); failing the check",
              file=sys.stderr)
        return 1
    if ratio < 1.0 - args.threshold:
        drop = (1.0 - ratio) * 100.0
        print("::warning title=perf-smoke::serial throughput is "
              f"{drop:.0f}% below the best recorded bench entry "
              f"({baseline_entry.get('git_rev', '?')}); above the "
              "hard floor but worth a look", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
