#!/usr/bin/env python3
"""Regression tests for perf_smoke.py's fabric-row handling.

The bench's ``fabric`` section (multi-process sweep fabric at
1/2/8 workers) feeds advisory-only comparisons. These tests pin
the selection logic:

- fabric_pools() reads the section's pools rows, keyed by worker
  count, and skips malformed rows instead of crashing on them (a
  hand-edited or truncated BENCH_wallclock.json must never take
  the perf gate down with it).
- best_recorded_fabric() takes the best throughput per worker
  count across the WHOLE history, so a slow recording cannot
  lower the bar, and entries without a fabric section (every
  entry recorded before the fabric existed) are skipped.
"""

import importlib.util
import os
import sys

failures = []


def check(ok, message):
    tag = "ok  " if ok else "FAIL"
    print(f"[{tag}] {message}")
    if not ok:
        failures.append(message)


def load_perf_smoke():
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "perf_smoke.py")
    spec = importlib.util.spec_from_file_location(
        "perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main():
    ps = load_perf_smoke()

    section = {
        "jobs": 12,
        "in_process_wall_seconds": 2.0,
        "pools": [
            {"workers": 1, "sim_cycles_per_second": 3.0e6},
            {"workers": 2, "sim_cycles_per_second": 5.5e6},
            {"workers": 8, "sim_cycles_per_second": 9.0e6},
        ],
    }
    check(ps.fabric_pools(section) ==
          {1: 3.0e6, 2: 5.5e6, 8: 9.0e6},
          "fabric_pools keys throughput by worker count")

    junk = {
        "pools": [
            {"workers": 2, "sim_cycles_per_second": "fast"},
            {"workers": "two", "sim_cycles_per_second": 1.0e6},
            {"workers": 0, "sim_cycles_per_second": 1.0e6},
            "not-a-row",
            {"workers": 4, "sim_cycles_per_second": 6.0e6},
        ],
    }
    check(ps.fabric_pools(junk) == {4: 6.0e6},
          "malformed pools rows are skipped, not fatal")

    check(ps.fabric_pools(None) == {},
          "a missing fabric section yields no rows")
    check(ps.fabric_pools("fabric") == {},
          "a non-dict fabric section yields no rows")
    check(ps.fabric_pools({"jobs": 12}) == {},
          "a section without pools yields no rows")

    dup = {"pools": [
        {"workers": 2, "sim_cycles_per_second": 4.0e6},
        {"workers": 2, "sim_cycles_per_second": 5.0e6},
    ]}
    check(ps.fabric_pools(dup) == {2: 5.0e6},
          "duplicate worker counts keep the best row")

    pre_fabric = {"git_rev": "old1234", "runs": []}
    fast = {"git_rev": "new5678", "fabric": section}
    slow = {"git_rev": "reg0001", "fabric": {"pools": [
        {"workers": 2, "sim_cycles_per_second": 2.0e6},
        {"workers": 16, "sim_cycles_per_second": 7.0e6},
    ]}}
    best = ps.best_recorded_fabric([pre_fabric, fast, slow])
    check(best == {1: 3.0e6, 2: 5.5e6, 8: 9.0e6, 16: 7.0e6},
          "best per worker count across the whole history")
    check(ps.best_recorded_fabric([pre_fabric]) == {},
          "entries recorded before the fabric existed are skipped")
    check(ps.best_recorded_fabric([None, "junk", 3]) == {},
          "non-dict history entries are skipped")
    check(ps.best_recorded_fabric([]) == {},
          "empty history -> no fabric baseline")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
