#!/usr/bin/env python3
"""Regression tests for perf_smoke.py's baseline selection.

Two failure modes are covered:

- The old serial_best(history[-1]) lookup returned nothing when the
  most recent benchmark recording came from a machine that only ran
  multi-thread rows, silently disabling the perf regression gate.
- A regression that slips into one recording must not lower the bar
  for the next: best_recorded_serial() takes the best serial
  throughput across the WHOLE history, not the most recent entry.
"""

import importlib.util
import os
import sys

failures = []


def check(ok, message):
    tag = "ok  " if ok else "FAIL"
    print(f"[{tag}] {message}")
    if not ok:
        failures.append(message)


def load_perf_smoke():
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "perf_smoke.py")
    spec = importlib.util.spec_from_file_location(
        "perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main():
    ps = load_perf_smoke()

    serial_old = {
        "git_rev": "old1234",
        "runs": [
            {"threads": 1, "sim_cycles_per_second": 2.0e6},
            {"threads": 1, "sim_cycles_per_second": 2.5e6},
            {"threads": 8, "sim_cycles_per_second": 9.0e6},
        ],
    }
    serial_new = {
        "git_rev": "new5678",
        "runs": [
            {"threads": 1, "sim_cycles_per_second": 3.0e6},
        ],
    }
    regressed = {
        "git_rev": "reg0001",
        "runs": [
            {"threads": 1, "sim_cycles_per_second": 1.8e6},
        ],
    }
    mt_only = {
        "git_rev": "mt9999",
        "runs": [
            {"threads": 8, "sim_cycles_per_second": 9.5e6},
        ],
    }
    junk = {"git_rev": "junk", "runs": [
        {"threads": 1}, {"threads": 1,
                         "sim_cycles_per_second": "fast"}]}

    base, entry = ps.best_recorded_serial(
        [serial_old, serial_new])
    check(base == 3.0e6 and entry is serial_new,
          "best serial entry wins")

    # A multi-thread-only recording must not mask the serial
    # baseline.
    base, entry = ps.best_recorded_serial(
        [serial_old, serial_new, mt_only])
    check(base == 3.0e6 and entry is serial_new,
          "multi-thread-only tail entry is skipped")

    # A regressed recording must not lower the bar.
    base, entry = ps.best_recorded_serial(
        [serial_old, serial_new, regressed])
    check(base == 3.0e6 and entry is serial_new,
          "a slower trailing entry does not lower the baseline")

    base, entry = ps.best_recorded_serial(
        [serial_old, mt_only, junk])
    check(base == 2.5e6 and entry is serial_old,
          "junk rows and mt-only entries are both skipped")

    base, entry = ps.best_recorded_serial([mt_only, junk])
    check(base is None and entry is None,
          "no serial data anywhere -> (None, None)")

    base, entry = ps.best_recorded_serial([])
    check(base is None and entry is None,
          "empty history -> (None, None)")

    check(ps.serial_best(serial_old["runs"]) == 2.5e6,
          "serial_best picks the best serial row")
    check(ps.serial_best(mt_only["runs"]) is None,
          "serial_best ignores multi-thread rows")

    check(ps.threaded_best(serial_old["runs"]) == {8: 9.0e6},
          "threaded_best groups by thread count")
    check(ps.best_recorded_threaded(
              [serial_old, mt_only]) == {8: 9.5e6},
          "best_recorded_threaded takes the best per thread count")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
