#!/usr/bin/env python3
"""Regression tests for tempest_run's argument hardening.

Two historical bugs, both of the silently-wrong variety:

  * a negative [run] cycles value passed through getInt() was cast
    straight to uint64_t, wrapped to ~1.8e19, and ran "forever" —
    it must now fail fast with a clear message;
  * --checkpoint-every was parsed with an unchecked strtoull, so
    trailing garbage ("1000x", "10 20") and negative values were
    silently accepted as something else entirely.

Usage: test_run_cli_guards.py <tempest_run binary>
"""

import subprocess
import sys
import tempfile


def run(binary, config_text, *extra):
    with tempfile.NamedTemporaryFile(
            "w", suffix=".ini", delete=False) as f:
        f.write(config_text)
        path = f.name
    return subprocess.run(
        [binary, path, *extra],
        capture_output=True, text=True, timeout=300)


FAST = """
[run]
benchmark = eon
cycles = 50000
"""

failures = []


def check(ok, message):
    tag = "ok  " if ok else "FAIL"
    print(f"[{tag}] {message}")
    if not ok:
        failures.append(message)


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: test_run_cli_guards.py <tempest_run>")
    binary = sys.argv[1]

    # Sanity: the binary still works on a valid config.
    r = run(binary, FAST)
    check(r.returncode == 0,
          f"valid config runs (exit {r.returncode})")
    check("result_hash" in r.stdout,
          "valid run prints a result_hash")

    # Negative cycles must be rejected, not wrapped to ~1.8e19.
    r = run(binary, FAST.replace("cycles = 50000",
                                 "cycles = -1"))
    check(r.returncode != 0, "negative run.cycles is rejected")
    check("run.cycles must be > 0" in r.stderr,
          "negative run.cycles names the actual problem")

    # Command-line override path hits the same guard.
    r = run(binary, FAST, "run.cycles = -5")
    check(r.returncode != 0,
          "negative run.cycles override is rejected")

    # Zero is just as unrunnable as negative.
    r = run(binary, FAST.replace("cycles = 50000",
                                 "cycles = 0"))
    check(r.returncode != 0, "zero run.cycles is rejected")

    # --checkpoint-every: trailing garbage, negatives, zero, and
    # non-numbers must all fail loudly.
    for bad in ("1000x", "-1", "0", "nope", "10 20", ""):
        r = run(binary, FAST, "--checkpoint-every", bad)
        check(r.returncode != 0,
              f"--checkpoint-every {bad!r} is rejected")

    # A valid checkpoint interval still works.
    with tempfile.TemporaryDirectory() as d:
        r = run(binary, FAST, "--checkpoint-every", "25000",
                "--checkpoint-dir", d)
        check(r.returncode == 0,
              f"valid --checkpoint-every runs "
              f"(exit {r.returncode})")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
