/**
 * @file
 * tempest_serve: cached, rate-limited experiment daemon
 * (DESIGN.md §13).
 *
 * Usage:
 *   tempest_serve --socket /tmp/tempest.sock [options]
 *
 * Options:
 *   --socket PATH          Unix-domain socket to listen on
 *                          (required)
 *   --threads N            simulation worker threads (default 2)
 *   --queue-depth N        max queued computations before load is
 *                          shed with retry_after (default 16)
 *   --rate R               per-client admitted requests/second;
 *                          0 = unlimited (default 0)
 *   --burst B              per-client burst allowance (default 4)
 *   --cache-entries N      result-cache capacity (default 512)
 *   --warmup-cycles N      warm-snapshot pool warm-up length;
 *                          0 disables the pool (default 0)
 *   --max-cycles N         reject run requests beyond N cycles
 *                          (default 1e9)
 *
 * Protocol: line-delimited JSON (serve/protocol.hh). SIGINT and
 * SIGTERM stop the daemon cleanly (finish nothing new, close the
 * socket, remove the socket file).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <csignal>
#include <unistd.h>

#include "common/log.hh"
#include "serve/server.hh"

using namespace tempest;

namespace
{

/** Self-pipe write end for the signal handler. */
volatile int g_wake_fd = -1;

extern "C" void
onSignal(int)
{
    // async-signal-safe: one byte into the daemon's wake pipe
    const int fd = g_wake_fd;
    if (fd >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

std::uint64_t
parseU64(const char* flag, const char* text)
{
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        text[0] == '-') {
        fatal(flag, ": '", text, "' is not a valid count");
    }
    return v;
}

double
parseF64(const char* flag, const char* text)
{
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        v < 0) {
        fatal(flag, ": '", text,
              "' is not a valid non-negative number");
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        serve::ServeOptions options;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> const char* {
                if (++i >= argc)
                    fatal(arg, " needs a value");
                return argv[i];
            };
            if (arg == "--socket") {
                options.socketPath = next();
            } else if (arg == "--threads") {
                options.threads = static_cast<int>(
                    parseU64("--threads", next()));
            } else if (arg == "--queue-depth") {
                options.queueDepth = static_cast<std::size_t>(
                    parseU64("--queue-depth", next()));
            } else if (arg == "--rate") {
                options.ratePerSecond =
                    parseF64("--rate", next());
            } else if (arg == "--burst") {
                options.rateBurst = parseF64("--burst", next());
            } else if (arg == "--cache-entries") {
                options.cacheCapacity =
                    static_cast<std::size_t>(
                        parseU64("--cache-entries", next()));
            } else if (arg == "--warmup-cycles") {
                options.warmupCycles =
                    parseU64("--warmup-cycles", next());
            } else if (arg == "--max-cycles") {
                options.maxRequestCycles =
                    parseU64("--max-cycles", next());
            } else {
                fatal("unknown flag '", arg,
                      "' (see tempest_serve.cc header)");
            }
        }
        if (options.socketPath.empty())
            fatal("--socket is required");

        serve::ServeDaemon daemon(options);
        daemon.start();
        g_wake_fd = daemon.wakeFd();
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        inform("tempest_serve listening on ",
               options.socketPath, " (", options.threads,
               " workers, queue ", options.queueDepth,
               ", cache ", options.cacheCapacity,
               options.warmupCycles > 0 ? ", warm pool on"
                                        : ", warm pool off",
               ")");
        daemon.waitStopped();
        g_wake_fd = -1;
        daemon.stop();
        inform("tempest_serve stopped cleanly");
        return 0;
    } catch (const FatalError&) {
        return 1;
    }
}
