#!/usr/bin/env python3
"""CI gate for the profiled build: run bench_profile and assert the
per-stage breakdown parses.

The profiler (src/common/profiler.hh) is compiled out of normal
builds, so nothing in the default CI matrix would notice if a stage
enum, a TEMPEST_PROF_SCOPE site, or the report formatting rotted.
This check builds the attribution story end to end: it runs
bench_profile from a -DTEMPEST_PROFILE=ON build and fails unless

  * every pipeline/interval stage appears in the report,
  * every stage accumulated nonzero ticks and calls, and
  * the share column sums to ~100%.

Usage:
    python3 tools/check_profile_report.py [--build-dir build-prof]
        [--cycles 200000]

Stdlib only; no third-party dependencies.
"""

import argparse
import os
import re
import subprocess
import sys

# Keep in sync with profStageName() in src/common/profiler.hh.
EXPECTED_STAGES = [
    "fetch", "dispatch", "issue/select", "writeback", "compact",
    "commit", "power", "thermal", "sensor", "dtm",
]

ROW_RE = re.compile(
    r"^\s*(\S+)\s+(\d+)\s+([0-9.]+)%\s+(\d+)\s+([0-9.]+)\s*$")


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def fail(msg):
    print(f"::error title=bench-profile-smoke::{msg}",
          file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-prof")
    parser.add_argument("--cycles", default="200000",
                        help="simulated cycles per run (small: this "
                             "is a parse check, not a benchmark)")
    args = parser.parse_args()

    binary = os.path.join(repo_root(), args.build_dir, "bench",
                          "bench_profile")
    if not os.path.exists(binary):
        return fail(f"{binary} not found; build the profiled "
                    "configuration first")

    env = dict(os.environ)
    env["TEMPEST_CYCLES"] = args.cycles
    proc = subprocess.run([binary], env=env, capture_output=True,
                          text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        return fail(f"bench_profile exited {proc.returncode}")
    if "profiling is compiled out" in proc.stdout:
        return fail("bench_profile was built without "
                    "-DTEMPEST_PROFILE=ON; the smoke step must run "
                    "against the profiled configuration")

    rows = {}
    for line in proc.stdout.splitlines():
        m = ROW_RE.match(line)
        if m:
            name, ticks, share, calls, _per_call = m.groups()
            rows[name] = (int(ticks), float(share), int(calls))

    missing = [s for s in EXPECTED_STAGES if s not in rows]
    if missing:
        return fail("stage breakdown is missing rows for: "
                    + ", ".join(missing))
    unknown = [s for s in rows if s not in EXPECTED_STAGES]
    if unknown:
        return fail("stage breakdown has rows this check does not "
                    "know: " + ", ".join(unknown)
                    + " (update EXPECTED_STAGES alongside "
                    "profStageName())")

    for name, (ticks, _share, calls) in rows.items():
        if ticks == 0 or calls == 0:
            return fail(f"stage '{name}' recorded ticks={ticks} "
                        f"calls={calls}; its TEMPEST_PROF_SCOPE "
                        "site is not firing")

    total_share = sum(share for _t, share, _c in rows.values())
    if abs(total_share - 100.0) > 0.01 * len(rows):
        return fail(f"share column sums to {total_share:.2f}%, "
                    "expected ~100%")

    print(f"bench-profile-smoke: {len(rows)} stages, shares sum to "
          f"{total_share:.2f}% — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
