#!/usr/bin/env python3
"""Run bench_wallclock and record the result trajectory.

Executes the wall-clock benchmark binary, stamps its output with
the current git revision and a UTC timestamp, and appends the entry
to BENCH_wallclock.json at the repository root. Each entry is one
measurement of simulator throughput (simulated cycles per wall
second, per thermal solver and thread count), so the file grows
into a perf history across commits.

Usage:
    python3 tools/record_bench.py [--build-dir build]
        [--output BENCH_wallclock.json] [--smoke] [--cycles N]

Stdlib only; no third-party dependencies.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

try:
    import resource
except ImportError:  # non-POSIX: record without the RSS figure
    resource = None


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def git_rev(root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def git_dirty(root):
    """True when the working tree has uncommitted changes.

    A recording from a dirty tree is attributed to a commit that
    does not contain the measured code, which is exactly the
    mis-attribution a perf trajectory exists to prevent.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, check=True)
        return bool(out.stdout.strip())
    except (OSError, subprocess.CalledProcessError):
        return None


def run_bench(binary, smoke, cycles):
    """Run the bench binary; return (payload, peak RSS in bytes).

    Peak RSS comes from getrusage(RUSAGE_CHILDREN) deltas around
    the subprocess, so it covers the bench process itself (the
    dense Phi propagator caches dominate it; a 4-core CMP network
    is ~16x the matrix footprint of a single core, which is what
    this figure is meant to catch drifting).
    """
    env = dict(os.environ)
    if smoke:
        env["TEMPEST_SMOKE"] = "1"
    if cycles:
        env["TEMPEST_CYCLES"] = str(cycles)
    before = (resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
              if resource else 0)
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        env["TEMPEST_BENCH_JSON"] = tmp.name
        try:
            subprocess.run([binary], env=env, check=True)
            tmp.seek(0)
            payload = json.load(tmp)
        finally:
            os.unlink(tmp.name)
    peak_rss = None
    if resource:
        after = resource.getrusage(
            resource.RUSAGE_CHILDREN).ru_maxrss
        # ru_maxrss is a high-water mark, not a sum: it only grew
        # if the bench out-sized every earlier child. Linux reports
        # KiB (macOS reports bytes; this tooling targets Linux CI).
        if after >= before:
            peak_rss = after * 1024
    return payload, peak_rss


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: "
                             "build)")
    parser.add_argument("--output", default=None,
                        help="trajectory file (default: "
                             "BENCH_wallclock.json at repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast pass (200k cycles per run)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="simulated cycles per run override")
    args = parser.parse_args()

    root = repo_root()
    binary = os.path.join(root, args.build_dir, "bench",
                          "bench_wallclock")
    if not os.path.exists(binary):
        sys.exit(f"{binary} not found; build the project first "
                 f"(cmake --build {args.build_dir} --target "
                 f"bench_wallclock)")

    payload, peak_rss = run_bench(binary, args.smoke, args.cycles)
    dirty = git_dirty(root)
    if dirty:
        print("=" * 64, file=sys.stderr)
        print("WARNING: recording from a DIRTY working tree.\n"
              "The entry's git_rev names HEAD, but HEAD does not\n"
              "contain the uncommitted changes being measured.\n"
              "Commit first, then record, so the trajectory\n"
              "attributes every number to the code that produced "
              "it.", file=sys.stderr)
        print("=" * 64, file=sys.stderr)
    entry = {
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_rev(root),
        "dirty": bool(dirty),
        "cycles_per_run": payload.get("cycles_per_run"),
        "benchmarks": payload.get("benchmarks"),
        "hardware_concurrency": payload.get(
            "hardware_concurrency"),
        "runs": payload.get("runs"),
    }
    if payload.get("note") is not None:
        entry["note"] = payload["note"]
    if payload.get("warm_fork") is not None:
        entry["warm_fork"] = payload["warm_fork"]
    if payload.get("fabric") is not None:
        entry["fabric"] = payload["fabric"]
    if payload.get("cmp") is not None:
        entry["cmp"] = payload["cmp"]
    if peak_rss is not None:
        entry["peak_rss_bytes"] = peak_rss

    output = args.output or os.path.join(root,
                                         "BENCH_wallclock.json")
    history = []
    if os.path.exists(output):
        with open(output) as f:
            previous = json.load(f)
        # Accept both the trajectory format and a raw bench dump.
        history = previous.get("history", [])
    history.append(entry)
    with open(output, "w") as f:
        json.dump({"bench": "wallclock", "history": history}, f,
                  indent=2)
        f.write("\n")

    best = max(entry["runs"],
               key=lambda r: r["sim_cycles_per_second"])
    rev = entry["git_rev"] + ("-dirty" if dirty else "")
    msg = (f"recorded {rev} -> {output} "
           f"(best {best['sim_cycles_per_second'] / 1e6:.2f} "
           f"Mcycles/s, solver={best['solver']} "
           f"threads={best['threads']}")
    warm = entry.get("warm_fork")
    if warm and warm.get("speedup"):
        msg += f", warm-fork speedup {warm['speedup']:.2f}x"
    if peak_rss is not None:
        msg += f", peak RSS {peak_rss / 2**20:.0f} MiB"
    print(msg + ")")


if __name__ == "__main__":
    main()
