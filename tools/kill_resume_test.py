#!/usr/bin/env python3
"""Kill-and-resume integration test for checkpointed runs.

Exercises the property the checkpoint subsystem exists to provide:
a run that is SIGKILLed mid-flight and resumed from its last
on-disk snapshot finishes with exactly the same result_hash (full
SimResult FNV-1a) as an uninterrupted run. Also checks that a
truncated or bit-flipped checkpoint file is rejected with a clear
error instead of undefined behaviour.

Procedure:
  1. Reference: tempest_run to completion, record result_hash.
  2. Start the same run with --checkpoint-every/--checkpoint-dir,
     wait for the first snapshot to land, SIGKILL the process.
  3. Re-run with --resume; the hash must equal the reference.
  4. Corrupt the snapshot (truncate; flip a byte); --resume must
     exit non-zero with an error that names the checkpoint.

Usage:
    python3 tools/kill_resume_test.py [--build-dir build]
        [--cycles 6000000] [--checkpoint-every 300000]

Stdlib only; no third-party dependencies. Exits non-zero on any
mismatch, so CI can gate on it.
"""

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def run_tool(binary, config, extra, check=True):
    proc = subprocess.run([binary, config] + extra,
                          capture_output=True, text=True)
    if check and proc.returncode != 0:
        sys.exit(f"kill-resume: {' '.join(extra)} failed "
                 f"(rc={proc.returncode}):\n{proc.stderr}")
    return proc


def result_hash(stdout):
    m = re.search(r"result_hash\s+(0x[0-9a-f]{16})", stdout)
    if not m:
        sys.exit("kill-resume: no result_hash in output:\n"
                 + stdout)
    return m.group(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--config", default=None,
                        help="config .ini (default: "
                             "configs/iq_toggling.ini)")
    parser.add_argument("--cycles", type=int, default=6_000_000)
    parser.add_argument("--checkpoint-every", type=int,
                        default=300_000)
    args = parser.parse_args()

    root = repo_root()
    binary = os.path.join(root, args.build_dir, "tools",
                          "tempest_run")
    if not os.path.exists(binary):
        sys.exit(f"kill-resume: {binary} not found; build the "
                 "project first")
    config = args.config or os.path.join(root, "configs",
                                         "iq_toggling.ini")
    cycles = f"run.cycles={args.cycles}"

    workdir = tempfile.mkdtemp(prefix="tempest_kill_resume_")
    try:
        # 1. Uninterrupted reference.
        ref = result_hash(
            run_tool(binary, config, [cycles]).stdout)
        print(f"kill-resume: reference hash {ref}")

        # 2. Start a checkpointed run and SIGKILL it once the
        # first snapshot exists.
        ckpt_args = [cycles, "--checkpoint-every",
                     str(args.checkpoint_every),
                     "--checkpoint-dir", workdir]
        snapshot = None
        with subprocess.Popen([binary, config] + ckpt_args,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE,
                              text=True) as proc:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                ckpts = [f for f in os.listdir(workdir)
                         if f.endswith(".ckpt")]
                if ckpts:
                    snapshot = os.path.join(workdir, ckpts[0])
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            if snapshot is None:
                proc.kill()
                sys.exit("kill-resume: no checkpoint appeared "
                         "before the run finished; lower "
                         "--checkpoint-every or raise --cycles")
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                print(f"kill-resume: SIGKILLed pid {proc.pid} "
                      f"after {os.path.basename(snapshot)} "
                      "appeared")
            else:
                print("kill-resume: warning: run finished before "
                      "the kill; resume still exercised",
                      file=sys.stderr)

        # 3. Resume and compare.
        out = run_tool(binary, config,
                       ckpt_args + ["--resume"]).stdout
        if "resumed" not in out:
            sys.exit("kill-resume: --resume did not restore a "
                     "checkpoint:\n" + out)
        got = result_hash(out)
        if got != ref:
            sys.exit(f"kill-resume: FAIL: resumed hash {got} != "
                     f"reference {ref}")
        print(f"kill-resume: resumed hash matches ({got})")

        # 4a. Truncated checkpoint must be rejected cleanly.
        with open(snapshot, "rb") as f:
            blob = f.read()
        with open(snapshot, "wb") as f:
            f.write(blob[:len(blob) // 2])
        proc = run_tool(binary, config, ckpt_args + ["--resume"],
                        check=False)
        if proc.returncode == 0:
            sys.exit("kill-resume: FAIL: truncated checkpoint "
                     "was accepted")
        if "checkpoint" not in (proc.stderr + proc.stdout).lower():
            sys.exit("kill-resume: FAIL: truncated checkpoint "
                     "error does not mention the checkpoint:\n"
                     + proc.stderr)
        print("kill-resume: truncated checkpoint rejected "
              "with a clear error")

        # 4b. A flipped payload byte must fail the checksum.
        corrupt = bytearray(blob)
        corrupt[len(corrupt) // 2] ^= 0x40
        with open(snapshot, "wb") as f:
            f.write(bytes(corrupt))
        proc = run_tool(binary, config, ckpt_args + ["--resume"],
                        check=False)
        if proc.returncode == 0:
            sys.exit("kill-resume: FAIL: corrupt checkpoint "
                     "was accepted")
        if "checksum" not in (proc.stderr + proc.stdout).lower():
            sys.exit("kill-resume: FAIL: corrupt checkpoint "
                     "error does not mention the checksum:\n"
                     + proc.stderr)
        print("kill-resume: flipped byte rejected by checksum")
        print("kill-resume: PASS")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
