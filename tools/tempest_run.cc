/**
 * @file
 * tempest_run: configuration-file-driven simulation driver.
 *
 * Usage:
 *   tempest_run <config.ini> [key=value ...]
 *   tempest_run <config.ini> --cores N [key=value ...]
 *   tempest_run --paper-scale [measure_cycles] [--threads N]
 *
 * --paper-scale runs the paper-scale DTM sweep (four IQ-floorplan
 * technique variants x three benchmarks) through the warm-fork
 * path: each benchmark is warmed once under the base config for
 * measure_cycles/10 cycles and every variant forks its measurement
 * region (default 100M cycles) from that snapshot. Prints one row
 * per job (IPC, hottest block, DTM event counts, result hash) —
 * the numbers behind the paper-scale section of EXPERIMENTS.md.
 *
 * Any "key = value" override on the command line wins over the
 * file. See configs/ for annotated examples. Recognized keys:
 *
 *   [run]      benchmark, cycles, seed, trace_csv, trace_stride
 *   [floorplan] variant = baseline|iq|alu|regfile
 *   [dtm]      toggling, alu_turnoff, regfile_turnoff,
 *              round_robin, fetch_throttling,
 *              mapping = priority|balanced|completely-balanced,
 *              max_temperature, toggle_delta, cooling_time
 *   [thermal]  time_scale, ambient, convection,
 *              solver = expm|euler, max_cached_propagators,
 *              r_stack_bond, stacked_die_thickness
 *   [sim]      sample_interval, warm_start
 *   [cmp]      cores, l2, benchmarks,
 *              migration.{enabled,margin,min_gap,
 *              cooldown_intervals,stall_cycles,bytes_per_cycle}
 *   [stack]    dram, dram_energy_per_access, dram_static_w
 *
 * `--cores N` is sugar for the `cmp.cores = N` override. When the
 * effective config asks for more than one core tile (or a stacked
 * DRAM die), the run goes through the CMP engine: N cores in
 * lockstep on one shared thermal network, per-core DTM plus the
 * cross-core migration policy, one result block per core. A 1-core
 * CMP run is bit-identical to the single-core engine, so --cores 1
 * and no flag print the same result_hash.
 *
 * Checkpointing (resumable runs, see DESIGN.md §11):
 *
 *   --checkpoint-every N   snapshot every N cycles
 *   --checkpoint-dir D     directory for <benchmark>.ckpt
 *                          (default ".")
 *   --resume               restore from the checkpoint file if it
 *                          exists, then continue to [run] cycles
 *
 * Checkpoint files are written atomically (tmp + rename), so a
 * kill at any instant leaves either the previous snapshot or the
 * new one, never a torn file. A resumed run is bit-identical to
 * an uninterrupted one; the printed result_hash proves it.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "sim/cmp/cmp_simulator.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"
#include "sim/simulator.hh"

using namespace tempest;

namespace
{

/**
 * The paper-scale sweep: every IQ-floorplan DTM variant forks its
 * measurement region from one warm snapshot per benchmark. The
 * variants differ only in technique flags restoreCheckpoint
 * re-asserts, which is exactly the set warm-fork supports.
 */
int
runPaperScale(std::uint64_t measure_cycles, int threads)
{
    using namespace experiments;

    auto make = [](bool toggling, bool throttle) {
        SimConfig config = iqBase();
        config.dtm.iqToggling = toggling;
        config.dtm.fetchThrottling = throttle;
        return config;
    };
    const std::vector<std::pair<std::string, SimConfig>> configs = {
        {"iq_base", make(false, false)},
        {"iq_toggling", make(true, false)},
        {"iq_throttle", make(false, true)},
        {"iq_toggle_throttle", make(true, true)},
    };
    const std::vector<std::string> benchmarks = {"art", "facerec",
                                                 "mesa"};

    WarmForkOptions warm;
    warm.warmConfig = iqBase();
    warm.warmupCycles = measure_cycles / 10;

    ExperimentRunner::Options options;
    options.threads = threads;

    std::printf("paper-scale sweep: %zu configs x %zu benchmarks, "
                "%llu warm-up + %llu measure cycles per job, "
                "%d thread%s\n",
                configs.size(), benchmarks.size(),
                static_cast<unsigned long long>(warm.warmupCycles),
                static_cast<unsigned long long>(measure_cycles),
                threads, threads == 1 ? "" : "s");

    const auto start = std::chrono::steady_clock::now();
    const auto outcomes = runWarmForkSweep(
        configs, benchmarks, measure_cycles, warm, options);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::printf("%-20s %-8s %6s %7s %-8s %7s %8s %8s %7s  %s\n",
                "config", "bench", "ipc", "stall%", "hot", "max_K",
                "toggles", "throttl", "wall_s", "result_hash");
    std::uint64_t total_cycles = 0;
    for (const ExperimentOutcome& o : outcomes) {
        if (!o.ok)
            fatal("paper-scale job ", o.tag, "/", o.benchmark,
                  " failed: ", o.error);
        const SimResult& r = o.result;
        const BlockTempStats& hot = *std::max_element(
            r.blocks.begin(), r.blocks.end(),
            [](const BlockTempStats& a, const BlockTempStats& b) {
                return a.max < b.max;
            });
        std::printf("%-20s %-8s %6.3f %6.1f%% %-8s %7.2f %8llu "
                    "%8llu %7.1f  0x%016llx\n",
                    o.tag.c_str(), o.benchmark.c_str(), r.ipc,
                    100.0 * r.stallCycles / r.cycles,
                    hot.name.c_str(), hot.max,
                    static_cast<unsigned long long>(
                        r.dtm.iqToggles),
                    static_cast<unsigned long long>(
                        r.dtm.fetchThrottleEvents),
                    o.wallSeconds,
                    static_cast<unsigned long long>(
                        hashSimResult(r)));
        total_cycles += r.cycles;
    }
    std::printf("%zu jobs, %llu simulated cycles in %.1f s wall "
                "(%.2f Mcycles/s aggregate)\n",
                outcomes.size(),
                static_cast<unsigned long long>(total_cycles),
                wall, total_cycles / wall / 1e6);
    return 0;
}

/**
 * The CMP run path: one lockstep simulation over the shared die,
 * same checkpoint-every/resume discipline as the single-core path
 * (CmpSimulator checkpoints capture every engine, the thermal
 * network, sensors, placement, and any in-flight stall).
 */
int
runCmp(const Config& cfg, std::uint64_t cycles,
       std::uint64_t checkpoint_every,
       const std::string& checkpoint_dir, bool resume)
{
    const CmpSimConfig config = cmpConfigFromConfig(cfg);
    CmpSimulator sim(config);
    const std::string ckpt_path = checkpoint_dir + "/cmp.ckpt";

    if (resume) {
        std::ifstream probe(ckpt_path, std::ios::binary);
        if (probe) {
            probe.close();
            sim.restoreCheckpoint(readCheckpointFile(ckpt_path));
            std::printf("resumed       %s @ cycle %llu\n",
                        ckpt_path.c_str(),
                        static_cast<unsigned long long>(
                            sim.cycle()));
        } else {
            inform("--resume: no checkpoint at '", ckpt_path,
                   "', starting from cycle 0");
        }
    }

    if (checkpoint_every > 0) {
        while (sim.cycle() < cycles) {
            const std::uint64_t stop =
                std::min(cycles, sim.cycle() + checkpoint_every);
            sim.runTo(stop);
            writeCheckpointFile(ckpt_path, sim.saveCheckpoint());
        }
    } else {
        sim.runTo(cycles);
    }
    const CmpResult r = sim.result();

    std::printf("cores        %d\n", config.cores);
    std::printf("cycles       %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("%-5s %-8s %4s %6s %7s %-10s %7s %7s\n", "core",
                "bench", "tile", "ipc", "stall%", "hot", "max_K",
                "stalls");
    for (std::size_t j = 0; j < r.cores.size(); ++j) {
        const SimResult& c = r.cores[j];
        const BlockTempStats& hot = *std::max_element(
            c.blocks.begin(), c.blocks.end(),
            [](const BlockTempStats& a, const BlockTempStats& b) {
                return a.max < b.max;
            });
        std::printf("%-5zu %-8s %4d %6.3f %6.1f%% %-10s %7.2f "
                    "%7llu\n",
                    j, c.benchmark.c_str(), r.tileOfJob[j], c.ipc,
                    100.0 * c.stallCycles / c.cycles,
                    hot.name.c_str(), hot.max,
                    static_cast<unsigned long long>(
                        c.dtm.globalStalls));
    }
    for (const BlockTempStats& b : r.shared) {
        std::printf("shared %-10s avg %7.2f K   max %7.2f K\n",
                    b.name.c_str(), b.avg, b.max);
    }
    std::printf("migrations   %llu (%llu stall cycles, %llu "
                "bytes moved, %llu evaluations)\n",
                static_cast<unsigned long long>(
                    r.migration.migrations),
                static_cast<unsigned long long>(
                    r.migration.migrationStallCycles),
                static_cast<unsigned long long>(
                    r.migration.bytesMoved),
                static_cast<unsigned long long>(
                    r.migration.evaluations));
    std::printf("result_hash  0x%016llx\n",
                static_cast<unsigned long long>(
                    hashCmpResult(r)));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tempest_run <config.ini> "
                     "[--cores N] [key=value ...]\n"
                     "       tempest_run --paper-scale "
                     "[measure_cycles] [--threads N]\n");
        return 2;
    }

    if (std::strcmp(argv[1], "--paper-scale") == 0) {
        try {
            std::uint64_t measure_cycles = 100'000'000;
            int threads = 1;
            for (int i = 2; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--threads") {
                    if (++i >= argc)
                        fatal("--threads needs a count");
                    threads = std::atoi(argv[i]);
                    if (threads < 1)
                        fatal("--threads must be >= 1");
                } else {
                    char* end = nullptr;
                    errno = 0;
                    measure_cycles =
                        std::strtoull(argv[i], &end, 10);
                    if (end == argv[i] || *end != '\0' ||
                        errno == ERANGE || argv[i][0] == '-' ||
                        measure_cycles == 0) {
                        fatal("--paper-scale: '", argv[i],
                              "' is not a valid cycle count");
                    }
                }
            }
            return runPaperScale(measure_cycles, threads);
        } catch (const tempest::FatalError&) {
            return 1;
        }
    }

    try {
        std::uint64_t checkpoint_every = 0;
        std::string checkpoint_dir = ".";
        bool resume = false;

        Config cfg;
        {
            std::ifstream in(argv[1]);
            if (!in)
                fatal("cannot open config '", argv[1], "'");
            std::stringstream ss;
            ss << in.rdbuf();
            cfg.parseText(ss.str());
        }
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--checkpoint-every") {
                if (++i >= argc)
                    fatal("--checkpoint-every needs a cycle count");
                char* end = nullptr;
                errno = 0;
                checkpoint_every = std::strtoull(argv[i], &end, 10);
                if (end == argv[i] || *end != '\0' ||
                    errno == ERANGE || argv[i][0] == '-') {
                    fatal("--checkpoint-every: '", argv[i],
                          "' is not a valid cycle count");
                }
                if (checkpoint_every == 0)
                    fatal("--checkpoint-every must be > 0");
            } else if (arg == "--checkpoint-dir") {
                if (++i >= argc)
                    fatal("--checkpoint-dir needs a directory");
                checkpoint_dir = argv[i];
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--cores") {
                if (++i >= argc)
                    fatal("--cores needs a count");
                // Sugar for the dotted override; range-checked by
                // cmpConfigFromConfig like any cmp.cores value.
                cfg.parseText(std::string("cmp.cores = ") +
                              argv[i]);
            } else {
                cfg.parseText(arg);
            }
        }

        const std::string bench =
            cfg.getString("run.benchmark", "eon");
        // getInt is signed: a negative run.cycles cast straight to
        // uint64_t would wrap to ~1.8e19 and run "forever".
        const std::int64_t cycles_signed =
            cfg.getInt("run.cycles", 12'000'000);
        if (cycles_signed <= 0) {
            fatal("run.cycles must be > 0 (got ", cycles_signed,
                  ")");
        }
        const auto cycles =
            static_cast<std::uint64_t>(cycles_signed);

        // More than one core tile (or a stacked DRAM die) routes
        // through the CMP engine; plain configs keep the original
        // single-core path and its outputs byte-for-byte.
        if (cfg.getInt("cmp.cores", 1) > 1 ||
            cfg.getBool("stack.dram", false)) {
            if (!cfg.getString("run.trace_csv", "").empty())
                inform("run.trace_csv is single-core only; "
                       "ignored for CMP runs");
            return runCmp(cfg, cycles, checkpoint_every,
                          checkpoint_dir, resume);
        }

        const std::string ckpt_path =
            checkpoint_dir + "/" + bench + ".ckpt";

        Simulator sim(simConfigFromConfig(cfg), spec2000(bench));

        ThermalTrace trace(
            sim.floorplan(),
            static_cast<int>(cfg.getInt("run.trace_stride", 1)));
        const std::string trace_path =
            cfg.getString("run.trace_csv", "");
        if (!trace_path.empty())
            sim.setTrace(&trace);

        if (resume) {
            std::ifstream probe(ckpt_path, std::ios::binary);
            if (probe) {
                probe.close();
                sim.restoreCheckpoint(
                    readCheckpointFile(ckpt_path));
                std::printf("resumed       %s @ cycle %llu\n",
                            ckpt_path.c_str(),
                            static_cast<unsigned long long>(
                                sim.cycle()));
            } else {
                inform("--resume: no checkpoint at '", ckpt_path,
                       "', starting from cycle 0");
            }
        }

        if (checkpoint_every > 0) {
            while (sim.cycle() < cycles) {
                const std::uint64_t stop = std::min(
                    cycles, sim.cycle() + checkpoint_every);
                sim.runTo(stop);
                writeCheckpointFile(ckpt_path,
                                    sim.saveCheckpoint());
            }
        } else {
            sim.runTo(cycles);
        }
        const SimResult r = sim.result();

        std::printf("benchmark    %s\n", r.benchmark.c_str());
        std::printf("cycles       %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("instructions %llu\n",
                    static_cast<unsigned long long>(
                        r.instructions));
        std::printf("ipc          %.3f\n", r.ipc);
        std::printf("stall_cycles %llu (%.1f%%)\n",
                    static_cast<unsigned long long>(
                        r.stallCycles),
                    100.0 * r.stallCycles / r.cycles);
        std::printf("stalls       %llu\n",
                    static_cast<unsigned long long>(
                        r.dtm.globalStalls));
        std::printf("toggles      %llu\n",
                    static_cast<unsigned long long>(
                        r.dtm.iqToggles));
        std::printf("turnoffs     %llu alu, %llu fp, %llu "
                    "regfile, %llu fetch-throttle\n",
                    static_cast<unsigned long long>(
                        r.dtm.aluTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.fpAdderTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.regfileTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.fetchThrottleEvents));
        for (const BlockTempStats& b : r.blocks) {
            std::printf("block %-10s avg %7.2f K   max %7.2f K\n",
                        b.name.c_str(), b.avg, b.max);
        }
        // Full-SimResult FNV-1a: bit-identity fingerprint for the
        // kill-and-resume test and for cross-run comparisons.
        std::printf("result_hash  0x%016llx\n",
                    static_cast<unsigned long long>(
                        experiments::hashSimResult(r)));
        if (!trace_path.empty()) {
            trace.writeCsv(trace_path);
            std::printf("trace        %zu samples -> %s\n",
                        trace.size(), trace_path.c_str());
        }
    } catch (const tempest::FatalError&) {
        return 1;
    }
    return 0;
}
