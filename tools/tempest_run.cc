/**
 * @file
 * tempest_run: configuration-file-driven simulation driver.
 *
 * Usage:
 *   tempest_run <config.ini> [key=value ...]
 *
 * Any "key = value" override on the command line wins over the
 * file. See configs/ for annotated examples. Recognized keys:
 *
 *   [run]      benchmark, cycles, seed, trace_csv, trace_stride
 *   [floorplan] variant = baseline|iq|alu|regfile
 *   [dtm]      toggling, alu_turnoff, regfile_turnoff,
 *              round_robin, fetch_throttling,
 *              mapping = priority|balanced|completely-balanced,
 *              max_temperature, toggle_delta, cooling_time
 *   [thermal]  time_scale, ambient, convection,
 *              solver = expm|euler
 *   [sim]      sample_interval, warm_start
 *
 * Checkpointing (resumable runs, see DESIGN.md §11):
 *
 *   --checkpoint-every N   snapshot every N cycles
 *   --checkpoint-dir D     directory for <benchmark>.ckpt
 *                          (default ".")
 *   --resume               restore from the checkpoint file if it
 *                          exists, then continue to [run] cycles
 *
 * Checkpoint files are written atomically (tmp + rename), so a
 * kill at any instant leaves either the previous snapshot or the
 * new one, never a torn file. A resumed run is bit-identical to
 * an uninterrupted one; the printed result_hash proves it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace
{

using namespace tempest;

FloorplanVariant
parseVariant(const std::string& name)
{
    if (name == "baseline")
        return FloorplanVariant::Baseline;
    if (name == "iq")
        return FloorplanVariant::IqConstrained;
    if (name == "alu")
        return FloorplanVariant::AluConstrained;
    if (name == "regfile")
        return FloorplanVariant::RegfileConstrained;
    fatal("unknown floorplan variant '", name,
          "' (baseline|iq|alu|regfile)");
}

ThermalSolver
parseSolver(const std::string& name)
{
    if (name == "expm")
        return ThermalSolver::Expm;
    if (name == "euler")
        return ThermalSolver::Euler;
    fatal("unknown thermal solver '", name, "' (expm|euler)");
}

PortMapping
parseMapping(const std::string& name)
{
    if (name == "priority")
        return PortMapping::Priority;
    if (name == "balanced")
        return PortMapping::Balanced;
    if (name == "completely-balanced")
        return PortMapping::CompletelyBalanced;
    fatal("unknown mapping '", name, "'");
}

SimConfig
buildSimConfig(const Config& cfg)
{
    SimConfig sim;
    sim.variant = parseVariant(
        cfg.getString("floorplan.variant", "iq"));
    sim.thermal.timeScale =
        cfg.getDouble("thermal.time_scale", 0.04);
    sim.thermal.ambient =
        cfg.getDouble("thermal.ambient", sim.thermal.ambient);
    sim.thermal.rConvection = cfg.getDouble(
        "thermal.convection", sim.thermal.rConvection);
    sim.thermal.solver = parseSolver(
        cfg.getString("thermal.solver", "expm"));
    sim.sampleIntervalCycles = static_cast<std::uint64_t>(
        cfg.getInt("sim.sample_interval", 50000));
    sim.warmStart = cfg.getBool("sim.warm_start", true);
    sim.runSeed =
        static_cast<std::uint64_t>(cfg.getInt("run.seed", 1));

    DtmConfig& dtm = sim.dtm;
    dtm.maxTemperature = cfg.getDouble("dtm.max_temperature",
                                       sim.thermal.maxTemperature);
    dtm.iqToggling = cfg.getBool("dtm.toggling", false);
    dtm.toggleDeltaK =
        cfg.getDouble("dtm.toggle_delta", dtm.toggleDeltaK);
    dtm.aluTurnoff = cfg.getBool("dtm.alu_turnoff", false);
    dtm.regfileTurnoff =
        cfg.getBool("dtm.regfile_turnoff", false);
    dtm.roundRobin = cfg.getBool("dtm.round_robin", false);
    dtm.fetchThrottling =
        cfg.getBool("dtm.fetch_throttling", false);
    dtm.coolingTime =
        cfg.getDouble("dtm.cooling_time", dtm.coolingTime);
    dtm.mapping = parseMapping(
        cfg.getString("dtm.mapping", "priority"));
    return sim;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tempest_run <config.ini> "
                     "[key=value ...]\n");
        return 2;
    }

    try {
        std::uint64_t checkpoint_every = 0;
        std::string checkpoint_dir = ".";
        bool resume = false;

        Config cfg;
        {
            std::ifstream in(argv[1]);
            if (!in)
                fatal("cannot open config '", argv[1], "'");
            std::stringstream ss;
            ss << in.rdbuf();
            cfg.parseText(ss.str());
        }
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--checkpoint-every") {
                if (++i >= argc)
                    fatal("--checkpoint-every needs a cycle count");
                checkpoint_every = std::strtoull(argv[i], nullptr,
                                                 10);
                if (checkpoint_every == 0)
                    fatal("--checkpoint-every must be > 0");
            } else if (arg == "--checkpoint-dir") {
                if (++i >= argc)
                    fatal("--checkpoint-dir needs a directory");
                checkpoint_dir = argv[i];
            } else if (arg == "--resume") {
                resume = true;
            } else {
                cfg.parseText(arg);
            }
        }

        const std::string bench =
            cfg.getString("run.benchmark", "eon");
        const std::uint64_t cycles = static_cast<std::uint64_t>(
            cfg.getInt("run.cycles", 12'000'000));
        const std::string ckpt_path =
            checkpoint_dir + "/" + bench + ".ckpt";

        Simulator sim(buildSimConfig(cfg), spec2000(bench));

        ThermalTrace trace(
            sim.floorplan(),
            static_cast<int>(cfg.getInt("run.trace_stride", 1)));
        const std::string trace_path =
            cfg.getString("run.trace_csv", "");
        if (!trace_path.empty())
            sim.setTrace(&trace);

        if (resume) {
            std::ifstream probe(ckpt_path, std::ios::binary);
            if (probe) {
                probe.close();
                sim.restoreCheckpoint(
                    readCheckpointFile(ckpt_path));
                std::printf("resumed       %s @ cycle %llu\n",
                            ckpt_path.c_str(),
                            static_cast<unsigned long long>(
                                sim.cycle()));
            } else {
                inform("--resume: no checkpoint at '", ckpt_path,
                       "', starting from cycle 0");
            }
        }

        if (checkpoint_every > 0) {
            while (sim.cycle() < cycles) {
                const std::uint64_t stop = std::min(
                    cycles, sim.cycle() + checkpoint_every);
                sim.runTo(stop);
                writeCheckpointFile(ckpt_path,
                                    sim.saveCheckpoint());
            }
        } else {
            sim.runTo(cycles);
        }
        const SimResult r = sim.result();

        std::printf("benchmark    %s\n", r.benchmark.c_str());
        std::printf("cycles       %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("instructions %llu\n",
                    static_cast<unsigned long long>(
                        r.instructions));
        std::printf("ipc          %.3f\n", r.ipc);
        std::printf("stall_cycles %llu (%.1f%%)\n",
                    static_cast<unsigned long long>(
                        r.stallCycles),
                    100.0 * r.stallCycles / r.cycles);
        std::printf("stalls       %llu\n",
                    static_cast<unsigned long long>(
                        r.dtm.globalStalls));
        std::printf("toggles      %llu\n",
                    static_cast<unsigned long long>(
                        r.dtm.iqToggles));
        std::printf("turnoffs     %llu alu, %llu fp, %llu "
                    "regfile, %llu fetch-throttle\n",
                    static_cast<unsigned long long>(
                        r.dtm.aluTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.fpAdderTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.regfileTurnoffEvents),
                    static_cast<unsigned long long>(
                        r.dtm.fetchThrottleEvents));
        for (const BlockTempStats& b : r.blocks) {
            std::printf("block %-10s avg %7.2f K   max %7.2f K\n",
                        b.name.c_str(), b.avg, b.max);
        }
        // Full-SimResult FNV-1a: bit-identity fingerprint for the
        // kill-and-resume test and for cross-run comparisons.
        std::printf("result_hash  0x%016llx\n",
                    static_cast<unsigned long long>(
                        experiments::hashSimResult(r)));
        if (!trace_path.empty()) {
            trace.writeCsv(trace_path);
            std::printf("trace        %zu samples -> %s\n",
                        trace.size(), trace_path.c_str());
        }
    } catch (const tempest::FatalError&) {
        return 1;
    }
    return 0;
}
