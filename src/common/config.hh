/**
 * @file
 * Simple typed key/value configuration store with INI-style text
 * parsing and layered overrides.
 *
 * Keys are dotted paths ("thermal.time_scale"). Values are stored as
 * strings and converted on access; conversion failures are fatal()
 * (user error). Unknown-key reads with a default never fail, which is
 * what experiment sweeps want.
 */

#ifndef TEMPEST_COMMON_CONFIG_HH
#define TEMPEST_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace tempest
{

/** Layered key/value configuration. */
class Config
{
  public:
    Config() = default;

    /** Set a key from a string value (overwrites). */
    void set(const std::string& key, const std::string& value);

    /** Convenience setters. */
    void setInt(const std::string& key, std::int64_t value);
    void setDouble(const std::string& key, double value);
    void setBool(const std::string& key, bool value);

    /** @return true if the key is present. */
    bool has(const std::string& key) const;

    /** Raw string access; fatal if missing. */
    std::string getString(const std::string& key) const;
    std::string getString(const std::string& key,
                          const std::string& def) const;

    /** Integer access with strict parsing; fatal on bad value. */
    std::int64_t getInt(const std::string& key) const;
    std::int64_t getInt(const std::string& key,
                        std::int64_t def) const;

    /** Floating-point access; fatal on bad value. */
    double getDouble(const std::string& key) const;
    double getDouble(const std::string& key, double def) const;

    /** Boolean access: true/false/1/0/yes/no; fatal otherwise. */
    bool getBool(const std::string& key) const;
    bool getBool(const std::string& key, bool def) const;

    /**
     * Parse INI-style text: "[section]" lines prefix following keys
     * with "section."; "key = value" lines set entries; '#' and ';'
     * start comments. Malformed lines are fatal.
     */
    void parseText(const std::string& text);

    /** Merge another config on top of this one (other wins). */
    void overlay(const Config& other);

    /** Render all entries as sorted "key = value" lines. */
    std::string render() const;

    const std::map<std::string, std::string>& entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace tempest

#endif // TEMPEST_COMMON_CONFIG_HH
