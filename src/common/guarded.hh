/**
 * @file
 * Annotated mutex wrappers (DESIGN.md §17).
 *
 * `Mutex` is a std::mutex carrying the CAPABILITY annotation, and
 * `MutexLock` is the SCOPED_CAPABILITY RAII guard for it, so clang's
 * `-Wthread-safety` can prove that every GUARDED_BY member is only
 * touched under its lock. All concurrent subsystems (the serve
 * daemon, the job runner's progress path) lock through these; raw
 * std::mutex/std::lock_guard is reserved for code that cannot be
 * annotated (none today).
 *
 * `MutexLock` wraps std::unique_lock rather than std::lock_guard
 * because two call sites need more than scope-exit unlocking:
 * condition-variable waits (std::condition_variable requires a
 * std::unique_lock<std::mutex>, exposed via native()) and early
 * release (ServeDaemon::handleRun drops the queue lock before
 * encoding a shed reply). The destructor releases only if still
 * held, matching the SCOPED_CAPABILITY contract.
 *
 * Both types are layout- and behavior-transparent: the wrappers
 * add no state beyond the underlying std types, so adopting them
 * is bit-neutral for every golden and serving test.
 */

#ifndef TEMPEST_COMMON_GUARDED_HH
#define TEMPEST_COMMON_GUARDED_HH

#include <mutex>

#include "common/thread_annotations.hh"

namespace tempest
{

/** A std::mutex that is a clang thread-safety capability. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void
    lock() ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() RELEASE()
    {
        mutex_.unlock();
    }

    bool
    tryLock() TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

    /** The wrapped std::mutex, for std::condition_variable only
     * (see MutexLock::native()). */
    std::mutex&
    raw()
    {
        return mutex_;
    }

  private:
    std::mutex mutex_;
};

/** RAII lock for Mutex; locked on construction, released on
 * destruction or by an explicit early unlock(). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) ACQUIRE(mutex)
        : lock_(mutex.raw())
    {}

    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /** Release before scope exit (load-shed replies are encoded
     * off-lock). The destructor then does nothing. */
    void
    unlock() RELEASE()
    {
        lock_.unlock();
    }

    /**
     * The underlying unique_lock, for
     * std::condition_variable::wait only — wait() unlocks and
     * relocks, which clang models as "still held on return", so
     * the annotation state stays truthful.
     */
    std::unique_lock<std::mutex>&
    native()
    {
        return lock_;
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace tempest

#endif // TEMPEST_COMMON_GUARDED_HH
