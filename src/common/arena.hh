/**
 * @file
 * Bump-pointer arena for a simulator's hot-state arrays.
 *
 * Every parallel job used to build its Simulator out of dozens of
 * individually malloc'd std::vectors; under a thread pool those
 * constructions contend on the global allocator. An Arena turns a
 * run's construction-time allocations into a handful of large block
 * requests and per-array pointer bumps, and frees everything at once
 * when the owning Simulator dies.
 *
 * Lifetime rules (DESIGN.md §14):
 * - The arena outlives every array carved from it: components hold
 *   raw pointers into arena blocks and never free them individually.
 * - Arenas are not thread-safe; one arena belongs to one simulator
 *   (the parallel runner gives each job its own).
 * - There is no per-array reuse: the arena only grows (by whole
 *   blocks) and releases memory in its destructor. Steady-state
 *   simulation performs no allocations at all, so growth stops once
 *   construction is done.
 * - Components that can be built standalone (tests, benches) own a
 *   private arena when the caller does not supply one.
 *
 * Only trivially-copyable element types are supported; arrays come
 * back zero-initialized, which doubles as the "constructed" state
 * for every hot array in the pipeline.
 */

#ifndef TEMPEST_COMMON_ARENA_HH
#define TEMPEST_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "common/log.hh"

namespace tempest
{

/** Grow-only bump allocator; see the file comment for the rules. */
class Arena
{
  public:
    /** @param block_bytes granularity of the underlying blocks. */
    explicit Arena(std::size_t block_bytes = 256 * 1024)
        : blockBytes_(block_bytes)
    {
        if (block_bytes < 4096)
            fatal("arena block size must be at least 4096 bytes");
    }

    ~Arena() { release(); }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /**
     * Carve a zero-initialized array of n trivially-copyable
     * elements out of the arena. n == 0 returns a valid non-null
     * pointer (to a zero-length region).
     */
    template <typename T>
    T*
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena arrays hold trivially-copyable "
                      "elements only");
        void* p = allocBytes(n * sizeof(T), alignof(T));
        return static_cast<T*>(p);
    }

    /** Total bytes handed out (excluding alignment padding). */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Number of underlying blocks requested from the system. */
    int blockCount() const { return blockCount_; }

  private:
    struct BlockHeader
    {
        BlockHeader* next;
        std::size_t size; ///< usable bytes after the header
    };

    void*
    allocBytes(std::size_t n, std::size_t align)
    {
        std::size_t cur = reinterpret_cast<std::size_t>(cursor_);
        std::size_t aligned = (cur + (align - 1)) & ~(align - 1);
        if (cursor_ == nullptr ||
            aligned + n > reinterpret_cast<std::size_t>(end_)) {
            grow(n + align);
            cur = reinterpret_cast<std::size_t>(cursor_);
            aligned = (cur + (align - 1)) & ~(align - 1);
        }
        cursor_ = reinterpret_cast<char*>(aligned + n);
        allocated_ += n;
        void* p = reinterpret_cast<void*>(aligned);
        std::memset(p, 0, n);
        return p;
    }

    void
    grow(std::size_t min_bytes)
    {
        const std::size_t usable =
            min_bytes > blockBytes_ ? min_bytes : blockBytes_;
        const std::size_t total = usable + sizeof(BlockHeader);
        char* raw = static_cast<char*>(
            ::operator new(total, std::align_val_t{64}));
        auto* header = reinterpret_cast<BlockHeader*>(raw);
        header->next = blocks_;
        header->size = usable;
        blocks_ = header;
        ++blockCount_;
        cursor_ = raw + sizeof(BlockHeader);
        end_ = cursor_ + usable;
    }

    void
    release()
    {
        while (blocks_ != nullptr) {
            BlockHeader* next = blocks_->next;
            ::operator delete(static_cast<void*>(blocks_),
                              std::align_val_t{64});
            blocks_ = next;
        }
        cursor_ = end_ = nullptr;
        blockCount_ = 0;
    }

    std::size_t blockBytes_;
    BlockHeader* blocks_ = nullptr;
    char* cursor_ = nullptr;
    char* end_ = nullptr;
    std::size_t allocated_ = 0;
    int blockCount_ = 0;
};

} // namespace tempest

#endif // TEMPEST_COMMON_ARENA_HH
