#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace tempest
{

namespace
{
bool quietFlag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail
{

void
fatalImpl(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warnImpl(const std::string& msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (!quietFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace tempest
