/**
 * @file
 * Per-stage cycle profiler, compiled out unless TEMPEST_PROFILE=1.
 *
 * Wall-clock benchmarks (bench_wallclock) say how fast the whole
 * simulator runs; this says where the time goes. Each pipeline
 * stage (fetch/dispatch/issue/writeback/compact/commit) and each
 * interval-level model (power/thermal/sensor/DTM) is wrapped in a
 * scoped timer that accumulates TSC ticks into a process-global
 * table; bench_profile prints the breakdown.
 *
 * The timers sit inside the per-simulated-cycle hot loop, so the
 * instrumented build is measurably slower than release — enable it
 * only to attribute time (configure with -DTEMPEST_PROFILE=ON),
 * never for wall-clock numbers. With the option off the macros
 * expand to nothing and the hot loop is untouched.
 */

#ifndef TEMPEST_COMMON_PROFILER_HH
#define TEMPEST_COMMON_PROFILER_HH

#include <cstdint>
#include <cstdio>

#if defined(TEMPEST_PROFILE)
#if defined(__x86_64__)
#include <x86intrin.h>
#else
#include <chrono>
#endif
#endif

namespace tempest
{

/** Profiled simulator stages (order = report order). */
enum class ProfStage : int
{
    Fetch = 0,
    Dispatch,
    Issue,
    Writeback,
    Compact,
    Commit,
    Power,
    Thermal,
    Sensor,
    Dtm,
    NumStages,
};

inline const char*
profStageName(ProfStage s)
{
    switch (s) {
      case ProfStage::Fetch: return "fetch";
      case ProfStage::Dispatch: return "dispatch";
      case ProfStage::Issue: return "issue/select";
      case ProfStage::Writeback: return "writeback";
      case ProfStage::Compact: return "compact";
      case ProfStage::Commit: return "commit";
      case ProfStage::Power: return "power";
      case ProfStage::Thermal: return "thermal";
      case ProfStage::Sensor: return "sensor";
      case ProfStage::Dtm: return "dtm";
      default: return "?";
    }
}

#if defined(TEMPEST_PROFILE)

/** Process-global per-stage tick accumulators. */
class Profiler
{
  public:
    static Profiler&
    instance()
    {
        static Profiler p;
        return p;
    }

    static std::uint64_t
    now()
    {
#if defined(__x86_64__)
        // det:allow(profiling timestamp; compiled out unless TEMPEST_PROFILE)
        return __rdtsc();
#else
        // Fallback timestamp for non-x86 profiling builds.
        return static_cast<std::uint64_t>(
            // det:allow(profiling timestamp; compiled out unless TEMPEST_PROFILE)
            std::chrono::steady_clock::now()
                .time_since_epoch()
                .count());
#endif
    }

    void
    add(ProfStage stage, std::uint64_t ticks)
    {
        ticks_[static_cast<int>(stage)] += ticks;
        ++calls_[static_cast<int>(stage)];
    }

    void
    reset()
    {
        for (int i = 0; i < kNum; ++i)
            ticks_[i] = calls_[i] = 0;
    }

    /** Print a sorted-percentage breakdown table. */
    void
    report(std::FILE* out) const
    {
        std::uint64_t total = 0;
        for (int i = 0; i < kNum; ++i)
            total += ticks_[i];
        std::fprintf(out,
                     "%-12s %14s %7s %12s %12s\n", "stage",
                     "ticks", "share", "calls", "ticks/call");
        for (int i = 0; i < kNum; ++i) {
            if (calls_[i] == 0)
                continue;
            std::fprintf(
                out, "%-12s %14llu %6.2f%% %12llu %12.1f\n",
                profStageName(static_cast<ProfStage>(i)),
                static_cast<unsigned long long>(ticks_[i]),
                total ? 100.0 * static_cast<double>(ticks_[i]) /
                            static_cast<double>(total)
                      : 0.0,
                static_cast<unsigned long long>(calls_[i]),
                calls_[i] ? static_cast<double>(ticks_[i]) /
                                static_cast<double>(calls_[i])
                          : 0.0);
        }
    }

  private:
    static constexpr int kNum =
        static_cast<int>(ProfStage::NumStages);
    std::uint64_t ticks_[kNum] = {};
    std::uint64_t calls_[kNum] = {};
};

/** RAII timer attributing its lifetime to one stage. */
class ScopedStageTimer
{
  public:
    explicit ScopedStageTimer(ProfStage stage)
        : stage_(stage), start_(Profiler::now())
    {
    }
    ~ScopedStageTimer()
    {
        Profiler::instance().add(stage_,
                                 Profiler::now() - start_);
    }
    ScopedStageTimer(const ScopedStageTimer&) = delete;
    ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  private:
    ProfStage stage_;
    std::uint64_t start_;
};

#define TEMPEST_PROF_CAT2(a, b) a##b
#define TEMPEST_PROF_CAT(a, b) TEMPEST_PROF_CAT2(a, b)
#define TEMPEST_PROF_SCOPE(stage)                                  \
    ::tempest::ScopedStageTimer TEMPEST_PROF_CAT(prof_timer_,      \
                                                 __LINE__)(stage)
#define TEMPEST_PROF_ENABLED 1

#else // !TEMPEST_PROFILE

#define TEMPEST_PROF_SCOPE(stage) ((void)0)
#define TEMPEST_PROF_ENABLED 0

#endif // TEMPEST_PROFILE

} // namespace tempest

#endif // TEMPEST_COMMON_PROFILER_HH
