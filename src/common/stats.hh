/**
 * @file
 * Lightweight statistics package: named counters, running means,
 * distributions, and a registry that can render all registered
 * statistics as text.
 *
 * Modelled loosely on gem5's stats package, but header-light: a stat
 * is a plain value object that optionally registers itself with a
 * StatGroup for reporting.
 */

#ifndef TEMPEST_COMMON_STATS_HH
#define TEMPEST_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tempest
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter& operator++() { ++value_; return *this; }
    Counter& operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    sample(double x)
    {
        ++n_;
        sum_ += x;
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    reset()
    {
        n_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /**
     * Restore from checkpointed values. With n == 0 the sentinel
     * infinities are re-established (min()/max() report through the
     * n-guarded getters, so saving their raw values is lossless for
     * any n > 0).
     */
    void
    restore(std::uint64_t n, double sum, double min, double max)
    {
        if (n == 0) {
            reset();
            return;
        }
        n_ = n;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first bin
     * @param hi upper bound of the last bin
     * @param bins number of interior bins (must be >= 1)
     */
    Histogram(double lo, double hi, int bins);

    /** Add one sample. */
    void sample(double x);

    int bins() const { return static_cast<int>(counts_.size()); }
    std::uint64_t binCount(int i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Midpoint of bin i. */
    double binCenter(int i) const;

    /** Sample mean (interior samples binned at centers). */
    double approxMean() const;

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Name -> value registry used to dump end-of-run statistics.
 *
 * Components register scalar snapshots (captured at dump time through
 * a callback-free interface: the owner pushes values explicitly).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Record (or overwrite) a named scalar. */
    void set(const std::string& stat, double value);

    /** @return value of a previously set stat; fatal if missing. */
    double get(const std::string& stat) const;

    /** @return true if the stat has been set. */
    bool has(const std::string& stat) const;

    /** Render "group.stat value" lines, sorted by name. */
    std::string render() const;

    const std::string& name() const { return name_; }

    const std::map<std::string, double>& values() const
    {
        return values_;
    }

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

} // namespace tempest

#endif // TEMPEST_COMMON_STATS_HH
