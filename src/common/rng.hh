/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulation.
 *
 * Tempest never uses std::random_device or global generators; every
 * stochastic component owns an Rng seeded from the experiment
 * configuration so that a given (seed, config) pair always produces
 * bit-identical results. The core generator is xoshiro256**, which is
 * fast, high-quality, and trivially portable.
 */

#ifndef TEMPEST_COMMON_RNG_HH
#define TEMPEST_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace tempest
{

/**
 * xoshiro256** pseudo-random generator with convenience draws for the
 * distributions the workload generator and tests need.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return next raw 64-bit draw. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @return uniform integer in [0, bound) using rejection sampling
     * (unbiased). bound must be > 0.
     */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p (p clamped to [0, 1]). */
    bool chance(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p in (0, 1]. Mean (1-p)/p.
     */
    std::uint64_t geometric(double p);

    /**
     * Geometric inversion of an externally supplied uniform in
     * [0, 1). Lets callers split one raw draw into several
     * conditioned variates (rescaled-uniform composition) instead
     * of burning a generator step per variate.
     */
    static std::uint64_t geometricFromUniform(double u, double p);

    /**
     * Same inversion with the caller-cached denominator
     * log1p(-p). Callers drawing many variates at a fixed p hoist
     * the denominator log out of the loop; the division (not a
     * reciprocal multiply) keeps the result bit-identical to
     * geometricFromUniform(u, p).
     */
    static std::uint64_t geometricFromUniformLogDenom(
        double u, double log_denom);

    /** Standard normal draw (Box-Muller, no caching). */
    double gaussian();

    /** Normal draw with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Draw an index from a discrete distribution given cumulative
     * weights (last element is the total weight).
     */
    int categoricalFromCdf(const double* cdf, int n);

    /** Re-seed the generator (resets the stream). */
    void reseed(std::uint64_t seed);

    /** Raw generator state (for checkpointing). */
    const std::array<std::uint64_t, 4>& state() const
    {
        return state_;
    }

    /** Restore raw generator state (for checkpointing). */
    void setState(const std::array<std::uint64_t, 4>& s)
    {
        state_ = s;
    }

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace tempest

#endif // TEMPEST_COMMON_RNG_HH
