#include "common/alias_table.hh"

#include "common/log.hh"

namespace tempest
{

void
AliasTable::build(const double* weights, int n)
{
    if (n <= 0)
        panic("alias table needs at least one class");
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        if (weights[i] < 0.0)
            panic("alias table weights must be non-negative");
        total += weights[i];
    }
    if (total <= 0.0)
        panic("alias table needs positive total weight");

    n_ = n;
    prob_.assign(static_cast<std::size_t>(n), 0.0);
    alias_.assign(static_cast<std::size_t>(n), 0);

    // Scale weights to mean 1 and split columns into under- and
    // over-full. Each pairing step tops an under-full column up to
    // exactly 1 with mass from an over-full donor; index order is
    // fixed so the table (and therefore every sampled stream) is
    // deterministic for a given distribution.
    std::vector<double> scaled(static_cast<std::size_t>(n));
    std::vector<int> small;
    std::vector<int> large;
    for (int i = 0; i < n; ++i) {
        scaled[static_cast<std::size_t>(i)] =
            weights[i] * n / total;
        if (scaled[static_cast<std::size_t>(i)] < 1.0)
            small.push_back(i);
        else
            large.push_back(i);
    }
    while (!small.empty() && !large.empty()) {
        const int s = small.back();
        const int l = large.back();
        small.pop_back();
        prob_[static_cast<std::size_t>(s)] =
            scaled[static_cast<std::size_t>(s)];
        alias_[static_cast<std::size_t>(s)] = l;
        scaled[static_cast<std::size_t>(l)] -=
            1.0 - scaled[static_cast<std::size_t>(s)];
        if (scaled[static_cast<std::size_t>(l)] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Leftovers are exactly full up to rounding; they never take
    // their (self) alias.
    for (const int i : large)
        prob_[static_cast<std::size_t>(i)] = 1.0;
    for (const int i : small)
        prob_[static_cast<std::size_t>(i)] = 1.0;
}

} // namespace tempest
