/**
 * @file
 * Walker alias table for O(1) categorical sampling.
 *
 * A categorical draw over n classes via a cumulative-distribution
 * scan costs one uniform plus up to n compares on the hot path. The
 * alias method folds the same distribution into two n-entry tables
 * (a cutoff probability and an alias index per column) built once;
 * each sample then needs exactly one uniform: the integer part picks
 * a column, the fractional part picks between the column's own index
 * and its alias. The workload generator draws one class per
 * instruction, so this runs hundreds of millions of times per
 * simulation.
 */

#ifndef TEMPEST_COMMON_ALIAS_TABLE_HH
#define TEMPEST_COMMON_ALIAS_TABLE_HH

#include <vector>

#include "common/rng.hh"

namespace tempest
{

/** Precomputed alias table over a fixed discrete distribution. */
class AliasTable
{
  public:
    AliasTable() = default;

    /**
     * Build from non-negative weights (need not be normalized).
     * @param weights weight per class; at least one must be > 0
     * @param n number of classes
     */
    void build(const double* weights, int n);

    /** Draw one class index using a single uniform from @p rng. */
    int
    sample(Rng& rng) const
    {
        const double x = rng.uniform() * n_;
        const int col = static_cast<int>(x);
        return (x - col) < prob_[static_cast<std::size_t>(col)]
                   ? col
                   : alias_[static_cast<std::size_t>(col)];
    }

    int size() const { return n_; }

  private:
    std::vector<double> prob_; ///< cutoff within each column
    std::vector<int> alias_;   ///< donor class above the cutoff
    int n_ = 0;
};

} // namespace tempest

#endif // TEMPEST_COMMON_ALIAS_TABLE_HH
