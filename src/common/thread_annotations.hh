/**
 * @file
 * Clang Thread Safety Analysis macros (DESIGN.md §17).
 *
 * These wrap the `-Wthread-safety` attribute vocabulary so lock
 * discipline is part of a declaration's type, checked at compile
 * time under clang and expanded to nothing everywhere else:
 *
 *   Mutex mutex_;
 *   std::uint64_t hits_ GUARDED_BY(mutex_) = 0;
 *   void flush(Connection& c) REQUIRES(c.writeMutex);
 *
 * The macros mirror the names in the Clang documentation
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and the
 * semantics the kernel/abseil headers established:
 *
 *   CAPABILITY(x)        the annotated class IS a lock (capability)
 *   SCOPED_CAPABILITY    RAII type that acquires in its constructor
 *                        and releases in its destructor
 *   GUARDED_BY(m)        data member readable/writable only while
 *                        m is held
 *   PT_GUARDED_BY(m)     pointee (not the pointer) guarded by m
 *   REQUIRES(m...)       caller must hold m before calling
 *   ACQUIRE(m...)        function acquires m and does not release
 *   RELEASE(m...)        function releases m
 *   TRY_ACQUIRE(b, m...) acquires m iff the return value equals b
 *   EXCLUDES(m...)       caller must NOT hold m (deadlock guard)
 *   ASSERT_CAPABILITY(m) runtime assertion that m is held
 *   RETURN_CAPABILITY(m) function returns a reference to m
 *   NO_THREAD_SAFETY_ANALYSIS
 *                        opt a function body out of the analysis
 *                        (use sparingly; say why in a comment)
 *
 * tools/lint/tempest_lint.py's lock-discipline pass reads the same
 * GUARDED_BY/REQUIRES spellings from the token stream, so every
 * annotation is enforced twice: by clang in the thread-safety CI
 * job, and by the linter in GCC-only builds (where these macros
 * vanish) and inside lambdas (which clang's analysis treats as
 * opaque separate functions).
 */

#ifndef TEMPEST_COMMON_THREAD_ANNOTATIONS_HH
#define TEMPEST_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define TEMPEST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TEMPEST_THREAD_ANNOTATION(x) // no-op off clang
#endif

#define CAPABILITY(x) TEMPEST_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY TEMPEST_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) TEMPEST_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) TEMPEST_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
    TEMPEST_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
    TEMPEST_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
    TEMPEST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
    TEMPEST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
    TEMPEST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
    TEMPEST_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
    TEMPEST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
    TEMPEST_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
    TEMPEST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
    TEMPEST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
    TEMPEST_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) TEMPEST_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
    TEMPEST_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // TEMPEST_COMMON_THREAD_ANNOTATIONS_HH
