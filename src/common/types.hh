/**
 * @file
 * Fundamental scalar types and unit aliases used throughout Tempest.
 *
 * All physical quantities carry their unit in the alias name so call
 * sites read unambiguously (e.g. a Kelvin is never confused with a
 * Celsius delta).
 */

#ifndef TEMPEST_COMMON_TYPES_HH
#define TEMPEST_COMMON_TYPES_HH

#include <cstdint>

namespace tempest
{

/** Simulated core clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated wall-clock time in seconds. */
using Seconds = double;

/** Absolute temperature in Kelvin. */
using Kelvin = double;

/** Energy in Joules. */
using Joule = double;

/** Power in Watts. */
using Watt = double;

/** Thermal resistance in Kelvin per Watt. */
using KelvinPerWatt = double;

/** Heat capacity in Joules per Kelvin. */
using JoulePerKelvin = double;

/** Physical length in meters. */
using Meter = double;

/** Physical area in square meters. */
using SquareMeter = double;

/** Invalid/unassigned index sentinel. */
inline constexpr int invalidIndex = -1;

} // namespace tempest

#endif // TEMPEST_COMMON_TYPES_HH
