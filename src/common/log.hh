/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of gem5's
 * logging.hh.
 *
 * fatal() is for user errors (bad configuration): prints and throws
 * FatalError so embedders (and tests) can recover. panic() is for
 * internal invariant violations: prints and aborts. warn()/inform()
 * print to stderr/stdout and never stop the simulation.
 */

#ifndef TEMPEST_COMMON_LOG_HH
#define TEMPEST_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace tempest
{

/** Exception thrown by fatal() for unrecoverable user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string& msg);
[[noreturn]] void panicImpl(const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace detail

/**
 * Report an unrecoverable error caused by the user (bad configuration,
 * invalid arguments) and throw FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report a condition that should never happen regardless of user input
 * (an internal bug) and abort.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Alert the user to suspicious but non-terminal behaviour. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Provide a normal operating status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence inform()/warn() output (used by benches). */
void setQuiet(bool quiet);

/** @return true if inform()/warn() output is suppressed. */
bool isQuiet();

} // namespace tempest

#endif // TEMPEST_COMMON_LOG_HH
