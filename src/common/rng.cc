#include "common/rng.hh"

#include <cmath>

#include "common/log.hh"

namespace tempest
{

namespace
{

/** splitmix64 step used for seeding. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // Lemire-style rejection via threshold on the low bits.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi < lo)
        panic("Rng::range with hi < lo");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    return geometricFromUniform(uniform(), p);
}

std::uint64_t
Rng::geometricFromUniform(double u, double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        panic("geometric draw with p <= 0");
    // Inversion method. A rescaled uniform can round up to exactly
    // 1.0; floor it against the smallest positive tail so the log
    // stays finite.
    return geometricFromUniformLogDenom(u, std::log1p(-p));
}

std::uint64_t
Rng::geometricFromUniformLogDenom(double u, double log_denom)
{
    const double tail = std::max(1.0 - u, 1e-300); // in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(tail) / log_denom));
}

double
Rng::gaussian()
{
    // Box-Muller; draw until u1 is nonzero to avoid log(0).
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

int
Rng::categoricalFromCdf(const double* cdf, int n)
{
    if (n <= 0)
        panic("Rng::categoricalFromCdf with empty distribution");
    const double total = cdf[n - 1];
    const double u = uniform() * total;
    for (int i = 0; i < n; ++i) {
        if (u < cdf[i])
            return i;
    }
    return n - 1;
}

} // namespace tempest
