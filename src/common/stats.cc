#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace tempest
{

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi)
{
    if (bins < 1)
        fatal("Histogram requires at least one bin");
    if (!(hi > lo))
        fatal("Histogram requires hi > lo");
    width_ = (hi - lo) / bins;
    counts_.assign(static_cast<std::size_t>(bins), 0);
}

void
Histogram::sample(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1; // guard FP edge at hi_
        ++counts_[idx];
    }
}

double
Histogram::binCenter(int i) const
{
    return lo_ + (i + 0.5) * width_;
}

double
Histogram::approxMean() const
{
    const std::uint64_t interior = total_ - underflow_ - overflow_;
    if (interior == 0)
        return 0.0;
    double sum = 0.0;
    for (int i = 0; i < bins(); ++i)
        sum += binCenter(i) * static_cast<double>(counts_[i]);
    return sum / static_cast<double>(interior);
}

void
Histogram::reset()
{
    for (auto& c : counts_)
        c = 0;
    underflow_ = overflow_ = total_ = 0;
}

void
StatGroup::set(const std::string& stat, double value)
{
    values_[stat] = value;
}

double
StatGroup::get(const std::string& stat) const
{
    auto it = values_.find(stat);
    if (it == values_.end())
        fatal("StatGroup '", name_, "' has no stat '", stat, "'");
    return it->second;
}

bool
StatGroup::has(const std::string& stat) const
{
    return values_.count(stat) != 0;
}

std::string
StatGroup::render() const
{
    std::ostringstream os;
    for (const auto& [stat, value] : values_)
        os << name_ << '.' << stat << ' ' << value << '\n';
    return os.str();
}

} // namespace tempest
