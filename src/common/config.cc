#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/log.hh"

namespace tempest
{

namespace
{

std::string
trim(const std::string& s)
{
    auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

void
Config::set(const std::string& key, const std::string& value)
{
    entries_[key] = value;
}

void
Config::setInt(const std::string& key, std::int64_t value)
{
    entries_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string& key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    entries_[key] = os.str();
}

void
Config::setBool(const std::string& key, bool value)
{
    entries_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string& key) const
{
    return entries_.count(key) != 0;
}

std::string
Config::getString(const std::string& key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        fatal("missing config key '", key, "'");
    return it->second;
}

std::string
Config::getString(const std::string& key, const std::string& def) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string& key) const
{
    const std::string raw = getString(key);
    std::size_t pos = 0;
    std::int64_t value = 0;
    try {
        value = std::stoll(raw, &pos, 0);
    } catch (const std::exception&) {
        fatal("config key '", key, "' = '", raw,
              "' is not an integer");
    }
    if (pos != raw.size())
        fatal("config key '", key, "' = '", raw,
              "' has trailing characters");
    return value;
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t def) const
{
    return has(key) ? getInt(key) : def;
}

double
Config::getDouble(const std::string& key) const
{
    const std::string raw = getString(key);
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(raw, &pos);
    } catch (const std::exception&) {
        fatal("config key '", key, "' = '", raw,
              "' is not a number");
    }
    if (pos != raw.size())
        fatal("config key '", key, "' = '", raw,
              "' has trailing characters");
    return value;
}

double
Config::getDouble(const std::string& key, double def) const
{
    return has(key) ? getDouble(key) : def;
}

bool
Config::getBool(const std::string& key) const
{
    const std::string raw = lower(getString(key));
    if (raw == "true" || raw == "1" || raw == "yes")
        return true;
    if (raw == "false" || raw == "0" || raw == "no")
        return false;
    fatal("config key '", key, "' = '", raw, "' is not a boolean");
}

bool
Config::getBool(const std::string& key, bool def) const
{
    return has(key) ? getBool(key) : def;
}

void
Config::parseText(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments.
        auto hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line ", lineno,
                      ": unterminated section header");
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line ", lineno, ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line ", lineno, ": empty key");
        if (!section.empty())
            key = section + "." + key;
        set(key, value);
    }
}

void
Config::overlay(const Config& other)
{
    for (const auto& [key, value] : other.entries_)
        entries_[key] = value;
}

std::string
Config::render() const
{
    std::ostringstream os;
    for (const auto& [key, value] : entries_)
        os << key << " = " << value << '\n';
    return os.str();
}

} // namespace tempest
