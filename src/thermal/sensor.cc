#include "thermal/sensor.hh"

#include <cmath>

#include "sim/checkpoint/stateio.hh"

namespace tempest
{

SensorBank::SensorBank(const RcModel& model, Kelvin quantum,
                       Kelvin noise_sigma, std::uint64_t seed)
    : model_(model), quantum_(quantum), noiseSigma_(noise_sigma),
      rng_(seed)
{
}

Kelvin
SensorBank::read(int block)
{
    Kelvin t = model_.temperature(block);
    if (noiseSigma_ > 0.0)
        t += rng_.gaussian(0.0, noiseSigma_);
    if (quantum_ > 0.0)
        t = std::round(t / quantum_) * quantum_;
    return t;
}

void
SensorBank::readAll(std::vector<Kelvin>& out)
{
    out.resize(static_cast<std::size_t>(model_.numBlocks()));
    for (int i = 0; i < model_.numBlocks(); ++i)
        out[static_cast<std::size_t>(i)] = read(i);
}

std::vector<Kelvin>
SensorBank::readAll()
{
    std::vector<Kelvin> out;
    readAll(out);
    return out;
}

void
SensorBank::saveState(StateWriter& w) const
{
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
}

void
SensorBank::loadState(StateReader& r)
{
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t& s : state)
        s = r.u64();
    rng_.setState(state);
}

} // namespace tempest
