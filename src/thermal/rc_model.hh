/**
 * @file
 * HotSpot-like compact thermal RC network.
 *
 * One node per floorplan block (silicon layer), plus a heat
 * spreader node and a heatsink node coupled to a fixed ambient
 * through the package's convection resistance. Each block couples
 * vertically to the spreader (die conduction + constriction) and
 * laterally to every block it shares a floorplan edge with. The
 * lateral resistances are several times the vertical ones for
 * small blocks, which yields the paper's key physical property:
 * adjacent resource copies can sit several Kelvin apart.
 *
 * Transient integration defaults to the exponential integrator
 * (ExpmSolver): exact for piecewise-constant power, one dense
 * matvec per step. The original explicit Euler path (automatic
 * substepping below the smallest node time constant) is retained
 * behind ThermalParams::solver as a cross-check oracle. Steady
 * states come from the LU factors cached at construction.
 *
 * `timeScale` scales every capacitance, compressing the thermal
 * dynamics so short simulations traverse multiple time constants
 * while keeping the sampling-interval : time-constant :
 * cooling-time ratios intact (see DESIGN.md §1).
 */

#ifndef TEMPEST_THERMAL_RC_MODEL_HH
#define TEMPEST_THERMAL_RC_MODEL_HH

#include <optional>
#include <vector>

#include "common/types.hh"
#include "thermal/expm_solver.hh"
#include "thermal/floorplan.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/**
 * Transient integration scheme.
 *
 * Expm is the production path: exact for piecewise-constant power
 * via the precomputed matrix exponential, one O(n^2) update per
 * step regardless of stiffness. Euler is the original explicit
 * integrator with automatic substepping, retained as a
 * cross-check oracle (the expm tests assert agreement with it).
 */
enum class ThermalSolver
{
    Expm,
    Euler
};

/** Package and material parameters. */
struct ThermalParams
{
    Meter dieThickness = 0.15e-3;   ///< HotSpot-class thinned die
    double kSilicon = 100.0;        ///< W/(m K)
    /**
     * Lumped volumetric heat capacity. Physical silicon is
     * 1.75e6 J/(m^3 K); HotSpot-style compact models lump the
     * interface layers and local spreader volume into the block
     * node, raising the effective value (factor ~4 here) so block
     * time constants land in the low-millisecond range the paper
     * reports.
     */
    double cvSilicon = 7.0e6;

    /**
     * Thermal-interface material between die and spreader,
     * expressed as resistance times area (K m^2/W). Scaling with
     * 1/A makes small blocks' vertical paths dominate their
     * lateral ones — the paper's key physical premise.
     */
    double rTimPerArea = 1.0e-6;

    double kSpreader = 400.0;       ///< copper
    Meter spreaderThickness = 0.5e-3;
    double cvSpreader = 3.45e6;
    double spreaderAreaFactor = 1.0; ///< spreader area / die area

    /** Spreader-to-sink conduction (Table 2: 6.9 mm sink). */
    KelvinPerWatt rSpreaderSink = 0.05;
    /** Sink-to-ambient convection (Table 2: 0.8 K/W). */
    KelvinPerWatt rConvection = 0.8;
    /**
     * Effective package heat capacity. Together with the 0.8 K/W
     * convection this gives the ~10 ms package time constant the
     * paper bases its thermal cooling time on; the package is the
     * slow integrator that sets the stop-go duty cycle.
     */
    JoulePerKelvin cSink = 0.0125;

    Kelvin ambient = 318.15; ///< 45 C, HotSpot's default

    /**
     * Stacked-die coupling (CoMeT-style 3D scenarios): blocks on
     * layer >= 1 conduct down through half their own die, the
     * bond/TSV interface, and half the die beneath, over the
     * footprint overlap area. Unused by single-layer floorplans.
     */
    double rStackBondPerArea = 4.0e-6; ///< K m^2/W
    Meter stackedDieThickness = 0.1e-3; ///< thinned DRAM die

    /**
     * Propagator-cache capacity of the expm solver. Each cached
     * Phi is a dense (blocks+2)^2 double matrix, so CMP floorplans
     * may want a smaller cap (or larger, for sweeps that mix many
     * partial-chunk dts). Must be >= 1.
     */
    int maxCachedPropagators = 16;

    /** Thermal threshold (Table 2: 358 K). Carried here for
     * convenience; enforcement is the DTM layer's job. */
    Kelvin maxTemperature = 358.0;

    /** Capacitance compression for short simulations. */
    double timeScale = 1.0;

    /** Transient integration scheme (see ThermalSolver). */
    ThermalSolver solver = ThermalSolver::Expm;

    void validate() const;
};

/** The RC network and its solvers. */
class RcModel
{
  public:
    RcModel(const Floorplan& floorplan, const ThermalParams& params);

    int numBlocks() const { return numBlocks_; }

    /** Set the current power of one block (W). */
    void setPower(int block, Watt power);

    /** Set all block powers at once. */
    void setPowers(const std::vector<Watt>& powers);

    Watt power(int block) const;

    /** Sum of all block powers. */
    Watt totalPower() const;

    /** Advance the transient solution by dt (substepped). */
    void step(Seconds dt);

    /** Jump to the steady state for the current powers. */
    void solveSteadyState();

    Kelvin temperature(int block) const;
    Kelvin spreaderTemperature() const;
    Kelvin sinkTemperature() const;

    /** Force every node to one temperature (e.g. ambient). */
    void setAllTemperatures(Kelvin t);

    /** Force one block node's temperature (warm-start clamping). */
    void setTemperature(int block, Kelvin t);

    /** Largest stable explicit-Euler step. */
    Seconds maxStableDt() const { return maxStableDt_; }

    /** Vertical block-to-spreader resistance (O(1) lookup). */
    KelvinPerWatt verticalResistance(int block) const;

    /** Lateral resistance between two blocks; 0 conductance
     * (infinite resistance) if not adjacent. O(1) lookup. */
    KelvinPerWatt lateralResistance(int a, int b) const;

    /** The exponential-integrator backend (always built; also
     * serves the LU-backed steady-state solves). */
    ExpmSolver& expmSolver() { return *expm_; }
    const ExpmSolver& expmSolver() const { return *expm_; }

    const ThermalParams& params() const { return params_; }

    /**
     * Serialize node temperatures and block powers. The network
     * itself (conductances, capacitances, LU factors, propagator
     * cache) is a pure function of floorplan + params and is
     * rebuilt by the constructor, not checkpointed.
     */
    void saveState(StateWriter& w) const;

    /** Restore state; the node/block counts must match. */
    void loadState(StateReader& r);

  private:
    struct Edge
    {
        int a;
        int b;
        double conductance; ///< W/K
    };

    void addEdge(int a, int b, double conductance);
    void eulerStep(Seconds dt);

    // Everything except temp_/power_ is assembled once in the
    // constructor from (floorplan, params) and never mutated, so
    // only the dynamic state travels in a checkpoint; the restoring
    // run rebuilds the rest from its own config.
    ThermalParams params_; // ckpt:skip(config, supplied by the restoring run)
    int numBlocks_;
    int spreaderNode_;     // ckpt:skip(derived from the floorplan)
    int sinkNode_;         // ckpt:skip(derived from the floorplan)
    int numNodes_;

    std::vector<Edge> edges_; // ckpt:skip(assembled once from the floorplan)
    // ckpt:skip(assembled once from the floorplan)
    std::vector<double> capacitance_;  ///< J/K per node
    // ckpt:skip(assembled once from the floorplan)
    std::vector<double> nodeGtotal_;   ///< sum of conductances
    std::vector<Kelvin> temp_;
    std::vector<Watt> power_;          ///< block nodes only
    double gSinkAmbient_ = 0.0; // ckpt:skip(derived from params)
    Seconds maxStableDt_ = 0.0; // ckpt:skip(derived from edges/capacitance)

    // Per-block resistance lookups built in the constructor so
    // the DTM/floorplan setup paths avoid O(edges) scans.
    // ckpt:skip(precomputed lookup table)
    std::vector<KelvinPerWatt> verticalRes_;   ///< per block
    // ckpt:skip(precomputed lookup table)
    std::vector<KelvinPerWatt> lateralRes_;    ///< blocks x blocks

    /** Exponential-integrator backend (holds the LU of G). */
    std::optional<ExpmSolver> expm_; // ckpt:skip(rebuilt from G/C matrices; per-dt cache is a pure accelerator)

    // Scratch for the Euler step.
    std::vector<double> flux_; // ckpt:skip(per-step scratch, fully overwritten)
};

} // namespace tempest

#endif // TEMPEST_THERMAL_RC_MODEL_HH
