#include "thermal/expm_solver.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tempest
{

namespace
{

/** Largest row sum of absolute values (induced inf-norm). */
double
infNorm(const std::vector<double>& m, int n)
{
    double norm = 0.0;
    for (int r = 0; r < n; ++r) {
        double row = 0.0;
        for (int c = 0; c < n; ++c)
            row += std::abs(m[static_cast<std::size_t>(r) * n + c]);
        norm = std::max(norm, row);
    }
    return norm;
}

/** out = a * b for n x n row-major matrices. */
void
matmul(const std::vector<double>& a, const std::vector<double>& b,
       std::vector<double>& out, int n)
{
    for (int r = 0; r < n; ++r) {
        double* dst = &out[static_cast<std::size_t>(r) * n];
        std::fill(dst, dst + n, 0.0);
        for (int k = 0; k < n; ++k) {
            const double f = a[static_cast<std::size_t>(r) * n + k];
            if (f == 0.0)
                continue;
            const double* src =
                &b[static_cast<std::size_t>(k) * n];
            for (int c = 0; c < n; ++c)
                dst[c] += f * src[c];
        }
    }
}

} // namespace

ExpmSolver::ExpmSolver(std::vector<double> conductance,
                       std::vector<double> capacitance,
                       std::vector<double> const_heat,
                       std::size_t max_cached)
    : capacitance_(std::move(capacitance)),
      constHeat_(std::move(const_heat)), maxCached_(max_cached)
{
    n_ = static_cast<int>(capacitance_.size());
    if (n_ < 1)
        fatal("ExpmSolver needs at least one node");
    if (maxCached_ < 1)
        fatal("ExpmSolver needs a propagator cache of >= 1");
    if (conductance.size() !=
        static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_))
        fatal("ExpmSolver: conductance matrix size mismatch");
    if (constHeat_.size() != static_cast<std::size_t>(n_))
        fatal("ExpmSolver: const_heat size mismatch");
    for (double c : capacitance_) {
        if (c <= 0)
            fatal("ExpmSolver: capacitances must be positive");
    }

    // A = -C^{-1} G, kept for propagator construction.
    negGOverC_.assign(conductance.size(), 0.0);
    for (int r = 0; r < n_; ++r) {
        const double inv_c =
            1.0 / capacitance_[static_cast<std::size_t>(r)];
        for (int c = 0; c < n_; ++c) {
            const auto idx =
                static_cast<std::size_t>(r) * n_ + c;
            negGOverC_[idx] = -conductance[idx] * inv_c;
        }
    }

    // LU factorization of G with partial pivoting (Doolittle),
    // done once; steady-state solves reuse the factors.
    lu_ = std::move(conductance);
    pivot_.resize(static_cast<std::size_t>(n_));
    auto at = [this](int r, int c) -> double& {
        return lu_[static_cast<std::size_t>(r) * n_ + c];
    };
    for (int col = 0; col < n_; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n_; ++r) {
            if (std::abs(at(r, col)) > std::abs(at(pivot, col)))
                pivot = r;
        }
        if (std::abs(at(pivot, col)) < 1e-20)
            panic("singular thermal conductance matrix");
        pivot_[static_cast<std::size_t>(col)] = pivot;
        if (pivot != col) {
            for (int c = 0; c < n_; ++c)
                std::swap(at(pivot, c), at(col, c));
        }
        const double inv_p = 1.0 / at(col, col);
        for (int r = col + 1; r < n_; ++r) {
            const double f = at(r, col) * inv_p;
            at(r, col) = f;
            if (f == 0.0)
                continue;
            for (int c = col + 1; c < n_; ++c)
                at(r, c) -= f * at(col, c);
        }
    }

    rhs_.assign(static_cast<std::size_t>(n_), 0.0);
    diff_.assign(static_cast<std::size_t>(n_), 0.0);
}

void
ExpmSolver::luSolve(std::vector<double>& rhs) const
{
    // Apply the row permutation, then forward/back substitution.
    for (int col = 0; col < n_; ++col) {
        const int p = pivot_[static_cast<std::size_t>(col)];
        if (p != col)
            std::swap(rhs[static_cast<std::size_t>(col)],
                      rhs[static_cast<std::size_t>(p)]);
    }
    for (int r = 1; r < n_; ++r) {
        double v = rhs[static_cast<std::size_t>(r)];
        const double* row = &lu_[static_cast<std::size_t>(r) * n_];
        for (int c = 0; c < r; ++c)
            v -= row[c] * rhs[static_cast<std::size_t>(c)];
        rhs[static_cast<std::size_t>(r)] = v;
    }
    for (int r = n_ - 1; r >= 0; --r) {
        double v = rhs[static_cast<std::size_t>(r)];
        const double* row = &lu_[static_cast<std::size_t>(r) * n_];
        for (int c = r + 1; c < n_; ++c)
            v -= row[c] * rhs[static_cast<std::size_t>(c)];
        rhs[static_cast<std::size_t>(r)] = v / row[r];
    }
}

std::vector<double>
ExpmSolver::expm(const std::vector<double>& m, int n)
{
    if (m.size() !=
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n))
        fatal("expm: matrix size mismatch");

    // Scaling: halve until the norm is small enough that the
    // Taylor series converges in a handful of terms.
    int squarings = 0;
    double norm = infNorm(m, n);
    while (norm > 0.5 && squarings < 64) {
        norm *= 0.5;
        ++squarings;
    }
    const double scale = std::ldexp(1.0, -squarings);
    std::vector<double> scaled(m.size());
    for (std::size_t i = 0; i < m.size(); ++i)
        scaled[i] = m[i] * scale;

    // Taylor core: P = sum_k scaled^k / k!.
    std::vector<double> result(m.size(), 0.0);
    std::vector<double> term(m.size(), 0.0);
    std::vector<double> next(m.size(), 0.0);
    for (int r = 0; r < n; ++r) {
        result[static_cast<std::size_t>(r) * n + r] = 1.0;
        term[static_cast<std::size_t>(r) * n + r] = 1.0;
    }
    for (int k = 1; k <= 40; ++k) {
        matmul(term, scaled, next, n);
        const double inv_k = 1.0 / static_cast<double>(k);
        for (std::size_t i = 0; i < term.size(); ++i)
            term[i] = next[i] * inv_k;
        for (std::size_t i = 0; i < result.size(); ++i)
            result[i] += term[i];
        if (infNorm(term, n) < 1e-19)
            break;
    }

    // Undo the scaling by repeated squaring.
    for (int s = 0; s < squarings; ++s) {
        matmul(result, result, next, n);
        result.swap(next);
    }
    return result;
}

const std::vector<double>&
ExpmSolver::propagatorFor(Seconds dt)
{
    for (const CachedPropagator& c : cache_) {
        if (c.dt == dt)
            return c.phi;
    }
    std::vector<double> a_dt(negGOverC_.size());
    for (std::size_t i = 0; i < negGOverC_.size(); ++i)
        a_dt[i] = negGOverC_[i] * dt;
    CachedPropagator entry{dt, expm(a_dt, n_)};
    if (cache_.size() < maxCached_) {
        cache_.push_back(std::move(entry));
        return cache_.back().phi;
    }
    // Deterministic round-robin eviction; in practice a run sees
    // only the sampling-interval dt plus a few partial chunks.
    const std::size_t slot = evictNext_;
    evictNext_ = (evictNext_ + 1) % maxCached_;
    cache_[slot] = std::move(entry);
    return cache_[slot].phi;
}

void
ExpmSolver::steadyState(std::vector<Kelvin>& temps,
                        const std::vector<Watt>& powers)
{
    if (powers.size() > static_cast<std::size_t>(n_))
        fatal("ExpmSolver: more powers than nodes");
    rhs_ = constHeat_;
    for (std::size_t i = 0; i < powers.size(); ++i)
        rhs_[i] += powers[i];
    luSolve(rhs_);
    temps = rhs_;
}

void
ExpmSolver::advance(std::vector<Kelvin>& temps,
                    const std::vector<Watt>& powers, Seconds dt)
{
    if (temps.size() != static_cast<std::size_t>(n_))
        fatal("ExpmSolver: temperature vector size mismatch");
    if (dt <= 0)
        return;

    // T_ss for the current powers (O(n^2) via the LU factors).
    rhs_ = constHeat_;
    for (std::size_t i = 0; i < powers.size(); ++i)
        rhs_[i] += powers[i];
    luSolve(rhs_);

    // T <- T_ss + Phi (T - T_ss).
    const std::vector<double>& phi = propagatorFor(dt);
    for (int i = 0; i < n_; ++i) {
        diff_[static_cast<std::size_t>(i)] =
            temps[static_cast<std::size_t>(i)] -
            rhs_[static_cast<std::size_t>(i)];
    }
    for (int r = 0; r < n_; ++r) {
        const double* row =
            &phi[static_cast<std::size_t>(r) * n_];
        double acc = 0.0;
        for (int c = 0; c < n_; ++c)
            acc += row[c] * diff_[static_cast<std::size_t>(c)];
        temps[static_cast<std::size_t>(r)] =
            rhs_[static_cast<std::size_t>(r)] + acc;
    }
}

} // namespace tempest
