/**
 * @file
 * Exponential-integrator solver for the thermal RC network.
 *
 * The network is a constant-coefficient linear system
 *
 *     C dT/dt = -G T + u,   u = block powers + ambient injection,
 *
 * so for piecewise-constant power the transient has the closed
 * form
 *
 *     T(t + dt) = T_ss + e^{A dt} (T(t) - T_ss),
 *
 * with A = -C^{-1} G and T_ss = G^{-1} u. The solver factors G
 * once (LU with partial pivoting) and precomputes the propagator
 * Phi = e^{A dt} per distinct dt with scaling-and-squaring around
 * a Taylor core — no external dependencies. Each advance is then
 * one O(n^2) solve plus one O(n^2) matvec, independent of the
 * stiffness that forces explicit Euler into hundreds of substeps.
 * This is the same trick HotSpot-class simulators use for their
 * compact RC models.
 *
 * The propagator cache is keyed on exact dt; simulations use one
 * dt for full sampling intervals plus at most a few partial-chunk
 * dts (final cooling-stall remainders), so the cache stays tiny.
 */

#ifndef TEMPEST_THERMAL_EXPM_SOLVER_HH
#define TEMPEST_THERMAL_EXPM_SOLVER_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace tempest
{

/** Exact-propagator solver over a dense conductance system. */
class ExpmSolver
{
  public:
    /**
     * @param conductance dense n x n conductance matrix G (W/K),
     *        including the ambient-coupling conductance on the
     *        diagonal of the sink row
     * @param capacitance per-node heat capacity C (J/K), all > 0
     * @param const_heat per-node constant heat inflow (W): the
     *        ambient injection, zero for non-package nodes
     * @param max_cached propagator-cache capacity (>= 1); each
     *        cached Phi costs n^2 doubles, which matters once CMP
     *        floorplans push n into the hundreds
     */
    ExpmSolver(std::vector<double> conductance,
               std::vector<double> capacitance,
               std::vector<double> const_heat,
               std::size_t max_cached = 16);

    int numNodes() const { return n_; }

    /**
     * Advance temps by dt, exactly, assuming the powers are
     * constant over the step. `powers` covers the leading nodes
     * (floorplan blocks); remaining nodes receive only
     * const_heat.
     */
    void advance(std::vector<Kelvin>& temps,
                 const std::vector<Watt>& powers, Seconds dt);

    /** temps = G^{-1}(powers + const_heat), via the cached LU. */
    void steadyState(std::vector<Kelvin>& temps,
                     const std::vector<Watt>& powers);

    /** Distinct-dt propagators currently cached (for tests). */
    int
    cachedPropagators() const
    {
        return static_cast<int>(cache_.size());
    }

    /** Cache capacity (ThermalParams::maxCachedPropagators). */
    std::size_t maxCachedPropagators() const { return maxCached_; }

    /** Memory footprint of one dense Phi matrix (n^2 doubles). */
    std::size_t
    propagatorBytes() const
    {
        return static_cast<std::size_t>(n_) *
               static_cast<std::size_t>(n_) * sizeof(double);
    }

    /** Memory currently held by the propagator cache. */
    std::size_t
    cachedPropagatorBytes() const
    {
        return cache_.size() * propagatorBytes();
    }

    /**
     * Dense matrix exponential of an n x n matrix (row-major) by
     * scaling-and-squaring with a Taylor core. Exposed for tests.
     */
    static std::vector<double> expm(const std::vector<double>& m,
                                    int n);

  private:
    struct CachedPropagator
    {
        Seconds dt;
        std::vector<double> phi;
    };

    /** Phi = e^{A dt} for this dt, computed on first use. */
    const std::vector<double>& propagatorFor(Seconds dt);

    /** Solve G x = rhs in place using the LU factors. */
    void luSolve(std::vector<double>& rhs) const;

    int n_;
    std::vector<double> lu_;   ///< packed LU factors of G
    std::vector<int> pivot_;   ///< row permutation
    std::vector<double> capacitance_;
    std::vector<double> constHeat_;
    std::vector<double> negGOverC_; ///< A = -C^{-1} G

    std::vector<CachedPropagator> cache_;
    std::size_t evictNext_ = 0;
    std::size_t maxCached_;

    // Scratch reused across advance() calls.
    std::vector<double> rhs_;
    std::vector<double> diff_;
};

} // namespace tempest

#endif // TEMPEST_THERMAL_EXPM_SOLVER_HH
