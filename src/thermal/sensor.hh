/**
 * @file
 * On-chip temperature sensors.
 *
 * The paper assumes per-resource-copy sensors (POWER5 ships 24 of
 * them) sampled every 100,000 cycles. A SensorBank reads block
 * temperatures from the RC model with optional quantization and
 * offset noise so controller robustness can be studied.
 */

#ifndef TEMPEST_THERMAL_SENSOR_HH
#define TEMPEST_THERMAL_SENSOR_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "thermal/rc_model.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Per-block temperature sensors. */
class SensorBank
{
  public:
    /**
     * @param model thermal model to observe
     * @param quantum sensor resolution in K (0 = ideal)
     * @param noise_sigma Gaussian read noise in K (0 = ideal)
     * @param seed noise stream seed
     */
    explicit SensorBank(const RcModel& model, Kelvin quantum = 0.0,
                        Kelvin noise_sigma = 0.0,
                        std::uint64_t seed = 17);

    /** Read one block's sensor. */
    Kelvin read(int block);

    /**
     * Read every sensor into a caller-owned buffer (index =
     * block), resizing it as needed. The hot path: no allocation
     * once the buffer has reached size.
     */
    void readAll(std::vector<Kelvin>& out);

    /** Read every sensor into a fresh vector (index = block). */
    std::vector<Kelvin> readAll();

    int numSensors() const { return model_.numBlocks(); }

    /** Serialize the noise RNG stream position. */
    void saveState(StateWriter& w) const;

    /** Restore the noise RNG stream position. */
    void loadState(StateReader& r);

  private:
    const RcModel& model_; // ckpt:skip(wiring reference, serialized as its own chunk)
    Kelvin quantum_;       // ckpt:skip(config, supplied by the restoring run)
    Kelvin noiseSigma_;    // ckpt:skip(config, supplied by the restoring run)
    Rng rng_;
};

} // namespace tempest

#endif // TEMPEST_THERMAL_SENSOR_HH
