#include "thermal/rc_model.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/log.hh"

namespace tempest
{

void
ThermalParams::validate() const
{
    if (dieThickness <= 0 || spreaderThickness <= 0)
        fatal("layer thicknesses must be positive");
    if (rTimPerArea < 0)
        fatal("rTimPerArea must be non-negative");
    if (kSilicon <= 0 || kSpreader <= 0)
        fatal("conductivities must be positive");
    if (cvSilicon <= 0 || cvSpreader <= 0 || cSink <= 0)
        fatal("capacitances must be positive");
    if (rSpreaderSink <= 0 || rConvection <= 0)
        fatal("package resistances must be positive");
    if (ambient <= 0)
        fatal("ambient must be an absolute temperature");
    if (timeScale <= 0 || timeScale > 1.0)
        fatal("timeScale must be in (0, 1]");
}

RcModel::RcModel(const Floorplan& floorplan,
                 const ThermalParams& params)
    : params_(params), numBlocks_(floorplan.numBlocks())
{
    params_.validate();
    if (numBlocks_ < 1)
        fatal("thermal model needs at least one block");

    spreaderNode_ = numBlocks_;
    sinkNode_ = numBlocks_ + 1;
    numNodes_ = numBlocks_ + 2;

    capacitance_.assign(static_cast<std::size_t>(numNodes_), 0.0);
    temp_.assign(static_cast<std::size_t>(numNodes_),
                 params_.ambient);
    power_.assign(static_cast<std::size_t>(numBlocks_), 0.0);
    nodeGtotal_.assign(static_cast<std::size_t>(numNodes_), 0.0);
    flux_.assign(static_cast<std::size_t>(numNodes_), 0.0);

    // Block nodes: capacitance and vertical path to the spreader.
    for (int i = 0; i < numBlocks_; ++i) {
        const Block& b = floorplan.block(i);
        const SquareMeter area = b.area();
        capacitance_[static_cast<std::size_t>(i)] =
            params_.cvSilicon * params_.dieThickness * area *
            params_.timeScale;

        // Conduction through the die and interface material, plus
        // constriction spreading into the much larger spreader.
        const double r_die =
            params_.dieThickness / (params_.kSilicon * area);
        const double r_tim = params_.rTimPerArea / area;
        const double r_spread =
            1.0 / (2.0 * params_.kSpreader *
                   std::sqrt(area / M_PI));
        addEdge(i, spreaderNode_,
                1.0 / (r_die + r_tim + r_spread));
    }

    // Lateral edges between abutting blocks.
    for (int i = 0; i < numBlocks_; ++i) {
        for (int j = i + 1; j < numBlocks_; ++j) {
            const Meter edge = floorplan.sharedEdge(i, j);
            if (edge <= 0)
                continue;
            const Block& a = floorplan.block(i);
            const Block& b = floorplan.block(j);
            // Half-extent of each block perpendicular to the
            // shared edge: vertical edge -> width, else height.
            const bool vertical_edge =
                std::abs((a.x + a.width) - b.x) < 1e-9 ||
                std::abs((b.x + b.width) - a.x) < 1e-9;
            const double da =
                0.5 * (vertical_edge ? a.width : a.height);
            const double db =
                0.5 * (vertical_edge ? b.width : b.height);
            const double r =
                (da + db) /
                (params_.kSilicon * params_.dieThickness * edge);
            addEdge(i, j, 1.0 / r);
        }
    }

    // Spreader and sink.
    const SquareMeter die_area = floorplan.totalArea();
    capacitance_[static_cast<std::size_t>(spreaderNode_)] =
        params_.cvSpreader * params_.spreaderThickness * die_area *
        params_.spreaderAreaFactor * params_.timeScale;
    capacitance_[static_cast<std::size_t>(sinkNode_)] =
        params_.cSink * params_.timeScale;
    addEdge(spreaderNode_, sinkNode_, 1.0 / params_.rSpreaderSink);

    gSinkAmbient_ = 1.0 / params_.rConvection;
    nodeGtotal_[static_cast<std::size_t>(sinkNode_)] +=
        gSinkAmbient_;

    // Stability bound for explicit Euler: dt < min C/Gtotal. Use a
    // quarter of it for accuracy.
    maxStableDt_ = 1e30;
    for (int n = 0; n < numNodes_; ++n) {
        const auto idx = static_cast<std::size_t>(n);
        if (nodeGtotal_[idx] > 0) {
            maxStableDt_ = std::min(
                maxStableDt_, capacitance_[idx] / nodeGtotal_[idx]);
        }
    }
    maxStableDt_ *= 0.25;
}

void
RcModel::addEdge(int a, int b, double conductance)
{
    edges_.push_back({a, b, conductance});
    nodeGtotal_[static_cast<std::size_t>(a)] += conductance;
    nodeGtotal_[static_cast<std::size_t>(b)] += conductance;
}

void
RcModel::setPower(int block, Watt power)
{
    if (block < 0 || block >= numBlocks_)
        panic("setPower: block index out of range");
    if (power < 0)
        panic("setPower: negative power");
    power_[static_cast<std::size_t>(block)] = power;
}

void
RcModel::setPowers(const std::vector<Watt>& powers)
{
    if (static_cast<int>(powers.size()) != numBlocks_)
        fatal("setPowers: expected ", numBlocks_, " block powers");
    for (int i = 0; i < numBlocks_; ++i)
        setPower(i, powers[static_cast<std::size_t>(i)]);
}

Watt
RcModel::power(int block) const
{
    if (block < 0 || block >= numBlocks_)
        panic("power: block index out of range");
    return power_[static_cast<std::size_t>(block)];
}

Watt
RcModel::totalPower() const
{
    Watt total = 0;
    for (Watt p : power_)
        total += p;
    return total;
}

void
RcModel::eulerStep(Seconds dt)
{
    std::fill(flux_.begin(), flux_.end(), 0.0);
    for (int i = 0; i < numBlocks_; ++i)
        flux_[static_cast<std::size_t>(i)] =
            power_[static_cast<std::size_t>(i)];
    flux_[static_cast<std::size_t>(sinkNode_)] +=
        gSinkAmbient_ *
        (params_.ambient - temp_[static_cast<std::size_t>(sinkNode_)]);

    for (const Edge& e : edges_) {
        const double q =
            e.conductance * (temp_[static_cast<std::size_t>(e.a)] -
                             temp_[static_cast<std::size_t>(e.b)]);
        flux_[static_cast<std::size_t>(e.a)] -= q;
        flux_[static_cast<std::size_t>(e.b)] += q;
    }
    for (int n = 0; n < numNodes_; ++n) {
        const auto idx = static_cast<std::size_t>(n);
        temp_[idx] += dt * flux_[idx] / capacitance_[idx];
    }
}

void
RcModel::step(Seconds dt)
{
    if (dt <= 0)
        return;
    // The substep count can exceed any integer type for small
    // timeScale (tiny capacitances => tiny maxStableDt_), and
    // casting the ceil to int would be UB; bound it in floating
    // point first, then count in 64 bits.
    constexpr double kMaxSubsteps = 10'000'000.0;
    const double raw = std::ceil(dt / maxStableDt_);
    if (!(raw < kMaxSubsteps)) {
        fatal("RcModel::step: dt=", dt, " s needs ", raw,
              " explicit-Euler substeps (maxStableDt=",
              maxStableDt_, " s); timeScale=", params_.timeScale,
              " is too small to integrate at this step size");
    }
    const std::int64_t substeps =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(raw));
    const Seconds h = dt / static_cast<double>(substeps);
    for (std::int64_t s = 0; s < substeps; ++s)
        eulerStep(h);
}

void
RcModel::solveSteadyState()
{
    // Dense Gaussian elimination on the conductance matrix; the
    // network is ~25 nodes so this is exact and cheap.
    const int n = numNodes_;
    std::vector<double> m(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
    auto at = [&m, n](int r, int c) -> double& {
        return m[static_cast<std::size_t>(r) * n + c];
    };

    for (const Edge& e : edges_) {
        at(e.a, e.a) += e.conductance;
        at(e.b, e.b) += e.conductance;
        at(e.a, e.b) -= e.conductance;
        at(e.b, e.a) -= e.conductance;
    }
    at(sinkNode_, sinkNode_) += gSinkAmbient_;
    rhs[static_cast<std::size_t>(sinkNode_)] +=
        gSinkAmbient_ * params_.ambient;
    for (int i = 0; i < numBlocks_; ++i)
        rhs[static_cast<std::size_t>(i)] +=
            power_[static_cast<std::size_t>(i)];

    // Forward elimination with partial pivoting.
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        perm[static_cast<std::size_t>(i)] = i;
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r) {
            if (std::abs(at(r, col)) > std::abs(at(pivot, col)))
                pivot = r;
        }
        if (std::abs(at(pivot, col)) < 1e-20)
            panic("singular thermal conductance matrix");
        if (pivot != col) {
            for (int c = 0; c < n; ++c)
                std::swap(at(pivot, c), at(col, c));
            std::swap(rhs[static_cast<std::size_t>(pivot)],
                      rhs[static_cast<std::size_t>(col)]);
        }
        for (int r = col + 1; r < n; ++r) {
            const double f = at(r, col) / at(col, col);
            if (f == 0.0)
                continue;
            for (int c = col; c < n; ++c)
                at(r, c) -= f * at(col, c);
            rhs[static_cast<std::size_t>(r)] -=
                f * rhs[static_cast<std::size_t>(col)];
        }
    }
    // Back substitution.
    for (int r = n - 1; r >= 0; --r) {
        double v = rhs[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < n; ++c)
            v -= at(r, c) * temp_[static_cast<std::size_t>(c)];
        temp_[static_cast<std::size_t>(r)] = v / at(r, r);
    }
}

Kelvin
RcModel::temperature(int block) const
{
    if (block < 0 || block >= numBlocks_)
        panic("temperature: block index out of range");
    return temp_[static_cast<std::size_t>(block)];
}

Kelvin
RcModel::spreaderTemperature() const
{
    return temp_[static_cast<std::size_t>(spreaderNode_)];
}

Kelvin
RcModel::sinkTemperature() const
{
    return temp_[static_cast<std::size_t>(sinkNode_)];
}

void
RcModel::setAllTemperatures(Kelvin t)
{
    std::fill(temp_.begin(), temp_.end(), t);
}

void
RcModel::setTemperature(int block, Kelvin t)
{
    if (block < 0 || block >= numBlocks_)
        panic("setTemperature: block index out of range");
    temp_[static_cast<std::size_t>(block)] = t;
}

KelvinPerWatt
RcModel::verticalResistance(int block) const
{
    for (const Edge& e : edges_) {
        if (e.a == block && e.b == spreaderNode_)
            return 1.0 / e.conductance;
    }
    panic("no vertical edge for block ", block);
}

KelvinPerWatt
RcModel::lateralResistance(int a, int b) const
{
    for (const Edge& e : edges_) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            return 1.0 / e.conductance;
    }
    return std::numeric_limits<double>::infinity(); // not adjacent
}

} // namespace tempest
