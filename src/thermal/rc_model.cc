#include "thermal/rc_model.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

void
ThermalParams::validate() const
{
    if (dieThickness <= 0 || spreaderThickness <= 0)
        fatal("layer thicknesses must be positive");
    if (rTimPerArea < 0)
        fatal("rTimPerArea must be non-negative");
    if (kSilicon <= 0 || kSpreader <= 0)
        fatal("conductivities must be positive");
    if (cvSilicon <= 0 || cvSpreader <= 0 || cSink <= 0)
        fatal("capacitances must be positive");
    if (rSpreaderSink <= 0 || rConvection <= 0)
        fatal("package resistances must be positive");
    if (ambient <= 0)
        fatal("ambient must be an absolute temperature");
    if (timeScale <= 0 || timeScale > 1.0)
        fatal("timeScale must be in (0, 1]");
    if (rStackBondPerArea < 0)
        fatal("rStackBondPerArea must be non-negative");
    if (stackedDieThickness <= 0)
        fatal("stackedDieThickness must be positive");
    if (maxCachedPropagators < 1)
        fatal("maxCachedPropagators must be >= 1");
}

RcModel::RcModel(const Floorplan& floorplan,
                 const ThermalParams& params)
    : params_(params), numBlocks_(floorplan.numBlocks())
{
    params_.validate();
    if (numBlocks_ < 1)
        fatal("thermal model needs at least one block");

    spreaderNode_ = numBlocks_;
    sinkNode_ = numBlocks_ + 1;
    numNodes_ = numBlocks_ + 2;

    capacitance_.assign(static_cast<std::size_t>(numNodes_), 0.0);
    temp_.assign(static_cast<std::size_t>(numNodes_),
                 params_.ambient);
    power_.assign(static_cast<std::size_t>(numBlocks_), 0.0);
    nodeGtotal_.assign(static_cast<std::size_t>(numNodes_), 0.0);
    flux_.assign(static_cast<std::size_t>(numNodes_), 0.0);

    // Block nodes: capacitance and vertical path to the spreader.
    // Stacked-layer blocks (layer >= 1) have no spreader path of
    // their own — their heat leaves through the die beneath them
    // (edges added after the lateral pass).
    for (int i = 0; i < numBlocks_; ++i) {
        const Block& b = floorplan.block(i);
        const SquareMeter area = b.area();
        const Meter thickness = b.layer == 0
                                    ? params_.dieThickness
                                    : params_.stackedDieThickness;
        capacitance_[static_cast<std::size_t>(i)] =
            params_.cvSilicon * thickness * area *
            params_.timeScale;
        if (b.layer != 0)
            continue;

        // Conduction through the die and interface material, plus
        // constriction spreading into the much larger spreader.
        const double r_die =
            params_.dieThickness / (params_.kSilicon * area);
        const double r_tim = params_.rTimPerArea / area;
        const double r_spread =
            1.0 / (2.0 * params_.kSpreader *
                   std::sqrt(area / M_PI));
        addEdge(i, spreaderNode_,
                1.0 / (r_die + r_tim + r_spread));
    }

    // Lateral edges between abutting blocks.
    for (int i = 0; i < numBlocks_; ++i) {
        for (int j = i + 1; j < numBlocks_; ++j) {
            const Meter edge = floorplan.sharedEdge(i, j);
            if (edge <= 0)
                continue;
            const Block& a = floorplan.block(i);
            const Block& b = floorplan.block(j);
            // Half-extent of each block perpendicular to the
            // shared edge: vertical edge -> width, else height.
            const bool vertical_edge =
                std::abs((a.x + a.width) - b.x) < 1e-9 ||
                std::abs((b.x + b.width) - a.x) < 1e-9;
            const double da =
                0.5 * (vertical_edge ? a.width : a.height);
            const double db =
                0.5 * (vertical_edge ? b.width : b.height);
            const double r =
                (da + db) /
                (params_.kSilicon * params_.dieThickness * edge);
            addEdge(i, j, 1.0 / r);
        }
    }

    // Vertical edges between stacked layers: conduction through
    // half of each die plus the bond/TSV interface, over the
    // footprint overlap. Appended after the single-layer edge
    // groups so a one-layer floorplan assembles the exact same
    // edge sequence (and thus G matrix bits) as before.
    for (int i = 0; i < numBlocks_; ++i) {
        for (int j = i + 1; j < numBlocks_; ++j) {
            const Block& a = floorplan.block(i);
            const Block& b = floorplan.block(j);
            if (std::abs(a.layer - b.layer) != 1)
                continue;
            const SquareMeter ov = floorplan.overlapArea(i, j);
            if (ov <= 0)
                continue;
            const Meter lower = std::min(a.layer, b.layer) == 0
                                    ? params_.dieThickness
                                    : params_.stackedDieThickness;
            const double r_per_area =
                0.5 * lower / params_.kSilicon +
                params_.rStackBondPerArea +
                0.5 * params_.stackedDieThickness /
                    params_.kSilicon;
            addEdge(i, j, ov / r_per_area);
        }
    }

    // Spreader and sink.
    const SquareMeter die_area = floorplan.totalArea();
    capacitance_[static_cast<std::size_t>(spreaderNode_)] =
        params_.cvSpreader * params_.spreaderThickness * die_area *
        params_.spreaderAreaFactor * params_.timeScale;
    capacitance_[static_cast<std::size_t>(sinkNode_)] =
        params_.cSink * params_.timeScale;
    addEdge(spreaderNode_, sinkNode_, 1.0 / params_.rSpreaderSink);

    gSinkAmbient_ = 1.0 / params_.rConvection;
    nodeGtotal_[static_cast<std::size_t>(sinkNode_)] +=
        gSinkAmbient_;

    // Stability bound for explicit Euler: dt < min C/Gtotal. Use a
    // quarter of it for accuracy.
    maxStableDt_ = 1e30;
    for (int n = 0; n < numNodes_; ++n) {
        const auto idx = static_cast<std::size_t>(n);
        if (nodeGtotal_[idx] > 0) {
            maxStableDt_ = std::min(
                maxStableDt_, capacitance_[idx] / nodeGtotal_[idx]);
        }
    }
    maxStableDt_ *= 0.25;

    // O(1) resistance lookups for the DTM/floorplan setup paths.
    verticalRes_.assign(static_cast<std::size_t>(numBlocks_),
                        std::numeric_limits<double>::infinity());
    lateralRes_.assign(static_cast<std::size_t>(numBlocks_) *
                           static_cast<std::size_t>(numBlocks_),
                       std::numeric_limits<double>::infinity());
    for (const Edge& e : edges_) {
        if (e.a < numBlocks_ && e.b == spreaderNode_) {
            verticalRes_[static_cast<std::size_t>(e.a)] =
                1.0 / e.conductance;
        } else if (e.a < numBlocks_ && e.b < numBlocks_) {
            const KelvinPerWatt r = 1.0 / e.conductance;
            lateralRes_[static_cast<std::size_t>(e.a) * numBlocks_ +
                        e.b] = r;
            lateralRes_[static_cast<std::size_t>(e.b) * numBlocks_ +
                        e.a] = r;
        }
    }

    // Assemble the dense conductance system once and hand it to
    // the exponential-integrator backend; its LU factors also
    // serve every steady-state solve.
    std::vector<double> g(static_cast<std::size_t>(numNodes_) *
                              static_cast<std::size_t>(numNodes_),
                          0.0);
    for (const Edge& e : edges_) {
        const auto a = static_cast<std::size_t>(e.a);
        const auto b = static_cast<std::size_t>(e.b);
        const auto n = static_cast<std::size_t>(numNodes_);
        g[a * n + a] += e.conductance;
        g[b * n + b] += e.conductance;
        g[a * n + b] -= e.conductance;
        g[b * n + a] -= e.conductance;
    }
    g[static_cast<std::size_t>(sinkNode_) * numNodes_ +
      sinkNode_] += gSinkAmbient_;
    std::vector<double> const_heat(
        static_cast<std::size_t>(numNodes_), 0.0);
    const_heat[static_cast<std::size_t>(sinkNode_)] =
        gSinkAmbient_ * params_.ambient;
    expm_.emplace(std::move(g), capacitance_,
                  std::move(const_heat),
                  static_cast<std::size_t>(
                      params_.maxCachedPropagators));
}

void
RcModel::addEdge(int a, int b, double conductance)
{
    edges_.push_back({a, b, conductance});
    nodeGtotal_[static_cast<std::size_t>(a)] += conductance;
    nodeGtotal_[static_cast<std::size_t>(b)] += conductance;
}

void
RcModel::setPower(int block, Watt power)
{
    if (block < 0 || block >= numBlocks_)
        panic("setPower: block index out of range");
    if (power < 0)
        panic("setPower: negative power");
    power_[static_cast<std::size_t>(block)] = power;
}

void
RcModel::setPowers(const std::vector<Watt>& powers)
{
    if (static_cast<int>(powers.size()) != numBlocks_)
        fatal("setPowers: expected ", numBlocks_, " block powers");
    for (int i = 0; i < numBlocks_; ++i)
        setPower(i, powers[static_cast<std::size_t>(i)]);
}

Watt
RcModel::power(int block) const
{
    if (block < 0 || block >= numBlocks_)
        panic("power: block index out of range");
    return power_[static_cast<std::size_t>(block)];
}

Watt
RcModel::totalPower() const
{
    Watt total = 0;
    for (Watt p : power_)
        total += p;
    return total;
}

void
RcModel::eulerStep(Seconds dt)
{
    std::fill(flux_.begin(), flux_.end(), 0.0);
    for (int i = 0; i < numBlocks_; ++i)
        flux_[static_cast<std::size_t>(i)] =
            power_[static_cast<std::size_t>(i)];
    flux_[static_cast<std::size_t>(sinkNode_)] +=
        gSinkAmbient_ *
        (params_.ambient - temp_[static_cast<std::size_t>(sinkNode_)]);

    for (const Edge& e : edges_) {
        const double q =
            e.conductance * (temp_[static_cast<std::size_t>(e.a)] -
                             temp_[static_cast<std::size_t>(e.b)]);
        flux_[static_cast<std::size_t>(e.a)] -= q;
        flux_[static_cast<std::size_t>(e.b)] += q;
    }
    for (int n = 0; n < numNodes_; ++n) {
        const auto idx = static_cast<std::size_t>(n);
        temp_[idx] += dt * flux_[idx] / capacitance_[idx];
    }
}

void
RcModel::step(Seconds dt)
{
    if (dt <= 0)
        return;
    if (params_.solver == ThermalSolver::Expm) {
        expm_->advance(temp_, power_, dt);
        return;
    }
    // The substep count can exceed any integer type for small
    // timeScale (tiny capacitances => tiny maxStableDt_), and
    // casting the ceil to int would be UB; bound it in floating
    // point first, then count in 64 bits.
    constexpr double kMaxSubsteps = 10'000'000.0;
    const double raw = std::ceil(dt / maxStableDt_);
    if (!(raw < kMaxSubsteps)) {
        fatal("RcModel::step: dt=", dt, " s needs ", raw,
              " explicit-Euler substeps (maxStableDt=",
              maxStableDt_, " s); timeScale=", params_.timeScale,
              " is too small to integrate at this step size");
    }
    const std::int64_t substeps =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(raw));
    const Seconds h = dt / static_cast<double>(substeps);
    for (std::int64_t s = 0; s < substeps; ++s)
        eulerStep(h);
}

void
RcModel::solveSteadyState()
{
    // One O(n^2) solve through the LU factors cached at
    // construction (the exponential backend owns them).
    expm_->steadyState(temp_, power_);
}

Kelvin
RcModel::temperature(int block) const
{
    if (block < 0 || block >= numBlocks_)
        panic("temperature: block index out of range");
    return temp_[static_cast<std::size_t>(block)];
}

Kelvin
RcModel::spreaderTemperature() const
{
    return temp_[static_cast<std::size_t>(spreaderNode_)];
}

Kelvin
RcModel::sinkTemperature() const
{
    return temp_[static_cast<std::size_t>(sinkNode_)];
}

void
RcModel::setAllTemperatures(Kelvin t)
{
    std::fill(temp_.begin(), temp_.end(), t);
}

void
RcModel::setTemperature(int block, Kelvin t)
{
    if (block < 0 || block >= numBlocks_)
        panic("setTemperature: block index out of range");
    temp_[static_cast<std::size_t>(block)] = t;
}

KelvinPerWatt
RcModel::verticalResistance(int block) const
{
    if (block < 0 || block >= numBlocks_)
        panic("no vertical edge for block ", block);
    return verticalRes_[static_cast<std::size_t>(block)];
}

KelvinPerWatt
RcModel::lateralResistance(int a, int b) const
{
    if (a < 0 || a >= numBlocks_ || b < 0 || b >= numBlocks_)
        return std::numeric_limits<double>::infinity();
    return lateralRes_[static_cast<std::size_t>(a) * numBlocks_ +
                       b]; // infinity if not adjacent
}

void
RcModel::saveState(StateWriter& w) const
{
    w.i32(numNodes_);
    w.i32(numBlocks_);
    for (const Kelvin t : temp_)
        w.f64(t);
    for (const Watt p : power_)
        w.f64(p);
}

void
RcModel::loadState(StateReader& r)
{
    const int nodes = r.i32();
    const int blocks = r.i32();
    if (nodes != numNodes_ || blocks != numBlocks_) {
        fatal("checkpoint thermal model mismatch: saved ", nodes,
              " nodes / ", blocks, " blocks, this model has ",
              numNodes_, " / ", numBlocks_,
              " (different floorplan?)");
    }
    for (Kelvin& t : temp_)
        t = r.f64();
    for (Watt& p : power_)
        p = r.f64();
}

} // namespace tempest
