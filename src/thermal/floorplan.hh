/**
 * @file
 * Die floorplan: named rectangular blocks with adjacency queries.
 *
 * The EV6-like floorplan follows the paper's Figure 5: the integer
 * issue queue is split into two physical halves (IntQ0/IntQ1), the
 * integer register file into two copies (IntReg0/IntReg1), the
 * integer execution area into six per-ALU blocks (IntExec0..5) and
 * the FP add area into four per-adder blocks (FPAdd0..3) — the
 * per-copy granularity that lets the thermal model see the heating
 * asymmetries previous work aggregated away.
 *
 * Three "constrained" variants reproduce §3.2's methodology: the
 * target resource's area is scaled down (a neighbour grows to fill
 * the row) until it is the hottest block at peak utilization, with
 * total chip power unchanged.
 */

#ifndef TEMPEST_THERMAL_FLOORPLAN_HH
#define TEMPEST_THERMAL_FLOORPLAN_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace tempest
{

/** One rectangular floorplan block (all units meters). */
struct Block
{
    std::string name;
    Meter x = 0;
    Meter y = 0;
    Meter width = 0;
    Meter height = 0;

    SquareMeter area() const { return width * height; }
};

/** Which resource the floorplan is power-density constrained by. */
enum class FloorplanVariant
{
    Baseline,           ///< unscaled EV6-like layout
    IqConstrained,      ///< Figure 5a
    AluConstrained,     ///< Figure 5b
    RegfileConstrained  ///< Figure 5c
};

/** @return printable variant name. */
const char* floorplanVariantName(FloorplanVariant variant);

/** A validated collection of non-overlapping blocks. */
class Floorplan
{
  public:
    Floorplan() = default;

    /** Add a block; returns its index. fatal() on duplicate name. */
    int addBlock(const std::string& name, Meter x, Meter y,
                 Meter width, Meter height);

    int numBlocks() const { return static_cast<int>(blocks_.size()); }

    const Block& block(int index) const;

    /** Index of a named block; fatal() if absent. */
    int indexOf(const std::string& name) const;

    /** @return true if a named block exists. */
    bool has(const std::string& name) const;

    /**
     * Length of the shared edge between two blocks (0 if they do
     * not abut). Blocks touching only at a corner share no edge.
     */
    Meter sharedEdge(int a, int b) const;

    /** Total die area covered by blocks. */
    SquareMeter totalArea() const;

    /** fatal() if any two blocks overlap. */
    void validate() const;

    /**
     * Build the EV6-like floorplan (8 mm x 8 mm core at 90 nm)
     * for a given constraint variant.
     */
    static Floorplan ev6Like(FloorplanVariant variant);

  private:
    std::vector<Block> blocks_;
};

} // namespace tempest

#endif // TEMPEST_THERMAL_FLOORPLAN_HH
