/**
 * @file
 * Die floorplan: named rectangular blocks with adjacency queries.
 *
 * The EV6-like floorplan follows the paper's Figure 5: the integer
 * issue queue is split into two physical halves (IntQ0/IntQ1), the
 * integer register file into two copies (IntReg0/IntReg1), the
 * integer execution area into six per-ALU blocks (IntExec0..5) and
 * the FP add area into four per-adder blocks (FPAdd0..3) — the
 * per-copy granularity that lets the thermal model see the heating
 * asymmetries previous work aggregated away.
 *
 * Three "constrained" variants reproduce §3.2's methodology: the
 * target resource's area is scaled down (a neighbour grows to fill
 * the row) until it is the hottest block at peak utilization, with
 * total chip power unchanged.
 */

#ifndef TEMPEST_THERMAL_FLOORPLAN_HH
#define TEMPEST_THERMAL_FLOORPLAN_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace tempest
{

/** One rectangular floorplan block (all units meters). */
struct Block
{
    std::string name;
    Meter x = 0;
    Meter y = 0;
    Meter width = 0;
    Meter height = 0;
    /** Stacked-die layer: 0 = core silicon (couples to the
     * spreader), 1 = a die stacked above it (couples down through
     * the bond interface). */
    int layer = 0;

    SquareMeter area() const { return width * height; }
};

/** Which resource the floorplan is power-density constrained by. */
enum class FloorplanVariant
{
    Baseline,           ///< unscaled EV6-like layout
    IqConstrained,      ///< Figure 5a
    AluConstrained,     ///< Figure 5b
    RegfileConstrained  ///< Figure 5c
};

/** @return printable variant name. */
const char* floorplanVariantName(FloorplanVariant variant);

/** A validated collection of non-overlapping blocks. */
class Floorplan
{
  public:
    Floorplan() = default;

    /** Add a block; returns its index. fatal() on duplicate name. */
    int addBlock(const std::string& name, Meter x, Meter y,
                 Meter width, Meter height, int layer = 0);

    int numBlocks() const { return static_cast<int>(blocks_.size()); }

    const Block& block(int index) const;

    /** Index of a named block; fatal() if absent. */
    int indexOf(const std::string& name) const;

    /** @return true if a named block exists. */
    bool has(const std::string& name) const;

    /**
     * Length of the shared edge between two blocks (0 if they do
     * not abut). Blocks touching only at a corner share no edge,
     * and blocks on different layers never share a lateral edge.
     */
    Meter sharedEdge(int a, int b) const;

    /**
     * Footprint overlap area between two blocks, ignoring layers
     * (the vertical coupling area for stacked dies). 0 if the
     * projections do not overlap.
     */
    SquareMeter overlapArea(int a, int b) const;

    /** Total die area covered by layer-0 blocks. */
    SquareMeter totalArea() const;

    /** Number of stacked layers (highest block layer + 1). */
    int numLayers() const;

    /** fatal() if any two same-layer blocks overlap. */
    void validate() const;

    /**
     * Build the EV6-like floorplan (8 mm x 8 mm core at 90 nm)
     * for a given constraint variant.
     */
    static Floorplan ev6Like(FloorplanVariant variant);

    /**
     * Tile `cores` copies of ev6Like(variant) laterally into one
     * die, abutting at shared vertical edges, with an optional
     * shared-L2 strip along the bottom (under every tile's cache
     * row) and an optional DRAM die stacked above the tiles
     * (layer 1, one bank per tile footprint).
     *
     * Block order is the CMP layer's indexing contract:
     *   [k*B, (k+1)*B)  core k's blocks, in ev6Like order,
     *                   names prefixed "C<k>." when cores > 1
     *   [cores*B]       "L2" (present iff shared_l2 && cores > 1)
     *   then            "DRAM<k>", one per tile (iff dram_layer)
     * where B = ev6Like(variant).numBlocks(). With cores == 1 and
     * no DRAM layer the result is exactly ev6Like(variant) — the
     * bit-identity anchor for the N=1 CMP path.
     */
    static Floorplan cmpTiled(FloorplanVariant variant, int cores,
                              bool shared_l2, bool dram_layer);

  private:
    std::vector<Block> blocks_;
};

} // namespace tempest

#endif // TEMPEST_THERMAL_FLOORPLAN_HH
