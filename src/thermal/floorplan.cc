#include "thermal/floorplan.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tempest
{

namespace
{
constexpr double mm = 1e-3;
constexpr double eps = 1e-9;

/**
 * Floorplan grid unit: the ev6Like layout is expressed on an
 * 8x8 grid that maps to a 4 mm x 4 mm core die (90 nm). Halving
 * the EV6-era linear dimensions quadruples power density, which is
 * what makes the constrained variants approach the 358 K threshold
 * for the paper's hot benchmarks.
 */
constexpr double gridUnit = 0.5 * mm;
} // namespace

const char*
floorplanVariantName(FloorplanVariant variant)
{
    switch (variant) {
      case FloorplanVariant::Baseline: return "baseline";
      case FloorplanVariant::IqConstrained: return "iq-constrained";
      case FloorplanVariant::AluConstrained:
        return "alu-constrained";
      case FloorplanVariant::RegfileConstrained:
        return "regfile-constrained";
    }
    return "invalid";
}

int
Floorplan::addBlock(const std::string& name, Meter x, Meter y,
                    Meter width, Meter height, int layer)
{
    if (has(name))
        fatal("duplicate floorplan block '", name, "'");
    if (width <= 0 || height <= 0)
        fatal("block '", name, "' must have positive dimensions");
    if (layer < 0)
        fatal("block '", name, "' has negative layer");
    blocks_.push_back({name, x, y, width, height, layer});
    return static_cast<int>(blocks_.size()) - 1;
}

const Block&
Floorplan::block(int index) const
{
    if (index < 0 || index >= numBlocks())
        panic("floorplan block index out of range");
    return blocks_[static_cast<std::size_t>(index)];
}

int
Floorplan::indexOf(const std::string& name) const
{
    for (int i = 0; i < numBlocks(); ++i) {
        if (blocks_[static_cast<std::size_t>(i)].name == name)
            return i;
    }
    fatal("no floorplan block named '", name, "'");
}

bool
Floorplan::has(const std::string& name) const
{
    for (const Block& b : blocks_) {
        if (b.name == name)
            return true;
    }
    return false;
}

Meter
Floorplan::sharedEdge(int a, int b) const
{
    const Block& p = block(a);
    const Block& q = block(b);
    if (p.layer != q.layer)
        return 0.0; // no lateral conduction across layers

    auto overlap = [](Meter lo1, Meter hi1, Meter lo2, Meter hi2) {
        return std::max(0.0, std::min(hi1, hi2) - std::max(lo1, lo2));
    };

    // Vertical edges (blocks side by side).
    if (std::abs((p.x + p.width) - q.x) < eps ||
        std::abs((q.x + q.width) - p.x) < eps) {
        return overlap(p.y, p.y + p.height, q.y, q.y + q.height);
    }
    // Horizontal edges (blocks stacked).
    if (std::abs((p.y + p.height) - q.y) < eps ||
        std::abs((q.y + q.height) - p.y) < eps) {
        return overlap(p.x, p.x + p.width, q.x, q.x + q.width);
    }
    return 0.0;
}

SquareMeter
Floorplan::overlapArea(int a, int b) const
{
    const Block& p = block(a);
    const Block& q = block(b);
    const double ox = std::min(p.x + p.width, q.x + q.width) -
                      std::max(p.x, q.x);
    const double oy = std::min(p.y + p.height, q.y + q.height) -
                      std::max(p.y, q.y);
    if (ox <= eps || oy <= eps)
        return 0.0;
    return ox * oy;
}

SquareMeter
Floorplan::totalArea() const
{
    SquareMeter total = 0.0;
    for (const Block& b : blocks_) {
        if (b.layer == 0)
            total += b.area();
    }
    return total;
}

int
Floorplan::numLayers() const
{
    int highest = 0;
    for (const Block& b : blocks_)
        highest = std::max(highest, b.layer);
    return highest + 1;
}

void
Floorplan::validate() const
{
    for (int i = 0; i < numBlocks(); ++i) {
        for (int j = i + 1; j < numBlocks(); ++j) {
            const Block& a = block(i);
            const Block& b = block(j);
            if (a.layer != b.layer)
                continue; // stacked dies overlap by design
            const double ox =
                std::min(a.x + a.width, b.x + b.width) -
                std::max(a.x, b.x);
            const double oy =
                std::min(a.y + a.height, b.y + b.height) -
                std::max(a.y, b.y);
            if (ox > eps && oy > eps) {
                fatal("floorplan blocks '", a.name, "' and '",
                      b.name, "' overlap");
            }
        }
    }
}

namespace
{

/** Lay out one row of (name, width-mm) cells; widths must fill the
 * die width. */
void
layoutRow(Floorplan& fp, double y_mm, double h_mm,
          const std::vector<std::pair<std::string, double>>& cells,
          double die_w_mm)
{
    double x = 0.0;
    for (const auto& [name, w] : cells) {
        fp.addBlock(name, x * gridUnit, y_mm * gridUnit,
                    w * gridUnit, h_mm * gridUnit);
        x += w;
    }
    if (std::abs(x - die_w_mm) > 1e-6)
        fatal("floorplan row at y=", y_mm, "mm sums to ", x,
              "mm, expected ", die_w_mm, "mm");
}

} // namespace

Floorplan
Floorplan::ev6Like(FloorplanVariant variant)
{
    // Die: 8x8 grid units = 4 mm x 4 mm core. Rows (grid units):
    //   A [0.0, 2.4)  caches
    //   B [2.4, 3.6)  predictor/TLBs/LSQ
    //   C [3.6, 4.8)  map + register files
    //   D [4.8, 6.4)  FP queue halves + FP adders
    //   E [6.4, 8.0)  Int queue halves + Int ALUs
    const double die_w = 8.0;

    // Row widths per variant. The constrained resource shrinks; a
    // neighbour in the same row grows to keep total area (and thus
    // total chip power) constant, per §3.2.
    double int_q = 1.4, int_exec = (8.0 - 2 * 1.4) / 6.0;
    double fp_q = 1.4, fp_add = (8.0 - 2 * 1.4) / 4.0;
    double fp_map = 1.2, fp_mul = 1.3, fp_reg = 1.3;
    double int_map = 1.6, int_reg = 1.3;

    switch (variant) {
      case FloorplanVariant::Baseline:
        // In the unscaled Alpha-like layout the register file is
        // the hottest backend resource [17].
        break;
      case FloorplanVariant::IqConstrained:
        int_q = 0.56;
        int_exec = (8.0 - 2 * int_q) / 6.0;
        fp_q = 0.56;
        fp_add = (8.0 - 2 * fp_q) / 4.0;
        // Cool the register file and rename map so the queue is
        // the bottleneck.
        int_reg = 1.7;
        fp_map = 0.8;
        fp_mul = 1.0;
        fp_reg = 1.0;
        int_map = 8.0 - fp_map - fp_mul - fp_reg - 2 * int_reg;
        break;
      case FloorplanVariant::AluConstrained:
        int_exec = 0.40;
        int_q = (8.0 - 6 * int_exec) / 2.0;
        fp_add = 0.45;
        fp_q = (8.0 - 4 * fp_add) / 2.0;
        int_reg = 1.7;
        fp_map = 0.8;
        fp_mul = 1.0;
        fp_reg = 1.0;
        int_map = 8.0 - fp_map - fp_mul - fp_reg - 2 * int_reg;
        break;
      case FloorplanVariant::RegfileConstrained:
        int_reg = 0.68;
        fp_map = 1.1;
        fp_mul = 1.35;
        fp_reg = 1.35;
        int_map = 8.0 - fp_map - fp_mul - fp_reg - 2 * int_reg;
        break;
    }

    // Placement notes:
    // - The queue halves sit side by side at the centre of their
    //   row with the functional units mirrored around them
    //   (priorities interleaved left/right), so both halves see
    //   near-identical surroundings and the head/tail temperature
    //   gap comes from activity, not placement. Activity toggling
    //   depends on this symmetry. The paper's Figure 5 likewise
    //   places the queue halves in matching environments.
    // - The register-file copies are flanked by the two FP blocks
    //   of similar activity (FPMul/FPReg) for the same reason;
    //   balanced mapping relies on the copies' symmetry.
    Floorplan fp;
    layoutRow(fp, 0.0, 2.4,
              {{"Icache", 4.0}, {"Dcache", 4.0}}, die_w);
    layoutRow(fp, 2.4, 1.2,
              {{"Bpred", 2.0}, {"ITB", 2.0}, {"DTB", 2.0},
               {"LdStQ", 2.0}},
              die_w);
    layoutRow(fp, 3.6, 1.2,
              {{"IntMap", int_map}, {"FPMul", fp_mul},
               {"IntReg0", int_reg}, {"IntReg1", int_reg},
               {"FPReg", fp_reg}, {"FPMap", fp_map}},
              die_w);
    layoutRow(fp, 4.8, 1.6,
              {{"FPAdd2", fp_add}, {"FPAdd0", fp_add},
               {"FPQ0", fp_q}, {"FPQ1", fp_q},
               {"FPAdd1", fp_add}, {"FPAdd3", fp_add}},
              die_w);
    layoutRow(fp, 6.4, 1.6,
              {{"IntExec4", int_exec}, {"IntExec2", int_exec},
               {"IntExec0", int_exec}, {"IntQ0", int_q},
               {"IntQ1", int_q}, {"IntExec1", int_exec},
               {"IntExec3", int_exec}, {"IntExec5", int_exec}},
              die_w);
    fp.validate();
    return fp;
}

Floorplan
Floorplan::cmpTiled(FloorplanVariant variant, int cores,
                    bool shared_l2, bool dram_layer)
{
    if (cores < 1)
        fatal("cmpTiled needs at least one core");

    const Floorplan tile = ev6Like(variant);
    if (cores == 1 && !dram_layer)
        return tile; // bit-identical single-core anchor

    // Tile extents in meters (ev6Like spans an 8x8 grid = 4 mm).
    const Meter tile_w = 8.0 * gridUnit;
    const Meter tile_h = 8.0 * gridUnit;
    // The shared L2 is a strip along the bottom of the chip,
    // abutting every tile's cache row (ev6Like row A sits at the
    // bottom of the tile). Only meaningful between >= 2 tiles; a
    // single core keeps the paper's L2-off-die assumption.
    const bool l2 = shared_l2 && cores > 1;
    const Meter l2_h = 2.0 * gridUnit;
    const Meter tile_y = l2 ? l2_h : 0.0;

    Floorplan fp;
    for (int k = 0; k < cores; ++k) {
        const std::string prefix =
            cores > 1 ? "C" + std::to_string(k) + "." : "";
        const Meter tile_x =
            static_cast<double>(k) * tile_w;
        for (int b = 0; b < tile.numBlocks(); ++b) {
            const Block& blk = tile.block(b);
            fp.addBlock(prefix + blk.name, tile_x + blk.x,
                        tile_y + blk.y, blk.width, blk.height);
        }
    }
    if (l2) {
        fp.addBlock("L2", 0.0, 0.0,
                    static_cast<double>(cores) * tile_w, l2_h);
    }
    if (dram_layer) {
        // One DRAM bank per tile footprint, stacked above the
        // cores (layer 1). The bank's top face is adiabatic: its
        // heat can only leave through the cores beneath it, which
        // is what makes memory-bound benchmarks thermally visible.
        for (int k = 0; k < cores; ++k) {
            fp.addBlock("DRAM" + std::to_string(k),
                        static_cast<double>(k) * tile_w, tile_y,
                        tile_w, tile_h, /*layer=*/1);
        }
    }
    fp.validate();
    return fp;
}

} // namespace tempest
