/**
 * @file
 * Wattch-like power model: converts an interval's microarchitectural
 * activity into average per-floorplan-block power.
 *
 * Dynamic energy is per-event (EnergyParams); every block also
 * dissipates an idle (leakage + residual clock) power proportional
 * to its area, which persists through thermal stalls. Globally
 * distributed issue-queue components (tag broadcast/match, payload
 * RAM, select, clock-gate control) are split evenly across the two
 * physical halves, as §3.1 of the paper specifies. L2 dynamic
 * energy is not attributed to any core block: the L2 lives outside
 * the modeled core floorplan (Figure 5).
 */

#ifndef TEMPEST_POWER_POWER_MODEL_HH
#define TEMPEST_POWER_POWER_MODEL_HH

#include <vector>

#include "common/types.hh"
#include "power/energy_params.hh"
#include "thermal/floorplan.hh"
#include "uarch/activity.hh"

namespace tempest
{

/** Activity -> per-block power conversion. */
class PowerModel
{
  public:
    /**
     * @param params per-event energies
     * @param floorplan block layout (indices are cached)
     * @param config pipeline shape (FU/copy counts)
     * @param frequency_hz core clock
     */
    PowerModel(const EnergyParams& params, const Floorplan& floorplan,
               const PipelineConfig& config, double frequency_hz);

    /**
     * Average power per floorplan block over the interval covered
     * by `activity` (activity.cycles must be > 0).
     *
     * @param activity event counts for the interval
     * @param powers output, sized to the floorplan's block count
     */
    void blockPowers(const ActivityRecord& activity,
                     std::vector<Watt>& powers) const;

    /**
     * Dynamic energy of one physical issue-queue half over an
     * interval (exposed for unit tests and the ablation benches).
     *
     * @param queue 0 = integer, 1 = floating-point
     * @param half physical half (0 = lower)
     */
    Joule iqHalfEnergy(const ActivityRecord& activity, int queue,
                       int half) const;

    const EnergyParams& params() const { return params_; }
    double frequencyHz() const { return frequencyHz_; }

    /** Idle power of a block (area * idle density). */
    Watt idlePower(int block) const;

  private:
    EnergyParams params_;
    double frequencyHz_;
    int numIntAlus_;
    int numFpAdders_;
    int numRegCopies_;

    // Cached floorplan indices.
    std::vector<SquareMeter> blockArea_;
    int intQ_[2];
    int fpQ_[2];
    int intExec_[kMaxIntAlus];
    int fpAdd_[kMaxFpAdders];
    int intReg_[kMaxRegfileCopies];
    int fpReg_;
    int fpMul_;
    int icache_;
    int dcache_;
    int bpred_;
    int ldstq_;
    int intMap_;
    int fpMap_;
};

} // namespace tempest

#endif // TEMPEST_POWER_POWER_MODEL_HH
