#include "power/power_model.hh"

#include "common/log.hh"

namespace tempest
{

PowerModel::PowerModel(const EnergyParams& params,
                       const Floorplan& floorplan,
                       const PipelineConfig& config,
                       double frequency_hz)
    : params_(params),
      frequencyHz_(frequency_hz),
      numIntAlus_(config.numIntAlus),
      numFpAdders_(config.numFpAdders),
      numRegCopies_(config.numIntRegfileCopies)
{
    if (frequency_hz <= 0)
        fatal("power model needs a positive frequency");

    blockArea_.resize(
        static_cast<std::size_t>(floorplan.numBlocks()));
    for (int i = 0; i < floorplan.numBlocks(); ++i)
        blockArea_[static_cast<std::size_t>(i)] =
            floorplan.block(i).area();

    intQ_[0] = floorplan.indexOf("IntQ0");
    intQ_[1] = floorplan.indexOf("IntQ1");
    fpQ_[0] = floorplan.indexOf("FPQ0");
    fpQ_[1] = floorplan.indexOf("FPQ1");
    for (int i = 0; i < numIntAlus_; ++i)
        intExec_[i] = floorplan.indexOf("IntExec" +
                                        std::to_string(i));
    for (int i = 0; i < numFpAdders_; ++i)
        fpAdd_[i] = floorplan.indexOf("FPAdd" + std::to_string(i));
    for (int i = 0; i < numRegCopies_; ++i)
        intReg_[i] = floorplan.indexOf("IntReg" +
                                       std::to_string(i));
    fpReg_ = floorplan.indexOf("FPReg");
    fpMul_ = floorplan.indexOf("FPMul");
    icache_ = floorplan.indexOf("Icache");
    dcache_ = floorplan.indexOf("Dcache");
    bpred_ = floorplan.indexOf("Bpred");
    ldstq_ = floorplan.indexOf("LdStQ");
    intMap_ = floorplan.indexOf("IntMap");
    fpMap_ = floorplan.indexOf("FPMap");
}

Joule
PowerModel::iqHalfEnergy(const ActivityRecord& a, int queue,
                         int half) const
{
    if (queue < 0 || queue >= kNumIssueQueues ||
        (half != 0 && half != 1)) {
        panic("iqHalfEnergy: bad queue or half index");
    }
    const EnergyParams& p = params_;
    Joule e = 0.0;
    // Per-half components (§3.1 / Table 3).
    e += a.iqEntryMoves[queue][half] * p.iqCompactEntry;
    e += a.iqMuxSelects[queue][half] * p.iqCompactMux;
    e += a.iqCounterOps[queue][half] *
         (p.iqCounterStage1 + p.iqCounterStage2);
    e += a.iqDispatchWrites[queue][half] * p.iqDispatchWrite;
    // Global components, distributed evenly across the halves.
    // Long-compaction wires span the whole queue, so their energy
    // dissipates across both halves regardless of which entry
    // drives them.
    const std::uint64_t long_total =
        a.iqLongCompactions[queue][0] +
        a.iqLongCompactions[queue][1];
    e += 0.5 * long_total * p.iqLongCompaction;
    e += 0.5 * (a.iqTagBroadcasts[queue] * p.iqTagBroadcast +
                a.iqPayloadAccesses[queue] * p.iqPayloadAccess +
                a.iqSelectAccesses[queue] * p.iqSelectAccess +
                a.iqClockGateCycles[queue] * p.iqClockGateLogic);
    return e;
}

Watt
PowerModel::idlePower(int block) const
{
    return params_.idleWattsPerSquareMeter *
           blockArea_[static_cast<std::size_t>(block)];
}

void
PowerModel::blockPowers(const ActivityRecord& a,
                        std::vector<Watt>& powers) const
{
    if (a.cycles == 0)
        fatal("blockPowers: interval with zero cycles");
    const Seconds dt =
        static_cast<double>(a.cycles) / frequencyHz_;
    const EnergyParams& p = params_;

    powers.assign(blockArea_.size(), 0.0);
    auto add = [&powers, dt](int block, Joule energy) {
        powers[static_cast<std::size_t>(block)] += energy / dt;
    };

    // Issue-queue halves.
    for (int h = 0; h < 2; ++h) {
        add(intQ_[h], iqHalfEnergy(a, 0, h));
        add(fpQ_[h], iqHalfEnergy(a, 1, h));
    }

    // Functional units.
    for (int i = 0; i < numIntAlus_; ++i)
        add(intExec_[i], a.intAluOps[i] * p.intAluOp);
    for (int i = 0; i < numFpAdders_; ++i)
        add(fpAdd_[i], a.fpAddOps[i] * p.fpAddOp);
    add(fpMul_, a.fpMulOps * p.fpMulOp);

    // Register files.
    for (int c = 0; c < numRegCopies_; ++c) {
        add(intReg_[c], a.intRegReads[c] * p.intRegRead +
                            a.intRegWrites[c] * p.intRegWrite);
    }
    add(fpReg_, a.fpRegReads * p.fpRegRead +
                    a.fpRegWrites * p.fpRegWrite);

    // Memory hierarchy and frontend. L2 dynamic energy is outside
    // the core floorplan and intentionally not attributed.
    add(icache_, a.l1iAccesses * p.l1iAccess);
    add(dcache_, a.l1dAccesses * p.l1dAccess);
    add(bpred_, a.bpredAccesses * p.bpredAccess);
    add(ldstq_, a.lsqOps * p.lsqOp);
    add(intMap_, a.renameOps * p.renameOp +
                     a.commits * p.commitOp);

    // Leakage everywhere (including stalled intervals), plus the
    // clock tree in proportion to non-stalled time.
    const double active_frac =
        1.0 - static_cast<double>(a.stallCycles) /
                  static_cast<double>(a.cycles);
    const double density =
        params_.idleWattsPerSquareMeter +
        params_.clockWattsPerSquareMeter * active_frac;
    for (std::size_t i = 0; i < powers.size(); ++i)
        powers[i] += density * blockArea_[i];
}

} // namespace tempest
