/**
 * @file
 * Per-event energies for the Wattch-like power model.
 *
 * Issue-queue energies are the paper's Table 3, verbatim, in
 * nanojoules. The remaining per-access energies are Wattch-class
 * values for a 90 nm / 1.2 V / 4.2 GHz design, chosen so that the
 * constrained floorplans of §3.2 overheat under peak-utilization
 * workloads (the paper's stated calibration criterion). Idle power
 * (leakage plus residual clock) is charged per unit area.
 */

#ifndef TEMPEST_POWER_ENERGY_PARAMS_HH
#define TEMPEST_POWER_ENERGY_PARAMS_HH

#include "common/types.hh"

namespace tempest
{

/** Per-event energies in Joules. */
struct EnergyParams
{
    // ---- Table 3: issue energy by component (paper values) ----
    /** Compact (entry-to-entry), per moving entry. */
    Joule iqCompactEntry = 0.0123e-9;
    /** Compact (mux select), per receiving entry. */
    Joule iqCompactMux = 0.0023e-9;
    /**
     * Long compaction (wrap-around wires), per entry. The paper's
     * Table 3 charges 0.0687 nJ per wrap drive; at our activity
     * levels every issued instruction wraps once whenever queue
     * occupancy exceeds half, and the full figure makes the
     * toggled configuration categorically hotter than the
     * conventional one — contradicting the paper's measured
     * behaviour. We model the wrap path as segmented low-swing
     * drivers at 0.015 nJ by default; bench_ablation_longwire
     * sweeps this value (including the paper's) to expose the
     * crossover. See DESIGN.md.
     */
    Joule iqLongCompaction = 0.015e-9;
    /** The paper's Table 3 long-compaction figure, for ablation. */
    static constexpr Joule paperLongCompaction = 0.0687e-9;
    /** Counter stage 1, per participating entry. */
    Joule iqCounterStage1 = 0.0011e-9;
    /** Counter stage 2, per participating entry. */
    Joule iqCounterStage2 = 0.0021e-9;
    /** Clock-gating logic, entire queue, per cycle. */
    Joule iqClockGateLogic = 0.0015e-9;
    /** Tag broadcast/match, per broadcast. */
    Joule iqTagBroadcast = 0.0450e-9;
    /** Payload RAM access, per instruction (read or write). */
    Joule iqPayloadAccess = 0.0675e-9;
    /** Select access, per issued instruction. */
    Joule iqSelectAccess = 0.0051e-9;
    /**
     * Entry write at dispatch: the dispatch bus is driven down the
     * queue to the tail entry, a long-wire drive comparable to a
     * payload write rather than a neighbour-to-neighbour hop.
     */
    Joule iqDispatchWrite = 0.045e-9;

    // ---- functional units ----
    Joule intAluOp = 0.50e-9;
    Joule fpAddOp = 0.55e-9;
    Joule fpMulOp = 0.80e-9;

    // ---- register files ----
    Joule intRegRead = 0.065e-9;
    Joule intRegWrite = 0.10e-9;
    Joule fpRegRead = 0.06e-9;
    Joule fpRegWrite = 0.09e-9;

    // ---- memory hierarchy and frontend ----
    Joule l1iAccess = 0.35e-9;
    Joule l1dAccess = 0.35e-9;
    Joule l2Access = 1.6e-9;
    Joule bpredAccess = 0.05e-9;
    Joule renameOp = 0.07e-9;
    Joule lsqOp = 0.07e-9;
    Joule commitOp = 0.03e-9;

    /** Idle (leakage) power per block area; never gated. */
    double idleWattsPerSquareMeter = 2.5e5; ///< 0.25 W/mm^2

    /**
     * Clock tree and other activity-independent switching power
     * per block area, applied in proportion to the fraction of
     * non-stalled cycles (the stop-clock stall gates it off).
     */
    double clockWattsPerSquareMeter = 5.0e5; ///< 0.5 W/mm^2
};

} // namespace tempest

#endif // TEMPEST_POWER_ENERGY_PARAMS_HH
