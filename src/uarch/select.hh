/**
 * @file
 * Serialized select trees (§2.2 of the paper).
 *
 * A superscalar has one select tree per functional unit, serialized
 * in static priority order: tree i masks the requests already
 * granted by trees 0..i-1, so the highest-priority FU always
 * receives work first — the root cause of asymmetric ALU heating.
 *
 * A turned-off FU's tree grants nothing and masks nothing, which is
 * exactly how fine-grain turnoff plugs in (the existing busy
 * signal). Round-robin mode rotates the tree-to-FU order each cycle
 * and models the paper's ideal (but unimplementably complex)
 * comparator.
 *
 * The head/tail configuration of the queue is already encoded in
 * the queue's logical order (only the select-tree root changes
 * between modes, §2.1.1), so the trees here simply consume the
 * queue's logical-order ready bitmap: each tree walks set bits
 * with std::countr_zero (lowest logical position = oldest =
 * highest priority first) and serialization is a bit clear in a
 * scratch copy of the mask — no per-entry scan, no per-request
 * granted vector.
 */

#ifndef TEMPEST_UARCH_SELECT_HH
#define TEMPEST_UARCH_SELECT_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "uarch/issue_queue.hh"

namespace tempest
{

/** One grant: FU index and the chosen entry's physical slot. */
struct Grant
{
    int fu;
    int physIdx;
};

/** Serialized per-FU select trees over one issue queue. */
class SelectNetwork
{
  public:
    /** @param num_fus number of functional units (= trees). */
    explicit SelectNetwork(int num_fus) : numFus_(num_fus)
    {
        if (num_fus < 1)
            fatal("select network needs at least one FU");
    }

    int numFus() const { return numFus_; }

    /** Enable/disable round-robin tree rotation (ideal policy). */
    void setRoundRobin(bool enabled) { roundRobin_ = enabled; }
    bool roundRobin() const { return roundRobin_; }

    /**
     * Run one cycle of select.
     *
     * @param iq the queue to select from
     * @param cycle current cycle (drives round-robin rotation)
     * @param max_grants remaining global issue budget
     * @param fu_available callable bool(int fu): busy/turnoff mask
     * @param can_use callable bool(int fu, OpClass): class and
     *        port eligibility; must be side-effect free
     * @param grants output; grants are appended in tree order
     * @return number of grants appended
     */
    template <typename FuAvailable, typename CanUse>
    int
    select(const IssueQueue& iq, std::uint64_t cycle, int max_grants,
           FuAvailable&& fu_available, CanUse&& can_use,
           std::vector<Grant>& grants)
    {
        if (max_grants <= 0)
            return 0;

        // Snapshot the queue's ready bitmap once; the trees then
        // serialize by clearing granted bits in this scratch mask.
        const std::uint64_t* ready = iq.readyBits();
        const int num_words = iq.bitWords();
        avail_.resize(static_cast<std::size_t>(num_words));
        std::uint64_t any = 0;
        for (int w = 0; w < num_words; ++w) {
            avail_[static_cast<std::size_t>(w)] = ready[w];
            any |= ready[w];
        }
        if (any == 0)
            return 0;

        int num_granted = 0;
        const int offset =
            roundRobin_ ? static_cast<int>(cycle % numFus_) : 0;
        for (int t = 0; t < numFus_ && num_granted < max_grants;
             ++t) {
            const int fu = (t + offset) % numFus_;
            if (!fu_available(fu))
                continue; // busy/turned-off: no grant, no masking
            bool granted = false;
            for (int w = 0; w < num_words && !granted; ++w) {
                std::uint64_t m =
                    avail_[static_cast<std::size_t>(w)];
                while (m != 0) {
                    const int bit = std::countr_zero(m);
                    m &= m - 1;
                    const int phys =
                        iq.physOfLogical(w * 64 + bit);
                    if (!can_use(fu, iq.opClassAt(phys)))
                        continue;
                    avail_[static_cast<std::size_t>(w)] &=
                        ~(1ULL << bit);
                    grants.push_back({fu, phys});
                    ++num_granted;
                    granted = true;
                    break;
                }
            }
        }
        return num_granted;
    }

  private:
    int numFus_;
    bool roundRobin_ = false;
    // Scratch request mask reused across cycles (no allocation at
    // steady state).
    std::vector<std::uint64_t> avail_;
};

} // namespace tempest

#endif // TEMPEST_UARCH_SELECT_HH
