/**
 * @file
 * The out-of-order core: a 6-wide superscalar backend with the
 * paper's Table 2 parameters, driven by a synthetic instruction
 * stream.
 *
 * Pipeline per tick: writeback -> compaction -> commit -> issue
 * (select) -> dispatch/rename -> fetch. The core knows nothing
 * about temperature; the DTM layer steers it through the exposed
 * control surface (issue-queue mode toggling, FU turnoff masks,
 * register-file mapping, round-robin select, stall cycles).
 */

#ifndef TEMPEST_UARCH_CORE_HH
#define TEMPEST_UARCH_CORE_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/types.hh"
#include "uarch/activity.hh"
#include "uarch/alu.hh"
#include "uarch/cache.hh"
#include "uarch/issue_queue.hh"
#include "uarch/pipeline_config.hh"
#include "uarch/regfile.hh"
#include "uarch/select.hh"
#include "workload/generator.hh"

namespace tempest
{

/** Cycle-level out-of-order core. */
class OooCore
{
  public:
    /**
     * @param config pipeline parameters (validated)
     * @param profile workload the core executes
     * @param run_seed experiment seed for the instruction stream
     * @param arena backing store for the hot-state arrays (ROB,
     *        completion wheel, done ring, fetch ring, and both
     *        issue queues); nullptr uses a core-private arena.
     *        The arena must outlive the core.
     */
    OooCore(const PipelineConfig& config,
            const BenchmarkProfile& profile,
            std::uint64_t run_seed = 0, Arena* arena = nullptr);

    OooCore(const OooCore&) = delete;
    OooCore& operator=(const OooCore&) = delete;

    /** Simulate one cycle, accumulating activity. */
    void tick(ActivityRecord& activity);

    /**
     * Advance one thermally-stalled cycle: no fetch, issue or
     * commit; only cycle/stall accounting (clocks gated).
     */
    void stallCycle(ActivityRecord& activity);

    /** Advance n stalled cycles at once (stop-go cooling). */
    void stallCycles(std::uint64_t n, ActivityRecord& activity);

    Cycle cycle() const { return cycle_; }
    std::uint64_t committed() const { return committed_; }

    /** Committed instructions per non-stalled... per total cycle. */
    double
    ipc() const
    {
        return cycle_ ? static_cast<double>(committed_) /
                            static_cast<double>(cycle_)
                      : 0.0;
    }

    // ---- DTM control surface ----
    IssueQueue& intQueue() { return intIq_; }
    IssueQueue& fpQueue() { return fpIq_; }
    const IssueQueue& intQueue() const { return intIq_; }
    const IssueQueue& fpQueue() const { return fpIq_; }
    AluPool& alus() { return alus_; }
    const AluPool& alus() const { return alus_; }
    RegisterFile& intRegfile() { return intRegfile_; }
    const RegisterFile& intRegfile() const { return intRegfile_; }
    DataHierarchy& caches() { return caches_; }
    const DataHierarchy& caches() const { return caches_; }
    InstructionStream& stream() { return stream_; }
    const InstructionStream& stream() const { return stream_; }

    /** Ideal round-robin select on both FU classes (§4.2). */
    void setRoundRobin(bool enabled);
    bool roundRobin() const { return intSelect_.roundRobin(); }

    /**
     * Fetch throttling (a fine-grain temporal technique in the
     * spirit of Skadron et al. [15]): fetch only one cycle in
     * `interval`. 1 = full speed.
     */
    void setFetchInterval(int interval);
    int fetchInterval() const { return fetchInterval_; }

    const PipelineConfig& config() const { return config_; }
    const BenchmarkProfile& profile() const
    {
        return stream_.profile();
    }

    /** Occupancy of the active list (for tests). */
    int robCount() const { return robCount_; }
    int lsqCount() const { return lsqCount_; }

    /**
     * Serialize the core-owned state: cycle/commit counters,
     * active list, completion wheel, done-bit ring, fetch ring,
     * and fetch-throttle controls. Sub-components (issue queues,
     * ALU pool, register file, caches, instruction stream) have
     * their own saveState and are checkpointed as separate chunks
     * by the Simulator.
     */
    void saveState(StateWriter& w) const;

    /** Restore state saved by saveState(); the pipeline geometry
     * must match the saved one. */
    void loadState(StateReader& r);

  private:
    friend struct CoreTestPeer; ///< white-box writeback tests

    /** Scheduled writeback event. */
    struct Completion
    {
        std::uint64_t seq;
        int robIdx;
        bool hasDest;
        bool fpDest;
        bool mispredictedBranch;
    };

    void doWriteback(ActivityRecord& activity);
    void doCommit(ActivityRecord& activity);
    void doIssue(ActivityRecord& activity);
    void doDispatch(ActivityRecord& activity);
    void doFetch(ActivityRecord& activity);

    /** @return true if a producer seq is already complete. */
    bool producerReady(std::uint64_t producer_seq) const;

    /** Schedule a completion `latency` cycles from now. */
    void schedule(const Completion& completion, int latency);

    /** Oldest in-flight sequence number (nextSeq if ROB empty). */
    std::uint64_t robHeadSeq() const;

    // The core's saveState covers only the state it owns directly
    // (ROB, completion wheel, done-bit ring, fetch ring); the
    // components below are serialized as their own checkpoint
    // chunks by Simulator::saveCheckpoint.
    PipelineConfig config_;    // ckpt:skip(config, supplied by the restoring run)
    InstructionStream stream_; // ckpt:skip(own chunk: kChunkWorkload)

    // ckpt:skip(allocator backing store, rebuilt by the constructor)
    Arena ownArena_; ///< used only when no external arena is given

    IssueQueue intIq_;         // ckpt:skip(own chunk: kChunkIqInt)
    IssueQueue fpIq_;          // ckpt:skip(own chunk: kChunkIqFp)
    SelectNetwork intSelect_;  // ckpt:skip(stateless select trees)
    // ckpt:skip(stateless select trees)
    SelectNetwork fpSelect_; ///< trees for FP adders + multiplier
    AluPool alus_;             // ckpt:skip(own chunk: kChunkAlus)
    RegisterFile intRegfile_;  // ckpt:skip(own chunk: kChunkRegfile)
    DataHierarchy caches_;     // ckpt:skip(own chunk: kChunkCaches)

    // Reorder buffer (active list) as a ring, structure-of-arrays:
    // sequence numbers in one array, the per-entry booleans as
    // bitmaps (bit i = ring slot i). Commit tests one completed
    // bit; writeback sets one.
    std::uint64_t* robSeq_ = nullptr;       // ckpt:bulk(core-soa)
    std::uint64_t* robCompleted_ = nullptr; // ckpt:bulk(core-soa)
    std::uint64_t* robIsMem_ = nullptr;     // ckpt:bulk(core-soa)
    int robWords_ = 0; // ckpt:skip(geometry, derived from config)
    int robHead_ = 0;
    int robCount_ = 0;
    int lsqCount_ = 0;

    // Completion wheel, flattened SoA: a power-of-two number of
    // slots (indexed by cycle & wheelMask_) times a fixed per-slot
    // capacity, with a count per slot. The capacity is the static
    // bound on same-cycle completions: at most issueWidth ops issue
    // per cycle, and a slot only collects from one issue cycle per
    // distinct operation latency (see the constructor). Event
    // fields live in parallel arrays (slot * cap + i); the three
    // booleans pack into one flags byte.
    std::uint64_t* wheelSeq_ = nullptr;    // ckpt:bulk(core-soa)
    std::int32_t* wheelRobIdx_ = nullptr;  // ckpt:bulk(core-soa)
    std::uint8_t* wheelFlags_ = nullptr;   // ckpt:bulk(core-soa)
    std::int32_t* wheelCount_ = nullptr;   // ckpt:bulk(core-soa)
    std::uint64_t wheelMask_ = 0;
    int wheelSlotCap_ = 0;

    static constexpr std::uint8_t kWheelHasDest = 1;
    static constexpr std::uint8_t kWheelFpDest = 2;
    static constexpr std::uint8_t kWheelMispredict = 4;

    // Completed-producer ring (sized beyond any in-flight window),
    // one bit per sequence number: word (seq & mask) / 64, bit
    // (seq & mask) % 64. The wakeup scoreboard tests these bits
    // directly.
    std::uint64_t* done_ = nullptr; // ckpt:bulk(core-soa)
    static constexpr std::uint64_t doneMask_ = 4095;

    /** Set the completed bit for a sequence number. */
    void
    markDone(std::uint64_t seq)
    {
        const std::uint64_t idx = seq & doneMask_;
        done_[idx >> 6] |= 1ULL << (idx & 63);
    }

    /** Clear the completed bit (op is dispatched, in flight). */
    void
    markInFlight(std::uint64_t seq)
    {
        const std::uint64_t idx = seq & doneMask_;
        done_[idx >> 6] &= ~(1ULL << (idx & 63));
    }

    // Fetch buffer as a fixed ring (capacity 4 * fetchWidth covers
    // the high-water mark: the 3 * fetchWidth full check plus one
    // more fetch group), structure-of-arrays: one array per MicroOp
    // field, the two booleans packed into a flags byte. Fetch
    // scatters the generated op; dispatch gathers only the fields
    // it needs.
    std::uint64_t* fetchSeq_ = nullptr;     // ckpt:bulk(core-soa)
    std::uint64_t* fetchSrc0_ = nullptr;    // ckpt:bulk(core-soa)
    std::uint64_t* fetchSrc1_ = nullptr;    // ckpt:bulk(core-soa)
    std::uint64_t* fetchLine_ = nullptr;    // ckpt:bulk(core-soa)
    std::uint8_t* fetchCls_ = nullptr;      // ckpt:bulk(core-soa)
    std::uint8_t* fetchNumSrcs_ = nullptr;  // ckpt:bulk(core-soa)
    std::uint8_t* fetchFlags_ = nullptr;    // ckpt:bulk(core-soa)

    static constexpr std::uint8_t kFetchHasDest = 1;
    static constexpr std::uint8_t kFetchMispredict = 2;

    int fetchHead_ = 0;
    int fetchCount_ = 0;
    int fetchCap_ = 0;
    int fetchInterval_ = 1;
    bool fetchBlocked_ = false;
    std::uint64_t blockingBranchSeq_ = 0;
    Cycle fetchResumeCycle_ = 0;

    Cycle cycle_ = 0;
    std::uint64_t committed_ = 0;

    // ckpt:skip(per-cycle scratch, fully overwritten before use)
    std::vector<Grant> grantScratch_;
};

} // namespace tempest

#endif // TEMPEST_UARCH_CORE_HH
