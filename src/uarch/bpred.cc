#include "uarch/bpred.hh"

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

GsharePredictor::GsharePredictor(int table_bits)
    : tableBits_(table_bits)
{
    if (table_bits < 2 || table_bits > 24)
        fatal("gshare table bits out of range [2, 24]");
    mask_ = (1ULL << table_bits) - 1;
    counters_.assign(1ULL << table_bits, 2); // weakly taken
}

int
GsharePredictor::index(std::uint64_t pc) const
{
    return static_cast<int>((pc ^ history_) & mask_);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    ++predLookups_;
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    ++lookups_;
    const int idx = index(pc);
    const bool predicted = counters_[idx] >= 2;
    if (predicted != taken)
        ++mispredicts_;
    std::uint8_t& ctr = counters_[idx];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::speculate(bool taken)
{
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

double
GsharePredictor::mispredictRate() const
{
    return lookups_ ? static_cast<double>(mispredicts_) /
                          static_cast<double>(lookups_)
                    : 0.0;
}

void
GsharePredictor::resetStats()
{
    lookups_ = 0;
    predLookups_ = 0;
    mispredicts_ = 0;
}

void
GsharePredictor::saveState(StateWriter& w) const
{
    w.i32(tableBits_);
    w.u64(history_);
    w.u64(lookups_);
    w.u64(predLookups_);
    w.u64(mispredicts_);
    for (const std::uint8_t c : counters_)
        w.u8(c);
}

void
GsharePredictor::loadState(StateReader& r)
{
    const int bits = r.i32();
    if (bits != tableBits_) {
        fatal("checkpoint branch predictor mismatch: saved ", bits,
              " table bits, this predictor has ", tableBits_);
    }
    history_ = r.u64();
    lookups_ = r.u64();
    predLookups_ = r.u64();
    mispredicts_ = r.u64();
    for (std::uint8_t& c : counters_)
        c = r.u8();
}

} // namespace tempest
