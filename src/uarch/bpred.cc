#include "uarch/bpred.hh"

#include "common/log.hh"

namespace tempest
{

GsharePredictor::GsharePredictor(int table_bits)
    : tableBits_(table_bits)
{
    if (table_bits < 2 || table_bits > 24)
        fatal("gshare table bits out of range [2, 24]");
    mask_ = (1ULL << table_bits) - 1;
    counters_.assign(1ULL << table_bits, 2); // weakly taken
}

int
GsharePredictor::index(std::uint64_t pc) const
{
    return static_cast<int>((pc ^ history_) & mask_);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    ++predLookups_;
    return counters_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    ++lookups_;
    const int idx = index(pc);
    const bool predicted = counters_[idx] >= 2;
    if (predicted != taken)
        ++mispredicts_;
    std::uint8_t& ctr = counters_[idx];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::speculate(bool taken)
{
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

double
GsharePredictor::mispredictRate() const
{
    return lookups_ ? static_cast<double>(mispredicts_) /
                          static_cast<double>(lookups_)
                    : 0.0;
}

void
GsharePredictor::resetStats()
{
    lookups_ = 0;
    predLookups_ = 0;
    mispredicts_ = 0;
}

} // namespace tempest
