/**
 * @file
 * Per-interval microarchitectural activity record.
 *
 * The core increments these event counts as it simulates; the power
 * model converts them to per-block energy at each thermal sampling
 * interval. Events are deliberately fine-grained where the paper's
 * techniques need them to be: per issue-queue half, per ALU copy,
 * and per register-file copy.
 */

#ifndef TEMPEST_UARCH_ACTIVITY_HH
#define TEMPEST_UARCH_ACTIVITY_HH

#include <cstdint>

#include "uarch/pipeline_config.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/**
 * Event counts accumulated over one sampling interval.
 *
 * Issue-queue counters are indexed [queue][physical half] where
 * queue 0 is integer and 1 is floating-point, and half 0 is the
 * physically lower half of the queue (entries 0..N/2-1).
 */
struct ActivityRecord
{
    // ---- issue queues, per physical half ----
    /** Entries that drove their entry-to-entry data wires. */
    std::uint64_t iqEntryMoves[kNumIssueQueues][2] = {};
    /** Entries that drove cross-queue mux selects. */
    std::uint64_t iqMuxSelects[kNumIssueQueues][2] = {};
    /** Entries whose compaction wrapped across the queue ends. */
    std::uint64_t iqLongCompactions[kNumIssueQueues][2] = {};
    /** Per-entry invalids-counter stage activations. */
    std::uint64_t iqCounterOps[kNumIssueQueues][2] = {};
    /** Entry-cycles occupied (valid), for idle power split. */
    std::uint64_t iqOccupiedCycles[kNumIssueQueues][2] = {};
    /** Entry writes at dispatch (tail-region activity). */
    std::uint64_t iqDispatchWrites[kNumIssueQueues][2] = {};

    // ---- issue queues, global (split evenly across halves) ----
    /** Destination-tag broadcasts (wakeup). */
    std::uint64_t iqTagBroadcasts[kNumIssueQueues] = {};
    /** Payload RAM accesses (write at dispatch, read at issue). */
    std::uint64_t iqPayloadAccesses[kNumIssueQueues] = {};
    /** Select-network accesses (one per issued instruction). */
    std::uint64_t iqSelectAccesses[kNumIssueQueues] = {};
    /** Cycles the clock-gating control logic was active (= cycles). */
    std::uint64_t iqClockGateCycles[kNumIssueQueues] = {};

    // ---- functional units ----
    /** Operations executed per integer ALU copy. */
    std::uint64_t intAluOps[kMaxIntAlus] = {};
    /** Operations executed per FP adder copy. */
    std::uint64_t fpAddOps[kMaxFpAdders] = {};
    /** Operations executed by the FP multiplier block. */
    std::uint64_t fpMulOps = 0;

    // ---- register files ----
    /** Read-port accesses per integer register-file copy. */
    std::uint64_t intRegReads[kMaxRegfileCopies] = {};
    /** Write accesses per integer register-file copy. */
    std::uint64_t intRegWrites[kMaxRegfileCopies] = {};
    std::uint64_t fpRegReads = 0;
    std::uint64_t fpRegWrites = 0;

    // ---- memory hierarchy and frontend (coarse blocks) ----
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t bpredAccesses = 0;
    std::uint64_t renameOps = 0;
    std::uint64_t lsqOps = 0;
    std::uint64_t commits = 0;

    /** Core cycles covered by this record (stall cycles included). */
    std::uint64_t cycles = 0;
    /** Cycles the core was thermally stalled. */
    std::uint64_t stallCycles = 0;
    /** Instructions committed in this interval. */
    std::uint64_t instructions = 0;

    /** Zero all counts. */
    void clear() { *this = ActivityRecord{}; }

    /** Accumulate another record into this one. */
    void add(const ActivityRecord& other);
};

/**
 * Serialize every ActivityRecord counter, field by field in
 * declaration order (the SIMR checkpoint chunk layout). Shared by
 * the single-core Simulator and the CMP layer.
 */
void saveActivity(StateWriter& w, const ActivityRecord& a);

/** Restore counters saved by saveActivity(). */
void loadActivity(StateReader& r, ActivityRecord& a);

} // namespace tempest

#endif // TEMPEST_UARCH_ACTIVITY_HH
