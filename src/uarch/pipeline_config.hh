/**
 * @file
 * Pipeline parameters (the paper's Table 2) plus structural limits.
 */

#ifndef TEMPEST_UARCH_PIPELINE_CONFIG_HH
#define TEMPEST_UARCH_PIPELINE_CONFIG_HH

namespace tempest
{

/** Hard upper bounds used to size fixed arrays. */
inline constexpr int kMaxIntAlus = 8;
inline constexpr int kMaxFpAdders = 8;
inline constexpr int kMaxRegfileCopies = 4;
inline constexpr int kNumIssueQueues = 2; ///< integer and FP

/** Issue-queue identifiers. */
enum class QueueKind : int { Int = 0, Fp = 1 };

/**
 * Processor parameters. Defaults reproduce the paper's Table 2:
 * 6-wide out-of-order issue, 128-entry active list with 64-entry
 * LSQ, 32-entry integer and FP issue queues, 64KB 4-way 2-cycle L1s,
 * 2MB 8-way unified L2, 250-cycle memory, 4.2 GHz at 1.2V in 90nm.
 */
struct PipelineConfig
{
    int fetchWidth = 6;
    int issueWidth = 6;
    int commitWidth = 6;

    int activeListEntries = 128;
    int lsqEntries = 64;
    int intIqEntries = 32;
    int fpIqEntries = 32;

    int numIntAlus = 6;   ///< arithmetic + load/store + branch units
    int numFpAdders = 4;
    int numIntRegfileCopies = 2;

    /** L1 data cache ports: limits memory ops issued per cycle. */
    int l1dPorts = 2;

    int l1HitCycles = 2;
    int l2HitCycles = 12;
    int memCycles = 250;

    int intAluLatency = 1;
    int intMulLatency = 3;
    int fpAddLatency = 2;
    int fpMulLatency = 4;

    /** Cycles of fetch bubble after a mispredicted branch resolves. */
    int branchRedirectPenalty = 7;

    double frequencyHz = 4.2e9;

    /** Validate structural invariants; fatal() on violation. */
    void validate() const;
};

} // namespace tempest

#endif // TEMPEST_UARCH_PIPELINE_CONFIG_HH
