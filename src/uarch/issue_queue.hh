/**
 * @file
 * Compacting issue queue with per-entry compaction-activity
 * accounting and the paper's two head/tail configurations (§2.1).
 *
 * Entries live in a *physical* array; instruction age/priority is a
 * *logical* position. The compaction mode maps logical to physical:
 *
 * - Conventional: logical i -> physical i. Head (oldest, highest
 *   priority) at physical 0, tail grows upward.
 * - Toggled: logical i -> physical (i + N/2) mod N. Head at the
 *   middle of the queue, compaction wraps from physical 0 to N-1
 *   over the long wires (charged the "long compaction" energy).
 *
 * Compaction shifts valid entries toward the head by the number of
 * free slots below them, at most issueWidth positions per cycle
 * (the hardware supports compacting up to n invalid entries per
 * cycle in an n-wide machine). The paper's clock-gating rules are
 * applied: only entries that move drive their data wires and mux
 * selects; an instruction issued in cycle c is marked invalid but
 * compacts starting in cycle c+1 (the replay window).
 *
 * Toggling the mode leaves physical contents in place and
 * re-derives logical positions, reproducing the paper's transiently
 * inverted priorities right after a toggle.
 *
 * Readiness is tracked in two 64-bit bitmaps maintained
 * incrementally by dispatch/wakeup/issue/compaction:
 *
 * - `readyBits_`, indexed by *logical* position: bit l is set iff
 *   the entry at logical l is ready to issue. The select network
 *   walks these words with std::countr_zero, so priority order
 *   falls out of bit order with no per-entry scan.
 * - `waitingBits_`, indexed by *physical* slot: bit p is set iff
 *   the entry at p has at least one unready source (the set the
 *   wakeup CAM watches). Physical indexing makes a mode toggle a
 *   no-op for this map — entries do not move.
 */

#ifndef TEMPEST_UARCH_ISSUE_QUEUE_HH
#define TEMPEST_UARCH_ISSUE_QUEUE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "uarch/activity.hh"
#include "uarch/pipeline_config.hh"
#include "workload/instruction.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Head/tail configuration (§2.1.1). */
enum class CompactionMode
{
    Conventional, ///< head at physical 0
    Toggled       ///< head at physical N/2, wrap-around compaction
};

/** One issue-queue entry. */
struct IqEntry
{
    bool valid = false;
    /** Issued this cycle; becomes a hole at the next compaction. */
    bool pendingInvalid = false;

    std::uint64_t seq = 0;
    OpClass cls = OpClass::IntAlu;
    int numSrcs = 0;
    std::uint64_t src[2] = {0, 0};
    bool srcReady[2] = {true, true};
    bool hasDest = true;
    std::uint64_t lineAddr = 0;
    bool mispredicted = false;

    /** @return true if all sources are ready and not yet issued. */
    bool
    ready() const
    {
        if (!valid || pendingInvalid)
            return false;
        for (int i = 0; i < numSrcs; ++i) {
            if (!srcReady[i])
                return false;
        }
        return true;
    }
};

/** Compacting issue queue for one instruction class. */
class IssueQueue
{
  public:
    /**
     * @param num_entries queue size (even; Table 2: 32)
     * @param issue_width max compaction distance per cycle
     * @param kind integer or floating-point queue
     */
    IssueQueue(int num_entries, int issue_width, QueueKind kind);

    int size() const { return size_; }
    QueueKind kind() const { return kind_; }
    CompactionMode mode() const { return mode_; }

    /** Number of valid entries (including pending-invalid ones). */
    int count() const { return count_; }

    /**
     * @return true if dispatch can insert this cycle: there is a
     * free logical slot above every occupied entry. Holes awaiting
     * compaction can make the queue unavailable even when count()
     * < size(), which is faithful to the hardware.
     */
    bool canDispatch() const;

    /**
     * Insert an instruction at the logical tail. The caller must
     * check canDispatch() first; fatal() otherwise. Charges the
     * payload RAM write.
     */
    void dispatch(const IqEntry& entry, ActivityRecord& activity);

    /**
     * Wake dependents of a completed producer: one destination-tag
     * broadcast across all entries.
     */
    void broadcast(std::uint64_t producer_seq,
                   ActivityRecord& activity);

    /**
     * Wake dependents of several producers that completed in the
     * same cycle (one CAM pass, one tag-broadcast charge each).
     */
    void broadcastMany(const std::uint64_t* producer_seqs, int n,
                       ActivityRecord& activity);

    /**
     * Scoreboard variant of the same-cycle wakeup: instead of
     * matching each waiting source against a bounded list of
     * completing tags, consult the core's completed-producer bit
     * ring (bit `seq & mask` of `done_bits`). Models the same
     * hardware event — the activity charge is still one tag
     * broadcast per completing destination (`n_tags`) — but has no
     * cap on how many results can wake dependents in one cycle.
     * Entries that become fully ready move from the waiting bitmap
     * to the ready bitmap.
     */
    void wakeupScoreboard(const std::uint64_t* done_bits,
                          std::uint64_t mask, int n_tags,
                          ActivityRecord& activity);

    /** Ready bitmap in logical-priority order: bit l of word l/64
     * is set iff the entry at logical position l is ready. */
    const std::uint64_t* readyBits() const { return ready_.data(); }

    /** Number of 64-bit words in the ready/waiting bitmaps. */
    int bitWords() const { return words_; }

    /**
     * Visit ready entries in priority (logical) order by walking
     * the ready bitmap. The visitor receives (physical index,
     * entry) and returns false to stop. Entries issued by the
     * visitor itself are not revisited; entries dispatched during
     * iteration are not picked up.
     */
    template <typename Visitor>
    void
    forEachReadyInPriorityOrder(Visitor&& visit) const
    {
        for (int w = 0; w < words_; ++w) {
            std::uint64_t m = ready_[static_cast<std::size_t>(w)];
            while (m != 0) {
                const int l = w * 64 + std::countr_zero(m);
                m &= m - 1;
                const int p = physOfLogical(l);
                const IqEntry& e =
                    phys_[static_cast<std::size_t>(p)];
                if (!visit(p, e))
                    return;
            }
        }
    }

    /**
     * Mark an entry (by physical index) as issued: charges payload
     * read + select access; entry becomes a hole next cycle.
     */
    void markIssued(int phys_idx, ActivityRecord& activity);

    /**
     * One cycle of compaction: convert pending invalids to holes,
     * shift valid entries toward the head by at most issueWidth,
     * and charge per-entry compaction activity with the clock-
     * gating rules. Also accounts per-half occupancy and the
     * always-on clock-gate control logic. Call once per core cycle.
     */
    void compactStep(ActivityRecord& activity);

    /**
     * Flip the head/tail configuration. Physical contents stay in
     * place; logical positions are re-derived, so relative priority
     * of in-flight instructions changes transiently (§2.1.1).
     */
    void toggleMode();

    /** Number of mode toggles performed. */
    std::uint64_t toggleCount() const { return toggleCount_; }

    /** Physical index of a logical position under the current
     * mode. Inputs are in [0, size), so the toggled-mode rotation
     * by size/2 reduces with one conditional subtract (no `%`). */
    int
    physOfLogical(int logical) const
    {
        if (mode_ == CompactionMode::Conventional)
            return logical;
        const int p = logical + half_;
        return p >= size_ ? p - size_ : p;
    }

    /** Logical position of a physical index. */
    int
    logicalOfPhys(int phys) const
    {
        if (mode_ == CompactionMode::Conventional)
            return phys;
        // size - size/2 == size/2 for the even sizes we require.
        const int l = phys + half_;
        return l >= size_ ? l - size_ : l;
    }

    /** Physical half (0 = lower) of a physical index. */
    int
    halfOfPhys(int phys) const
    {
        return phys < half_ ? 0 : 1;
    }

    /** Entry access by physical index (for tests and the core). */
    const IqEntry& entryAtPhys(int phys) const;
    IqEntry& entryAtPhys(int phys);

    /** Unchecked entry access for the select hot path; the index
     * must come from the ready bitmap. */
    const IqEntry&
    entryAtPhysUnchecked(int phys) const
    {
        return phys_[static_cast<std::size_t>(phys)];
    }

    /** Valid entries currently in a physical half. */
    int occupancyOfHalf(int half) const;

    /** Dispatched-but-unready entries the wakeup CAM is watching
     * (for tests: an entry ready at dispatch never appears). */
    int
    waitingCount() const
    {
        int n = 0;
        for (int w = 0; w < words_; ++w)
            n += std::popcount(
                waiting_[static_cast<std::size_t>(w)]);
        return n;
    }

    /** Remove everything (used by tests). */
    void clear();

    /** Serialize entries, bitmaps, mode, and bookkeeping. */
    void saveState(StateWriter& w) const;

    /** Restore state saved by saveState(); the queue geometry
     * (size, kind) must match the saved one. */
    void loadState(StateReader& r);

  private:
    int queueIndex() const { return static_cast<int>(kind_); }

    /** Recompute the cached tail position (one past the highest
     * occupied logical slot). */
    void recomputeTail();

    /** Rebuild the logical-order ready bitmap from entry state
     * (used after a mode toggle re-derives logical positions). */
    void rebuildReadyBits();

    void
    setReadyBit(int logical)
    {
        ready_[static_cast<std::size_t>(logical >> 6)] |=
            1ULL << (logical & 63);
    }

    void
    clearReadyBit(int logical)
    {
        ready_[static_cast<std::size_t>(logical >> 6)] &=
            ~(1ULL << (logical & 63));
    }

    void
    setWaitingBit(int phys)
    {
        waiting_[static_cast<std::size_t>(phys >> 6)] |=
            1ULL << (phys & 63);
    }

    void
    clearWaitingBit(int phys)
    {
        waiting_[static_cast<std::size_t>(phys >> 6)] &=
            ~(1ULL << (phys & 63));
    }

    bool
    testReadyBit(int logical) const
    {
        return (ready_[static_cast<std::size_t>(logical >> 6)] >>
                (logical & 63)) &
               1;
    }

    int size_;
    // ckpt:skip(derived: size_ / 2)
    int half_; ///< size_ / 2, the toggled-mode rotation
    int words_; ///< bitmap words, (size_ + 63) / 64
    int issueWidth_; // ckpt:skip(config, supplied by the restoring run)
    QueueKind kind_;
    CompactionMode mode_ = CompactionMode::Conventional;
    std::vector<IqEntry> phys_;
    int count_ = 0;
    std::uint64_t toggleCount_ = 0;

    // Incremental bookkeeping kept consistent by dispatch/compact/
    // toggle so the per-cycle paths avoid full scans.
    int tailLogical_ = 0;       ///< one past highest occupied slot
    int halfCount_[2] = {0, 0}; ///< valid entries per physical half
    int pendingInvalidCount_ = 0; ///< issued, not yet holes

    /** Ready entries by logical position (see file comment). */
    std::vector<std::uint64_t> ready_;
    /** Entries with at least one unready source, by physical
     * slot; rebuilt each compaction, appended by dispatch. */
    std::vector<std::uint64_t> waiting_;
};

} // namespace tempest

#endif // TEMPEST_UARCH_ISSUE_QUEUE_HH
