/**
 * @file
 * Compacting issue queue with per-entry compaction-activity
 * accounting and the paper's two head/tail configurations (§2.1).
 *
 * Entries live in a *physical* array; instruction age/priority is a
 * *logical* position. The compaction mode maps logical to physical:
 *
 * - Conventional: logical i -> physical i. Head (oldest, highest
 *   priority) at physical 0, tail grows upward.
 * - Toggled: logical i -> physical (i + N/2) mod N. Head at the
 *   middle of the queue, compaction wraps from physical 0 to N-1
 *   over the long wires (charged the "long compaction" energy).
 *
 * Compaction shifts valid entries toward the head by the number of
 * free slots below them, at most issueWidth positions per cycle
 * (the hardware supports compacting up to n invalid entries per
 * cycle in an n-wide machine). The paper's clock-gating rules are
 * applied: only entries that move drive their data wires and mux
 * selects; an instruction issued in cycle c is marked invalid but
 * compacts starting in cycle c+1 (the replay window).
 *
 * Toggling the mode leaves physical contents in place and
 * re-derives logical positions, reproducing the paper's transiently
 * inverted priorities right after a toggle.
 *
 * Storage is structure-of-arrays (DESIGN.md §14): each entry field
 * lives in its own parallel array indexed by physical slot, and all
 * boolean per-entry state is packed into 64-bit bitmaps, so every
 * per-cycle scan walks contiguous words instead of striding through
 * an array of structs:
 *
 * - `seq_`, `src0_`/`src1_`, `lineAddr_` (u64) and `cls_`,
 *   `numSrcs_` (u8): the payload/tag arrays. Wakeup touches only
 *   the tag arrays; select touches only `cls_`.
 * - `validBits_`/`pendingBits_`: occupancy, by physical slot.
 * - `needsBits_[s]`: bit p set iff the entry at p is waiting on
 *   source s (the set the wakeup CAM watches). The union of the
 *   two is the old waiting bitmap; physical indexing makes a mode
 *   toggle a no-op for these maps — entries do not move.
 * - `hasDestBits_`/`mispredBits_`: remaining per-entry flags.
 * - `ready_`, indexed by *logical* position: bit l is set iff the
 *   entry at logical l is ready to issue. The select network walks
 *   these words with std::countr_zero, so priority order falls out
 *   of bit order with no per-entry scan.
 *
 * The arrays are carved from an Arena (the owning simulator's, or a
 * private one for standalone construction) and serialized as bulk
 * blob writes — see the `ckpt:bulk(iq-soa)` annotations.
 *
 * `IqEntry` remains as the dispatch descriptor and as a
 * materialized per-entry view for tests; the hot paths never build
 * one.
 */

#ifndef TEMPEST_UARCH_ISSUE_QUEUE_HH
#define TEMPEST_UARCH_ISSUE_QUEUE_HH

#include <bit>
#include <cstdint>

#include "common/arena.hh"
#include "uarch/activity.hh"
#include "uarch/pipeline_config.hh"
#include "workload/instruction.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Head/tail configuration (§2.1.1). */
enum class CompactionMode
{
    Conventional, ///< head at physical 0
    Toggled       ///< head at physical N/2, wrap-around compaction
};

/** One issue-queue entry (dispatch descriptor / materialized view). */
struct IqEntry
{
    bool valid = false;
    /** Issued this cycle; becomes a hole at the next compaction. */
    bool pendingInvalid = false;

    std::uint64_t seq = 0;
    OpClass cls = OpClass::IntAlu;
    int numSrcs = 0;
    std::uint64_t src[2] = {0, 0};
    bool srcReady[2] = {true, true};
    bool hasDest = true;
    std::uint64_t lineAddr = 0;
    bool mispredicted = false;

    /** @return true if all sources are ready and not yet issued. */
    bool
    ready() const
    {
        if (!valid || pendingInvalid)
            return false;
        for (int i = 0; i < numSrcs; ++i) {
            if (!srcReady[i])
                return false;
        }
        return true;
    }
};

/** Compacting issue queue for one instruction class. */
class IssueQueue
{
  public:
    /**
     * @param num_entries queue size (even; Table 2: 32)
     * @param issue_width max compaction distance per cycle
     * @param kind integer or floating-point queue
     * @param arena arena the SoA arrays are carved from; nullptr
     *        uses a private arena (standalone tests/benches)
     */
    IssueQueue(int num_entries, int issue_width, QueueKind kind,
               Arena* arena = nullptr);

    IssueQueue(const IssueQueue&) = delete;
    IssueQueue& operator=(const IssueQueue&) = delete;

    int size() const { return size_; }
    QueueKind kind() const { return kind_; }
    CompactionMode mode() const { return mode_; }

    /** Number of valid entries (including pending-invalid ones). */
    int count() const { return count_; }

    /**
     * @return true if dispatch can insert this cycle: there is a
     * free logical slot above every occupied entry. Holes awaiting
     * compaction can make the queue unavailable even when count()
     * < size(), which is faithful to the hardware.
     */
    bool canDispatch() const;

    /**
     * Insert an instruction at the logical tail. The caller must
     * check canDispatch() first; fatal() otherwise. Charges the
     * payload RAM write.
     */
    void dispatch(const IqEntry& entry, ActivityRecord& activity);

    /**
     * Wake dependents of a completed producer: one destination-tag
     * broadcast across all entries.
     */
    void broadcast(std::uint64_t producer_seq,
                   ActivityRecord& activity);

    /**
     * Wake dependents of several producers that completed in the
     * same cycle (one CAM pass, one tag-broadcast charge each).
     */
    void broadcastMany(const std::uint64_t* producer_seqs, int n,
                       ActivityRecord& activity);

    /**
     * Event-driven variant of the same-cycle wakeup: wake only the
     * entries registered in the watch index as waiting on exactly
     * this producer, instead of scanning every waiting entry
     * against a completed-producer scoreboard. The writeback loop
     * calls this once per completing instruction; the modeled
     * tag-broadcast energy for the cycle is charged separately via
     * chargeWakeup(), so the activity accounting is identical to a
     * CAM broadcast. Entries that become fully ready move from the
     * waiting bitmaps to the ready bitmap.
     */
    void wakeMatching(std::uint64_t producer_seq);

    /**
     * Charge the cycle's tag-broadcast activity for `n_tags`
     * completing destinations. No-op when the queue is empty (the
     * broadcast drivers are clock-gated) or n_tags <= 0.
     */
    void chargeWakeup(int n_tags, ActivityRecord& activity);

    /** Ready bitmap in logical-priority order: bit l of word l/64
     * is set iff the entry at logical position l is ready. */
    const std::uint64_t* readyBits() const { return ready_; }

    /** Number of 64-bit words in the ready/waiting bitmaps. */
    int bitWords() const { return words_; }

    /** Op class of the entry at a physical slot (select hot path;
     * the index must come from the ready bitmap). */
    OpClass
    opClassAt(int phys) const
    {
        return static_cast<OpClass>(cls_[phys]);
    }

    /** Unchecked field reads for the issue hot path; the index
     * must name a valid entry (it came from a grant). */
    std::uint64_t seqAt(int phys) const { return seq_[phys]; }
    int numSrcsAt(int phys) const { return numSrcs_[phys]; }
    std::uint64_t lineAddrAt(int phys) const
    {
        return lineAddr_[phys];
    }
    bool hasDestAt(int phys) const
    {
        return testBit(hasDestBits_, phys);
    }
    bool mispredictedAt(int phys) const
    {
        return testBit(mispredBits_, phys);
    }

    /**
     * Visit ready entries in priority (logical) order by walking
     * the ready bitmap. The visitor receives (physical index,
     * materialized entry view) and returns false to stop. Entries
     * issued by the visitor itself are not revisited; entries
     * dispatched during iteration are not picked up.
     */
    template <typename Visitor>
    void
    forEachReadyInPriorityOrder(Visitor&& visit) const
    {
        for (int w = 0; w < words_; ++w) {
            std::uint64_t m = ready_[w];
            while (m != 0) {
                const int l = w * 64 + std::countr_zero(m);
                m &= m - 1;
                const int p = physOfLogical(l);
                const IqEntry e = materialize(p);
                if (!visit(p, e))
                    return;
            }
        }
    }

    /**
     * Mark an entry (by physical index) as issued: charges payload
     * read + select access; entry becomes a hole next cycle.
     */
    void markIssued(int phys_idx, ActivityRecord& activity);

    /**
     * One cycle of compaction: convert pending invalids to holes,
     * shift valid entries toward the head by at most issueWidth,
     * and charge per-entry compaction activity with the clock-
     * gating rules. Also accounts per-half occupancy and the
     * always-on clock-gate control logic. Call once per core cycle.
     */
    void compactStep(ActivityRecord& activity);

    /**
     * Flip the head/tail configuration. Physical contents stay in
     * place; logical positions are re-derived, so relative priority
     * of in-flight instructions changes transiently (§2.1.1).
     */
    void toggleMode();

    /** Number of mode toggles performed. */
    std::uint64_t toggleCount() const { return toggleCount_; }

    /** Physical index of a logical position under the current
     * mode. Inputs are in [0, size), so the toggled-mode rotation
     * by size/2 reduces with one conditional subtract (no `%`). */
    int
    physOfLogical(int logical) const
    {
        if (mode_ == CompactionMode::Conventional)
            return logical;
        const int p = logical + half_;
        return p >= size_ ? p - size_ : p;
    }

    /** Logical position of a physical index. */
    int
    logicalOfPhys(int phys) const
    {
        if (mode_ == CompactionMode::Conventional)
            return phys;
        // size - size/2 == size/2 for the even sizes we require.
        const int l = phys + half_;
        return l >= size_ ? l - size_ : l;
    }

    /** Physical half (0 = lower) of a physical index. */
    int
    halfOfPhys(int phys) const
    {
        return phys < half_ ? 0 : 1;
    }

    /** Materialized entry view by physical index (tests; the hot
     * paths use the field accessors above). */
    IqEntry entryAtPhys(int phys) const;

    /** Valid entries currently in a physical half. */
    int occupancyOfHalf(int half) const;

    /** Dispatched-but-unready entries the wakeup CAM is watching
     * (for tests: an entry ready at dispatch never appears). */
    int
    waitingCount() const
    {
        int n = 0;
        for (int w = 0; w < words_; ++w)
            n += std::popcount(needsBits_[0][w] | needsBits_[1][w]);
        return n;
    }

    /** Remove everything (used by tests). */
    void clear();

    /** Serialize entries, bitmaps, mode, and bookkeeping. */
    void saveState(StateWriter& w) const;

    /** Restore state saved by saveState(); the queue geometry
     * (size, kind) must match the saved one. */
    void loadState(StateReader& r);

  private:
    int queueIndex() const { return static_cast<int>(kind_); }

    /** Build the struct view of one physical slot. */
    IqEntry materialize(int phys) const;

    /** compactStep body; force_generic pins the reference pass so
     * the unit tests can diff the two implementations. */
    void compactStepImpl(ActivityRecord& activity,
                         bool force_generic);

    /** Compaction pass over single-word bitmaps: holes and runs
     * are derived with mask arithmetic, runs of entries move with
     * one memmove per field array and one mask shift per bitmap
     * (the hot path; every shipped queue fits one word). */
    void compactWordPass(ActivityRecord& activity);

    /** Reference per-entry compaction pass (queues > 64 entries);
     * must charge and move exactly like compactWordPass. */
    void compactGenericPass(ActivityRecord& activity);

    friend struct IqTestPeer;

    static std::uint64_t
    mask64(int n)
    {
        return n >= 64 ? ~0ULL : (1ULL << n) - 1;
    }

    /** Register (consumer seq, source k) in the watch index as
     * waiting on producer_seq. */
    void watchAdd(std::uint64_t consumer_seq, int k,
                  std::uint64_t producer_seq);

    /** Physical slot of the entry with the given seq that is
     * waiting on source k, or -1. Scans the needsBits_[k] words —
     * correct under any logical mapping (a mode toggle rotates
     * logical order, so seq_ is NOT sorted along it). */
    int physBySeq(std::uint64_t seq, int k) const;

    /** Rebuild the watch index from the waiting bitmaps and tag
     * arrays (constructor, clear() and loadState). */
    void rebuildWatch();

    /** Recompute the cached tail position (one past the highest
     * occupied logical slot). */
    void recomputeTail();

    /** Rebuild the logical-order ready bitmap from entry state
     * (used after a mode toggle re-derives logical positions). */
    void rebuildReadyBits();

    static bool
    testBit(const std::uint64_t* map, int i)
    {
        return (map[i >> 6] >> (i & 63)) & 1;
    }

    static void
    setBit(std::uint64_t* map, int i)
    {
        map[i >> 6] |= 1ULL << (i & 63);
    }

    static void
    clearBit(std::uint64_t* map, int i)
    {
        map[i >> 6] &= ~(1ULL << (i & 63));
    }

    /** Relocate one bit: clears `from`, writes its old value at
     * `to` (unconditionally, so stale destination bits die). */
    static void
    moveBit(std::uint64_t* map, int from, int to)
    {
        const bool was = testBit(map, from);
        clearBit(map, from);
        if (was)
            setBit(map, to);
        else
            clearBit(map, to);
    }

    void setReadyBit(int logical) { setBit(ready_, logical); }
    void clearReadyBit(int logical) { clearBit(ready_, logical); }

    bool
    testReadyBit(int logical) const
    {
        return testBit(ready_, logical);
    }

    /** @return true if the valid entry at `phys` waits on nothing
     * and has not issued. */
    bool
    slotReady(int phys) const
    {
        return testBit(validBits_, phys) &&
               !testBit(pendingBits_, phys) &&
               !testBit(needsBits_[0], phys) &&
               !testBit(needsBits_[1], phys);
    }

    int size_;
    // ckpt:skip(derived: size_ / 2)
    int half_; ///< size_ / 2, the toggled-mode rotation
    int words_; ///< bitmap words, (size_ + 63) / 64
    int issueWidth_; // ckpt:skip(config, supplied by the restoring run)
    QueueKind kind_;
    CompactionMode mode_ = CompactionMode::Conventional;
    int count_ = 0;
    std::uint64_t toggleCount_ = 0;

    // Incremental bookkeeping kept consistent by dispatch/compact/
    // toggle so the per-cycle paths avoid full scans.
    int tailLogical_ = 0;       ///< one past highest occupied slot
    int halfCount_[2] = {0, 0}; ///< valid entries per physical half
    int pendingInvalidCount_ = 0; ///< issued, not yet holes

    // ckpt:skip(allocator backing the SoA arrays, not state)
    Arena ownArena_; ///< used when the caller supplies no arena

    // SoA payload/tag arrays, indexed by physical slot; arena-owned
    // (freed when the arena dies), serialized as bulk blobs.
    std::uint64_t* seq_;      // ckpt:bulk(iq-soa)
    std::uint64_t* src0_;     // ckpt:bulk(iq-soa)
    std::uint64_t* src1_;     // ckpt:bulk(iq-soa)
    std::uint64_t* lineAddr_; // ckpt:bulk(iq-soa)
    std::uint8_t* cls_;       // ckpt:bulk(iq-soa)
    std::uint8_t* numSrcs_;   // ckpt:bulk(iq-soa)

    // Per-entry flags as bitmaps, indexed by physical slot.
    std::uint64_t* validBits_;   // ckpt:bulk(iq-soa)
    std::uint64_t* pendingBits_; // ckpt:bulk(iq-soa)
    std::uint64_t* hasDestBits_; // ckpt:bulk(iq-soa)
    std::uint64_t* mispredBits_; // ckpt:bulk(iq-soa)
    /** needsBits_[s] bit p: entry at p waits on source s. */
    std::uint64_t* needsBits_[2]; // ckpt:bulk(iq-soa)

    /** Ready entries by logical position (see file comment). */
    std::uint64_t* ready_; // ckpt:bulk(iq-soa)

    // Event-driven wakeup index: per producer-seq slot (low bits),
    // an intrusive singly-linked list of (consumer seq, source)
    // nodes waiting on that producer. Nodes come from a free list
    // sized 2 * size_ (an entry watches at most two sources) and
    // name the waiting entry by its *seq*, which is stable across
    // compaction — the passes never touch the index. wakeMatching()
    // resolves the seq back to a slot by scanning the waiting
    // bitmap words for a seq match; the queues are one or two
    // words, so this costs a handful of compares and stays correct
    // when a mode toggle rotates the logical order out from under
    // any position-derived shortcut.
    // Seqs hash to a slot by their low bits, so the full producer
    // tag is verified before a needs bit clears. The whole index is
    // derived state: rebuildWatch() reconstructs it from the
    // waiting bitmaps and tag arrays.
    static constexpr int kWatchSlots = 1024;
    std::int16_t* watchHead_;  // ckpt:skip(derived, rebuildWatch)
    std::int16_t* nodeNext_;   // ckpt:skip(derived, rebuildWatch)
    std::uint64_t* watchSeq_;  // ckpt:skip(derived, rebuildWatch)
    std::uint8_t* watchK_;     // ckpt:skip(derived, rebuildWatch)
    // ckpt:skip(derived, rebuildWatch)
    std::int16_t nodeFreeHead_ = -1;
};

} // namespace tempest

#endif // TEMPEST_UARCH_ISSUE_QUEUE_HH
