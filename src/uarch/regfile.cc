#include "uarch/regfile.hh"

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

const char*
portMappingName(PortMapping mapping)
{
    switch (mapping) {
      case PortMapping::Priority: return "priority";
      case PortMapping::Balanced: return "balanced";
      case PortMapping::CompletelyBalanced:
        return "completely-balanced";
    }
    return "invalid";
}

RegisterFile::RegisterFile(int num_copies, int num_alus,
                           PortMapping mapping)
    : numCopies_(num_copies), numAlus_(num_alus), mapping_(mapping)
{
    if (num_copies < 1 || num_copies > kMaxRegfileCopies)
        fatal("register file copies out of range");
    if (num_alus < 1 || num_alus % num_copies != 0)
        fatal("ALU count must divide evenly across copies");
    rebuildCopyTables();
}

void
RegisterFile::rebuildCopyTables()
{
    alusOfCopy_.assign(static_cast<std::size_t>(numCopies_), {});
    for (int c = 0; c < numCopies_; ++c) {
        std::vector<int>& alus =
            alusOfCopy_[static_cast<std::size_t>(c)];
        for (int a = 0; a < numAlus_; ++a) {
            if (mapping_ == PortMapping::CompletelyBalanced ||
                copyForAlu(a) == c) {
                alus.push_back(a);
            }
        }
    }
}

int
RegisterFile::copyForAlu(int alu) const
{
    if (alu < 0 || alu >= numAlus_)
        panic("copyForAlu: ALU index ", alu, " out of range");
    switch (mapping_) {
      case PortMapping::Priority:
        return alu / (numAlus_ / numCopies_);
      case PortMapping::Balanced:
        return alu % numCopies_;
      case PortMapping::CompletelyBalanced:
        fatal("copyForAlu undefined under completely-balanced "
              "mapping");
    }
    panic("unreachable mapping");
}

const std::vector<int>&
RegisterFile::alusOfCopy(int copy) const
{
    if (copy < 0 || copy >= numCopies_)
        panic("alusOfCopy: copy index ", copy, " out of range");
    return alusOfCopy_[static_cast<std::size_t>(copy)];
}

void
RegisterFile::chargeReads(int alu, int num_reads,
                          ActivityRecord& activity) const
{
    if (num_reads <= 0)
        return;
    if (mapping_ == PortMapping::CompletelyBalanced) {
        // One read port on each copy: spread reads round-robin,
        // starting at the ALU's parity so single reads alternate.
        for (int r = 0; r < num_reads; ++r) {
            const int copy = (alu + r) % numCopies_;
            ++activity.intRegReads[copy];
        }
        return;
    }
    activity.intRegReads[copyForAlu(alu)] +=
        static_cast<std::uint64_t>(num_reads);
}

void
RegisterFile::chargeWrite(ActivityRecord& activity) const
{
    for (int c = 0; c < numCopies_; ++c)
        ++activity.intRegWrites[c];
}

void
RegisterFile::saveState(StateWriter& w) const
{
    w.i32(numCopies_);
    w.i32(numAlus_);
    w.u8(static_cast<std::uint8_t>(mapping_));
}

void
RegisterFile::loadState(StateReader& r)
{
    const int copies = r.i32();
    const int alus = r.i32();
    if (copies != numCopies_ || alus != numAlus_) {
        fatal("checkpoint register file mismatch: saved ", copies,
              " copies / ", alus, " ALUs, this file has ",
              numCopies_, " / ", numAlus_);
    }
    mapping_ = static_cast<PortMapping>(r.u8());
    setMapping(mapping_); // re-derives the copy->ALUs tables
}

} // namespace tempest
