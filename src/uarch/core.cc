#include "uarch/core.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/profiler.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

OooCore::OooCore(const PipelineConfig& config,
                 const BenchmarkProfile& profile,
                 std::uint64_t run_seed)
    : config_(config),
      stream_(profile, run_seed),
      intIq_(config.intIqEntries, config.issueWidth, QueueKind::Int),
      fpIq_(config.fpIqEntries, config.issueWidth, QueueKind::Fp),
      intSelect_(config.numIntAlus),
      fpSelect_(config.numFpAdders + 1), // last tree = FP multiplier
      alus_(config),
      intRegfile_(config.numIntRegfileCopies, config.numIntAlus,
                  PortMapping::Priority),
      caches_(config)
{
    config_.validate();
    if (config.activeListEntries >
        static_cast<int>(doneMask_ + 1)) {
        fatal("active list (", config.activeListEntries,
              ") exceeds the completed-producer ring (",
              doneMask_ + 1,
              "); in-flight sequence numbers would alias");
    }
    rob_.assign(static_cast<std::size_t>(config.activeListEntries),
                RobEntry{});

    // Completion wheel: power-of-two slot count so the cycle index
    // reduces with a mask, deep enough for the longest latency.
    const int min_slots =
        std::max(512, 2 * (config.memCycles + config.l2HitCycles));
    std::size_t slots = 1;
    while (slots < static_cast<std::size_t>(min_slots))
        slots <<= 1;
    wheelMask_ = slots - 1;

    // Per-slot capacity: each distinct operation latency maps a
    // slot back to one issue cycle, and an issue cycle contributes
    // at most issueWidth completions. The active list bounds total
    // in-flight ops regardless.
    const int latencies[] = {
        std::max(1, config.intAluLatency),
        std::max(1, config.intMulLatency),
        std::max(1, config.fpAddLatency),
        std::max(1, config.fpMulLatency),
        std::max(1, config.l1HitCycles),
        std::max(1, config.l2HitCycles),
        std::max(1, config.memCycles),
    };
    constexpr int num_latencies =
        static_cast<int>(sizeof(latencies) / sizeof(latencies[0]));
    int distinct = 0;
    for (int i = 0; i < num_latencies; ++i) {
        bool seen = false;
        for (int j = 0; j < i; ++j)
            seen = seen || latencies[j] == latencies[i];
        if (!seen)
            ++distinct;
    }
    wheelSlotCap_ = std::min(config.activeListEntries,
                             config.issueWidth * distinct);
    wheel_.assign(slots * static_cast<std::size_t>(wheelSlotCap_),
                  Completion{});
    wheelCount_.assign(slots, 0);

    // All-ones: every not-yet-dispatched sequence number reads as
    // complete until dispatch clears its bit.
    done_.assign((doneMask_ + 1) / 64, ~0ULL);

    fetchCap_ = 4 * config.fetchWidth;
    fetchRing_.assign(static_cast<std::size_t>(fetchCap_),
                      MicroOp{});
}

void
OooCore::setRoundRobin(bool enabled)
{
    intSelect_.setRoundRobin(enabled);
    fpSelect_.setRoundRobin(enabled);
}

std::uint64_t
OooCore::robHeadSeq() const
{
    if (robCount_ == 0)
        return stream_.generated() + 1;
    return rob_[static_cast<std::size_t>(robHead_)].seq;
}

bool
OooCore::producerReady(std::uint64_t producer_seq) const
{
    if (producer_seq == 0 || producer_seq < robHeadSeq())
        return true; // committed (or no producer)
    const std::uint64_t idx = producer_seq & doneMask_;
    return ((done_[idx >> 6] >> (idx & 63)) & 1) != 0;
}

void
OooCore::schedule(const Completion& completion, int latency)
{
    if (latency < 1)
        latency = 1;
    const std::size_t slot = static_cast<std::size_t>(
        (cycle_ + static_cast<Cycle>(latency)) & wheelMask_);
    int& n = wheelCount_[slot];
    if (n >= wheelSlotCap_)
        panic("completion wheel slot overflow (cap ",
              wheelSlotCap_, "); per-cycle completion bound broken");
    wheel_[slot * static_cast<std::size_t>(wheelSlotCap_) +
           static_cast<std::size_t>(n)] = completion;
    ++n;
}

void
OooCore::doWriteback(ActivityRecord& activity)
{
    const std::size_t slot =
        static_cast<std::size_t>(cycle_ & wheelMask_);
    const int num_events = wheelCount_[slot];
    if (num_events == 0)
        return;
    const Completion* events =
        &wheel_[slot * static_cast<std::size_t>(wheelSlotCap_)];
    // Count the result tags completing this cycle; dependents wake
    // through the completed-producer scoreboard in one pass per
    // queue, so the same-cycle completion count is unbounded (the
    // old fixed tag list silently dropped wakeups past its cap,
    // deadlocking the queues).
    int num_tags = 0;
    for (int i = 0; i < num_events; ++i) {
        const Completion& c = events[i];
        rob_[static_cast<std::size_t>(c.robIdx)].completed = true;
        markDone(c.seq);
        if (c.hasDest) {
            ++num_tags;
            // Result write: all integer copies, or the FP file.
            if (c.fpDest)
                ++activity.fpRegWrites;
            else
                intRegfile_.chargeWrite(activity);
        }
        if (c.mispredictedBranch) {
            // Redirect: frontend refills after the penalty.
            fetchBlocked_ = false;
            blockingBranchSeq_ = 0;
            fetchResumeCycle_ =
                cycle_ +
                static_cast<Cycle>(config_.branchRedirectPenalty);
        }
    }
    wheelCount_[slot] = 0;
    // Clock-gated empty queues skip the broadcast entirely.
    if (intIq_.count() > 0)
        intIq_.wakeupScoreboard(done_.data(), doneMask_, num_tags,
                                activity);
    if (fpIq_.count() > 0)
        fpIq_.wakeupScoreboard(done_.data(), doneMask_, num_tags,
                               activity);
}

void
OooCore::doCommit(ActivityRecord& activity)
{
    for (int n = 0; n < config_.commitWidth && robCount_ > 0; ++n) {
        RobEntry& head = rob_[static_cast<std::size_t>(robHead_)];
        if (!head.completed)
            break;
        if (head.isMem)
            --lsqCount_;
        if (++robHead_ == config_.activeListEntries)
            robHead_ = 0;
        --robCount_;
        ++committed_;
        ++activity.commits;
        ++activity.instructions;
    }
}

void
OooCore::doIssue(ActivityRecord& activity)
{
    int budget = config_.issueWidth;
    int mem_ports_left = config_.l1dPorts;

    // The active list does not move during select, so the head
    // position/sequence used for ROB indexing can be read once.
    const std::uint64_t head_seq = robHeadSeq();
    const int head_idx = robHead_;
    const int rob_entries = config_.activeListEntries;
    auto rob_index_of = [head_seq, head_idx,
                         rob_entries](std::uint64_t seq) {
        int idx = head_idx + static_cast<int>(seq - head_seq);
        if (idx >= rob_entries)
            idx -= rob_entries;
        return idx;
    };

    // Alternate which queue selects first so FP workloads are not
    // starved by the integer queue's address traffic.
    const bool int_first = (cycle_ % 2) == 0;

    auto select_int = [&]() {
        if (budget <= 0 || intIq_.count() == 0)
            return;
        grantScratch_.clear();
        intSelect_.select(
            intIq_, cycle_, budget,
            [this](int fu) { return alus_.intAluAvailable(fu); },
            [&mem_ports_left](int, const IqEntry& e) {
                if (!AluPool::intAluExecutes(e.cls))
                    return false;
                if (isMemClass(e.cls)) {
                    if (mem_ports_left <= 0)
                        return false;
                    // A true return is always granted, so the
                    // port is consumed here.
                    --mem_ports_left;
                }
                return true;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            // markIssued only flips the pending-invalid flag, so
            // reading the entry through a reference afterwards is
            // safe and skips a 60-byte copy per grant.
            const IqEntry& entry =
                intIq_.entryAtPhysUnchecked(g.physIdx);
            intIq_.markIssued(g.physIdx, activity);
            --budget;
            ++activity.intAluOps[g.fu];
            intRegfile_.chargeReads(g.fu, entry.numSrcs, activity);

            int latency = 0;
            if (entry.cls == OpClass::Load) {
                const MemLevel level =
                    caches_.access(entry.lineAddr, activity);
                latency = caches_.latency(level);
                ++activity.lsqOps;
            } else if (entry.cls == OpClass::Store) {
                caches_.access(entry.lineAddr, activity);
                latency = config_.intAluLatency;
                ++activity.lsqOps;
            } else {
                latency = alus_.latencyOf(entry.cls);
            }

            schedule({entry.seq, rob_index_of(entry.seq),
                      entry.hasDest,
                      /*fpDest=*/false,
                      entry.cls == OpClass::Branch &&
                          entry.mispredicted},
                     latency);
        }
    };

    auto select_fp = [&]() {
        if (budget <= 0 || fpIq_.count() == 0)
            return;
        const int mul_fu = config_.numFpAdders;
        grantScratch_.clear();
        fpSelect_.select(
            fpIq_, cycle_, budget,
            [this, mul_fu](int fu) {
                if (fu == mul_fu)
                    return true; // multiplier is never turned off
                return alus_.fpAdderAvailable(fu);
            },
            [mul_fu](int fu, const IqEntry& e) {
                return fu == mul_fu ? e.cls == OpClass::FpMul
                                    : e.cls == OpClass::FpAdd;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            const IqEntry& entry =
                fpIq_.entryAtPhysUnchecked(g.physIdx);
            fpIq_.markIssued(g.physIdx, activity);
            --budget;
            if (g.fu == mul_fu)
                ++activity.fpMulOps;
            else
                ++activity.fpAddOps[g.fu];
            activity.fpRegReads +=
                static_cast<std::uint64_t>(entry.numSrcs);

            const int latency = alus_.latencyOf(entry.cls);
            schedule({entry.seq, rob_index_of(entry.seq),
                      entry.hasDest,
                      /*fpDest=*/true, false},
                     latency);
        }
    };

    if (int_first) {
        select_int();
        select_fp();
    } else {
        select_fp();
        select_int();
    }
}

void
OooCore::doDispatch(ActivityRecord& activity)
{
    for (int n = 0; n < config_.issueWidth; ++n) {
        if (fetchCount_ == 0)
            return;
        if (robCount_ >= config_.activeListEntries)
            return;
        const MicroOp& op =
            fetchRing_[static_cast<std::size_t>(fetchHead_)];
        const bool is_mem = isMemClass(op.cls);
        if (is_mem && lsqCount_ >= config_.lsqEntries)
            return;
        IssueQueue& iq = isFpClass(op.cls) ? fpIq_ : intIq_;
        if (!iq.canDispatch())
            return;

        IqEntry entry;
        entry.seq = op.seq;
        entry.cls = op.cls;
        entry.numSrcs = op.numSrcs;
        entry.hasDest = op.hasDest;
        entry.lineAddr = op.lineAddr;
        entry.mispredicted = op.mispredicted;
        for (int s = 0; s < op.numSrcs; ++s) {
            entry.src[s] = op.src[s];
            entry.srcReady[s] = producerReady(op.src[s]);
        }

        // Allocate the active-list slot before inserting so the
        // in-flight window check in producerReady stays correct.
        int rob_idx = robHead_ + robCount_;
        if (rob_idx >= config_.activeListEntries)
            rob_idx -= config_.activeListEntries;
        rob_[static_cast<std::size_t>(rob_idx)] = {op.seq, false,
                                                   is_mem};
        ++robCount_;
        markInFlight(op.seq);
        if (is_mem) {
            ++lsqCount_;
            ++activity.lsqOps;
        }
        if (op.cls == OpClass::Branch)
            ++activity.bpredAccesses;
        ++activity.renameOps;

        iq.dispatch(entry, activity);
        if (++fetchHead_ == fetchCap_)
            fetchHead_ = 0;
        --fetchCount_;
    }
}

void
OooCore::setFetchInterval(int interval)
{
    if (interval < 1)
        fatal("fetch interval must be >= 1");
    fetchInterval_ = interval;
}

void
OooCore::doFetch(ActivityRecord& activity)
{
    if (fetchBlocked_ || cycle_ < fetchResumeCycle_)
        return;
    if (fetchInterval_ > 1 &&
        cycle_ % static_cast<Cycle>(fetchInterval_) != 0) {
        return; // thermally throttled
    }
    if (fetchCount_ >= 3 * config_.fetchWidth)
        return; // fetch buffer full
    ++activity.l1iAccesses;
    for (int n = 0; n < config_.fetchWidth; ++n) {
        const MicroOp op = stream_.next();
        const bool blocks = op.cls == OpClass::Branch &&
                            op.mispredicted;
        int tail = fetchHead_ + fetchCount_;
        if (tail >= fetchCap_)
            tail -= fetchCap_;
        fetchRing_[static_cast<std::size_t>(tail)] = op;
        ++fetchCount_;
        if (blocks) {
            // Fetch goes down the wrong path; stop supplying
            // correct-path work until the branch resolves.
            fetchBlocked_ = true;
            blockingBranchSeq_ = op.seq;
            return;
        }
    }
}

void
OooCore::tick(ActivityRecord& activity)
{
    {
        TEMPEST_PROF_SCOPE(ProfStage::Writeback);
        doWriteback(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Compact);
        intIq_.compactStep(activity);
        fpIq_.compactStep(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Commit);
        doCommit(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Issue);
        doIssue(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Dispatch);
        doDispatch(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Fetch);
        doFetch(activity);
    }
    ++cycle_;
    ++activity.cycles;
}

void
OooCore::stallCycle(ActivityRecord& activity)
{
    stallCycles(1, activity);
}

void
OooCore::stallCycles(std::uint64_t n, ActivityRecord& activity)
{
    cycle_ += n;
    activity.cycles += n;
    activity.stallCycles += n;
}

void
OooCore::saveState(StateWriter& w) const
{
    w.u64(cycle_);
    w.u64(committed_);

    w.u32(static_cast<std::uint32_t>(rob_.size()));
    w.i32(robHead_);
    w.i32(robCount_);
    w.i32(lsqCount_);
    for (const RobEntry& e : rob_) {
        w.u64(e.seq);
        w.boolean(e.completed);
        w.boolean(e.isMem);
    }

    w.u64(wheelMask_);
    w.i32(wheelSlotCap_);
    const std::size_t num_slots = wheelCount_.size();
    for (std::size_t s = 0; s < num_slots; ++s) {
        const int n = wheelCount_[s];
        w.i32(n);
        for (int i = 0; i < n; ++i) {
            const Completion& c =
                wheel_[s * static_cast<std::size_t>(wheelSlotCap_) +
                       static_cast<std::size_t>(i)];
            w.u64(c.seq);
            w.i32(c.robIdx);
            w.boolean(c.hasDest);
            w.boolean(c.fpDest);
            w.boolean(c.mispredictedBranch);
        }
    }

    w.u32(static_cast<std::uint32_t>(done_.size()));
    for (const std::uint64_t word : done_)
        w.u64(word);

    w.i32(fetchCap_);
    w.i32(fetchHead_);
    w.i32(fetchCount_);
    for (const MicroOp& op : fetchRing_) {
        w.u64(op.seq);
        w.u8(static_cast<std::uint8_t>(op.cls));
        w.i32(op.numSrcs);
        w.u64(op.src[0]);
        w.u64(op.src[1]);
        w.boolean(op.hasDest);
        w.u64(op.lineAddr);
        w.boolean(op.mispredicted);
    }
    w.i32(fetchInterval_);
    w.boolean(fetchBlocked_);
    w.u64(blockingBranchSeq_);
    w.u64(fetchResumeCycle_);
}

void
OooCore::loadState(StateReader& r)
{
    cycle_ = r.u64();
    committed_ = r.u64();

    const auto rob_size = r.u32();
    if (rob_size != rob_.size()) {
        fatal("checkpoint core mismatch: saved active list has ",
              rob_size, " entries, this core has ", rob_.size());
    }
    robHead_ = r.i32();
    robCount_ = r.i32();
    lsqCount_ = r.i32();
    for (RobEntry& e : rob_) {
        e.seq = r.u64();
        e.completed = r.boolean();
        e.isMem = r.boolean();
    }

    const auto wheel_mask = r.u64();
    const int slot_cap = r.i32();
    if (wheel_mask != wheelMask_ || slot_cap != wheelSlotCap_) {
        fatal("checkpoint core mismatch: completion wheel "
              "geometry differs (saved mask ", wheel_mask,
              " cap ", slot_cap, ", this core mask ", wheelMask_,
              " cap ", wheelSlotCap_, ")");
    }
    const std::size_t num_slots = wheelCount_.size();
    for (std::size_t s = 0; s < num_slots; ++s) {
        const int n = r.i32();
        if (n < 0 || n > wheelSlotCap_)
            fatal("checkpoint core: wheel slot count ", n,
                  " out of range");
        wheelCount_[s] = n;
        for (int i = 0; i < n; ++i) {
            Completion& c =
                wheel_[s * static_cast<std::size_t>(wheelSlotCap_) +
                       static_cast<std::size_t>(i)];
            c.seq = r.u64();
            c.robIdx = r.i32();
            c.hasDest = r.boolean();
            c.fpDest = r.boolean();
            c.mispredictedBranch = r.boolean();
        }
    }

    const auto done_words = r.u32();
    if (done_words != done_.size()) {
        fatal("checkpoint core mismatch: done-bit ring has ",
              done_words, " words, this core has ", done_.size());
    }
    for (std::uint64_t& word : done_)
        word = r.u64();

    const int fetch_cap = r.i32();
    if (fetch_cap != fetchCap_) {
        fatal("checkpoint core mismatch: fetch ring capacity ",
              fetch_cap, " differs from ", fetchCap_);
    }
    fetchHead_ = r.i32();
    fetchCount_ = r.i32();
    for (MicroOp& op : fetchRing_) {
        op.seq = r.u64();
        op.cls = static_cast<OpClass>(r.u8());
        op.numSrcs = r.i32();
        op.src[0] = r.u64();
        op.src[1] = r.u64();
        op.hasDest = r.boolean();
        op.lineAddr = r.u64();
        op.mispredicted = r.boolean();
    }
    fetchInterval_ = r.i32();
    fetchBlocked_ = r.boolean();
    blockingBranchSeq_ = r.u64();
    fetchResumeCycle_ = r.u64();
}

} // namespace tempest
