#include "uarch/core.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "common/profiler.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

OooCore::OooCore(const PipelineConfig& config,
                 const BenchmarkProfile& profile,
                 std::uint64_t run_seed, Arena* arena)
    : config_(config),
      stream_(profile, run_seed),
      intIq_(config.intIqEntries, config.issueWidth, QueueKind::Int,
             arena != nullptr ? arena : &ownArena_),
      fpIq_(config.fpIqEntries, config.issueWidth, QueueKind::Fp,
            arena != nullptr ? arena : &ownArena_),
      intSelect_(config.numIntAlus),
      fpSelect_(config.numFpAdders + 1), // last tree = FP multiplier
      alus_(config),
      intRegfile_(config.numIntRegfileCopies, config.numIntAlus,
                  PortMapping::Priority),
      caches_(config)
{
    config_.validate();
    if (config.activeListEntries >
        static_cast<int>(doneMask_ + 1)) {
        fatal("active list (", config.activeListEntries,
              ") exceeds the completed-producer ring (",
              doneMask_ + 1,
              "); in-flight sequence numbers would alias");
    }
    Arena& a = arena != nullptr ? *arena : ownArena_;
    const auto rob_n =
        static_cast<std::size_t>(config.activeListEntries);
    robWords_ = (config.activeListEntries + 63) / 64;
    robSeq_ = a.alloc<std::uint64_t>(rob_n);
    robCompleted_ =
        a.alloc<std::uint64_t>(static_cast<std::size_t>(robWords_));
    robIsMem_ =
        a.alloc<std::uint64_t>(static_cast<std::size_t>(robWords_));

    // Completion wheel: power-of-two slot count so the cycle index
    // reduces with a mask, deep enough for the longest latency.
    const int min_slots =
        std::max(512, 2 * (config.memCycles + config.l2HitCycles));
    std::size_t slots = 1;
    while (slots < static_cast<std::size_t>(min_slots))
        slots <<= 1;
    wheelMask_ = slots - 1;

    // Per-slot capacity: each distinct operation latency maps a
    // slot back to one issue cycle, and an issue cycle contributes
    // at most issueWidth completions. The active list bounds total
    // in-flight ops regardless.
    const int latencies[] = {
        std::max(1, config.intAluLatency),
        std::max(1, config.intMulLatency),
        std::max(1, config.fpAddLatency),
        std::max(1, config.fpMulLatency),
        std::max(1, config.l1HitCycles),
        std::max(1, config.l2HitCycles),
        std::max(1, config.memCycles),
    };
    constexpr int num_latencies =
        static_cast<int>(sizeof(latencies) / sizeof(latencies[0]));
    int distinct = 0;
    for (int i = 0; i < num_latencies; ++i) {
        bool seen = false;
        for (int j = 0; j < i; ++j)
            seen = seen || latencies[j] == latencies[i];
        if (!seen)
            ++distinct;
    }
    wheelSlotCap_ = std::min(config.activeListEntries,
                             config.issueWidth * distinct);
    const std::size_t wheel_n =
        slots * static_cast<std::size_t>(wheelSlotCap_);
    wheelSeq_ = a.alloc<std::uint64_t>(wheel_n);
    wheelRobIdx_ = a.alloc<std::int32_t>(wheel_n);
    wheelFlags_ = a.alloc<std::uint8_t>(wheel_n);
    wheelCount_ = a.alloc<std::int32_t>(slots);

    // All-ones: every not-yet-dispatched sequence number reads as
    // complete until dispatch clears its bit.
    done_ = a.alloc<std::uint64_t>((doneMask_ + 1) / 64);
    std::memset(done_, 0xff, (doneMask_ + 1) / 8);

    fetchCap_ = 4 * config.fetchWidth;
    const auto fetch_n = static_cast<std::size_t>(fetchCap_);
    fetchSeq_ = a.alloc<std::uint64_t>(fetch_n);
    fetchSrc0_ = a.alloc<std::uint64_t>(fetch_n);
    fetchSrc1_ = a.alloc<std::uint64_t>(fetch_n);
    fetchLine_ = a.alloc<std::uint64_t>(fetch_n);
    fetchCls_ = a.alloc<std::uint8_t>(fetch_n);
    fetchNumSrcs_ = a.alloc<std::uint8_t>(fetch_n);
    fetchFlags_ = a.alloc<std::uint8_t>(fetch_n);
}

void
OooCore::setRoundRobin(bool enabled)
{
    intSelect_.setRoundRobin(enabled);
    fpSelect_.setRoundRobin(enabled);
}

std::uint64_t
OooCore::robHeadSeq() const
{
    if (robCount_ == 0)
        return stream_.generated() + 1;
    return robSeq_[static_cast<std::size_t>(robHead_)];
}

bool
OooCore::producerReady(std::uint64_t producer_seq) const
{
    if (producer_seq == 0 || producer_seq < robHeadSeq())
        return true; // committed (or no producer)
    const std::uint64_t idx = producer_seq & doneMask_;
    return ((done_[idx >> 6] >> (idx & 63)) & 1) != 0;
}

void
OooCore::schedule(const Completion& completion, int latency)
{
    if (latency < 1)
        latency = 1;
    const std::size_t slot = static_cast<std::size_t>(
        (cycle_ + static_cast<Cycle>(latency)) & wheelMask_);
    std::int32_t& n = wheelCount_[slot];
    if (n >= wheelSlotCap_)
        panic("completion wheel slot overflow (cap ",
              wheelSlotCap_, "); per-cycle completion bound broken");
    const std::size_t at =
        slot * static_cast<std::size_t>(wheelSlotCap_) +
        static_cast<std::size_t>(n);
    wheelSeq_[at] = completion.seq;
    wheelRobIdx_[at] = completion.robIdx;
    wheelFlags_[at] = static_cast<std::uint8_t>(
        (completion.hasDest ? kWheelHasDest : 0) |
        (completion.fpDest ? kWheelFpDest : 0) |
        (completion.mispredictedBranch ? kWheelMispredict : 0));
    ++n;
}

void
OooCore::doWriteback(ActivityRecord& activity)
{
    const std::size_t slot =
        static_cast<std::size_t>(cycle_ & wheelMask_);
    const int num_events = wheelCount_[slot];
    if (num_events == 0)
        return;
    const std::size_t base =
        slot * static_cast<std::size_t>(wheelSlotCap_);
    // Count the result tags completing this cycle; dependents wake
    // through the per-producer watch index as each completion
    // drains, so the same-cycle completion count is unbounded (the
    // old fixed tag list silently dropped wakeups past its cap,
    // deadlocking the queues).
    int num_tags = 0;
    for (int i = 0; i < num_events; ++i) {
        const std::size_t at = base + static_cast<std::size_t>(i);
        const int rob_idx = wheelRobIdx_[at];
        robCompleted_[rob_idx >> 6] |=
            1ULL << (rob_idx & 63);
        markDone(wheelSeq_[at]);
        intIq_.wakeMatching(wheelSeq_[at]);
        fpIq_.wakeMatching(wheelSeq_[at]);
        const std::uint8_t flags = wheelFlags_[at];
        if (flags & kWheelHasDest) {
            ++num_tags;
            // Result write: all integer copies, or the FP file.
            if (flags & kWheelFpDest)
                ++activity.fpRegWrites;
            else
                intRegfile_.chargeWrite(activity);
        }
        if (flags & kWheelMispredict) {
            // Redirect: frontend refills after the penalty.
            fetchBlocked_ = false;
            blockingBranchSeq_ = 0;
            fetchResumeCycle_ =
                cycle_ +
                static_cast<Cycle>(config_.branchRedirectPenalty);
        }
    }
    wheelCount_[slot] = 0;
    // Clock-gated empty queues skip the broadcast charge entirely.
    intIq_.chargeWakeup(num_tags, activity);
    fpIq_.chargeWakeup(num_tags, activity);
}

void
OooCore::doCommit(ActivityRecord& activity)
{
    // Retire the contiguous completed run at the head a word at a
    // time: countr_one on the shifted completed word gives the run
    // length, a popcount over the matching robIsMem_ bits releases
    // the LSQ slots. The loop re-enters only at word or active-list
    // wrap boundaries.
    int n = 0;
    while (n < config_.commitWidth && robCount_ > 0) {
        const int head = robHead_;
        const int word = head >> 6;
        const int bit = head & 63;
        int run = std::countr_one(robCompleted_[word] >> bit);
        run = std::min({run, config_.commitWidth - n, robCount_,
                        config_.activeListEntries - head, 64 - bit});
        if (run == 0)
            break;
        const std::uint64_t mem_bits =
            (robIsMem_[word] >> bit) &
            (run >= 64 ? ~0ULL : (1ULL << run) - 1);
        lsqCount_ -= std::popcount(mem_bits);
        robHead_ = head + run;
        if (robHead_ == config_.activeListEntries)
            robHead_ = 0;
        robCount_ -= run;
        committed_ += static_cast<std::uint64_t>(run);
        activity.commits += static_cast<std::uint64_t>(run);
        activity.instructions += static_cast<std::uint64_t>(run);
        n += run;
    }
}

void
OooCore::doIssue(ActivityRecord& activity)
{
    int budget = config_.issueWidth;
    int mem_ports_left = config_.l1dPorts;

    // The active list does not move during select, so the head
    // position/sequence used for ROB indexing can be read once.
    const std::uint64_t head_seq = robHeadSeq();
    const int head_idx = robHead_;
    const int rob_entries = config_.activeListEntries;
    auto rob_index_of = [head_seq, head_idx,
                         rob_entries](std::uint64_t seq) {
        int idx = head_idx + static_cast<int>(seq - head_seq);
        if (idx >= rob_entries)
            idx -= rob_entries;
        return idx;
    };

    // Alternate which queue selects first so FP workloads are not
    // starved by the integer queue's address traffic.
    const bool int_first = (cycle_ % 2) == 0;

    auto select_int = [&]() {
        if (budget <= 0 || intIq_.count() == 0)
            return;
        grantScratch_.clear();
        intSelect_.select(
            intIq_, cycle_, budget,
            [this](int fu) { return alus_.intAluAvailable(fu); },
            [&mem_ports_left](int, OpClass cls) {
                if (!AluPool::intAluExecutes(cls))
                    return false;
                if (isMemClass(cls)) {
                    if (mem_ports_left <= 0)
                        return false;
                    // A true return is always granted, so the
                    // port is consumed here.
                    --mem_ports_left;
                }
                return true;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            // Field reads straight out of the queue's SoA arrays;
            // markIssued only flips a pending bit, so the reads
            // can follow it.
            const int p = g.physIdx;
            const OpClass cls = intIq_.opClassAt(p);
            const std::uint64_t seq = intIq_.seqAt(p);
            intIq_.markIssued(p, activity);
            --budget;
            ++activity.intAluOps[g.fu];
            intRegfile_.chargeReads(g.fu, intIq_.numSrcsAt(p),
                                    activity);

            int latency = 0;
            if (cls == OpClass::Load) {
                const MemLevel level =
                    caches_.access(intIq_.lineAddrAt(p), activity);
                latency = caches_.latency(level);
                ++activity.lsqOps;
            } else if (cls == OpClass::Store) {
                caches_.access(intIq_.lineAddrAt(p), activity);
                latency = config_.intAluLatency;
                ++activity.lsqOps;
            } else {
                latency = alus_.latencyOf(cls);
            }

            schedule({seq, rob_index_of(seq),
                      intIq_.hasDestAt(p),
                      /*fpDest=*/false,
                      cls == OpClass::Branch &&
                          intIq_.mispredictedAt(p)},
                     latency);
        }
    };

    auto select_fp = [&]() {
        if (budget <= 0 || fpIq_.count() == 0)
            return;
        const int mul_fu = config_.numFpAdders;
        grantScratch_.clear();
        fpSelect_.select(
            fpIq_, cycle_, budget,
            [this, mul_fu](int fu) {
                if (fu == mul_fu)
                    return true; // multiplier is never turned off
                return alus_.fpAdderAvailable(fu);
            },
            [mul_fu](int fu, OpClass cls) {
                return fu == mul_fu ? cls == OpClass::FpMul
                                    : cls == OpClass::FpAdd;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            const int p = g.physIdx;
            const OpClass cls = fpIq_.opClassAt(p);
            const std::uint64_t seq = fpIq_.seqAt(p);
            fpIq_.markIssued(p, activity);
            --budget;
            if (g.fu == mul_fu)
                ++activity.fpMulOps;
            else
                ++activity.fpAddOps[g.fu];
            activity.fpRegReads +=
                static_cast<std::uint64_t>(fpIq_.numSrcsAt(p));

            const int latency = alus_.latencyOf(cls);
            schedule({seq, rob_index_of(seq),
                      fpIq_.hasDestAt(p),
                      /*fpDest=*/true, false},
                     latency);
        }
    };

    if (int_first) {
        select_int();
        select_fp();
    } else {
        select_fp();
        select_int();
    }
}

void
OooCore::doDispatch(ActivityRecord& activity)
{
    for (int n = 0; n < config_.issueWidth; ++n) {
        if (fetchCount_ == 0)
            return;
        if (robCount_ >= config_.activeListEntries)
            return;
        const auto at = static_cast<std::size_t>(fetchHead_);
        const auto cls = static_cast<OpClass>(fetchCls_[at]);
        const bool is_mem = isMemClass(cls);
        if (is_mem && lsqCount_ >= config_.lsqEntries)
            return;
        IssueQueue& iq = isFpClass(cls) ? fpIq_ : intIq_;
        if (!iq.canDispatch())
            return;

        const std::uint64_t seq = fetchSeq_[at];
        const std::uint8_t flags = fetchFlags_[at];
        IqEntry entry;
        entry.seq = seq;
        entry.cls = cls;
        entry.numSrcs = fetchNumSrcs_[at];
        entry.hasDest = (flags & kFetchHasDest) != 0;
        entry.lineAddr = fetchLine_[at];
        entry.mispredicted = (flags & kFetchMispredict) != 0;
        if (entry.numSrcs > 0) {
            entry.src[0] = fetchSrc0_[at];
            entry.srcReady[0] = producerReady(entry.src[0]);
        }
        if (entry.numSrcs > 1) {
            entry.src[1] = fetchSrc1_[at];
            entry.srcReady[1] = producerReady(entry.src[1]);
        }

        // Allocate the active-list slot before inserting so the
        // in-flight window check in producerReady stays correct.
        int rob_idx = robHead_ + robCount_;
        if (rob_idx >= config_.activeListEntries)
            rob_idx -= config_.activeListEntries;
        robSeq_[static_cast<std::size_t>(rob_idx)] = seq;
        const std::uint64_t rob_bit = 1ULL << (rob_idx & 63);
        robCompleted_[rob_idx >> 6] &= ~rob_bit;
        if (is_mem)
            robIsMem_[rob_idx >> 6] |= rob_bit;
        else
            robIsMem_[rob_idx >> 6] &= ~rob_bit;
        ++robCount_;
        markInFlight(seq);
        if (is_mem) {
            ++lsqCount_;
            ++activity.lsqOps;
        }
        if (cls == OpClass::Branch)
            ++activity.bpredAccesses;
        ++activity.renameOps;

        iq.dispatch(entry, activity);
        if (++fetchHead_ == fetchCap_)
            fetchHead_ = 0;
        --fetchCount_;
    }
}

void
OooCore::setFetchInterval(int interval)
{
    if (interval < 1)
        fatal("fetch interval must be >= 1");
    fetchInterval_ = interval;
}

void
OooCore::doFetch(ActivityRecord& activity)
{
    if (fetchBlocked_ || cycle_ < fetchResumeCycle_)
        return;
    if (fetchInterval_ > 1 &&
        cycle_ % static_cast<Cycle>(fetchInterval_) != 0) {
        return; // thermally throttled
    }
    if (fetchCount_ >= 3 * config_.fetchWidth)
        return; // fetch buffer full
    ++activity.l1iAccesses;
    // Bulk-copy the fetch group straight from the generator's batch
    // ring (span memcpy per field array) instead of gathering and
    // re-scattering one MicroOp at a time. A group stops early at a
    // mispredicted branch (always a Branch-class slot: the generator
    // sets the mispred bit only for branches) or at a batch-ring
    // refill boundary; the loop re-enters after either.
    int want = config_.fetchWidth;
    while (want > 0) {
        const InstructionStream::BatchView v = stream_.view();
        int k = std::min(want, v.count - v.next);
        const std::uint64_t span_mask =
            k >= 64 ? ~0ULL : (1ULL << k) - 1;
        const std::uint64_t blockers =
            (v.mispred >> v.next) & span_mask;
        const bool blocks = blockers != 0;
        if (blocks)
            k = std::countr_zero(blockers) + 1;
        int copied = 0;
        while (copied < k) {
            int tail = fetchHead_ + fetchCount_;
            if (tail >= fetchCap_)
                tail -= fetchCap_;
            // Contiguous in both rings: stop at either wrap.
            const int seg = std::min(k - copied, fetchCap_ - tail);
            const int src = v.next + copied;
            const auto at = static_cast<std::size_t>(tail);
            const auto cnt = static_cast<std::size_t>(seg);
            std::memcpy(fetchSeq_ + at, v.seq + src, cnt * 8);
            std::memcpy(fetchSrc0_ + at, v.src0 + src, cnt * 8);
            std::memcpy(fetchSrc1_ + at, v.src1 + src, cnt * 8);
            std::memcpy(fetchLine_ + at, v.line + src, cnt * 8);
            std::memcpy(fetchCls_ + at, v.cls + src, cnt);
            std::memcpy(fetchNumSrcs_ + at, v.numSrcs + src, cnt);
            for (int i = 0; i < seg; ++i) {
                const int slot = src + i;
                fetchFlags_[at + static_cast<std::size_t>(i)] =
                    static_cast<std::uint8_t>(
                        (((v.hasDest >> slot) & 1) != 0
                             ? kFetchHasDest
                             : 0) |
                        (((v.mispred >> slot) & 1) != 0
                             ? kFetchMispredict
                             : 0));
            }
            fetchCount_ += seg;
            copied += seg;
        }
        stream_.advance(k);
        want -= k;
        if (blocks) {
            // Fetch goes down the wrong path; stop supplying
            // correct-path work until the branch resolves.
            fetchBlocked_ = true;
            blockingBranchSeq_ = v.seq[v.next + k - 1];
            return;
        }
    }
}

void
OooCore::tick(ActivityRecord& activity)
{
    {
        TEMPEST_PROF_SCOPE(ProfStage::Writeback);
        doWriteback(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Compact);
        intIq_.compactStep(activity);
        fpIq_.compactStep(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Commit);
        doCommit(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Issue);
        doIssue(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Dispatch);
        doDispatch(activity);
    }
    {
        TEMPEST_PROF_SCOPE(ProfStage::Fetch);
        doFetch(activity);
    }
    ++cycle_;
    ++activity.cycles;
}

void
OooCore::stallCycle(ActivityRecord& activity)
{
    stallCycles(1, activity);
}

void
OooCore::stallCycles(std::uint64_t n, ActivityRecord& activity)
{
    cycle_ += n;
    activity.cycles += n;
    activity.stallCycles += n;
}

void
OooCore::saveState(StateWriter& w) const
{
    const auto rob_n =
        static_cast<std::size_t>(config_.activeListEntries);
    const auto rob_wb = static_cast<std::size_t>(robWords_) * 8;
    const std::size_t num_slots =
        static_cast<std::size_t>(wheelMask_) + 1;
    const std::size_t wheel_n =
        num_slots * static_cast<std::size_t>(wheelSlotCap_);
    const auto fetch_n = static_cast<std::size_t>(fetchCap_);

    w.u64(cycle_);
    w.u64(committed_);

    w.u32(static_cast<std::uint32_t>(rob_n));
    w.i32(robHead_);
    w.i32(robCount_);
    w.i32(lsqCount_);
    w.blob(robSeq_, rob_n * 8);
    w.blob(robCompleted_, rob_wb);
    w.blob(robIsMem_, rob_wb);

    w.u64(wheelMask_);
    w.i32(wheelSlotCap_);
    w.blob(wheelCount_, num_slots * 4);
    w.blob(wheelSeq_, wheel_n * 8);
    w.blob(wheelRobIdx_, wheel_n * 4);
    w.blob(wheelFlags_, wheel_n);

    w.blob(done_, (doneMask_ + 1) / 8);

    w.i32(fetchCap_);
    w.i32(fetchHead_);
    w.i32(fetchCount_);
    w.blob(fetchSeq_, fetch_n * 8);
    w.blob(fetchSrc0_, fetch_n * 8);
    w.blob(fetchSrc1_, fetch_n * 8);
    w.blob(fetchLine_, fetch_n * 8);
    w.blob(fetchCls_, fetch_n);
    w.blob(fetchNumSrcs_, fetch_n);
    w.blob(fetchFlags_, fetch_n);
    w.i32(fetchInterval_);
    w.boolean(fetchBlocked_);
    w.u64(blockingBranchSeq_);
    w.u64(fetchResumeCycle_);
}

void
OooCore::loadState(StateReader& r)
{
    const auto rob_n =
        static_cast<std::size_t>(config_.activeListEntries);
    const auto rob_wb = static_cast<std::size_t>(robWords_) * 8;
    const std::size_t num_slots =
        static_cast<std::size_t>(wheelMask_) + 1;
    const std::size_t wheel_n =
        num_slots * static_cast<std::size_t>(wheelSlotCap_);
    const auto fetch_n = static_cast<std::size_t>(fetchCap_);

    cycle_ = r.u64();
    committed_ = r.u64();

    const auto rob_size = r.u32();
    if (rob_size != rob_n) {
        fatal("checkpoint core mismatch: saved active list has ",
              rob_size, " entries, this core has ", rob_n);
    }
    robHead_ = r.i32();
    robCount_ = r.i32();
    lsqCount_ = r.i32();
    r.blob(robSeq_, rob_n * 8);
    r.blob(robCompleted_, rob_wb);
    r.blob(robIsMem_, rob_wb);

    const auto wheel_mask = r.u64();
    const int slot_cap = r.i32();
    if (wheel_mask != wheelMask_ || slot_cap != wheelSlotCap_) {
        fatal("checkpoint core mismatch: completion wheel "
              "geometry differs (saved mask ", wheel_mask,
              " cap ", slot_cap, ", this core mask ", wheelMask_,
              " cap ", wheelSlotCap_, ")");
    }
    r.blob(wheelCount_, num_slots * 4);
    r.blob(wheelSeq_, wheel_n * 8);
    r.blob(wheelRobIdx_, wheel_n * 4);
    r.blob(wheelFlags_, wheel_n);
    for (std::size_t s = 0; s < num_slots; ++s) {
        if (wheelCount_[s] < 0 || wheelCount_[s] > wheelSlotCap_)
            fatal("checkpoint core: wheel slot count ",
                  wheelCount_[s], " out of range");
    }

    r.blob(done_, (doneMask_ + 1) / 8);

    const int fetch_cap = r.i32();
    if (fetch_cap != fetchCap_) {
        fatal("checkpoint core mismatch: fetch ring capacity ",
              fetch_cap, " differs from ", fetchCap_);
    }
    fetchHead_ = r.i32();
    fetchCount_ = r.i32();
    r.blob(fetchSeq_, fetch_n * 8);
    r.blob(fetchSrc0_, fetch_n * 8);
    r.blob(fetchSrc1_, fetch_n * 8);
    r.blob(fetchLine_, fetch_n * 8);
    r.blob(fetchCls_, fetch_n);
    r.blob(fetchNumSrcs_, fetch_n);
    r.blob(fetchFlags_, fetch_n);
    fetchInterval_ = r.i32();
    fetchBlocked_ = r.boolean();
    blockingBranchSeq_ = r.u64();
    fetchResumeCycle_ = r.u64();
}

} // namespace tempest
