#include "uarch/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace tempest
{

OooCore::OooCore(const PipelineConfig& config,
                 const BenchmarkProfile& profile,
                 std::uint64_t run_seed)
    : config_(config),
      stream_(profile, run_seed),
      intIq_(config.intIqEntries, config.issueWidth, QueueKind::Int),
      fpIq_(config.fpIqEntries, config.issueWidth, QueueKind::Fp),
      intSelect_(config.numIntAlus),
      fpSelect_(config.numFpAdders + 1), // last tree = FP multiplier
      alus_(config),
      intRegfile_(config.numIntRegfileCopies, config.numIntAlus,
                  PortMapping::Priority),
      caches_(config)
{
    config_.validate();
    rob_.assign(static_cast<std::size_t>(config.activeListEntries),
                RobEntry{});
    const int wheel_size =
        std::max(512, 2 * (config.memCycles + config.l2HitCycles));
    wheel_.assign(static_cast<std::size_t>(wheel_size), {});
    done_.assign(doneMask_ + 1, 1);
}

void
OooCore::setRoundRobin(bool enabled)
{
    intSelect_.setRoundRobin(enabled);
    fpSelect_.setRoundRobin(enabled);
}

std::uint64_t
OooCore::robHeadSeq() const
{
    if (robCount_ == 0)
        return stream_.generated() + 1;
    return rob_[static_cast<std::size_t>(robHead_)].seq;
}

bool
OooCore::producerReady(std::uint64_t producer_seq) const
{
    if (producer_seq == 0 || producer_seq < robHeadSeq())
        return true; // committed (or no producer)
    return done_[producer_seq & doneMask_] != 0;
}

void
OooCore::schedule(const Completion& completion, int latency)
{
    if (latency < 1)
        latency = 1;
    const auto slot = (cycle_ + static_cast<Cycle>(latency)) %
                      wheel_.size();
    wheel_[slot].push_back(completion);
}

void
OooCore::doWriteback(ActivityRecord& activity)
{
    auto& events = wheel_[cycle_ % wheel_.size()];
    if (events.empty())
        return;
    // Result tags completing this cycle, broadcast together in one
    // CAM pass per queue.
    std::uint64_t tags[64];
    int num_tags = 0;
    for (const Completion& c : events) {
        rob_[static_cast<std::size_t>(c.robIdx)].completed = true;
        done_[c.seq & doneMask_] = 1;
        if (c.hasDest) {
            if (num_tags < 64)
                tags[num_tags++] = c.seq;
            // Result write: all integer copies, or the FP file.
            if (c.fpDest)
                ++activity.fpRegWrites;
            else
                intRegfile_.chargeWrite(activity);
        }
        if (c.mispredictedBranch) {
            // Redirect: frontend refills after the penalty.
            fetchBlocked_ = false;
            blockingBranchSeq_ = 0;
            fetchResumeCycle_ =
                cycle_ +
                static_cast<Cycle>(config_.branchRedirectPenalty);
        }
    }
    events.clear();
    // Clock-gated empty queues skip the broadcast entirely.
    if (intIq_.count() > 0)
        intIq_.broadcastMany(tags, num_tags, activity);
    if (fpIq_.count() > 0)
        fpIq_.broadcastMany(tags, num_tags, activity);
}

void
OooCore::doCommit(ActivityRecord& activity)
{
    for (int n = 0; n < config_.commitWidth && robCount_ > 0; ++n) {
        RobEntry& head = rob_[static_cast<std::size_t>(robHead_)];
        if (!head.completed)
            break;
        if (head.isMem)
            --lsqCount_;
        robHead_ = (robHead_ + 1) % config_.activeListEntries;
        --robCount_;
        ++committed_;
        ++activity.commits;
        ++activity.instructions;
    }
}

void
OooCore::doIssue(ActivityRecord& activity)
{
    int budget = config_.issueWidth;
    int mem_ports_left = config_.l1dPorts;

    // Alternate which queue selects first so FP workloads are not
    // starved by the integer queue's address traffic.
    const bool int_first = (cycle_ % 2) == 0;

    auto select_int = [&]() {
        if (budget <= 0 || intIq_.count() == 0)
            return;
        grantScratch_.clear();
        intSelect_.select(
            intIq_, cycle_, budget,
            [this](int fu) { return alus_.intAluAvailable(fu); },
            [&mem_ports_left](int, const IqEntry& e) {
                if (!AluPool::intAluExecutes(e.cls))
                    return false;
                if (isMemClass(e.cls)) {
                    if (mem_ports_left <= 0)
                        return false;
                    // A true return is always granted, so the
                    // port is consumed here.
                    --mem_ports_left;
                }
                return true;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            const IqEntry entry = intIq_.entryAtPhys(g.physIdx);
            intIq_.markIssued(g.physIdx, activity);
            --budget;
            ++activity.intAluOps[g.fu];
            intRegfile_.chargeReads(g.fu, entry.numSrcs, activity);

            int latency = 0;
            if (entry.cls == OpClass::Load) {
                const MemLevel level =
                    caches_.access(entry.lineAddr, activity);
                latency = caches_.latency(level);
                ++activity.lsqOps;
            } else if (entry.cls == OpClass::Store) {
                caches_.access(entry.lineAddr, activity);
                latency = config_.intAluLatency;
                ++activity.lsqOps;
            } else {
                latency = alus_.latencyOf(entry.cls);
            }

            const int rob_idx = static_cast<int>(
                (static_cast<std::uint64_t>(robHead_) +
                 (entry.seq - robHeadSeq())) %
                static_cast<std::uint64_t>(
                    config_.activeListEntries));
            schedule({entry.seq, rob_idx, entry.hasDest,
                      /*fpDest=*/false,
                      entry.cls == OpClass::Branch &&
                          entry.mispredicted},
                     latency);
        }
    };

    auto select_fp = [&]() {
        if (budget <= 0 || fpIq_.count() == 0)
            return;
        const int mul_fu = config_.numFpAdders;
        grantScratch_.clear();
        fpSelect_.select(
            fpIq_, cycle_, budget,
            [this, mul_fu](int fu) {
                if (fu == mul_fu)
                    return true; // multiplier is never turned off
                return alus_.fpAdderAvailable(fu);
            },
            [mul_fu](int fu, const IqEntry& e) {
                return fu == mul_fu ? e.cls == OpClass::FpMul
                                    : e.cls == OpClass::FpAdd;
            },
            grantScratch_);
        for (const Grant& g : grantScratch_) {
            const IqEntry entry = fpIq_.entryAtPhys(g.physIdx);
            fpIq_.markIssued(g.physIdx, activity);
            --budget;
            if (g.fu == mul_fu)
                ++activity.fpMulOps;
            else
                ++activity.fpAddOps[g.fu];
            activity.fpRegReads +=
                static_cast<std::uint64_t>(entry.numSrcs);

            const int latency = alus_.latencyOf(entry.cls);
            const int rob_idx = static_cast<int>(
                (static_cast<std::uint64_t>(robHead_) +
                 (entry.seq - robHeadSeq())) %
                static_cast<std::uint64_t>(
                    config_.activeListEntries));
            schedule({entry.seq, rob_idx, entry.hasDest,
                      /*fpDest=*/true, false},
                     latency);
        }
    };

    if (int_first) {
        select_int();
        select_fp();
    } else {
        select_fp();
        select_int();
    }
}

void
OooCore::doDispatch(ActivityRecord& activity)
{
    for (int n = 0; n < config_.issueWidth; ++n) {
        if (fetchBuffer_.empty())
            return;
        if (robCount_ >= config_.activeListEntries)
            return;
        const MicroOp& op = fetchBuffer_.front();
        const bool is_mem = isMemClass(op.cls);
        if (is_mem && lsqCount_ >= config_.lsqEntries)
            return;
        IssueQueue& iq = isFpClass(op.cls) ? fpIq_ : intIq_;
        if (!iq.canDispatch())
            return;

        IqEntry entry;
        entry.seq = op.seq;
        entry.cls = op.cls;
        entry.numSrcs = op.numSrcs;
        entry.hasDest = op.hasDest;
        entry.lineAddr = op.lineAddr;
        entry.mispredicted = op.mispredicted;
        for (int s = 0; s < op.numSrcs; ++s) {
            entry.src[s] = op.src[s];
            entry.srcReady[s] = producerReady(op.src[s]);
        }

        // Allocate the active-list slot before inserting so the
        // in-flight window check in producerReady stays correct.
        const int rob_idx =
            (robHead_ + robCount_) % config_.activeListEntries;
        rob_[static_cast<std::size_t>(rob_idx)] = {op.seq, false,
                                                   is_mem};
        ++robCount_;
        done_[op.seq & doneMask_] = 0;
        if (is_mem) {
            ++lsqCount_;
            ++activity.lsqOps;
        }
        if (op.cls == OpClass::Branch)
            ++activity.bpredAccesses;
        ++activity.renameOps;

        iq.dispatch(entry, activity);
        fetchBuffer_.pop_front();
    }
}

void
OooCore::setFetchInterval(int interval)
{
    if (interval < 1)
        fatal("fetch interval must be >= 1");
    fetchInterval_ = interval;
}

void
OooCore::doFetch(ActivityRecord& activity)
{
    if (fetchBlocked_ || cycle_ < fetchResumeCycle_)
        return;
    if (fetchInterval_ > 1 &&
        cycle_ % static_cast<Cycle>(fetchInterval_) != 0) {
        return; // thermally throttled
    }
    if (fetchBuffer_.size() >=
        static_cast<std::size_t>(3 * config_.fetchWidth)) {
        return; // fetch buffer full
    }
    ++activity.l1iAccesses;
    for (int n = 0; n < config_.fetchWidth; ++n) {
        MicroOp op = stream_.next();
        const bool blocks = op.cls == OpClass::Branch &&
                            op.mispredicted;
        fetchBuffer_.push_back(op);
        if (blocks) {
            // Fetch goes down the wrong path; stop supplying
            // correct-path work until the branch resolves.
            fetchBlocked_ = true;
            blockingBranchSeq_ = op.seq;
            return;
        }
    }
}

void
OooCore::tick(ActivityRecord& activity)
{
    doWriteback(activity);
    intIq_.compactStep(activity);
    fpIq_.compactStep(activity);
    doCommit(activity);
    doIssue(activity);
    doDispatch(activity);
    doFetch(activity);
    ++cycle_;
    ++activity.cycles;
}

void
OooCore::stallCycle(ActivityRecord& activity)
{
    stallCycles(1, activity);
}

void
OooCore::stallCycles(std::uint64_t n, ActivityRecord& activity)
{
    cycle_ += n;
    activity.cycles += n;
    activity.stallCycles += n;
}

} // namespace tempest
