#include "uarch/alu.hh"

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

AluPool::AluPool(const PipelineConfig& config)
    : numIntAlus_(config.numIntAlus),
      numFpAdders_(config.numFpAdders),
      intAluLatency_(config.intAluLatency),
      intMulLatency_(config.intMulLatency),
      fpAddLatency_(config.fpAddLatency),
      fpMulLatency_(config.fpMulLatency)
{
    config.validate();
}

bool
AluPool::intAluAvailable(int alu) const
{
    if (alu < 0 || alu >= numIntAlus_)
        panic("intAluAvailable: index out of range");
    return intAluOff_[alu] == 0;
}

bool
AluPool::fpAdderAvailable(int adder) const
{
    if (adder < 0 || adder >= numFpAdders_)
        panic("fpAdderAvailable: index out of range");
    return fpAdderOff_[adder] == 0;
}

void
AluPool::setIntAluOff(int alu, TurnoffReason reason, bool off)
{
    if (alu < 0 || alu >= numIntAlus_)
        panic("setIntAluOff: index out of range");
    const auto bit = static_cast<std::uint8_t>(reason);
    if (off)
        intAluOff_[alu] |= bit;
    else
        intAluOff_[alu] &= static_cast<std::uint8_t>(~bit);
}

void
AluPool::setFpAdderOff(int adder, TurnoffReason reason, bool off)
{
    if (adder < 0 || adder >= numFpAdders_)
        panic("setFpAdderOff: index out of range");
    const auto bit = static_cast<std::uint8_t>(reason);
    if (off)
        fpAdderOff_[adder] |= bit;
    else
        fpAdderOff_[adder] &= static_cast<std::uint8_t>(~bit);
}

int
AluPool::numIntAlusOff() const
{
    int n = 0;
    for (int i = 0; i < numIntAlus_; ++i)
        n += intAluOff_[i] != 0;
    return n;
}

int
AluPool::numFpAddersOff() const
{
    int n = 0;
    for (int i = 0; i < numFpAdders_; ++i)
        n += fpAdderOff_[i] != 0;
    return n;
}

bool
AluPool::allIntAlusOff() const
{
    return numIntAlusOff() == numIntAlus_;
}

bool
AluPool::allFpAddersOff() const
{
    return numFpAddersOff() == numFpAdders_;
}

bool
AluPool::intAluExecutes(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Branch:
        return true;
      default:
        return false;
    }
}

int
AluPool::latencyOf(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return intAluLatency_;
      case OpClass::IntMul: return intMulLatency_;
      case OpClass::FpAdd: return fpAddLatency_;
      case OpClass::FpMul: return fpMulLatency_;
      case OpClass::Branch: return intAluLatency_;
      case OpClass::Store: return intAluLatency_;
      case OpClass::Load:
        panic("load latency comes from the cache hierarchy");
      default:
        panic("latencyOf: invalid op class");
    }
}

void
AluPool::reset()
{
    for (auto& mask : intAluOff_)
        mask = 0;
    for (auto& mask : fpAdderOff_)
        mask = 0;
}

void
AluPool::saveState(StateWriter& w) const
{
    w.u32(static_cast<std::uint32_t>(kMaxIntAlus));
    for (const std::uint8_t mask : intAluOff_)
        w.u8(mask);
    w.u32(static_cast<std::uint32_t>(kMaxFpAdders));
    for (const std::uint8_t mask : fpAdderOff_)
        w.u8(mask);
}

void
AluPool::loadState(StateReader& r)
{
    if (r.u32() != static_cast<std::uint32_t>(kMaxIntAlus))
        fatal("checkpoint ALU pool mismatch: int ALU count");
    for (auto& mask : intAluOff_)
        mask = r.u8();
    if (r.u32() != static_cast<std::uint32_t>(kMaxFpAdders))
        fatal("checkpoint ALU pool mismatch: FP adder count");
    for (auto& mask : fpAdderOff_)
        mask = r.u8();
}

} // namespace tempest
