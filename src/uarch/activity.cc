#include "uarch/activity.hh"

#include "common/log.hh"

namespace tempest
{

void
PipelineConfig::validate() const
{
    if (fetchWidth < 1 || issueWidth < 1 || commitWidth < 1)
        fatal("pipeline widths must be >= 1");
    if (numIntAlus < 1 || numIntAlus > kMaxIntAlus)
        fatal("numIntAlus out of range [1, ", kMaxIntAlus, "]");
    if (numFpAdders < 1 || numFpAdders > kMaxFpAdders)
        fatal("numFpAdders out of range [1, ", kMaxFpAdders, "]");
    if (numIntRegfileCopies < 1 ||
        numIntRegfileCopies > kMaxRegfileCopies) {
        fatal("numIntRegfileCopies out of range");
    }
    if (numIntAlus % numIntRegfileCopies != 0)
        fatal("ALU count must divide evenly across regfile copies");
    if (intIqEntries < 2 || intIqEntries % 2 != 0)
        fatal("intIqEntries must be even and >= 2");
    if (fpIqEntries < 2 || fpIqEntries % 2 != 0)
        fatal("fpIqEntries must be even and >= 2");
    if (activeListEntries < issueWidth)
        fatal("active list smaller than issue width");
    if (lsqEntries < 1)
        fatal("lsqEntries must be >= 1");
    if (l1dPorts < 1)
        fatal("l1dPorts must be >= 1");
    if (frequencyHz <= 0.0)
        fatal("frequency must be positive");
}

void
ActivityRecord::add(const ActivityRecord& other)
{
    for (int q = 0; q < kNumIssueQueues; ++q) {
        for (int h = 0; h < 2; ++h) {
            iqEntryMoves[q][h] += other.iqEntryMoves[q][h];
            iqMuxSelects[q][h] += other.iqMuxSelects[q][h];
            iqLongCompactions[q][h] += other.iqLongCompactions[q][h];
            iqCounterOps[q][h] += other.iqCounterOps[q][h];
            iqOccupiedCycles[q][h] += other.iqOccupiedCycles[q][h];
            iqDispatchWrites[q][h] += other.iqDispatchWrites[q][h];
        }
        iqTagBroadcasts[q] += other.iqTagBroadcasts[q];
        iqPayloadAccesses[q] += other.iqPayloadAccesses[q];
        iqSelectAccesses[q] += other.iqSelectAccesses[q];
        iqClockGateCycles[q] += other.iqClockGateCycles[q];
    }
    for (int i = 0; i < kMaxIntAlus; ++i)
        intAluOps[i] += other.intAluOps[i];
    for (int i = 0; i < kMaxFpAdders; ++i)
        fpAddOps[i] += other.fpAddOps[i];
    fpMulOps += other.fpMulOps;
    for (int i = 0; i < kMaxRegfileCopies; ++i) {
        intRegReads[i] += other.intRegReads[i];
        intRegWrites[i] += other.intRegWrites[i];
    }
    fpRegReads += other.fpRegReads;
    fpRegWrites += other.fpRegWrites;
    l1iAccesses += other.l1iAccesses;
    l1dAccesses += other.l1dAccesses;
    l2Accesses += other.l2Accesses;
    bpredAccesses += other.bpredAccesses;
    renameOps += other.renameOps;
    lsqOps += other.lsqOps;
    commits += other.commits;
    cycles += other.cycles;
    stallCycles += other.stallCycles;
    instructions += other.instructions;
}

} // namespace tempest
