#include "uarch/activity.hh"

#include <type_traits>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

void
PipelineConfig::validate() const
{
    if (fetchWidth < 1 || issueWidth < 1 || commitWidth < 1)
        fatal("pipeline widths must be >= 1");
    if (numIntAlus < 1 || numIntAlus > kMaxIntAlus)
        fatal("numIntAlus out of range [1, ", kMaxIntAlus, "]");
    if (numFpAdders < 1 || numFpAdders > kMaxFpAdders)
        fatal("numFpAdders out of range [1, ", kMaxFpAdders, "]");
    if (numIntRegfileCopies < 1 ||
        numIntRegfileCopies > kMaxRegfileCopies) {
        fatal("numIntRegfileCopies out of range");
    }
    if (numIntAlus % numIntRegfileCopies != 0)
        fatal("ALU count must divide evenly across regfile copies");
    if (intIqEntries < 2 || intIqEntries % 2 != 0)
        fatal("intIqEntries must be even and >= 2");
    if (fpIqEntries < 2 || fpIqEntries % 2 != 0)
        fatal("fpIqEntries must be even and >= 2");
    if (activeListEntries < issueWidth)
        fatal("active list smaller than issue width");
    if (lsqEntries < 1)
        fatal("lsqEntries must be >= 1");
    if (l1dPorts < 1)
        fatal("l1dPorts must be >= 1");
    if (frequencyHz <= 0.0)
        fatal("frequency must be positive");
}

void
ActivityRecord::add(const ActivityRecord& other)
{
    // Every member is a std::uint64_t (or an array of them; the
    // static_asserts below keep that honest), so the interval drain
    // is one flat word-wise pass over the object representation
    // instead of a field-by-field walk.
    static_assert(std::is_trivially_copyable_v<ActivityRecord>);
    static_assert(sizeof(ActivityRecord) % sizeof(std::uint64_t) ==
                  0);
    auto* dst = reinterpret_cast<std::uint64_t*>(this);
    const auto* src =
        reinterpret_cast<const std::uint64_t*>(&other);
    constexpr std::size_t words =
        sizeof(ActivityRecord) / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < words; ++i)
        dst[i] += src[i];
}

void
saveActivity(StateWriter& w, const ActivityRecord& a)
{
    for (int q = 0; q < kNumIssueQueues; ++q) {
        for (int h = 0; h < 2; ++h) {
            w.u64(a.iqEntryMoves[q][h]);
            w.u64(a.iqMuxSelects[q][h]);
            w.u64(a.iqLongCompactions[q][h]);
            w.u64(a.iqCounterOps[q][h]);
            w.u64(a.iqOccupiedCycles[q][h]);
            w.u64(a.iqDispatchWrites[q][h]);
        }
        w.u64(a.iqTagBroadcasts[q]);
        w.u64(a.iqPayloadAccesses[q]);
        w.u64(a.iqSelectAccesses[q]);
        w.u64(a.iqClockGateCycles[q]);
    }
    for (int i = 0; i < kMaxIntAlus; ++i)
        w.u64(a.intAluOps[i]);
    for (int i = 0; i < kMaxFpAdders; ++i)
        w.u64(a.fpAddOps[i]);
    w.u64(a.fpMulOps);
    for (int i = 0; i < kMaxRegfileCopies; ++i) {
        w.u64(a.intRegReads[i]);
        w.u64(a.intRegWrites[i]);
    }
    w.u64(a.fpRegReads);
    w.u64(a.fpRegWrites);
    w.u64(a.l1iAccesses);
    w.u64(a.l1dAccesses);
    w.u64(a.l2Accesses);
    w.u64(a.bpredAccesses);
    w.u64(a.renameOps);
    w.u64(a.lsqOps);
    w.u64(a.commits);
    w.u64(a.cycles);
    w.u64(a.stallCycles);
    w.u64(a.instructions);
}

void
loadActivity(StateReader& r, ActivityRecord& a)
{
    for (int q = 0; q < kNumIssueQueues; ++q) {
        for (int h = 0; h < 2; ++h) {
            a.iqEntryMoves[q][h] = r.u64();
            a.iqMuxSelects[q][h] = r.u64();
            a.iqLongCompactions[q][h] = r.u64();
            a.iqCounterOps[q][h] = r.u64();
            a.iqOccupiedCycles[q][h] = r.u64();
            a.iqDispatchWrites[q][h] = r.u64();
        }
        a.iqTagBroadcasts[q] = r.u64();
        a.iqPayloadAccesses[q] = r.u64();
        a.iqSelectAccesses[q] = r.u64();
        a.iqClockGateCycles[q] = r.u64();
    }
    for (int i = 0; i < kMaxIntAlus; ++i)
        a.intAluOps[i] = r.u64();
    for (int i = 0; i < kMaxFpAdders; ++i)
        a.fpAddOps[i] = r.u64();
    a.fpMulOps = r.u64();
    for (int i = 0; i < kMaxRegfileCopies; ++i) {
        a.intRegReads[i] = r.u64();
        a.intRegWrites[i] = r.u64();
    }
    a.fpRegReads = r.u64();
    a.fpRegWrites = r.u64();
    a.l1iAccesses = r.u64();
    a.l1dAccesses = r.u64();
    a.l2Accesses = r.u64();
    a.bpredAccesses = r.u64();
    a.renameOps = r.u64();
    a.lsqOps = r.u64();
    a.commits = r.u64();
    a.cycles = r.u64();
    a.stallCycles = r.u64();
    a.instructions = r.u64();
}

} // namespace tempest
