#include "uarch/activity.hh"

#include <type_traits>

#include "common/log.hh"

namespace tempest
{

void
PipelineConfig::validate() const
{
    if (fetchWidth < 1 || issueWidth < 1 || commitWidth < 1)
        fatal("pipeline widths must be >= 1");
    if (numIntAlus < 1 || numIntAlus > kMaxIntAlus)
        fatal("numIntAlus out of range [1, ", kMaxIntAlus, "]");
    if (numFpAdders < 1 || numFpAdders > kMaxFpAdders)
        fatal("numFpAdders out of range [1, ", kMaxFpAdders, "]");
    if (numIntRegfileCopies < 1 ||
        numIntRegfileCopies > kMaxRegfileCopies) {
        fatal("numIntRegfileCopies out of range");
    }
    if (numIntAlus % numIntRegfileCopies != 0)
        fatal("ALU count must divide evenly across regfile copies");
    if (intIqEntries < 2 || intIqEntries % 2 != 0)
        fatal("intIqEntries must be even and >= 2");
    if (fpIqEntries < 2 || fpIqEntries % 2 != 0)
        fatal("fpIqEntries must be even and >= 2");
    if (activeListEntries < issueWidth)
        fatal("active list smaller than issue width");
    if (lsqEntries < 1)
        fatal("lsqEntries must be >= 1");
    if (l1dPorts < 1)
        fatal("l1dPorts must be >= 1");
    if (frequencyHz <= 0.0)
        fatal("frequency must be positive");
}

void
ActivityRecord::add(const ActivityRecord& other)
{
    // Every member is a std::uint64_t (or an array of them; the
    // static_asserts below keep that honest), so the interval drain
    // is one flat word-wise pass over the object representation
    // instead of a field-by-field walk.
    static_assert(std::is_trivially_copyable_v<ActivityRecord>);
    static_assert(sizeof(ActivityRecord) % sizeof(std::uint64_t) ==
                  0);
    auto* dst = reinterpret_cast<std::uint64_t*>(this);
    const auto* src =
        reinterpret_cast<const std::uint64_t*>(&other);
    constexpr std::size_t words =
        sizeof(ActivityRecord) / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < words; ++i)
        dst[i] += src[i];
}

} // namespace tempest
