/**
 * @file
 * Integer register-file copies and ALU-to-copy port mappings (§2.3
 * of the paper).
 *
 * Processors replicate the register file to supply read bandwidth;
 * each ALU is hard-wired to two read ports of one copy, so the
 * ALU→copy mapping decides which copy heats. The three mappings of
 * the paper's Figure 4 are implemented:
 *
 * - Priority: high-priority ALUs share a copy ({0,1,2}→copy 0).
 * - Balanced: priorities interleave across copies ({0,2,4}→copy 0).
 * - CompletelyBalanced: each ALU reads one operand from each copy
 *   (reference design; needs long wires, the paper does not use it).
 *
 * Writes broadcast to every copy.
 */

#ifndef TEMPEST_UARCH_REGFILE_HH
#define TEMPEST_UARCH_REGFILE_HH

#include <vector>

#include "uarch/activity.hh"
#include "uarch/pipeline_config.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** ALU-to-register-file-copy port mapping policies (Figure 4). */
enum class PortMapping
{
    Priority,           ///< {0,1,2}→copy 0, {3,4,5}→copy 1
    Balanced,           ///< {0,2,4}→copy 0, {1,3,5}→copy 1
    CompletelyBalanced  ///< one read port per copy per ALU
};

/** @return a printable policy name. */
const char* portMappingName(PortMapping mapping);

/**
 * The replicated integer register file.
 *
 * This class owns the mapping and the activity accounting; copy
 * turnoff decisions live in the DTM layer, which marks the mapped
 * ALUs busy (the paper's implementation of copy turnoff).
 */
class RegisterFile
{
  public:
    /**
     * @param num_copies number of identical copies (Table 2: 2)
     * @param num_alus integer ALUs wired to the copies
     * @param mapping initial port mapping
     */
    RegisterFile(int num_copies, int num_alus, PortMapping mapping);

    int numCopies() const { return numCopies_; }
    int numAlus() const { return numAlus_; }
    PortMapping mapping() const { return mapping_; }

    void
    setMapping(PortMapping mapping)
    {
        mapping_ = mapping;
        rebuildCopyTables();
    }

    /**
     * Copy serving reads for an ALU under Priority/Balanced mapping.
     * fatal() under CompletelyBalanced (reads split across copies).
     */
    int copyForAlu(int alu) const;

    /** ALUs whose read ports are wired to a copy (Priority or
     * Balanced; under CompletelyBalanced every ALU maps to every
     * copy). Precomputed per mapping; the DTM layer calls this in
     * its per-interval loops, so no allocation per call. */
    const std::vector<int>& alusOfCopy(int copy) const;

    /**
     * Charge read-port accesses for an instruction executing on
     * `alu` with `num_reads` register sources.
     */
    void chargeReads(int alu, int num_reads,
                     ActivityRecord& activity) const;

    /** Charge one result write (broadcast to all copies). */
    void chargeWrite(ActivityRecord& activity) const;

    /** Serialize the active port mapping. */
    void saveState(StateWriter& w) const;

    /** Restore the mapping (rebuilds the copy tables). */
    void loadState(StateReader& r);

  private:
    /** Recompute the copy→ALUs tables for the current mapping. */
    void rebuildCopyTables();

    int numCopies_;
    int numAlus_;
    PortMapping mapping_;
    // ckpt:skip(rebuilt by setMapping() from the restored mapping_)
    std::vector<std::vector<int>> alusOfCopy_;
};

} // namespace tempest

#endif // TEMPEST_UARCH_REGFILE_HH
