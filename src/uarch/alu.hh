/**
 * @file
 * Functional-unit pool: 6 integer ALUs, 4 FP adders, one FP
 * multiplier block, with per-copy thermal turnoff state.
 *
 * Turnoff is implemented exactly as the paper describes: a unit is
 * "marked busy" so its select tree grants nothing while it cools.
 * Two independent turnoff reasons compose — the unit itself
 * overheating (§2.2) and the register-file copy it reads from
 * cooling (§2.3) — so re-enabling one reason does not accidentally
 * clear the other.
 */

#ifndef TEMPEST_UARCH_ALU_HH
#define TEMPEST_UARCH_ALU_HH

#include <cstdint>

#include "uarch/pipeline_config.hh"
#include "workload/instruction.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Why a functional unit is currently masked busy. */
enum class TurnoffReason : std::uint8_t
{
    UnitThermal = 1,    ///< the unit itself crossed its threshold
    RegfileThermal = 2  ///< its register-file copy is cooling
};

/** Functional-unit classes managed by the pool. */
enum class FuKind { IntAlu, FpAdder, FpMul };

/** Pool of functional units with turnoff masks. */
class AluPool
{
  public:
    explicit AluPool(const PipelineConfig& config);

    int numIntAlus() const { return numIntAlus_; }
    int numFpAdders() const { return numFpAdders_; }

    /** @return true if an integer ALU may be granted work. */
    bool intAluAvailable(int alu) const;

    /** @return true if an FP adder may be granted work. */
    bool fpAdderAvailable(int adder) const;

    /** Set or clear one turnoff reason on an integer ALU. */
    void setIntAluOff(int alu, TurnoffReason reason, bool off);

    /** Set or clear one turnoff reason on an FP adder. */
    void setFpAdderOff(int adder, TurnoffReason reason, bool off);

    /** Number of integer ALUs currently masked (any reason). */
    int numIntAlusOff() const;

    /** Number of FP adders currently masked (any reason). */
    int numFpAddersOff() const;

    /** @return true if every integer ALU is masked. */
    bool allIntAlusOff() const;

    /** @return true if every FP adder is masked. */
    bool allFpAddersOff() const;

    /**
     * @return true if an integer ALU can execute the class. All 6
     * integer units handle arithmetic, multiplies, memory and
     * branches (Table 2's "6 integer ALUs includes arithmetic,
     * load/store, and branch units").
     */
    static bool intAluExecutes(OpClass cls);

    /** Execution latency of a class, from the pipeline config. */
    int latencyOf(OpClass cls) const;

    /** Clear all turnoff state. */
    void reset();

    /** Serialize the per-unit turnoff masks. */
    void saveState(StateWriter& w) const;

    /** Restore turnoff masks saved by saveState(). */
    void loadState(StateReader& r);

  private:
    int numIntAlus_;  // ckpt:skip(config, validated against the pipeline config)
    int numFpAdders_; // ckpt:skip(config, validated against the pipeline config)
    std::uint8_t intAluOff_[kMaxIntAlus] = {};
    std::uint8_t fpAdderOff_[kMaxFpAdders] = {};
    int intAluLatency_; // ckpt:skip(config, supplied by the restoring run)
    int intMulLatency_; // ckpt:skip(config, supplied by the restoring run)
    int fpAddLatency_;  // ckpt:skip(config, supplied by the restoring run)
    int fpMulLatency_;  // ckpt:skip(config, supplied by the restoring run)
};

} // namespace tempest

#endif // TEMPEST_UARCH_ALU_HH
