/**
 * @file
 * Gshare branch predictor.
 *
 * A real two-level predictor with a global history register XOR'd
 * into a table of 2-bit saturating counters. The default core runs
 * with profile-driven branch outcomes (the paper's techniques are
 * backend-only and the profile pins misprediction rates exactly);
 * GsharePredictor is the frontend substrate used by examples, tests,
 * and cores configured with real prediction.
 */

#ifndef TEMPEST_UARCH_BPRED_HH
#define TEMPEST_UARCH_BPRED_HH

#include <cstdint>
#include <vector>

namespace tempest
{

class StateWriter;
class StateReader;

/** Gshare predictor with 2-bit saturating counters. */
class GsharePredictor
{
  public:
    /** @param table_bits log2 of the pattern table size. */
    explicit GsharePredictor(int table_bits = 14);

    /** @return predicted direction for a branch at pc. */
    bool predict(std::uint64_t pc) const;

    /** Train with the actual outcome and update history. */
    void update(std::uint64_t pc, bool taken);

    /** Speculatively shift history (recovered via restoreHistory). */
    void speculate(bool taken);

    /** Snapshot of the global history register. */
    std::uint64_t history() const { return history_; }

    /** Restore history after a squash. */
    void restoreHistory(std::uint64_t history) { history_ = history; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** @return observed misprediction rate. */
    double mispredictRate() const;

    void resetStats();

    /** Serialize counters, history, and statistics. */
    void saveState(StateWriter& w) const;

    /** Restore state; the table geometry must match. */
    void loadState(StateReader& r);

  private:
    int index(std::uint64_t pc) const;

    int tableBits_;
    std::uint64_t mask_; // ckpt:skip(derived: (1 << tableBits_) - 1)
    std::vector<std::uint8_t> counters_; ///< 2-bit, init weakly taken
    std::uint64_t history_ = 0;
    std::uint64_t lookups_ = 0;
    mutable std::uint64_t predLookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace tempest

#endif // TEMPEST_UARCH_BPRED_HH
