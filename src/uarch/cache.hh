/**
 * @file
 * Set-associative cache model and the two-level data hierarchy.
 *
 * Tags are real: hit/miss behaviour emerges from the address stream
 * (the workload generator's locality pools), not from drawn flags.
 * Replacement is true LRU per set.
 */

#ifndef TEMPEST_UARCH_CACHE_HH
#define TEMPEST_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "uarch/pipeline_config.hh"
#include "workload/instruction.hh"

namespace tempest
{

struct ActivityRecord;
class StateWriter;
class StateReader;

/**
 * One level of set-associative cache with LRU replacement.
 *
 * Addresses are cache-line numbers (byte address / line size); the
 * cache is indexed by the low bits of the line number.
 */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param line_bytes line size
     */
    Cache(std::uint64_t size_bytes, int ways,
          std::uint64_t line_bytes = 64);

    /**
     * Look up a line; on miss the line is filled (allocate-on-miss).
     * @return true on hit.
     */
    bool access(std::uint64_t line_addr);

    /** Look up without filling on miss. */
    bool probe(std::uint64_t line_addr) const;

    /** Invalidate everything. */
    void flush();

    int sets() const { return sets_; }
    int ways() const { return ways_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** @return misses / accesses (0 if no accesses). */
    double missRate() const;

    void resetStats();

    /** Serialize tags, LRU clocks, and hit/miss statistics. */
    void saveState(StateWriter& w) const;

    /** Restore state; the cache geometry must match. */
    void loadState(StateReader& r);

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    int findWay(int set, std::uint64_t tag) const;

    int sets_;
    int ways_;
    std::vector<Way> lines_; ///< sets_ * ways_, row-major by set
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * The L1D + unified L2 data hierarchy (Table 2: 64KB 4-way 2-cycle
 * L1, 2MB 8-way L2, 250-cycle memory).
 */
class DataHierarchy
{
  public:
    explicit DataHierarchy(const PipelineConfig& config);

    /**
     * Access a line for a load or store: consults L1 then L2,
     * filling on miss, and charges cache activity.
     * @return the level that serviced the access.
     */
    MemLevel access(std::uint64_t line_addr, ActivityRecord& activity);

    /** @return load-to-use latency for a given service level. */
    int latency(MemLevel level) const;

    Cache& l1() { return l1_; }
    Cache& l2() { return l2_; }
    const Cache& l1() const { return l1_; }
    const Cache& l2() const { return l2_; }

    /** Serialize both levels. */
    void saveState(StateWriter& w) const;

    /** Restore both levels. */
    void loadState(StateReader& r);

  private:
    Cache l1_;
    Cache l2_;
    int l1HitCycles_; // ckpt:skip(config, supplied by the restoring run)
    int l2HitCycles_; // ckpt:skip(config, supplied by the restoring run)
    int memCycles_;   // ckpt:skip(config, supplied by the restoring run)
};

} // namespace tempest

#endif // TEMPEST_UARCH_CACHE_HH
