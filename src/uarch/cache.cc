#include "uarch/cache.hh"

#include "common/log.hh"
#include "common/types.hh"
#include "sim/checkpoint/stateio.hh"
#include "uarch/activity.hh"

namespace tempest
{

Cache::Cache(std::uint64_t size_bytes, int ways,
             std::uint64_t line_bytes)
    : ways_(ways)
{
    if (ways < 1)
        fatal("cache associativity must be >= 1");
    if (line_bytes == 0 || size_bytes % (line_bytes * ways) != 0)
        fatal("cache size must be a multiple of ways * line size");
    sets_ = static_cast<int>(size_bytes / (line_bytes * ways));
    if (sets_ < 1)
        fatal("cache must have at least one set");
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Way{});
}

int
Cache::findWay(int set, std::uint64_t tag) const
{
    const auto base = static_cast<std::size_t>(set) * ways_;
    for (int w = 0; w < ways_; ++w) {
        const Way& way = lines_[base + w];
        if (way.valid && way.tag == tag)
            return w;
    }
    return invalidIndex;
}

bool
Cache::access(std::uint64_t line_addr)
{
    ++accesses_;
    ++useClock_;
    const int set = static_cast<int>(line_addr %
                                     static_cast<std::uint64_t>(sets_));
    const std::uint64_t tag = line_addr /
                              static_cast<std::uint64_t>(sets_);
    const auto base = static_cast<std::size_t>(set) * ways_;

    const int hit_way = findWay(set, tag);
    if (hit_way != invalidIndex) {
        lines_[base + hit_way].lastUse = useClock_;
        return true;
    }

    ++misses_;
    // Fill: choose an invalid way, else the LRU way.
    int victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (int w = 0; w < ways_; ++w) {
        const Way& way = lines_[base + w];
        if (!way.valid) {
            victim = w;
            break;
        }
        if (way.lastUse < oldest) {
            oldest = way.lastUse;
            victim = w;
        }
    }
    Way& way = lines_[base + victim];
    way.valid = true;
    way.tag = tag;
    way.lastUse = useClock_;
    return false;
}

bool
Cache::probe(std::uint64_t line_addr) const
{
    const int set = static_cast<int>(line_addr %
                                     static_cast<std::uint64_t>(sets_));
    const std::uint64_t tag = line_addr /
                              static_cast<std::uint64_t>(sets_);
    return findWay(set, tag) != invalidIndex;
}

void
Cache::flush()
{
    for (auto& way : lines_)
        way.valid = false;
}

double
Cache::missRate() const
{
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

DataHierarchy::DataHierarchy(const PipelineConfig& config)
    : l1_(64 * 1024, 4),
      l2_(2 * 1024 * 1024, 8),
      l1HitCycles_(config.l1HitCycles),
      l2HitCycles_(config.l2HitCycles),
      memCycles_(config.memCycles)
{
}

MemLevel
DataHierarchy::access(std::uint64_t line_addr,
                      ActivityRecord& activity)
{
    ++activity.l1dAccesses;
    if (l1_.access(line_addr))
        return MemLevel::L1;
    ++activity.l2Accesses;
    if (l2_.access(line_addr))
        return MemLevel::L2;
    return MemLevel::Memory;
}

int
DataHierarchy::latency(MemLevel level) const
{
    switch (level) {
      case MemLevel::L1: return l1HitCycles_;
      case MemLevel::L2: return l1HitCycles_ + l2HitCycles_;
      case MemLevel::Memory: return memCycles_;
    }
    panic("unreachable memory level");
}

void
Cache::saveState(StateWriter& w) const
{
    w.i32(sets_);
    w.i32(ways_);
    w.u64(useClock_);
    w.u64(accesses_);
    w.u64(misses_);
    for (const Way& way : lines_) {
        w.u64(way.tag);
        w.u64(way.lastUse);
        w.boolean(way.valid);
    }
}

void
Cache::loadState(StateReader& r)
{
    const int sets = r.i32();
    const int ways = r.i32();
    if (sets != sets_ || ways != ways_) {
        fatal("checkpoint cache mismatch: saved ", sets, "x", ways,
              ", this cache is ", sets_, "x", ways_);
    }
    useClock_ = r.u64();
    accesses_ = r.u64();
    misses_ = r.u64();
    for (Way& way : lines_) {
        way.tag = r.u64();
        way.lastUse = r.u64();
        way.valid = r.boolean();
    }
}

void
DataHierarchy::saveState(StateWriter& w) const
{
    l1_.saveState(w);
    l2_.saveState(w);
}

void
DataHierarchy::loadState(StateReader& r)
{
    l1_.loadState(r);
    l2_.loadState(r);
}

} // namespace tempest
