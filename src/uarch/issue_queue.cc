#include "uarch/issue_queue.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

IssueQueue::IssueQueue(int num_entries, int issue_width,
                       QueueKind kind)
    : size_(num_entries), half_(num_entries / 2),
      words_((num_entries + 63) / 64), issueWidth_(issue_width),
      kind_(kind)
{
    if (num_entries < 2 || num_entries % 2 != 0)
        fatal("issue queue size must be even and >= 2");
    if (issue_width < 1)
        fatal("issue width must be >= 1");
    phys_.assign(static_cast<std::size_t>(num_entries), IqEntry{});
    ready_.assign(static_cast<std::size_t>(words_), 0);
    waiting_.assign(static_cast<std::size_t>(words_), 0);
}

const IqEntry&
IssueQueue::entryAtPhys(int phys) const
{
    if (phys < 0 || phys >= size_)
        panic("issue-queue physical index out of range");
    return phys_[static_cast<std::size_t>(phys)];
}

IqEntry&
IssueQueue::entryAtPhys(int phys)
{
    if (phys < 0 || phys >= size_)
        panic("issue-queue physical index out of range");
    return phys_[static_cast<std::size_t>(phys)];
}

int
IssueQueue::occupancyOfHalf(int half) const
{
    if (half != 0 && half != 1)
        panic("issue-queue half must be 0 or 1");
    return halfCount_[half];
}

void
IssueQueue::recomputeTail()
{
    tailLogical_ = 0;
    for (int l = size_ - 1; l >= 0; --l) {
        if (phys_[physOfLogical(l)].valid) {
            tailLogical_ = l + 1;
            break;
        }
    }
}

void
IssueQueue::rebuildReadyBits()
{
    std::fill(ready_.begin(), ready_.end(), 0);
    for (int p = 0; p < size_; ++p) {
        if (phys_[static_cast<std::size_t>(p)].ready())
            setReadyBit(logicalOfPhys(p));
    }
}

bool
IssueQueue::canDispatch() const
{
    // The tail is one past the highest occupied logical slot;
    // dispatch drives instructions only to the tail end, so holes
    // awaiting compaction can block dispatch even when count() is
    // below capacity.
    return tailLogical_ < size_;
}

void
IssueQueue::dispatch(const IqEntry& entry, ActivityRecord& activity)
{
    if (tailLogical_ >= size_)
        fatal("dispatch into a queue with no tail slot; check "
              "canDispatch() first");
    const int phys = physOfLogical(tailLogical_);
    IqEntry& slot = phys_[phys];
    slot = entry;
    slot.valid = true;
    slot.pendingInvalid = false;
    if (slot.ready())
        setReadyBit(tailLogical_);
    else
        setWaitingBit(phys);
    ++tailLogical_;
    ++count_;
    ++halfCount_[halfOfPhys(phys)];
    // Payload RAM write plus the entry write itself, charged to
    // the physical half that receives the dispatch.
    ++activity.iqPayloadAccesses[queueIndex()];
    ++activity.iqDispatchWrites[queueIndex()][halfOfPhys(phys)];
}

void
IssueQueue::broadcast(std::uint64_t producer_seq,
                      ActivityRecord& activity)
{
    broadcastMany(&producer_seq, 1, activity);
}

void
IssueQueue::broadcastMany(const std::uint64_t* producer_seqs, int n,
                          ActivityRecord& activity)
{
    if (n <= 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n);
    for (int w = 0; w < words_; ++w) {
        std::uint64_t m = waiting_[static_cast<std::size_t>(w)];
        while (m != 0) {
            const int phys = w * 64 + std::countr_zero(m);
            m &= m - 1;
            IqEntry& entry = phys_[static_cast<std::size_t>(phys)];
            bool still_waiting = false;
            for (int s = 0; s < entry.numSrcs; ++s) {
                if (entry.srcReady[s])
                    continue;
                const std::uint64_t want = entry.src[s];
                bool matched = false;
                for (int t = 0; t < n; ++t)
                    matched = matched || producer_seqs[t] == want;
                if (matched)
                    entry.srcReady[s] = true;
                else
                    still_waiting = true;
            }
            if (!still_waiting) {
                waiting_[static_cast<std::size_t>(w)] &=
                    ~(1ULL << (phys & 63));
                setReadyBit(logicalOfPhys(phys));
            }
        }
    }
}

void
IssueQueue::wakeupScoreboard(const std::uint64_t* done_bits,
                             std::uint64_t mask, int n_tags,
                             ActivityRecord& activity)
{
    if (n_tags <= 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n_tags);
    // Check each watched source against the completed-producer bit
    // ring; entries that became fully ready move from the waiting
    // bitmap to the (logical-order) ready bitmap.
    for (int w = 0; w < words_; ++w) {
        std::uint64_t m = waiting_[static_cast<std::size_t>(w)];
        while (m != 0) {
            const int phys = w * 64 + std::countr_zero(m);
            m &= m - 1;
            IqEntry& entry = phys_[static_cast<std::size_t>(phys)];
            bool still_waiting = false;
            for (int s = 0; s < entry.numSrcs; ++s) {
                if (entry.srcReady[s])
                    continue;
                const std::uint64_t idx = entry.src[s] & mask;
                if ((done_bits[idx >> 6] >> (idx & 63)) & 1)
                    entry.srcReady[s] = true;
                else
                    still_waiting = true;
            }
            if (!still_waiting) {
                waiting_[static_cast<std::size_t>(w)] &=
                    ~(1ULL << (phys & 63));
                setReadyBit(logicalOfPhys(phys));
            }
        }
    }
}

void
IssueQueue::markIssued(int phys_idx, ActivityRecord& activity)
{
    IqEntry& entry = entryAtPhys(phys_idx);
    if (!entry.valid || entry.pendingInvalid)
        panic("markIssued on an empty or already-issued entry");
    entry.pendingInvalid = true;
    ++pendingInvalidCount_;
    clearReadyBit(logicalOfPhys(phys_idx));
    const int q = queueIndex();
    // Payload RAM read + select-network access per issue.
    ++activity.iqPayloadAccesses[q];
    ++activity.iqSelectAccesses[q];
}

void
IssueQueue::compactStep(ActivityRecord& activity)
{
    const int q = queueIndex();

    // Clock-gating control logic runs every cycle.
    ++activity.iqClockGateCycles[q];

    // Early out when there is nothing to compact: no entries were
    // issued last cycle and the occupied region is hole-free
    // (tail == valid count). The full pass below would then only
    // rebuild the ready/waiting bitmaps with identical contents —
    // they are kept consistent incrementally by dispatch(),
    // markIssued() and wakeupScoreboard() instead. Occupancy
    // accounting still runs: the valid entries burn leakage
    // whether or not anything moves.
    if (pendingInvalidCount_ == 0 && tailLogical_ == count_) {
        activity.iqOccupiedCycles[q][0] +=
            static_cast<std::uint64_t>(halfCount_[0]);
        activity.iqOccupiedCycles[q][1] +=
            static_cast<std::uint64_t>(halfCount_[1]);
        return;
    }

    // One pass in logical (priority) order: convert last cycle's
    // issues into holes, then shift valid entries toward the head
    // by the number of holes below them, at most issueWidth per
    // cycle. Gaps-below is nondecreasing in logical order, so the
    // in-place ascending application is collision-free and
    // order-preserving. The ready/waiting bitmaps move
    // incrementally with the entries: each valid entry holds
    // exactly one bit (ready at its logical position, or waiting
    // at its physical slot), maintained by dispatch/wakeup/issue,
    // so a move relocates that one bit and unmoved entries touch
    // neither map.
    int gaps = 0;
    int last_valid = -1;
    for (int l = 0; l < tailLogical_; ++l) {
        const int p = physOfLogical(l);
        IqEntry& e = phys_[static_cast<std::size_t>(p)];
        if (!e.valid) {
            ++gaps;
            continue;
        }
        if (e.pendingInvalid) {
            // The paper's one-cycle replay window: issued last
            // cycle, becomes a hole now. markIssued() already
            // cleared the ready bit (issued entries were ready,
            // so no waiting bit exists either).
            e.valid = false;
            e.pendingInvalid = false;
            --count_;
            --halfCount_[halfOfPhys(p)];
            ++gaps;
            continue;
        }
        if (gaps == 0) {
            last_valid = l;
            continue;
        }
        const int shift = std::min(gaps, issueWidth_);
        const int dst_l = l - shift;
        const int dst_p = physOfLogical(dst_l);
        const int src_half = halfOfPhys(p);
        const int dst_half = halfOfPhys(dst_p);

        // Compaction moves down in physical space; a physical
        // *increase* means the move wrapped around the queue
        // ends (possible only in toggled mode) over the long
        // wires.
        const bool wrapped = dst_p > p;
        if (wrapped)
            ++activity.iqLongCompactions[q][src_half];
        else
            ++activity.iqEntryMoves[q][src_half];
        // The receiving entry drives its cross-queue mux
        // selects; the invalids-counter stages activate for
        // participating entries (clock-gated otherwise).
        ++activity.iqMuxSelects[q][dst_half];
        ++activity.iqCounterOps[q][src_half];

        phys_[static_cast<std::size_t>(dst_p)] = e;
        e.valid = false;
        e.pendingInvalid = false;
        --halfCount_[src_half];
        ++halfCount_[dst_half];
        if (testReadyBit(l)) {
            clearReadyBit(l);
            setReadyBit(dst_l);
        } else {
            clearWaitingBit(p);
            setWaitingBit(dst_p);
        }
        last_valid = dst_l;
    }
    tailLogical_ = last_valid + 1;
    // Every pending invalid sat below the old tail, so the pass
    // converted all of them.
    pendingInvalidCount_ = 0;

    // Idle/leakage accounting: valid entry-cycles per half.
    activity.iqOccupiedCycles[q][0] +=
        static_cast<std::uint64_t>(halfCount_[0]);
    activity.iqOccupiedCycles[q][1] +=
        static_cast<std::uint64_t>(halfCount_[1]);
}

void
IssueQueue::toggleMode()
{
    mode_ = mode_ == CompactionMode::Conventional
                ? CompactionMode::Toggled
                : CompactionMode::Conventional;
    ++toggleCount_;
    // Entries stay in their physical slots; logical positions (and
    // hence the tail and the logical-order ready bitmap) are
    // re-derived under the new mapping. The waiting bitmap is
    // physically indexed and unaffected.
    recomputeTail();
    rebuildReadyBits();
}

void
IssueQueue::clear()
{
    for (auto& entry : phys_)
        entry = IqEntry{};
    count_ = 0;
    halfCount_[0] = halfCount_[1] = 0;
    tailLogical_ = 0;
    pendingInvalidCount_ = 0;
    std::fill(ready_.begin(), ready_.end(), 0);
    std::fill(waiting_.begin(), waiting_.end(), 0);
}

void
IssueQueue::saveState(StateWriter& w) const
{
    w.u32(static_cast<std::uint32_t>(size_));
    w.u8(static_cast<std::uint8_t>(kind_));
    w.u8(mode_ == CompactionMode::Toggled ? 1 : 0);
    w.i32(count_);
    w.u64(toggleCount_);
    w.i32(tailLogical_);
    w.i32(halfCount_[0]);
    w.i32(halfCount_[1]);
    w.i32(pendingInvalidCount_);
    for (const IqEntry& e : phys_) {
        w.boolean(e.valid);
        w.boolean(e.pendingInvalid);
        w.u64(e.seq);
        w.u8(static_cast<std::uint8_t>(e.cls));
        w.i32(e.numSrcs);
        w.u64(e.src[0]);
        w.u64(e.src[1]);
        w.boolean(e.srcReady[0]);
        w.boolean(e.srcReady[1]);
        w.boolean(e.hasDest);
        w.u64(e.lineAddr);
        w.boolean(e.mispredicted);
    }
    for (int i = 0; i < words_; ++i)
        w.u64(ready_[static_cast<std::size_t>(i)]);
    for (int i = 0; i < words_; ++i)
        w.u64(waiting_[static_cast<std::size_t>(i)]);
}

void
IssueQueue::loadState(StateReader& r)
{
    const auto size = r.u32();
    const auto kind = r.u8();
    if (static_cast<int>(size) != size_ ||
        kind != static_cast<std::uint8_t>(kind_)) {
        fatal("checkpoint issue queue mismatch: saved size ", size,
              " kind ", static_cast<int>(kind), ", this queue size ",
              size_, " kind ", queueIndex());
    }
    mode_ = r.u8() ? CompactionMode::Toggled
                   : CompactionMode::Conventional;
    count_ = r.i32();
    toggleCount_ = r.u64();
    tailLogical_ = r.i32();
    halfCount_[0] = r.i32();
    halfCount_[1] = r.i32();
    pendingInvalidCount_ = r.i32();
    for (IqEntry& e : phys_) {
        e.valid = r.boolean();
        e.pendingInvalid = r.boolean();
        e.seq = r.u64();
        e.cls = static_cast<OpClass>(r.u8());
        e.numSrcs = r.i32();
        e.src[0] = r.u64();
        e.src[1] = r.u64();
        e.srcReady[0] = r.boolean();
        e.srcReady[1] = r.boolean();
        e.hasDest = r.boolean();
        e.lineAddr = r.u64();
        e.mispredicted = r.boolean();
    }
    for (int i = 0; i < words_; ++i)
        ready_[static_cast<std::size_t>(i)] = r.u64();
    for (int i = 0; i < words_; ++i)
        waiting_[static_cast<std::size_t>(i)] = r.u64();
}

} // namespace tempest
