#include "uarch/issue_queue.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

IssueQueue::IssueQueue(int num_entries, int issue_width,
                       QueueKind kind, Arena* arena)
    : size_(num_entries), half_(num_entries / 2),
      words_((num_entries + 63) / 64), issueWidth_(issue_width),
      kind_(kind), ownArena_(4096)
{
    if (num_entries < 2 || num_entries % 2 != 0)
        fatal("issue queue size must be even and >= 2");
    if (num_entries > kWatchSlots)
        fatal("issue queue size exceeds the watch-index capacity");
    if (issue_width < 1)
        fatal("issue width must be >= 1");
    Arena& a = arena != nullptr ? *arena : ownArena_;
    const auto n = static_cast<std::size_t>(size_);
    const auto w = static_cast<std::size_t>(words_);
    seq_ = a.alloc<std::uint64_t>(n);
    src0_ = a.alloc<std::uint64_t>(n);
    src1_ = a.alloc<std::uint64_t>(n);
    lineAddr_ = a.alloc<std::uint64_t>(n);
    cls_ = a.alloc<std::uint8_t>(n);
    numSrcs_ = a.alloc<std::uint8_t>(n);
    validBits_ = a.alloc<std::uint64_t>(w);
    pendingBits_ = a.alloc<std::uint64_t>(w);
    hasDestBits_ = a.alloc<std::uint64_t>(w);
    mispredBits_ = a.alloc<std::uint64_t>(w);
    needsBits_[0] = a.alloc<std::uint64_t>(w);
    needsBits_[1] = a.alloc<std::uint64_t>(w);
    ready_ = a.alloc<std::uint64_t>(w);
    watchHead_ = a.alloc<std::int16_t>(
        static_cast<std::size_t>(kWatchSlots));
    nodeNext_ = a.alloc<std::int16_t>(2 * n);
    watchSeq_ = a.alloc<std::uint64_t>(2 * n);
    watchK_ = a.alloc<std::uint8_t>(2 * n);
    rebuildWatch();
}

IqEntry
IssueQueue::materialize(int phys) const
{
    IqEntry e;
    e.valid = testBit(validBits_, phys);
    e.pendingInvalid = testBit(pendingBits_, phys);
    e.seq = seq_[phys];
    e.cls = static_cast<OpClass>(cls_[phys]);
    e.numSrcs = numSrcs_[phys];
    e.src[0] = src0_[phys];
    e.src[1] = src1_[phys];
    e.srcReady[0] = !testBit(needsBits_[0], phys);
    e.srcReady[1] = !testBit(needsBits_[1], phys);
    e.hasDest = testBit(hasDestBits_, phys);
    e.lineAddr = lineAddr_[phys];
    e.mispredicted = testBit(mispredBits_, phys);
    return e;
}

IqEntry
IssueQueue::entryAtPhys(int phys) const
{
    if (phys < 0 || phys >= size_)
        panic("issue-queue physical index out of range");
    return materialize(phys);
}

int
IssueQueue::occupancyOfHalf(int half) const
{
    if (half != 0 && half != 1)
        panic("issue-queue half must be 0 or 1");
    return halfCount_[half];
}

void
IssueQueue::recomputeTail()
{
    tailLogical_ = 0;
    for (int l = size_ - 1; l >= 0; --l) {
        if (testBit(validBits_, physOfLogical(l))) {
            tailLogical_ = l + 1;
            break;
        }
    }
}

void
IssueQueue::rebuildReadyBits()
{
    std::memset(ready_, 0,
                static_cast<std::size_t>(words_) * 8);
    for (int p = 0; p < size_; ++p) {
        if (slotReady(p))
            setReadyBit(logicalOfPhys(p));
    }
}

bool
IssueQueue::canDispatch() const
{
    // The tail is one past the highest occupied logical slot;
    // dispatch drives instructions only to the tail end, so holes
    // awaiting compaction can block dispatch even when count() is
    // below capacity.
    return tailLogical_ < size_;
}

void
IssueQueue::dispatch(const IqEntry& entry, ActivityRecord& activity)
{
    if (tailLogical_ >= size_)
        fatal("dispatch into a queue with no tail slot; check "
              "canDispatch() first");
    const int phys = physOfLogical(tailLogical_);
    seq_[phys] = entry.seq;
    cls_[phys] = static_cast<std::uint8_t>(entry.cls);
    numSrcs_[phys] = static_cast<std::uint8_t>(entry.numSrcs);
    src0_[phys] = entry.src[0];
    src1_[phys] = entry.src[1];
    lineAddr_[phys] = entry.lineAddr;
    setBit(validBits_, phys);
    clearBit(pendingBits_, phys);
    if (entry.hasDest)
        setBit(hasDestBits_, phys);
    else
        clearBit(hasDestBits_, phys);
    if (entry.mispredicted)
        setBit(mispredBits_, phys);
    else
        clearBit(mispredBits_, phys);
    const bool waits0 = entry.numSrcs > 0 && !entry.srcReady[0];
    const bool waits1 = entry.numSrcs > 1 && !entry.srcReady[1];
    if (waits0) {
        setBit(needsBits_[0], phys);
        watchAdd(entry.seq, 0, entry.src[0]);
    } else {
        clearBit(needsBits_[0], phys);
    }
    if (waits1) {
        setBit(needsBits_[1], phys);
        watchAdd(entry.seq, 1, entry.src[1]);
    } else {
        clearBit(needsBits_[1], phys);
    }
    if (!waits0 && !waits1)
        setReadyBit(tailLogical_);
    ++tailLogical_;
    ++count_;
    ++halfCount_[halfOfPhys(phys)];
    // Payload RAM write plus the entry write itself, charged to
    // the physical half that receives the dispatch.
    ++activity.iqPayloadAccesses[queueIndex()];
    ++activity.iqDispatchWrites[queueIndex()][halfOfPhys(phys)];
}

void
IssueQueue::broadcast(std::uint64_t producer_seq,
                      ActivityRecord& activity)
{
    broadcastMany(&producer_seq, 1, activity);
}

void
IssueQueue::broadcastMany(const std::uint64_t* producer_seqs, int n,
                          ActivityRecord& activity)
{
    if (n <= 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n);
    for (int t = 0; t < n; ++t)
        wakeMatching(producer_seqs[t]);
}

int
IssueQueue::physBySeq(std::uint64_t seq, int k) const
{
    // A waiting entry is a set bit in needsBits_[k]; match on seq.
    // No position-derived shortcut is safe here: a mode toggle
    // rotates logical order without moving entries, so seq_ is not
    // sorted along logical positions after one.
    for (int w = 0; w < words_; ++w) {
        std::uint64_t bits = needsBits_[k][w];
        while (bits != 0) {
            const int phys =
                w * 64 + std::countr_zero(bits);
            bits &= bits - 1;
            if (seq_[phys] == seq)
                return phys;
        }
    }
    return -1;
}

void
IssueQueue::wakeMatching(std::uint64_t producer_seq)
{
    const auto pslot =
        static_cast<std::size_t>(producer_seq) & (kWatchSlots - 1);
    std::int16_t node = watchHead_[pslot];
    if (node < 0)
        return;
    // Pop every node on this producer slot's chain; nodes whose
    // full tag does not match (slot collision between distinct
    // seqs) are re-linked onto the rebuilt chain. Chain order is
    // irrelevant — the ready/waiting maps are sets.
    std::int16_t keep = -1;
    while (node >= 0) {
        const std::int16_t nxt = nodeNext_[node];
        const int k = watchK_[node];
        const int phys = physBySeq(watchSeq_[node], k);
        const bool waiting = phys >= 0;
        if (waiting &&
            (k ? src1_[phys] : src0_[phys]) == producer_seq) {
            clearBit(needsBits_[k], phys);
            nodeNext_[node] = nodeFreeHead_;
            nodeFreeHead_ = node;
            if (!testBit(needsBits_[k ^ 1], phys))
                setReadyBit(logicalOfPhys(phys));
        } else if (!waiting) {
            // Stale node (the entry left the queue, or its needs
            // bit was cleared by a path that bypassed the index):
            // reclaim it.
            nodeNext_[node] = nodeFreeHead_;
            nodeFreeHead_ = node;
        } else {
            nodeNext_[node] = keep;
            keep = node;
        }
        node = nxt;
    }
    watchHead_[pslot] = keep;
}

void
IssueQueue::chargeWakeup(int n_tags, ActivityRecord& activity)
{
    // Clock-gated when nothing is in the queue: an empty queue's
    // broadcast drivers never fire.
    if (n_tags <= 0 || count_ == 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n_tags);
}

void
IssueQueue::watchAdd(std::uint64_t consumer_seq, int k,
                     std::uint64_t producer_seq)
{
    const std::int16_t node = nodeFreeHead_;
    if (node < 0)
        panic("issue-queue watch node pool exhausted");
    nodeFreeHead_ = nodeNext_[node];
    watchSeq_[node] = consumer_seq;
    watchK_[node] = static_cast<std::uint8_t>(k);
    const auto pslot =
        static_cast<std::size_t>(producer_seq) & (kWatchSlots - 1);
    nodeNext_[node] = watchHead_[pslot];
    watchHead_[pslot] = node;
}

void
IssueQueue::rebuildWatch()
{
    std::memset(watchHead_, 0xff,
                static_cast<std::size_t>(kWatchSlots) *
                    sizeof(std::int16_t));
    const int num_nodes = 2 * size_;
    for (int j = 0; j < num_nodes; ++j) {
        nodeNext_[j] = static_cast<std::int16_t>(
            j + 1 < num_nodes ? j + 1 : -1);
    }
    nodeFreeHead_ = 0;
    for (int w = 0; w < words_; ++w) {
        std::uint64_t m = needsBits_[0][w] | needsBits_[1][w];
        while (m != 0) {
            const int phys = w * 64 + std::countr_zero(m);
            m &= m - 1;
            if (testBit(needsBits_[0], phys))
                watchAdd(seq_[phys], 0, src0_[phys]);
            if (testBit(needsBits_[1], phys))
                watchAdd(seq_[phys], 1, src1_[phys]);
        }
    }
}

void
IssueQueue::markIssued(int phys_idx, ActivityRecord& activity)
{
    if (phys_idx < 0 || phys_idx >= size_)
        panic("issue-queue physical index out of range");
    if (!testBit(validBits_, phys_idx) ||
        testBit(pendingBits_, phys_idx))
        panic("markIssued on an empty or already-issued entry");
    setBit(pendingBits_, phys_idx);
    ++pendingInvalidCount_;
    clearReadyBit(logicalOfPhys(phys_idx));
    const int q = queueIndex();
    // Payload RAM read + select-network access per issue.
    ++activity.iqPayloadAccesses[q];
    ++activity.iqSelectAccesses[q];
}

void
IssueQueue::compactStep(ActivityRecord& activity)
{
    compactStepImpl(activity, false);
}

void
IssueQueue::compactStepImpl(ActivityRecord& activity,
                            bool force_generic)
{
    const int q = queueIndex();

    // Clock-gating control logic runs every cycle.
    ++activity.iqClockGateCycles[q];

    // Early out when there is nothing to compact: no entries were
    // issued last cycle and the occupied region is hole-free
    // (tail == valid count). The full pass below would then only
    // rebuild the ready/waiting bitmaps with identical contents —
    // they are kept consistent incrementally by dispatch(),
    // markIssued() and wakeMatching() instead. Occupancy
    // accounting still runs: the valid entries burn leakage
    // whether or not anything moves.
    if (pendingInvalidCount_ != 0 || tailLogical_ != count_) {
        if (words_ == 1 && !force_generic)
            compactWordPass(activity);
        else
            compactGenericPass(activity);
    }

    // Idle/leakage accounting: valid entry-cycles per half.
    activity.iqOccupiedCycles[q][0] +=
        static_cast<std::uint64_t>(halfCount_[0]);
    activity.iqOccupiedCycles[q][1] +=
        static_cast<std::uint64_t>(halfCount_[1]);
}

void
IssueQueue::compactWordPass(ActivityRecord& activity)
{
    const int q = queueIndex();
    std::uint64_t valid = validBits_[0];
    std::uint64_t ready = ready_[0];
    std::uint64_t has_dest = hasDestBits_[0];
    std::uint64_t mispred = mispredBits_[0];
    std::uint64_t needs0 = needsBits_[0][0];
    std::uint64_t needs1 = needsBits_[1][0];

    // The paper's one-cycle replay window: last cycle's issues
    // become holes, dropped from the valid map in bulk.
    // markIssued() already removed their ready bits, and issued
    // entries hold no needs bits; their stale hasDest/mispred
    // bits are dead until the slot is rewritten.
    const std::uint64_t pend = pendingBits_[0];
    if (pend != 0) {
        valid &= ~pend;
        const int n0 = std::popcount(pend & mask64(half_));
        const int n1 = std::popcount(pend) - n0;
        count_ -= n0 + n1;
        halfCount_[0] -= n0;
        halfCount_[1] -= n1;
        pendingBits_[0] = 0;
    }
    pendingInvalidCount_ = 0;

    // Valid map in logical (priority) order; in toggled mode the
    // physical slots are the logical positions rotated by half_.
    std::uint64_t log_valid = valid;
    if (mode_ == CompactionMode::Toggled)
        log_valid = ((valid >> half_) |
                     (valid << (size_ - half_))) &
                    mask64(size_);
    const std::uint64_t holes = ~log_valid & mask64(tailLogical_);
    if (holes == 0) {
        validBits_[0] = valid;
        return;
    }

    // The prefix below the first hole stays put; every maximal run
    // of valid entries above it shifts down by one constant amount
    // (min(gaps below, issueWidth)), so each run moves with one
    // memmove per field array and one mask shift per bitmap.
    // Gaps-below is nondecreasing in logical order, so destination
    // ranges never collide with unprocessed sources (the same
    // argument that makes the per-entry reference pass in-place
    // safe).
    int last_valid = -1;
    const int first_hole = std::countr_zero(holes);
    if (first_hole > 0)
        last_valid = first_hole - 1;
    std::uint64_t runs = log_valid & mask64(tailLogical_) &
                         ~mask64(first_hole);
    while (runs != 0) {
        const int a = std::countr_zero(runs);
        const int len = std::countr_zero(~(runs >> a));
        runs &= ~(mask64(len) << a);

        const int gaps = std::popcount(holes & mask64(a));
        const int shift = std::min(gaps, issueWidth_);
        const int dst_a = a - shift;

        // Ready bits ride in logical order: slide the run's slice
        // down in one move (clear both ranges, then deposit —
        // holes hold no ready bits, so nothing real is lost).
        const std::uint64_t lm = mask64(len);
        const std::uint64_t rbits = (ready >> a) & lm;
        ready &= ~((lm << a) | (lm << dst_a));
        ready |= rbits << dst_a;

        // Physically the run is contiguous except where the source
        // or destination mapping crosses the rotation seam
        // (toggled mode): split there, then move each contiguous
        // segment. A segment whose destination wraps around the
        // queue ends travels the long wires.
        int x = a;
        const int b = a + len;
        while (x < b) {
            int y = b;
            if (mode_ == CompactionMode::Toggled) {
                if (x < half_)
                    y = std::min(y, half_);
                else if (x < half_ + shift)
                    y = std::min(y, half_ + shift);
            }
            const int seg = y - x;
            const int pa = physOfLogical(x);
            const int qa = physOfLogical(x - shift);
            const bool wrapped = qa > pa;

            const auto src = static_cast<std::size_t>(pa);
            const auto dst = static_cast<std::size_t>(qa);
            const auto cnt = static_cast<std::size_t>(seg);
            std::memmove(seq_ + dst, seq_ + src, cnt * 8);
            std::memmove(src0_ + dst, src0_ + src, cnt * 8);
            std::memmove(src1_ + dst, src1_ + src, cnt * 8);
            std::memmove(lineAddr_ + dst, lineAddr_ + src,
                         cnt * 8);
            std::memmove(cls_ + dst, cls_ + src, cnt);
            std::memmove(numSrcs_ + dst, numSrcs_ + src, cnt);

            const std::uint64_t sm = mask64(seg);
            valid = (valid & ~(sm << pa)) | (sm << qa);
            const auto move_range = [&](std::uint64_t& map) {
                const std::uint64_t bits = (map >> pa) & sm;
                map &= ~((sm << pa) | (sm << qa));
                map |= bits << qa;
            };
            move_range(has_dest);
            move_range(mispred);
            move_range(needs0);
            move_range(needs1);

            // Per-entry charges, aggregated per physical half by
            // splitting the contiguous src/dst ranges at half_.
            const int src_h0 =
                std::max(0, std::min(pa + seg, half_) - pa);
            const int src_h1 = seg - src_h0;
            const int dst_h0 =
                std::max(0, std::min(qa + seg, half_) - qa);
            const int dst_h1 = seg - dst_h0;
            if (wrapped) {
                activity.iqLongCompactions[q][0] +=
                    static_cast<std::uint64_t>(src_h0);
                activity.iqLongCompactions[q][1] +=
                    static_cast<std::uint64_t>(src_h1);
            } else {
                activity.iqEntryMoves[q][0] +=
                    static_cast<std::uint64_t>(src_h0);
                activity.iqEntryMoves[q][1] +=
                    static_cast<std::uint64_t>(src_h1);
            }
            activity.iqMuxSelects[q][0] +=
                static_cast<std::uint64_t>(dst_h0);
            activity.iqMuxSelects[q][1] +=
                static_cast<std::uint64_t>(dst_h1);
            activity.iqCounterOps[q][0] +=
                static_cast<std::uint64_t>(src_h0);
            activity.iqCounterOps[q][1] +=
                static_cast<std::uint64_t>(src_h1);
            halfCount_[0] += dst_h0 - src_h0;
            halfCount_[1] += dst_h1 - src_h1;
            x = y;
        }
        last_valid = dst_a + len - 1;
    }
    tailLogical_ = last_valid + 1;
    validBits_[0] = valid;
    ready_[0] = ready;
    hasDestBits_[0] = has_dest;
    mispredBits_[0] = mispred;
    needsBits_[0][0] = needs0;
    needsBits_[1][0] = needs1;
}

void
IssueQueue::compactGenericPass(ActivityRecord& activity)
{
    const int q = queueIndex();

    // One pass in logical (priority) order: convert last cycle's
    // issues into holes, then shift valid entries toward the head
    // by the number of holes below them, at most issueWidth per
    // cycle. Gaps-below is nondecreasing in logical order, so the
    // in-place ascending application is collision-free and
    // order-preserving. The ready/waiting bitmaps move
    // incrementally with the entries: each valid entry holds
    // exactly one bit (ready at its logical position, or needs
    // bits at its physical slot), maintained by dispatch/wakeup/
    // issue, so a move relocates that entry's bits and unmoved
    // entries touch no map.
    int gaps = 0;
    int last_valid = -1;
    for (int l = 0; l < tailLogical_; ++l) {
        const int p = physOfLogical(l);
        if (!testBit(validBits_, p)) {
            ++gaps;
            continue;
        }
        if (testBit(pendingBits_, p)) {
            // The paper's one-cycle replay window: issued last
            // cycle, becomes a hole now. markIssued() already
            // cleared the ready bit (issued entries were ready,
            // so no needs bits exist either).
            clearBit(validBits_, p);
            clearBit(pendingBits_, p);
            --count_;
            --halfCount_[halfOfPhys(p)];
            ++gaps;
            continue;
        }
        if (gaps == 0) {
            last_valid = l;
            continue;
        }
        const int shift = std::min(gaps, issueWidth_);
        const int dst_l = l - shift;
        const int dst_p = physOfLogical(dst_l);
        const int src_half = halfOfPhys(p);
        const int dst_half = halfOfPhys(dst_p);

        // Compaction moves down in physical space; a physical
        // *increase* means the move wrapped around the queue
        // ends (possible only in toggled mode) over the long
        // wires.
        const bool wrapped = dst_p > p;
        if (wrapped)
            ++activity.iqLongCompactions[q][src_half];
        else
            ++activity.iqEntryMoves[q][src_half];
        // The receiving entry drives its cross-queue mux
        // selects; the invalids-counter stages activate for
        // participating entries (clock-gated otherwise).
        ++activity.iqMuxSelects[q][dst_half];
        ++activity.iqCounterOps[q][src_half];

        seq_[dst_p] = seq_[p];
        cls_[dst_p] = cls_[p];
        numSrcs_[dst_p] = numSrcs_[p];
        src0_[dst_p] = src0_[p];
        src1_[dst_p] = src1_[p];
        lineAddr_[dst_p] = lineAddr_[p];
        setBit(validBits_, dst_p);
        clearBit(validBits_, p);
        clearBit(pendingBits_, dst_p);
        moveBit(hasDestBits_, p, dst_p);
        moveBit(mispredBits_, p, dst_p);
        --halfCount_[src_half];
        ++halfCount_[dst_half];
        if (testReadyBit(l)) {
            clearReadyBit(l);
            setReadyBit(dst_l);
            clearBit(needsBits_[0], dst_p);
            clearBit(needsBits_[1], dst_p);
        } else {
            moveBit(needsBits_[0], p, dst_p);
            moveBit(needsBits_[1], p, dst_p);
        }
        last_valid = dst_l;
    }
    tailLogical_ = last_valid + 1;
    // Every pending invalid sat below the old tail, so the pass
    // converted all of them.
    pendingInvalidCount_ = 0;
}

void
IssueQueue::toggleMode()
{
    mode_ = mode_ == CompactionMode::Conventional
                ? CompactionMode::Toggled
                : CompactionMode::Conventional;
    ++toggleCount_;
    // Entries stay in their physical slots; logical positions (and
    // hence the tail and the logical-order ready bitmap) are
    // re-derived under the new mapping. The waiting bitmaps are
    // physically indexed and unaffected.
    recomputeTail();
    rebuildReadyBits();
}

void
IssueQueue::clear()
{
    const auto n = static_cast<std::size_t>(size_);
    const auto wb = static_cast<std::size_t>(words_) * 8;
    std::memset(seq_, 0, n * 8);
    std::memset(src0_, 0, n * 8);
    std::memset(src1_, 0, n * 8);
    std::memset(lineAddr_, 0, n * 8);
    std::memset(cls_, 0, n);
    std::memset(numSrcs_, 0, n);
    std::memset(validBits_, 0, wb);
    std::memset(pendingBits_, 0, wb);
    std::memset(hasDestBits_, 0, wb);
    std::memset(mispredBits_, 0, wb);
    std::memset(needsBits_[0], 0, wb);
    std::memset(needsBits_[1], 0, wb);
    std::memset(ready_, 0, wb);
    count_ = 0;
    halfCount_[0] = halfCount_[1] = 0;
    tailLogical_ = 0;
    pendingInvalidCount_ = 0;
    rebuildWatch();
}

void
IssueQueue::saveState(StateWriter& w) const
{
    w.u32(static_cast<std::uint32_t>(size_));
    w.u8(static_cast<std::uint8_t>(kind_));
    w.u8(mode_ == CompactionMode::Toggled ? 1 : 0);
    w.i32(count_);
    w.u64(toggleCount_);
    w.i32(tailLogical_);
    w.i32(halfCount_[0]);
    w.i32(halfCount_[1]);
    w.i32(pendingInvalidCount_);
    const auto n = static_cast<std::size_t>(size_);
    const auto wb = static_cast<std::size_t>(words_) * 8;
    w.blob(seq_, n * 8);
    w.blob(src0_, n * 8);
    w.blob(src1_, n * 8);
    w.blob(lineAddr_, n * 8);
    w.blob(cls_, n);
    w.blob(numSrcs_, n);
    w.blob(validBits_, wb);
    w.blob(pendingBits_, wb);
    w.blob(hasDestBits_, wb);
    w.blob(mispredBits_, wb);
    w.blob(needsBits_[0], wb);
    w.blob(needsBits_[1], wb);
    w.blob(ready_, wb);
}

void
IssueQueue::loadState(StateReader& r)
{
    const auto size = r.u32();
    const auto kind = r.u8();
    if (static_cast<int>(size) != size_ ||
        kind != static_cast<std::uint8_t>(kind_)) {
        fatal("checkpoint issue queue mismatch: saved size ", size,
              " kind ", static_cast<int>(kind), ", this queue size ",
              size_, " kind ", queueIndex());
    }
    mode_ = r.u8() ? CompactionMode::Toggled
                   : CompactionMode::Conventional;
    count_ = r.i32();
    toggleCount_ = r.u64();
    tailLogical_ = r.i32();
    halfCount_[0] = r.i32();
    halfCount_[1] = r.i32();
    pendingInvalidCount_ = r.i32();
    const auto n = static_cast<std::size_t>(size_);
    const auto wb = static_cast<std::size_t>(words_) * 8;
    r.blob(seq_, n * 8);
    r.blob(src0_, n * 8);
    r.blob(src1_, n * 8);
    r.blob(lineAddr_, n * 8);
    r.blob(cls_, n);
    r.blob(numSrcs_, n);
    r.blob(validBits_, wb);
    r.blob(pendingBits_, wb);
    r.blob(hasDestBits_, wb);
    r.blob(mispredBits_, wb);
    r.blob(needsBits_[0], wb);
    r.blob(needsBits_[1], wb);
    r.blob(ready_, wb);
    rebuildWatch();
}

} // namespace tempest
