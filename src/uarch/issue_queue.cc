#include "uarch/issue_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace tempest
{

IssueQueue::IssueQueue(int num_entries, int issue_width,
                       QueueKind kind)
    : size_(num_entries), half_(num_entries / 2),
      issueWidth_(issue_width), kind_(kind)
{
    if (num_entries < 2 || num_entries % 2 != 0)
        fatal("issue queue size must be even and >= 2");
    if (issue_width < 1)
        fatal("issue width must be >= 1");
    phys_.assign(static_cast<std::size_t>(num_entries), IqEntry{});
    waiting_.reserve(static_cast<std::size_t>(num_entries));
}

const IqEntry&
IssueQueue::entryAtPhys(int phys) const
{
    if (phys < 0 || phys >= size_)
        panic("issue-queue physical index out of range");
    return phys_[static_cast<std::size_t>(phys)];
}

IqEntry&
IssueQueue::entryAtPhys(int phys)
{
    if (phys < 0 || phys >= size_)
        panic("issue-queue physical index out of range");
    return phys_[static_cast<std::size_t>(phys)];
}

int
IssueQueue::occupancyOfHalf(int half) const
{
    if (half != 0 && half != 1)
        panic("issue-queue half must be 0 or 1");
    return halfCount_[half];
}

void
IssueQueue::recomputeTail()
{
    tailLogical_ = 0;
    for (int l = size_ - 1; l >= 0; --l) {
        if (phys_[physOfLogical(l)].valid) {
            tailLogical_ = l + 1;
            break;
        }
    }
}

bool
IssueQueue::canDispatch() const
{
    // The tail is one past the highest occupied logical slot;
    // dispatch drives instructions only to the tail end, so holes
    // awaiting compaction can block dispatch even when count() is
    // below capacity.
    return tailLogical_ < size_;
}

void
IssueQueue::dispatch(const IqEntry& entry, ActivityRecord& activity)
{
    if (tailLogical_ >= size_)
        fatal("dispatch into a queue with no tail slot; check "
              "canDispatch() first");
    const int phys = physOfLogical(tailLogical_);
    IqEntry& slot = phys_[phys];
    slot = entry;
    slot.valid = true;
    slot.pendingInvalid = false;
    ++tailLogical_;
    ++count_;
    ++halfCount_[halfOfPhys(phys)];
    if (!slot.ready())
        waiting_.push_back(phys);
    // Payload RAM write plus the entry write itself, charged to
    // the physical half that receives the dispatch.
    ++activity.iqPayloadAccesses[queueIndex()];
    ++activity.iqDispatchWrites[queueIndex()][halfOfPhys(phys)];
}

void
IssueQueue::broadcast(std::uint64_t producer_seq,
                      ActivityRecord& activity)
{
    broadcastMany(&producer_seq, 1, activity);
}

void
IssueQueue::broadcastMany(const std::uint64_t* producer_seqs, int n,
                          ActivityRecord& activity)
{
    if (n <= 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n);
    for (int phys : waiting_) {
        IqEntry& entry = phys_[static_cast<std::size_t>(phys)];
        if (!entry.valid)
            continue;
        for (int s = 0; s < entry.numSrcs; ++s) {
            if (entry.srcReady[s])
                continue;
            const std::uint64_t want = entry.src[s];
            for (int t = 0; t < n; ++t) {
                if (producer_seqs[t] == want) {
                    entry.srcReady[s] = true;
                    break;
                }
            }
        }
    }
}

void
IssueQueue::wakeupScoreboard(const std::uint8_t* done,
                             std::uint64_t mask, int n_tags,
                             ActivityRecord& activity)
{
    if (n_tags <= 0)
        return;
    activity.iqTagBroadcasts[queueIndex()] +=
        static_cast<std::uint64_t>(n_tags);
    // Check each watched source against the completed-producer
    // ring. Entries that became fully ready (or were invalidated by
    // clear()) leave the list; survivors keep their relative order.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
        const int phys = waiting_[i];
        IqEntry& entry = phys_[static_cast<std::size_t>(phys)];
        if (!entry.valid)
            continue;
        bool still_waiting = false;
        for (int s = 0; s < entry.numSrcs; ++s) {
            if (entry.srcReady[s])
                continue;
            if (done[entry.src[s] & mask] != 0)
                entry.srcReady[s] = true;
            else
                still_waiting = true;
        }
        if (still_waiting)
            waiting_[keep++] = phys;
    }
    waiting_.resize(keep);
}

void
IssueQueue::markIssued(int phys_idx, ActivityRecord& activity)
{
    IqEntry& entry = entryAtPhys(phys_idx);
    if (!entry.valid || entry.pendingInvalid)
        panic("markIssued on an empty or already-issued entry");
    entry.pendingInvalid = true;
    ++pendingInvalidCount_;
    const int q = queueIndex();
    // Payload RAM read + select-network access per issue.
    ++activity.iqPayloadAccesses[q];
    ++activity.iqSelectAccesses[q];
}

void
IssueQueue::compactStep(ActivityRecord& activity)
{
    const int q = queueIndex();

    // Clock-gating control logic runs every cycle.
    ++activity.iqClockGateCycles[q];

    // Early out when there is nothing to compact: no entries were
    // issued last cycle and the occupied region is hole-free
    // (tail == valid count). The full pass below would then only
    // rebuild the wakeup list with identical contents — that list
    // is kept consistent incrementally by dispatch() and
    // wakeupScoreboard() instead. Occupancy accounting still runs:
    // the valid entries burn leakage whether or not anything moves.
    if (pendingInvalidCount_ == 0 && tailLogical_ == count_) {
        activity.iqOccupiedCycles[q][0] +=
            static_cast<std::uint64_t>(halfCount_[0]);
        activity.iqOccupiedCycles[q][1] +=
            static_cast<std::uint64_t>(halfCount_[1]);
        return;
    }

    // One pass in logical (priority) order: convert last cycle's
    // issues into holes, then shift valid entries toward the head
    // by the number of holes below them, at most issueWidth per
    // cycle. Gaps-below is nondecreasing in logical order, so the
    // in-place ascending application is collision-free and
    // order-preserving. The waiting list is rebuilt here because
    // entries change physical slots.
    waiting_.clear();
    int gaps = 0;
    int last_valid = -1;
    for (int l = 0; l < tailLogical_; ++l) {
        const int p = physOfLogical(l);
        IqEntry& e = phys_[static_cast<std::size_t>(p)];
        if (!e.valid) {
            ++gaps;
            continue;
        }
        if (e.pendingInvalid) {
            // The paper's one-cycle replay window: issued last
            // cycle, becomes a hole now.
            e.valid = false;
            e.pendingInvalid = false;
            --count_;
            --halfCount_[halfOfPhys(p)];
            ++gaps;
            continue;
        }
        const int shift = std::min(gaps, issueWidth_);
        int final_phys = p;
        if (shift > 0) {
            const int dst_l = l - shift;
            const int dst_p = physOfLogical(dst_l);
            const int src_half = halfOfPhys(p);
            const int dst_half = halfOfPhys(dst_p);

            // Compaction moves down in physical space; a physical
            // *increase* means the move wrapped around the queue
            // ends (possible only in toggled mode) over the long
            // wires.
            const bool wrapped = dst_p > p;
            if (wrapped)
                ++activity.iqLongCompactions[q][src_half];
            else
                ++activity.iqEntryMoves[q][src_half];
            // The receiving entry drives its cross-queue mux
            // selects; the invalids-counter stages activate for
            // participating entries (clock-gated otherwise).
            ++activity.iqMuxSelects[q][dst_half];
            ++activity.iqCounterOps[q][src_half];

            phys_[static_cast<std::size_t>(dst_p)] = e;
            e.valid = false;
            e.pendingInvalid = false;
            --halfCount_[src_half];
            ++halfCount_[dst_half];
            final_phys = dst_p;
            last_valid = dst_l;
        } else {
            last_valid = l;
        }
        if (!phys_[static_cast<std::size_t>(final_phys)].ready())
            waiting_.push_back(final_phys);
    }
    tailLogical_ = last_valid + 1;
    // Every pending invalid sat below the old tail, so the pass
    // converted all of them.
    pendingInvalidCount_ = 0;

    // Idle/leakage accounting: valid entry-cycles per half.
    activity.iqOccupiedCycles[q][0] +=
        static_cast<std::uint64_t>(halfCount_[0]);
    activity.iqOccupiedCycles[q][1] +=
        static_cast<std::uint64_t>(halfCount_[1]);
}

void
IssueQueue::toggleMode()
{
    mode_ = mode_ == CompactionMode::Conventional
                ? CompactionMode::Toggled
                : CompactionMode::Conventional;
    ++toggleCount_;
    // Entries stay in their physical slots; logical positions (and
    // hence the tail) are re-derived under the new mapping.
    recomputeTail();
}

void
IssueQueue::clear()
{
    for (auto& entry : phys_)
        entry = IqEntry{};
    count_ = 0;
    halfCount_[0] = halfCount_[1] = 0;
    tailLogical_ = 0;
    pendingInvalidCount_ = 0;
    waiting_.clear();
}

} // namespace tempest
