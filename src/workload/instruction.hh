/**
 * @file
 * Dynamic micro-operation record produced by the workload generator
 * and consumed by the out-of-order core.
 *
 * Tempest is profile-driven rather than ISA-driven: a MicroOp carries
 * exactly the information the backend needs to reproduce the paper's
 * activity asymmetries — operation class, data dependences (as
 * producer sequence numbers), memory behaviour, and branch outcome.
 */

#ifndef TEMPEST_WORKLOAD_INSTRUCTION_HH
#define TEMPEST_WORKLOAD_INSTRUCTION_HH

#include <cstdint>

namespace tempest
{

/** Operation classes the 6-wide backend distinguishes. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< integer arithmetic/logic (1 cycle)
    IntMul,   ///< integer multiply (3 cycles)
    FpAdd,    ///< floating-point add/sub/cvt (2 cycles)
    FpMul,    ///< floating-point multiply/divide (4 cycles)
    Load,     ///< memory read (2-cycle L1 hit)
    Store,    ///< memory write
    Branch,   ///< conditional/unconditional branch
    NumOpClasses
};

/** @return true for the two floating-point classes. */
constexpr bool
isFpClass(OpClass cls)
{
    return cls == OpClass::FpAdd || cls == OpClass::FpMul;
}

/** @return true for loads and stores. */
constexpr bool
isMemClass(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

/** @return a short mnemonic for tracing. */
const char* opClassName(OpClass cls);

/** Memory level that services an access. */
enum class MemLevel : std::uint8_t
{
    L1,     ///< L1 data cache hit
    L2,     ///< L1 miss, L2 hit
    Memory  ///< misses both caches
};

/**
 * One dynamic instruction.
 *
 * Dependences are expressed as the sequence numbers of the producing
 * instructions; the core's rename stage converts these to physical
 * registers. numSrcs of 0 means the instruction is dependence-free
 * (e.g. immediate moves, loop-invariant address computation).
 */
struct MicroOp
{
    /** Dynamic sequence number, starting at 1 (0 = no producer). */
    std::uint64_t seq = 0;

    /** Operation class. */
    OpClass cls = OpClass::IntAlu;

    /** Number of register source operands (0..2). */
    int numSrcs = 0;

    /** Producer sequence numbers for each source (0 = ready). */
    std::uint64_t src[2] = {0, 0};

    /** True if the op produces a register result. */
    bool hasDest = true;

    /** Cache line address for loads/stores (line-aligned). */
    std::uint64_t lineAddr = 0;

    /** For branches: true if the predictor will mispredict it. */
    bool mispredicted = false;
};

} // namespace tempest

#endif // TEMPEST_WORKLOAD_INSTRUCTION_HH
