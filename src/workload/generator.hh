/**
 * @file
 * Deterministic synthetic instruction stream.
 *
 * InstructionStream turns a BenchmarkProfile into an endless sequence
 * of MicroOps with the profile's mix, dependence structure, memory
 * behaviour and phase/burst dynamics. Streams are reproducible: the
 * same (profile, seed) produces the same sequence.
 */

#ifndef TEMPEST_WORKLOAD_GENERATOR_HH
#define TEMPEST_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "common/alias_table.hh"
#include "common/rng.hh"
#include "workload/instruction.hh"
#include "workload/profile.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/**
 * Generates the dynamic instruction stream for one benchmark run.
 *
 * Memory addresses come from a three-pool locality model: a hot pool
 * that fits comfortably in L1, a warm pool that fits in L2 but not
 * L1, and a cold stream of fresh lines that misses both. The pool is
 * chosen per access with the profile's miss fractions, so a real
 * cache hierarchy fed by this stream measures miss rates close to
 * the profile targets.
 */
class InstructionStream
{
  public:
    /**
     * @param profile workload description (copied)
     * @param run_seed experiment-level seed, combined with the
     *        profile seed so different runs can decorrelate streams
     */
    explicit InstructionStream(const BenchmarkProfile& profile,
                               std::uint64_t run_seed = 0);

    /** Return the next dynamic instruction (gathered from the
     * batch ring's field arrays). */
    MicroOp
    next()
    {
        if (batchNext_ == batchCount_)
            refill();
        const auto i = static_cast<std::size_t>(batchNext_++);
        ++consumed_;
        MicroOp op;
        op.seq = batchSeq_[i];
        op.cls = static_cast<OpClass>(batchCls_[i]);
        op.numSrcs = batchNumSrcs_[i];
        op.src[0] = batchSrc0_[i];
        op.src[1] = batchSrc1_[i];
        op.hasDest = ((batchHasDest_ >> i) & 1) != 0;
        op.lineAddr = batchLine_[i];
        op.mispredicted = ((batchMispred_ >> i) & 1) != 0;
        return op;
    }

    /**
     * Read-only view of the un-consumed tail of the batch ring, for
     * consumers that copy several instructions at once (the core's
     * fetch stage). Field pointers alias the ring's SoA arrays; the
     * view is invalidated by the next call to next(), view() or
     * advance() past a refill.
     */
    struct BatchView
    {
        const std::uint64_t* seq;
        const std::uint64_t* src0;
        const std::uint64_t* src1;
        const std::uint64_t* line;
        const std::uint8_t* cls;
        const std::uint8_t* numSrcs;
        std::uint64_t hasDest;  ///< bitmask, bit i = ring slot i
        std::uint64_t mispred;  ///< bitmask, bit i = ring slot i
        int next;               ///< first un-consumed ring slot
        int count;              ///< slots generated (view ends here)
    };

    /** @return the current batch view, refilling first if the ring
     * is exhausted (so view().next < view().count always holds). */
    BatchView
    view()
    {
        if (batchNext_ == batchCount_)
            refill();
        return {batchSeq_,  batchSrc0_,    batchSrc1_,
                batchLine_, batchCls_,     batchNumSrcs_,
                batchHasDest_, batchMispred_, batchNext_,
                batchCount_};
    }

    /** Consume n instructions previously exposed via view(). */
    void
    advance(int n)
    {
        batchNext_ += n;
        consumed_ += static_cast<std::uint64_t>(n);
    }

    /**
     * Sequence number of the most recently *returned* instruction
     * (generation runs ahead by up to one batch; consumers never
     * observe the pre-generated tail).
     */
    std::uint64_t generated() const { return consumed_; }

    /** @return true if the stream is currently in a burst phase. */
    bool inBurst() const { return inBurst_; }

    /** Number of calm->burst transitions so far. */
    std::uint64_t burstCount() const { return burstCount_; }

    const BenchmarkProfile& profile() const { return profile_; }

    /** Cache line size assumed by the address pools (bytes). */
    static constexpr std::uint64_t lineBytes = 64;

    /** Hot pool: lines that fit in L1 (32 KB span). */
    static constexpr std::uint64_t hotLines = 512;

    /** Warm pool: lines that fit in L2 but thrash L1 (512 KB span). */
    static constexpr std::uint64_t warmLines = 8192;

    /**
     * Serialize the dynamic stream state: RNG, sequence counters,
     * batch ring, phase state, cold cursor, and producer ring. The
     * alias table is not serialized — it is a pure function of the
     * profile and is rebuilt by the constructor.
     */
    void saveState(StateWriter& w) const;

    /** Restore state saved by saveState(); the stream must have
     * been constructed with the same profile. */
    void loadState(StateReader& r);

  private:
    /** Advance phase state and return current dep-distance scale. */
    void updatePhase();

    /** Refresh the cached geometric log-denominators. */
    void updateDepDenoms();

    /** Generate one instruction into batch ring slot i (advances
     * the RNG stream). */
    void generateInto(int i);

    /** Refill the batch ring with freshly generated instructions. */
    void refill();

    /** Draw a producer sequence number for one source operand. */
    std::uint64_t drawProducer();

    /** Draw a line address according to the locality model. */
    std::uint64_t drawLineAddr();

    BenchmarkProfile profile_;
    Rng rng_;

    std::uint64_t seq_ = 0;      ///< generated (runs ahead)
    std::uint64_t consumed_ = 0; ///< returned via next()

    // One-uniform categorical sampler for the op-class mix.
    AliasTable mixTable_; // ckpt:skip(rebuilt from profile_ in the constructor)

    // Batch ring: generation is feedback-free (nothing the core
    // does influences the stream), so instructions are produced a
    // batch at a time — the generator's state stays hot in cache
    // and the per-call path is a field gather plus two counter
    // bumps. Structure-of-arrays: one array per MicroOp field,
    // the booleans as 64-bit masks (batchSize_ is exactly one
    // mask word). Unused fields of a slot are zeroed by
    // generateInto so the ring's content — and hence the
    // checkpoint bytes — never carry stale values.
    static constexpr int batchSize_ = 64;
    std::uint64_t batchSeq_[batchSize_] = {};  // ckpt:bulk(gen-batch)
    std::uint64_t batchSrc0_[batchSize_] = {}; // ckpt:bulk(gen-batch)
    std::uint64_t batchSrc1_[batchSize_] = {}; // ckpt:bulk(gen-batch)
    std::uint64_t batchLine_[batchSize_] = {}; // ckpt:bulk(gen-batch)
    std::uint8_t batchCls_[batchSize_] = {};   // ckpt:bulk(gen-batch)
    std::uint8_t batchNumSrcs_[batchSize_] = {}; // ckpt:bulk(gen-batch)
    std::uint64_t batchHasDest_ = 0; ///< bitmask, bit i = slot i
    std::uint64_t batchMispred_ = 0; ///< bitmask, bit i = slot i
    int batchNext_ = 0;
    int batchCount_ = 0;

    // Phase state.
    bool inBurst_ = false;
    std::uint64_t phaseRemaining_ = 0;
    std::uint64_t burstCount_ = 0;
    double depScale_ = 1.0;
    double missScale_ = 1.0;

    // Cached geometric denominators log1p(-1/mean) for the two
    // dependence-distance branches (0.0 = mean <= 1, no draw).
    // The near mean is fixed by the profile; the far mean moves
    // with depScale_, so updateDepDenoms() runs at construction,
    // on each phase change, and after loadState.
    // ckpt:skip(derived from profile_ and depScale_)
    double logDenomNear_ = 0.0;
    // ckpt:skip(derived from profile_ and depScale_)
    double logDenomFar_ = 0.0;

    // Cold-stream cursor for fresh (always-miss) lines.
    std::uint64_t coldCursor_ = 0;

    // Ring of recent value-producing sequence numbers; producers
    // are drawn from here so a dependence always names an
    // instruction that actually writes a register.
    static constexpr std::uint64_t destRingSize_ = 512;
    std::uint64_t destRing_[destRingSize_] = {};
    std::uint64_t destCount_ = 0;
};

} // namespace tempest

#endif // TEMPEST_WORKLOAD_GENERATOR_HH
