/**
 * @file
 * Benchmark profiles: the statistical description of a workload that
 * drives the synthetic instruction stream.
 *
 * The paper evaluates 22 SPEC CPU2000 benchmarks on SimpleScalar; we
 * do not have SPEC binaries, so each benchmark is described by the
 * dynamic properties that determine backend activity — instruction
 * mix, dependence distances (ILP), branch misprediction rate, cache
 * miss behaviour, and phase/burst structure. DESIGN.md documents this
 * substitution. Profiles are deterministic: the same profile and seed
 * always generate the same stream.
 */

#ifndef TEMPEST_WORKLOAD_PROFILE_HH
#define TEMPEST_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/instruction.hh"

namespace tempest
{

/**
 * Statistical workload description.
 *
 * Mix fractions must sum to 1. Dependence distance is the dynamic
 * instruction distance to a producer; larger means more ILP. Phase
 * structure alternates calm and burst phases; during a burst the
 * dependence distances are scaled by burstIlpScale and load misses
 * are suppressed, producing the high-IPC activity bursts the paper
 * observes for e.g. facerec.
 */
struct BenchmarkProfile
{
    std::string name;

    /** Instruction mix fraction per OpClass, summing to 1. */
    double mix[static_cast<int>(OpClass::NumOpClasses)] = {};

    /** Mean dynamic distance to the producer of a source operand
     * (the far/loose component of the dependence mixture). */
    double meanDepDist = 6.0;

    /**
     * Fraction of source operands drawn from the near (chain)
     * component of the dependence mixture. Near dependencies make
     * an instruction ready only once its just-in-flight producer
     * issues, so chain frontiers - and therefore issue slots -
     * spread across the whole issue queue, producing the
     * tail-heavy compaction gradient of the paper's §2.1. Far
     * dependencies are usually complete by dispatch and control
     * the achievable ILP.
     */
    double nearDepFrac = 0.40;

    /** Mean distance of the near (chain) component. */
    double nearDepDist = 3.0;

    /** Probability a branch is mispredicted. */
    double branchMispredictRate = 0.05;

    /** Probability a load hits in L2 only (misses L1). */
    double loadL2Frac = 0.02;

    /** Probability a load misses both L1 and L2 (goes to memory). */
    double loadMemFrac = 0.0;

    /** Fraction of time spent in burst phases (0 = steady). */
    double burstiness = 0.0;

    /**
     * Mean phase length in instructions. Phases must be long
     * relative to block thermal time constants (~1 ms, i.e. a few
     * million cycles) for bursts to move temperatures.
     */
    double phaseLenInsts = 3.0e6;

    /** Dependence-distance multiplier during a burst phase. */
    double burstIlpScale = 2.0;

    /** Default stream seed (combined with experiment seed). */
    std::uint64_t seed = 1;

    /** @return mix fraction for one class. */
    double
    fracOf(OpClass cls) const
    {
        return mix[static_cast<int>(cls)];
    }

    /** @return true if the profile issues floating-point work. */
    bool usesFp() const;

    /** Validate invariants (mix sums to 1, rates in range); fatal
     * on violation. */
    void validate() const;
};

/**
 * Look up one of the 22 SPEC CPU2000-like profiles by name (e.g.
 * "eon", "art"). fatal() if the name is unknown.
 */
const BenchmarkProfile& spec2000(const std::string& name);

/** @return the 22 benchmark names in the paper's alphabetical
 * order (applu .. wupwise). */
const std::vector<std::string>& spec2000Names();

/**
 * Peak-utilization calibration workload: independent single-cycle
 * integer ops that saturate the 6-wide backend. Used to reproduce
 * the paper's floorplan-scaling criterion (§3.2).
 */
const BenchmarkProfile& syntheticIntPeak();

/** Peak-utilization floating-point workload. */
const BenchmarkProfile& syntheticFpPeak();

/** A quiet, low-ILP, memory-bound workload for cool baselines. */
const BenchmarkProfile& syntheticIdle();

} // namespace tempest

#endif // TEMPEST_WORKLOAD_PROFILE_HH
