#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

namespace
{

// Address-space bases for the three locality pools (line numbers).
constexpr std::uint64_t hotBase = 0x0010'0000;
constexpr std::uint64_t warmBase = 0x0100'0000;
constexpr std::uint64_t coldBase = 0x4000'0000;

/** Map a uniform in [0, 1) to an index in [0, n). */
std::uint64_t
indexFromUniform(double u, std::uint64_t n)
{
    // A rescaled uniform can round up to exactly 1.0; clamp the
    // product back into range.
    const auto idx =
        static_cast<std::uint64_t>(u * static_cast<double>(n));
    return std::min(idx, n - 1);
}

} // namespace

InstructionStream::InstructionStream(const BenchmarkProfile& profile,
                                     std::uint64_t run_seed)
    : profile_(profile),
      rng_(profile.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL + 1))
{
    profile_.validate();
    mixTable_.build(profile_.mix,
                    static_cast<int>(OpClass::NumOpClasses));
    updatePhase();
    updateDepDenoms();
}

void
InstructionStream::updateDepDenoms()
{
    // The denominators feed a division in the geometric inversion
    // (not a reciprocal multiply), so a draw is bit-identical to
    // computing log1p at the draw site.
    const double near_mean = std::max(profile_.nearDepDist, 1.0);
    logDenomNear_ =
        near_mean > 1.0 ? std::log1p(-1.0 / near_mean) : 0.0;
    const double far_mean =
        std::max(profile_.meanDepDist * depScale_, 1.0);
    logDenomFar_ =
        far_mean > 1.0 ? std::log1p(-1.0 / far_mean) : 0.0;
}

void
InstructionStream::updatePhase()
{
    if (phaseRemaining_ > 0) {
        --phaseRemaining_;
        return;
    }
    if (profile_.burstiness <= 0.0) {
        // Steady workload: one infinite calm phase.
        phaseRemaining_ = ~0ULL;
        depScale_ = 1.0;
        missScale_ = 1.0;
        updateDepDenoms();
        return;
    }
    // Alternate calm and burst phases with geometric lengths whose
    // means split phaseLenInsts by the burstiness fraction.
    inBurst_ = !inBurst_;
    if (inBurst_)
        ++burstCount_;
    const double mean_len = inBurst_
        ? profile_.phaseLenInsts * profile_.burstiness
        : profile_.phaseLenInsts * (1.0 - profile_.burstiness);
    const double p = 1.0 / std::max(mean_len, 2.0);
    phaseRemaining_ = rng_.geometric(p) + 1;
    depScale_ = inBurst_ ? profile_.burstIlpScale : 1.0;
    // Bursts are compute phases: loads mostly hit.
    missScale_ = inBurst_ ? 0.25 : 1.0;
    updateDepDenoms();
}

std::uint64_t
InstructionStream::drawProducer()
{
    if (destCount_ == 0)
        return 0;
    // Dependence mixture: near (chain) draws follow a recent
    // producer and spread issue slots across the queue; far draws
    // are usually complete by dispatch and set the ILP. One uniform
    // covers both the mixture choice and the distance: conditioned
    // on landing in a branch of probability p, u rescaled by p is
    // again uniform in [0, 1) and feeds the geometric inversion.
    const double p_near = profile_.nearDepFrac;
    double u = rng_.uniform();
    const bool near = u < p_near;
    u = near ? u / p_near : (u - p_near) / (1.0 - p_near);
    // Distance = 1 + Geometric with mean (mean - 1), measured in
    // value-producing instructions. The log1p(-1/mean) denominator
    // is hoisted into the phase-change path (updateDepDenoms);
    // 0.0 marks a degenerate mean <= 1 (always distance 1).
    const double log_denom =
        near ? logDenomNear_ : logDenomFar_;
    std::uint64_t dist = 1;
    if (log_denom != 0.0)
        dist += Rng::geometricFromUniformLogDenom(u, log_denom);
    const std::uint64_t window =
        std::min(destCount_, destRingSize_);
    if (dist > window)
        return 0; // producer predates the window: treat as ready
    return destRing_[(destCount_ - dist) % destRingSize_];
}

std::uint64_t
InstructionStream::drawLineAddr()
{
    // One uniform picks the pool and, rescaled to the chosen
    // pool's probability slice, the line within it.
    const double l2 = profile_.loadL2Frac * missScale_;
    const double mem = profile_.loadMemFrac * missScale_;
    double u = rng_.uniform();
    if (u < mem)
        return coldBase + coldCursor_++;
    u -= mem;
    if (u < l2)
        return warmBase + indexFromUniform(u / l2, warmLines);
    u -= l2;
    const double hot_slice = std::max(1.0 - mem - l2, 1e-12);
    return hotBase + indexFromUniform(u / hot_slice, hotLines);
}

void
InstructionStream::generateInto(int i)
{
    updatePhase();

    const auto at = static_cast<std::size_t>(i);
    const std::uint64_t slot_bit = 1ULL << i;
    const std::uint64_t seq = ++seq_;
    batchSeq_[at] = seq;
    batchLine_[at] = 0;
    batchSrc0_[at] = 0;
    batchSrc1_[at] = 0;
    batchHasDest_ &= ~slot_bit;
    batchMispred_ &= ~slot_bit;

    const auto cls = static_cast<OpClass>(mixTable_.sample(rng_));
    batchCls_[at] = static_cast<std::uint8_t>(cls);

    int num_srcs = 0;
    bool has_dest = false;
    switch (cls) {
      case OpClass::Load:
        num_srcs = 1; // address register
        has_dest = true;
        batchLine_[at] = drawLineAddr();
        break;
      case OpClass::Store:
        num_srcs = 2; // address + data
        batchLine_[at] = drawLineAddr();
        break;
      case OpClass::Branch:
        num_srcs = 1; // condition
        if (rng_.chance(profile_.branchMispredictRate))
            batchMispred_ |= slot_bit;
        break;
      default: {
        // Arithmetic: mostly two sources, sometimes fewer
        // (immediates, loop-invariant values).
        const double u = rng_.uniform();
        num_srcs = u < 0.65 ? 2 : (u < 0.95 ? 1 : 0);
        has_dest = true;
        break;
      }
    }
    batchNumSrcs_[at] = static_cast<std::uint8_t>(num_srcs);

    if (num_srcs > 0)
        batchSrc0_[at] = drawProducer();
    if (num_srcs > 1)
        batchSrc1_[at] = drawProducer();

    if (has_dest) {
        batchHasDest_ |= slot_bit;
        destRing_[destCount_++ % destRingSize_] = seq;
    }
}

void
InstructionStream::refill()
{
    for (int i = 0; i < batchSize_; ++i)
        generateInto(i);
    batchNext_ = 0;
    batchCount_ = batchSize_;
}

void
InstructionStream::saveState(StateWriter& w) const
{
    w.str(profile_.name);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    w.u64(seq_);
    w.u64(consumed_);
    w.i32(batchNext_);
    w.i32(batchCount_);
    w.blob(batchSeq_, batchSize_ * 8);
    w.blob(batchSrc0_, batchSize_ * 8);
    w.blob(batchSrc1_, batchSize_ * 8);
    w.blob(batchLine_, batchSize_ * 8);
    w.blob(batchCls_, batchSize_);
    w.blob(batchNumSrcs_, batchSize_);
    w.u64(batchHasDest_);
    w.u64(batchMispred_);
    w.boolean(inBurst_);
    w.u64(phaseRemaining_);
    w.u64(burstCount_);
    w.f64(depScale_);
    w.f64(missScale_);
    w.u64(coldCursor_);
    w.u64(destCount_);
    for (const std::uint64_t s : destRing_)
        w.u64(s);
}

void
InstructionStream::loadState(StateReader& r)
{
    const std::string name = r.str();
    if (name != profile_.name) {
        fatal("checkpoint instruction stream mismatch: saved "
              "profile '", name, "', this stream runs '",
              profile_.name, "'");
    }
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t& s : rng_state)
        s = r.u64();
    rng_.setState(rng_state);
    seq_ = r.u64();
    consumed_ = r.u64();
    batchNext_ = r.i32();
    batchCount_ = r.i32();
    r.blob(batchSeq_, batchSize_ * 8);
    r.blob(batchSrc0_, batchSize_ * 8);
    r.blob(batchSrc1_, batchSize_ * 8);
    r.blob(batchLine_, batchSize_ * 8);
    r.blob(batchCls_, batchSize_);
    r.blob(batchNumSrcs_, batchSize_);
    batchHasDest_ = r.u64();
    batchMispred_ = r.u64();
    inBurst_ = r.boolean();
    phaseRemaining_ = r.u64();
    burstCount_ = r.u64();
    depScale_ = r.f64();
    missScale_ = r.f64();
    coldCursor_ = r.u64();
    destCount_ = r.u64();
    for (std::uint64_t& s : destRing_)
        s = r.u64();
    updateDepDenoms();
}

} // namespace tempest
