#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

namespace
{

// Address-space bases for the three locality pools (line numbers).
constexpr std::uint64_t hotBase = 0x0010'0000;
constexpr std::uint64_t warmBase = 0x0100'0000;
constexpr std::uint64_t coldBase = 0x4000'0000;

/** Map a uniform in [0, 1) to an index in [0, n). */
std::uint64_t
indexFromUniform(double u, std::uint64_t n)
{
    // A rescaled uniform can round up to exactly 1.0; clamp the
    // product back into range.
    const auto idx =
        static_cast<std::uint64_t>(u * static_cast<double>(n));
    return std::min(idx, n - 1);
}

} // namespace

InstructionStream::InstructionStream(const BenchmarkProfile& profile,
                                     std::uint64_t run_seed)
    : profile_(profile),
      rng_(profile.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL + 1))
{
    profile_.validate();
    mixTable_.build(profile_.mix,
                    static_cast<int>(OpClass::NumOpClasses));
    updatePhase();
}

void
InstructionStream::updatePhase()
{
    if (phaseRemaining_ > 0) {
        --phaseRemaining_;
        return;
    }
    if (profile_.burstiness <= 0.0) {
        // Steady workload: one infinite calm phase.
        phaseRemaining_ = ~0ULL;
        depScale_ = 1.0;
        missScale_ = 1.0;
        return;
    }
    // Alternate calm and burst phases with geometric lengths whose
    // means split phaseLenInsts by the burstiness fraction.
    inBurst_ = !inBurst_;
    if (inBurst_)
        ++burstCount_;
    const double mean_len = inBurst_
        ? profile_.phaseLenInsts * profile_.burstiness
        : profile_.phaseLenInsts * (1.0 - profile_.burstiness);
    const double p = 1.0 / std::max(mean_len, 2.0);
    phaseRemaining_ = rng_.geometric(p) + 1;
    depScale_ = inBurst_ ? profile_.burstIlpScale : 1.0;
    // Bursts are compute phases: loads mostly hit.
    missScale_ = inBurst_ ? 0.25 : 1.0;
}

std::uint64_t
InstructionStream::drawProducer()
{
    if (destCount_ == 0)
        return 0;
    // Dependence mixture: near (chain) draws follow a recent
    // producer and spread issue slots across the queue; far draws
    // are usually complete by dispatch and set the ILP. One uniform
    // covers both the mixture choice and the distance: conditioned
    // on landing in a branch of probability p, u rescaled by p is
    // again uniform in [0, 1) and feeds the geometric inversion.
    const double p_near = profile_.nearDepFrac;
    double u = rng_.uniform();
    const bool near = u < p_near;
    u = near ? u / p_near : (u - p_near) / (1.0 - p_near);
    const double base_mean =
        near ? profile_.nearDepDist
             : profile_.meanDepDist * depScale_;
    const double mean = std::max(base_mean, 1.0);
    // Distance = 1 + Geometric with mean (mean - 1), measured in
    // value-producing instructions.
    std::uint64_t dist = 1;
    if (mean > 1.0)
        dist += Rng::geometricFromUniform(u, 1.0 / mean);
    const std::uint64_t window =
        std::min(destCount_, destRingSize_);
    if (dist > window)
        return 0; // producer predates the window: treat as ready
    return destRing_[(destCount_ - dist) % destRingSize_];
}

std::uint64_t
InstructionStream::drawLineAddr()
{
    // One uniform picks the pool and, rescaled to the chosen
    // pool's probability slice, the line within it.
    const double l2 = profile_.loadL2Frac * missScale_;
    const double mem = profile_.loadMemFrac * missScale_;
    double u = rng_.uniform();
    if (u < mem)
        return coldBase + coldCursor_++;
    u -= mem;
    if (u < l2)
        return warmBase + indexFromUniform(u / l2, warmLines);
    u -= l2;
    const double hot_slice = std::max(1.0 - mem - l2, 1e-12);
    return hotBase + indexFromUniform(u / hot_slice, hotLines);
}

MicroOp
InstructionStream::generate()
{
    updatePhase();

    MicroOp op;
    op.seq = ++seq_;

    op.cls = static_cast<OpClass>(mixTable_.sample(rng_));

    switch (op.cls) {
      case OpClass::Load:
        op.numSrcs = 1; // address register
        op.hasDest = true;
        op.lineAddr = drawLineAddr();
        break;
      case OpClass::Store:
        op.numSrcs = 2; // address + data
        op.hasDest = false;
        op.lineAddr = drawLineAddr();
        break;
      case OpClass::Branch:
        op.numSrcs = 1; // condition
        op.hasDest = false;
        op.mispredicted =
            rng_.chance(profile_.branchMispredictRate);
        break;
      default: {
        // Arithmetic: mostly two sources, sometimes fewer
        // (immediates, loop-invariant values).
        const double u = rng_.uniform();
        op.numSrcs = u < 0.65 ? 2 : (u < 0.95 ? 1 : 0);
        op.hasDest = true;
        break;
      }
    }

    for (int i = 0; i < op.numSrcs; ++i)
        op.src[i] = drawProducer();

    if (op.hasDest)
        destRing_[destCount_++ % destRingSize_] = op.seq;

    return op;
}

void
InstructionStream::refill()
{
    for (int i = 0; i < batchSize_; ++i)
        batch_[static_cast<std::size_t>(i)] = generate();
    batchNext_ = 0;
    batchCount_ = batchSize_;
}

void
InstructionStream::saveState(StateWriter& w) const
{
    w.str(profile_.name);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    w.u64(seq_);
    w.u64(consumed_);
    w.i32(batchNext_);
    w.i32(batchCount_);
    for (int i = 0; i < batchSize_; ++i) {
        const MicroOp& op = batch_[static_cast<std::size_t>(i)];
        w.u64(op.seq);
        w.u8(static_cast<std::uint8_t>(op.cls));
        w.i32(op.numSrcs);
        w.u64(op.src[0]);
        w.u64(op.src[1]);
        w.boolean(op.hasDest);
        w.u64(op.lineAddr);
        w.boolean(op.mispredicted);
    }
    w.boolean(inBurst_);
    w.u64(phaseRemaining_);
    w.u64(burstCount_);
    w.f64(depScale_);
    w.f64(missScale_);
    w.u64(coldCursor_);
    w.u64(destCount_);
    for (const std::uint64_t s : destRing_)
        w.u64(s);
}

void
InstructionStream::loadState(StateReader& r)
{
    const std::string name = r.str();
    if (name != profile_.name) {
        fatal("checkpoint instruction stream mismatch: saved "
              "profile '", name, "', this stream runs '",
              profile_.name, "'");
    }
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t& s : rng_state)
        s = r.u64();
    rng_.setState(rng_state);
    seq_ = r.u64();
    consumed_ = r.u64();
    batchNext_ = r.i32();
    batchCount_ = r.i32();
    for (int i = 0; i < batchSize_; ++i) {
        MicroOp& op = batch_[static_cast<std::size_t>(i)];
        op.seq = r.u64();
        op.cls = static_cast<OpClass>(r.u8());
        op.numSrcs = r.i32();
        op.src[0] = r.u64();
        op.src[1] = r.u64();
        op.hasDest = r.boolean();
        op.lineAddr = r.u64();
        op.mispredicted = r.boolean();
    }
    inBurst_ = r.boolean();
    phaseRemaining_ = r.u64();
    burstCount_ = r.u64();
    depScale_ = r.f64();
    missScale_ = r.f64();
    coldCursor_ = r.u64();
    destCount_ = r.u64();
    for (std::uint64_t& s : destRing_)
        s = r.u64();
}

} // namespace tempest
