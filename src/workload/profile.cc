#include "workload/profile.hh"

#include <cmath>
#include <map>

#include "common/log.hh"

namespace tempest
{

const char*
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAdd: return "FpAdd";
      case OpClass::FpMul: return "FpMul";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Branch: return "Branch";
      default: return "Invalid";
    }
}

bool
BenchmarkProfile::usesFp() const
{
    return fracOf(OpClass::FpAdd) > 0.0 || fracOf(OpClass::FpMul) > 0.0;
}

void
BenchmarkProfile::validate() const
{
    double sum = 0.0;
    for (double f : mix) {
        if (f < 0.0)
            fatal("profile '", name, "': negative mix fraction");
        sum += f;
    }
    if (std::abs(sum - 1.0) > 1e-9)
        fatal("profile '", name, "': mix sums to ", sum, ", not 1");
    if (meanDepDist < 1.0)
        fatal("profile '", name, "': meanDepDist must be >= 1");
    if (branchMispredictRate < 0.0 || branchMispredictRate > 1.0)
        fatal("profile '", name, "': bad misprediction rate");
    if (loadL2Frac < 0.0 || loadMemFrac < 0.0 ||
        loadL2Frac + loadMemFrac > 1.0) {
        fatal("profile '", name, "': bad load miss fractions");
    }
    if (burstiness < 0.0 || burstiness >= 1.0)
        fatal("profile '", name, "': burstiness must be in [0, 1)");
}

namespace
{

/** Ordered mix helper: {IntAlu, IntMul, FpAdd, FpMul, Ld, St, Br}. */
BenchmarkProfile
make(const std::string& name,
     std::initializer_list<double> mix,
     double dep, double mispred, double l2, double mem,
     double burst, double burst_scale, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    int i = 0;
    for (double f : mix)
        p.mix[i++] = f;
    p.meanDepDist = dep;
    p.branchMispredictRate = mispred;
    p.loadL2Frac = l2;
    p.loadMemFrac = mem;
    p.burstiness = burst;
    p.burstIlpScale = burst_scale;
    p.seed = seed;
    p.validate();
    return p;
}

/**
 * The 22 SPEC CPU2000 profiles (the subset the paper simulates).
 *
 * Parameters are chosen so each benchmark lands in the IPC and
 * thermal-constraint class the paper reports: e.g. art/mcf are
 * memory-bound and never overheat the issue queue; eon/perlbmk are
 * high-ILP and thermally constrained; facerec has high-IPC activity
 * bursts that overheat regardless of balancing (§4.1).
 */
std::map<std::string, BenchmarkProfile>
buildTable()
{
    std::map<std::string, BenchmarkProfile> t;
    auto add = [&t](BenchmarkProfile p) { t[p.name] = std::move(p); };

    //                 IntAlu IntMul FpAdd FpMul  Ld    St    Br
    // ---- floating-point suite ----
    add(make("applu", {.28,  .01,  .30,  .12,  .19,  .07,  .03},
             34.0, .010, .035, .015, 0.25, 1.8, 1101));
    add(make("apsi",  {.30,  .01,  .29,  .11,  .19,  .06,  .04},
             30.0, .020, .025, .006, 0.0, 2.0, 1102));
    add(make("art",   {.33,  .01,  .26,  .08,  .22,  .05,  .05},
             10.0, .010, .200, .110, 0.0, 2.0, 1103));
    add(make("facerec", {.28, .01, .30,  .12,  .20,  .05,  .04},
             26.0, .020, .045, .012, 0.55, 3.0, 1104));
    add(make("fma3d", {.30,  .01,  .27,  .11,  .20,  .07,  .04},
             30.0, .020, .030, .010, 0.25, 1.8, 1105));
    add(make("lucas", {.27,  .01,  .31,  .13,  .19,  .06,  .03},
             16.0, .010, .090, .035, 0.0, 2.0, 1106));
    add(make("mesa",  {.34,  .02,  .24,  .10,  .18,  .06,  .06},
             24.0, .030, .010, .002, 0.0, 2.0, 1107));
    add(make("mgrid", {.26,  .01,  .34,  .12,  .18,  .06,  .03},
             34.0, .010, .030, .008, 0.25, 1.8, 1108));
    add(make("sixtrack", {.30, .02, .28, .12,  .18,  .06,  .04},
             22.0, .010, .010, .001, 0.0, 2.0, 1109));
    add(make("swim",  {.25,  .01,  .33,  .13,  .19,  .06,  .03},
             22.0, .010, .110, .040, 0.0, 2.0, 1110));
    add(make("wupwise", {.28, .01, .30,  .13,  .19,  .06,  .03},
             34.0, .010, .012, .003, 0.0, 2.0, 1111));
    // ---- integer suite ----
    add(make("bzip",  {.55,  .01,  .00,  .00,  .24,  .09,  .11},
             22.0, .055, .030, .005, 0.30, 2.2, 1201));
    add(make("crafty", {.57, .01,  .00,  .00,  .23,  .08,  .11},
             26.0, .060, .020, .002, 0.0, 2.0, 1202));
    add(make("eon",   {.58,  .02,  .00,  .00,  .22,  .09,  .09},
             30.0, .032, .010, .001, 0.0, 2.0, 1203));
    add(make("gcc",   {.54,  .01,  .00,  .00,  .23,  .10,  .12},
             20.0, .070, .035, .008, 0.25, 2.0, 1204));
    add(make("gzip",  {.56,  .01,  .00,  .00,  .23,  .08,  .12},
             24.0, .050, .020, .003, 0.0, 2.0, 1205));
    add(make("mcf",   {.52,  .01,  .00,  .00,  .28,  .06,  .13},
             10.0, .080, .150, .150, 0.0, 2.0, 1206));
    add(make("parser", {.54, .01,  .00,  .00,  .24,  .09,  .12},
             11.0, .075, .030, .008, 0.0, 2.0, 1207));
    add(make("perlbmk", {.58, .01, .00,  .00,  .23,  .08,  .10},
             36.0, .038, .010, .001, 0.0, 2.0, 1208));
    add(make("twolf", {.53,  .01,  .00,  .00,  .25,  .08,  .13},
             16.0, .070, .040, .012, 0.0, 2.0, 1209));
    add(make("vortex", {.56, .01,  .00,  .00,  .24,  .09,  .10},
             26.0, .030, .020, .004, 0.0, 2.0, 1210));
    add(make("vpr",   {.54,  .01,  .00,  .00,  .24,  .09,  .12},
             18.0, .055, .035, .008, 0.0, 2.0, 1211));
    return t;
}

const std::map<std::string, BenchmarkProfile>&
table()
{
    static const std::map<std::string, BenchmarkProfile> t =
        buildTable();
    return t;
}

} // namespace

const BenchmarkProfile&
spec2000(const std::string& name)
{
    const auto& t = table();
    auto it = t.find(name);
    if (it == t.end())
        fatal("unknown benchmark profile '", name, "'");
    return it->second;
}

const std::vector<std::string>&
spec2000Names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& [name, profile] : table())
            v.push_back(name);
        return v;
    }();
    return names;
}

const BenchmarkProfile&
syntheticIntPeak()
{
    static const BenchmarkProfile p = [] {
        BenchmarkProfile q =
            make("int_peak", {.97, .01, .00, .00, .01, .005, .005},
                 64.0, .001, .0, .0, 0.0, 1.0, 7001);
        q.nearDepFrac = 0.0; // fully independent: saturates width
        return q;
    }();
    return p;
}

const BenchmarkProfile&
syntheticFpPeak()
{
    static const BenchmarkProfile p = [] {
        BenchmarkProfile q =
            make("fp_peak", {.20, .00, .55, .20, .03, .01, .01},
                 64.0, .001, .0, .0, 0.0, 1.0, 7002);
        q.nearDepFrac = 0.0;
        return q;
    }();
    return p;
}

const BenchmarkProfile&
syntheticIdle()
{
    static const BenchmarkProfile p =
        make("idle", {.45, .01, .00, .00, .35, .06, .13},
             2.0, .10, .20, .30, 0.0, 1.0, 7003);
    return p;
}

} // namespace tempest
