#include "sim/simulator.hh"

#include <algorithm>
#include <cassert>

#include "common/log.hh"
#include "common/profiler.hh"

namespace tempest
{

const BlockTempStats&
SimResult::block(const std::string& name) const
{
    for (const BlockTempStats& b : blocks) {
        if (b.name == name)
            return b;
    }
    fatal("SimResult has no block named '", name, "'");
}

Simulator::Simulator(const SimConfig& config,
                     const BenchmarkProfile& profile)
    : config_(config),
      floorplan_(Floorplan::ev6Like(config.variant))
{
    config_.pipeline.validate();
    config_.thermal.validate();

    core_ = std::make_unique<OooCore>(config_.pipeline, profile,
                                      config_.runSeed);
    power_ = std::make_unique<PowerModel>(
        config_.energy, floorplan_, config_.pipeline,
        config_.pipeline.frequencyHz);
    rc_ = std::make_unique<RcModel>(floorplan_, config_.thermal);
    sensors_ = std::make_unique<SensorBank>(
        *rc_, config_.sensorQuantum, 0.0, config_.runSeed ^ 0x5e);
    dtm_ = std::make_unique<ResourceBalancingDtm>(
        config_.dtm, *core_, floorplan_);

    blockAvg_.resize(
        static_cast<std::size_t>(floorplan_.numBlocks()));
    blockMax_.assign(
        static_cast<std::size_t>(floorplan_.numBlocks()), 0.0);
}

void
Simulator::runInterval(bool stalled, std::uint64_t cycles)
{
    ActivityRecord interval;
    if (stalled) {
        core_->stallCycles(cycles, interval);
    } else {
        for (std::uint64_t c = 0; c < cycles; ++c)
            core_->tick(interval);
    }

    {
        TEMPEST_PROF_SCOPE(ProfStage::Power);
        power_->blockPowers(interval, powerScratch_);
        rc_->setPowers(powerScratch_);
    }

    if (!warmed_) {
        // Warm start: steady state of the first interval's power,
        // clamped to the threshold per block (a managed processor
        // never sits above it; package nodes keep their steady
        // values).
        warmed_ = true;
        if (config_.warmStart) {
            rc_->solveSteadyState();
            for (int b = 0; b < rc_->numBlocks(); ++b) {
                if (rc_->temperature(b) >
                    config_.dtm.maxTemperature) {
                    rc_->setTemperature(
                        b, config_.dtm.maxTemperature);
                }
            }
        }
    }

    const Seconds dt =
        static_cast<double>(interval.cycles) /
        config_.pipeline.frequencyHz;
    {
        TEMPEST_PROF_SCOPE(ProfStage::Thermal);
        rc_->step(dt);
    }

    total_.add(interval);

    {
        TEMPEST_PROF_SCOPE(ProfStage::Sensor);
        sensors_->readAll(tempsScratch_);
    }
    const std::vector<Kelvin>& temps = tempsScratch_;
    for (int b = 0; b < floorplan_.numBlocks(); ++b) {
        const auto i = static_cast<std::size_t>(b);
        if (!stalled)
            blockAvg_[i].sample(temps[i]);
        blockMax_[i] = std::max(blockMax_[i], temps[i]);
    }

    if (trace_) {
        trace_->record(core_->cycle(), stalled,
                       interval.instructions, temps,
                       powerScratch_);
    }

    bool global_stall = false;
    if (!stalled) {
        TEMPEST_PROF_SCOPE(ProfStage::Dtm);
        global_stall =
            dtm_->sample(temps) == DtmAction::GlobalStall;
    }
    if (global_stall) {
        // Stall for the cooling time, advanced in interval-sized
        // chunks so the thermal trace stays smooth, plus a final
        // partial chunk covering the remainder so the stall spans
        // the cooling time exactly (truncating to whole intervals
        // under-stalled by up to one interval per trigger). The
        // cooling time scales with the thermal time compression.
        const Seconds cooling =
            config_.dtm.coolingTime * config_.thermal.timeScale;
        const auto cooling_cycles = static_cast<std::uint64_t>(
            cooling * config_.pipeline.frequencyHz);
        std::uint64_t stalled_cycles = 0;
        while (stalled_cycles < cooling_cycles) {
            const std::uint64_t n =
                std::min(cooling_cycles - stalled_cycles,
                         config_.sampleIntervalCycles);
            runInterval(/*stalled=*/true, n);
            stalled_cycles += n;
        }
        assert(stalled_cycles >= cooling_cycles);
    }
}

SimResult
Simulator::run(std::uint64_t max_cycles)
{
    const std::uint64_t end_cycle = core_->cycle() + max_cycles;
    while (core_->cycle() < end_cycle)
        runInterval(/*stalled=*/false, config_.sampleIntervalCycles);

    SimResult result;
    result.benchmark = core_->profile().name;
    result.cycles = core_->cycle();
    result.instructions = core_->committed();
    result.ipc = core_->ipc();
    result.stallCycles = total_.stallCycles;
    result.dtm = dtm_->stats();
    result.activity = total_;
    result.blocks.resize(
        static_cast<std::size_t>(floorplan_.numBlocks()));
    for (int b = 0; b < floorplan_.numBlocks(); ++b) {
        const auto i = static_cast<std::size_t>(b);
        result.blocks[i].name = floorplan_.block(b).name;
        result.blocks[i].avg = blockAvg_[i].mean();
        result.blocks[i].max = blockMax_[i];
    }
    return result;
}

} // namespace tempest
