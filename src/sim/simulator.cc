#include "sim/simulator.hh"

#include <algorithm>
#include <cassert>

#include "common/log.hh"
#include "common/profiler.hh"
#include "sim/checkpoint/checkpoint.hh"

namespace tempest
{

namespace
{

// Checkpoint chunk ids, one per component (see DESIGN.md §11).
constexpr std::uint32_t kChunkMeta = chunkId("META");
constexpr std::uint32_t kChunkCore = chunkId("CORE");
constexpr std::uint32_t kChunkWorkload = chunkId("WKLD");
constexpr std::uint32_t kChunkIqInt = chunkId("IQIN");
constexpr std::uint32_t kChunkIqFp = chunkId("IQFP");
constexpr std::uint32_t kChunkAlus = chunkId("ALUP");
constexpr std::uint32_t kChunkRegfile = chunkId("REGF");
constexpr std::uint32_t kChunkCaches = chunkId("CACH");
constexpr std::uint32_t kChunkThermal = chunkId("THRM");
constexpr std::uint32_t kChunkSensors = chunkId("SENS");
constexpr std::uint32_t kChunkDtm = chunkId("DTMS");
constexpr std::uint32_t kChunkSimStats = chunkId("SIMR");

} // namespace

const BlockTempStats&
SimResult::block(const std::string& name) const
{
    for (const BlockTempStats& b : blocks) {
        if (b.name == name)
            return b;
    }
    fatal("SimResult has no block named '", name, "'");
}

Simulator::Simulator(const SimConfig& config,
                     const BenchmarkProfile& profile)
    : config_(config),
      floorplan_(Floorplan::ev6Like(config.variant))
{
    config_.pipeline.validate();
    config_.thermal.validate();

    core_ = std::make_unique<OooCore>(config_.pipeline, profile,
                                      config_.runSeed, &arena_);
    power_ = std::make_unique<PowerModel>(
        config_.energy, floorplan_, config_.pipeline,
        config_.pipeline.frequencyHz);
    rc_ = std::make_unique<RcModel>(floorplan_, config_.thermal);
    sensors_ = std::make_unique<SensorBank>(
        *rc_, config_.sensorQuantum, 0.0, config_.runSeed ^ 0x5e);
    dtm_ = std::make_unique<ResourceBalancingDtm>(
        config_.dtm, *core_, floorplan_);

    blockAccum_.resize(
        static_cast<std::size_t>(floorplan_.numBlocks()));
}

void
Simulator::runInterval(bool stalled, std::uint64_t cycles)
{
    ActivityRecord interval;
    if (stalled) {
        core_->stallCycles(cycles, interval);
    } else {
        for (std::uint64_t c = 0; c < cycles; ++c)
            core_->tick(interval);
    }

    {
        TEMPEST_PROF_SCOPE(ProfStage::Power);
        power_->blockPowers(interval, powerScratch_);
        rc_->setPowers(powerScratch_);
    }

    if (!warmed_) {
        // Warm start: steady state of the first interval's power,
        // clamped to the threshold per block (a managed processor
        // never sits above it; package nodes keep their steady
        // values).
        warmed_ = true;
        if (config_.warmStart) {
            rc_->solveSteadyState();
            for (int b = 0; b < rc_->numBlocks(); ++b) {
                if (rc_->temperature(b) >
                    config_.dtm.maxTemperature) {
                    rc_->setTemperature(
                        b, config_.dtm.maxTemperature);
                }
            }
        }
    }

    const Seconds dt =
        static_cast<double>(interval.cycles) /
        config_.pipeline.frequencyHz;
    {
        TEMPEST_PROF_SCOPE(ProfStage::Thermal);
        rc_->step(dt);
    }

    total_.add(interval);

    // Batched interval pass: one loop over the packed per-block
    // accumulators fuses the sensor read (ascending block order, so
    // the sensor RNG draw order matches SensorBank::readAll), the
    // running average and peak updates, and the hottest-block
    // reduction the DTM wants — instead of three separate sweeps
    // over parallel vectors.
    Kelvin hottest = 0;
    const int num_blocks = floorplan_.numBlocks();
    tempsScratch_.resize(static_cast<std::size_t>(num_blocks));
    {
        TEMPEST_PROF_SCOPE(ProfStage::Sensor);
        for (int b = 0; b < num_blocks; ++b) {
            const auto i = static_cast<std::size_t>(b);
            const Kelvin t = sensors_->read(b);
            tempsScratch_[i] = t;
            BlockThermalAccum& acc = blockAccum_[i];
            if (!stalled)
                acc.avg.sample(t);
            acc.maxT = std::max(acc.maxT, t);
            hottest = std::max(hottest, t);
        }
    }
    const std::vector<Kelvin>& temps = tempsScratch_;

    if (trace_) {
        trace_->record(core_->cycle(), stalled,
                       interval.instructions, temps,
                       powerScratch_);
    }

    bool global_stall = false;
    if (!stalled) {
        TEMPEST_PROF_SCOPE(ProfStage::Dtm);
        global_stall = dtm_->sample(temps, hottest) ==
                       DtmAction::GlobalStall;
    }
    if (global_stall) {
        // Stall for the cooling time, advanced in interval-sized
        // chunks so the thermal trace stays smooth, plus a final
        // partial chunk covering the remainder so the stall spans
        // the cooling time exactly (truncating to whole intervals
        // under-stalled by up to one interval per trigger). The
        // cooling time scales with the thermal time compression.
        const Seconds cooling =
            config_.dtm.coolingTime * config_.thermal.timeScale;
        const auto cooling_cycles = static_cast<std::uint64_t>(
            cooling * config_.pipeline.frequencyHz);
        std::uint64_t stalled_cycles = 0;
        while (stalled_cycles < cooling_cycles) {
            const std::uint64_t n =
                std::min(cooling_cycles - stalled_cycles,
                         config_.sampleIntervalCycles);
            runInterval(/*stalled=*/true, n);
            stalled_cycles += n;
        }
        assert(stalled_cycles >= cooling_cycles);
    }
}

void
Simulator::runTo(std::uint64_t end_cycle)
{
    while (core_->cycle() < end_cycle)
        runInterval(/*stalled=*/false, config_.sampleIntervalCycles);
}

SimResult
Simulator::result() const
{
    SimResult result;
    result.benchmark = core_->profile().name;
    result.cycles = core_->cycle() - measureStartCycle_;
    result.instructions =
        core_->committed() - measureStartCommitted_;
    result.ipc =
        result.cycles
            ? static_cast<double>(result.instructions) /
                  static_cast<double>(result.cycles)
            : 0.0;
    result.stallCycles = total_.stallCycles;
    result.dtm = dtm_->stats();
    result.activity = total_;
    result.blocks.resize(
        static_cast<std::size_t>(floorplan_.numBlocks()));
    for (int b = 0; b < floorplan_.numBlocks(); ++b) {
        const auto i = static_cast<std::size_t>(b);
        result.blocks[i].name = floorplan_.block(b).name;
        result.blocks[i].avg = blockAccum_[i].avg.mean();
        result.blocks[i].max = blockAccum_[i].maxT;
    }
    return result;
}

SimResult
Simulator::run(std::uint64_t max_cycles)
{
    runTo(core_->cycle() + max_cycles);
    return result();
}

void
Simulator::resetMeasurement()
{
    total_.clear();
    for (BlockThermalAccum& acc : blockAccum_) {
        acc.avg.reset();
        acc.maxT = 0.0;
    }
    dtm_->resetStats();
    measureStartCycle_ = core_->cycle();
    measureStartCommitted_ = core_->committed();
}

std::string
Simulator::saveCheckpoint() const
{
    CheckpointWriter cp;

    StateWriter& meta = cp.chunk(kChunkMeta);
    meta.str(core_->profile().name);
    meta.u64(config_.runSeed);
    meta.i32(floorplan_.numBlocks());
    meta.u64(config_.sampleIntervalCycles);
    meta.u64(core_->cycle());

    core_->saveState(cp.chunk(kChunkCore));
    core_->stream().saveState(cp.chunk(kChunkWorkload));
    core_->intQueue().saveState(cp.chunk(kChunkIqInt));
    core_->fpQueue().saveState(cp.chunk(kChunkIqFp));
    core_->alus().saveState(cp.chunk(kChunkAlus));
    core_->intRegfile().saveState(cp.chunk(kChunkRegfile));
    core_->caches().saveState(cp.chunk(kChunkCaches));
    rc_->saveState(cp.chunk(kChunkThermal));
    sensors_->saveState(cp.chunk(kChunkSensors));
    dtm_->saveState(cp.chunk(kChunkDtm));

    StateWriter& stats = cp.chunk(kChunkSimStats);
    saveActivity(stats, total_);
    stats.u32(static_cast<std::uint32_t>(blockAccum_.size()));
    for (const BlockThermalAccum& acc : blockAccum_) {
        stats.u64(acc.avg.count());
        stats.f64(acc.avg.sum());
        stats.f64(acc.avg.min());
        stats.f64(acc.avg.max());
    }
    for (const BlockThermalAccum& acc : blockAccum_)
        stats.f64(acc.maxT);
    stats.boolean(warmed_);
    stats.u64(measureStartCycle_);
    stats.u64(measureStartCommitted_);

    return cp.serialize();
}

void
Simulator::restoreCheckpoint(const std::string& bytes)
{
    const CheckpointReader cp(bytes);

    StateReader meta = cp.chunk(kChunkMeta);
    const std::string benchmark = meta.str();
    const std::uint64_t seed = meta.u64();
    const int blocks = meta.i32();
    if (benchmark != core_->profile().name) {
        fatal("checkpoint is for benchmark '", benchmark,
              "', this simulator runs '", core_->profile().name,
              "'");
    }
    if (seed != config_.runSeed) {
        fatal("checkpoint was taken with run seed ", seed,
              ", this simulator uses ", config_.runSeed);
    }
    if (blocks != floorplan_.numBlocks()) {
        fatal("checkpoint floorplan has ", blocks,
              " blocks, this simulator has ",
              floorplan_.numBlocks(),
              " (different floorplan variant?)");
    }

    {
        StateReader r = cp.chunk(kChunkCore);
        core_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkWorkload);
        core_->stream().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkIqInt);
        core_->intQueue().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkIqFp);
        core_->fpQueue().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkAlus);
        core_->alus().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkRegfile);
        core_->intRegfile().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkCaches);
        core_->caches().loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkThermal);
        rc_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkSensors);
        sensors_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkDtm);
        dtm_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkSimStats);
        loadActivity(r, total_);
        const auto n = r.u32();
        if (n != blockAccum_.size()) {
            fatal("checkpoint block statistics cover ", n,
                  " blocks, this simulator has ",
                  blockAccum_.size());
        }
        for (BlockThermalAccum& acc : blockAccum_) {
            const std::uint64_t count = r.u64();
            const double sum = r.f64();
            const double min = r.f64();
            const double max = r.f64();
            acc.avg.restore(count, sum, min, max);
        }
        for (BlockThermalAccum& acc : blockAccum_)
            acc.maxT = r.f64();
        warmed_ = r.boolean();
        measureStartCycle_ = r.u64();
        measureStartCommitted_ = r.u64();
    }

    // Re-assert config-derived controls: a warm-state fork
    // restores a snapshot taken under the (neutral) warm-up
    // configuration, and this simulator's own DTM config must win
    // over whatever the snapshot carried.
    core_->setRoundRobin(config_.dtm.roundRobin);
    core_->intRegfile().setMapping(config_.dtm.mapping);
    if (!config_.dtm.fetchThrottling)
        core_->setFetchInterval(1);
}

} // namespace tempest
