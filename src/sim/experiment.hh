/**
 * @file
 * Named experiment configurations reproducing the paper's
 * evaluation (§4), plus helpers the benches and examples share.
 *
 * Each table/figure maps to a set of SimConfigs:
 *
 * - Figure 6 / Table 4: IQ-constrained floorplan; "base"
 *   (temporal fallback only) vs "activity toggling".
 * - Figure 7 / Table 5: ALU-constrained floorplan; "base" vs
 *   "fine-grain turnoff" vs ideal "round-robin".
 * - Figure 8 / Table 6: regfile-constrained floorplan; the four
 *   combinations of {priority, balanced} x {turnoff, none}.
 *
 * Experiments run with compressed thermal time (timeScale) so a
 * few tens of millions of cycles traverse many thermal time
 * constants; the sampling-interval : time-constant : cooling-time
 * ratios match the paper's (see DESIGN.md).
 */

#ifndef TEMPEST_SIM_EXPERIMENT_HH
#define TEMPEST_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace tempest
{
namespace experiments
{

/** Default thermal time compression for experiments. */
inline constexpr double kTimeScale = 0.04;

/** Default simulated cycles per benchmark run. */
inline constexpr std::uint64_t kRunCycles = 24'000'000;

/** Shorter runs for smoke tests. */
inline constexpr std::uint64_t kSmokeCycles = 4'000'000;

/** Common base: Table 2 pipeline, default energies, compressed
 * thermal time. */
SimConfig baseConfig(FloorplanVariant variant,
                     double time_scale = kTimeScale);

// ---- Figure 6 / Table 4 (issue queue) ----
/** IQ-constrained, temporal technique only. */
SimConfig iqBase(double time_scale = kTimeScale);
/** IQ-constrained with activity toggling. */
SimConfig iqToggling(double time_scale = kTimeScale);

// ---- Figure 7 / Table 5 (ALUs) ----
/** ALU-constrained, static priority, temporal only. */
SimConfig aluBase(double time_scale = kTimeScale);
/** ALU-constrained with fine-grain turnoff. */
SimConfig aluFineGrain(double time_scale = kTimeScale);
/** ALU-constrained with ideal round-robin (upper bound). */
SimConfig aluRoundRobin(double time_scale = kTimeScale);

// ---- Figure 8 / Table 6 (register file) ----
/** Regfile-constrained with a given mapping, with or without
 * fine-grain copy turnoff. */
SimConfig regfileConfig(PortMapping mapping, bool fine_grain,
                        double time_scale = kTimeScale);

/** Run one benchmark under one configuration. */
SimResult runBenchmark(const SimConfig& config,
                       const std::string& benchmark,
                       std::uint64_t cycles = kRunCycles);

/** Percentage speedup of `b` over `a` (in IPC). */
double speedupPercent(const SimResult& a, const SimResult& b);

/**
 * FNV-1a 64 over every field of a SimResult: benchmark name, ipc
 * (IEEE bit pattern), cycles, instructions, stall cycles, every
 * ActivityRecord counter, the DTM event counts, and all per-block
 * temperature statistics (bit patterns). Two results hash equal
 * iff the simulations were bit-identical — the identity the
 * golden, runner, and checkpoint tests all assert.
 */
std::uint64_t hashSimResult(const SimResult& r);

/**
 * Geometric-mean IPC speedup (percent) of config B over config A
 * across paired results.
 */
double meanSpeedupPercent(const std::vector<SimResult>& base,
                          const std::vector<SimResult>& improved);

/** Render a fixed-width ASCII table; columns sized to content. */
std::string renderTable(
    const std::vector<std::vector<std::string>>& rows);

} // namespace experiments
} // namespace tempest

#endif // TEMPEST_SIM_EXPERIMENT_HH
