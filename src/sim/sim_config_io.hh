/**
 * @file
 * Config-file <-> SimConfig translation shared by the CLI driver
 * (tools/tempest_run.cc) and the serve daemon (src/serve/). Both
 * accept the same dotted keys, so a request sent to tempest_serve
 * names exactly the simulation the one-shot driver would run:
 *
 *   [run]      seed
 *   [floorplan] variant = baseline|iq|alu|regfile
 *   [dtm]      toggling, alu_turnoff, regfile_turnoff,
 *              round_robin, fetch_throttling,
 *              mapping = priority|balanced|completely-balanced,
 *              max_temperature, toggle_delta, cooling_time
 *   [thermal]  time_scale, ambient, convection,
 *              solver = expm|euler, max_cached_propagators,
 *              r_stack_bond, stacked_die_thickness
 *   [sim]      sample_interval, warm_start
 *
 * The CMP layer adds (cmpConfigFromConfig):
 *
 *   [cmp]      cores, l2, benchmarks (comma-separated, one entry
 *              replicated across cores)
 *   [cmp.migration] enabled, margin, min_gap, cooldown_intervals,
 *              stall_cycles, bytes_per_cycle
 *   [stack]    dram, dram_energy_per_access, dram_static_w
 *
 * Invalid values are fatal() (user error), including the
 * non-positive sample_interval that would otherwise wrap through
 * uint64_t and hang the interval loop.
 */

#ifndef TEMPEST_SIM_SIM_CONFIG_IO_HH
#define TEMPEST_SIM_SIM_CONFIG_IO_HH

#include <string>

#include "common/config.hh"
#include "sim/cmp/cmp_simulator.hh"
#include "sim/simulator.hh"

namespace tempest
{

/** Parse a floorplan variant name; fatal on unknown names. */
FloorplanVariant parseFloorplanVariant(const std::string& name);

/** Parse a thermal solver name; fatal on unknown names. */
ThermalSolver parseThermalSolver(const std::string& name);

/** Parse a register-port mapping name; fatal on unknown names. */
PortMapping parsePortMapping(const std::string& name);

/**
 * Build a SimConfig from dotted config keys (missing keys take the
 * documented defaults). Validates ranges that would otherwise wrap
 * through unsigned conversions: sample_interval and seed must be
 * non-negative, sample_interval must be positive.
 */
SimConfig simConfigFromConfig(const Config& cfg);

/**
 * Build a CmpSimConfig from dotted config keys: the base SimConfig
 * via simConfigFromConfig() plus the cmp.* / cmp.migration.* /
 * stack.* keys. cmp.benchmarks defaults to run.benchmark (itself
 * defaulting to "eon") on every core. With cmp.cores = 1 and
 * stack.dram = false the result names exactly the single-core
 * simulation of the same keys.
 */
CmpSimConfig cmpConfigFromConfig(const Config& cfg);

} // namespace tempest

#endif // TEMPEST_SIM_SIM_CONFIG_IO_HH
