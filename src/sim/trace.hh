/**
 * @file
 * Thermal/performance trace recording.
 *
 * A ThermalTrace collects one sample per sensing interval — cycle,
 * per-block temperature and power, commit count, and stall state —
 * and renders them as CSV for plotting (the time-series views the
 * paper's figures are derived from).
 */

#ifndef TEMPEST_SIM_TRACE_HH
#define TEMPEST_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "thermal/floorplan.hh"

namespace tempest
{

/** One recorded sampling interval. */
struct TraceSample
{
    Cycle cycle = 0;
    bool stalled = false;
    std::uint64_t instructions = 0; ///< committed in the interval
    std::vector<Kelvin> temperature; ///< per floorplan block
    std::vector<Watt> power;         ///< per floorplan block
};

/** A growable thermal/performance trace. */
class ThermalTrace
{
  public:
    /**
     * @param floorplan block naming for the CSV header
     * @param stride record every Nth sample (1 = all)
     */
    explicit ThermalTrace(const Floorplan& floorplan,
                          int stride = 1);

    /** Record one interval (called by the Simulator). */
    void record(Cycle cycle, bool stalled,
                std::uint64_t instructions,
                const std::vector<Kelvin>& temperature,
                const std::vector<Watt>& power);

    std::size_t size() const { return samples_.size(); }
    const TraceSample& sample(std::size_t i) const;

    /** Peak temperature of one block across the trace. */
    Kelvin peak(int block) const;

    /**
     * Render as CSV: cycle, stalled, instructions, then one
     * temperature and one power column per block.
     */
    std::string toCsv() const;

    /** Write the CSV to a file; fatal() on I/O failure. */
    void writeCsv(const std::string& path) const;

  private:
    std::vector<std::string> blockNames_;
    int stride_;
    std::uint64_t seen_ = 0;
    std::vector<TraceSample> samples_;
};

} // namespace tempest

#endif // TEMPEST_SIM_TRACE_HH
