#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/guarded.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "workload/profile.hh"

namespace tempest
{

namespace
{

/** FNV-1a 64-bit over a byte string. */
std::uint64_t
fnv1a(std::uint64_t h, std::string_view s)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kPrime;
    }
    return h;
}

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
deriveRunSeed(std::uint64_t base_seed, std::string_view benchmark,
              std::string_view config_tag)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis
    h = fnv1a(h, benchmark);
    h = fnv1a(h, "\x1f"); // separator: ("ab","c") != ("a","bc")
    h = fnv1a(h, config_tag);
    return mix64(base_seed ^ h);
}

std::size_t
ExperimentRunner::add(ExperimentJob job)
{
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

std::size_t
ExperimentRunner::add(std::string tag, const SimConfig& config,
                      std::string benchmark, std::uint64_t cycles)
{
    ExperimentJob job;
    job.tag = std::move(tag);
    job.benchmark = std::move(benchmark);
    job.config = config;
    job.cycles = cycles;
    return add(std::move(job));
}

int
ExperimentRunner::defaultThreads()
{
    if (const char* env = std::getenv("TEMPEST_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ExperimentOutcome
ExperimentRunner::runJob(const ExperimentJob& job,
                         std::uint64_t base_seed)
{
    ExperimentOutcome out;
    out.tag = job.tag;
    out.benchmark = job.benchmark;
    out.seed = job.deriveSeed
                   ? deriveRunSeed(base_seed, job.benchmark,
                                   job.tag)
                   : job.config.runSeed;
    // det:allow(wallSeconds metric only; never feeds simulation state)
    const auto start = std::chrono::steady_clock::now();
    try {
        SimConfig config = job.config;
        config.runSeed = out.seed;
        Simulator sim(config, spec2000(job.benchmark));
        out.result = sim.run(job.cycles);
        out.ok = true;
    } catch (const std::exception& e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    out.wallSeconds =
        std::chrono::duration<double>(
            // det:allow(wallSeconds metric only; never feeds simulation state)
            std::chrono::steady_clock::now() - start)
            .count();
    return out;
}

std::vector<ExperimentOutcome>
ExperimentRunner::run()
{
    const std::vector<ExperimentJob> jobs = std::move(jobs_);
    jobs_.clear();

    const std::size_t total = jobs.size();
    std::vector<ExperimentOutcome> outcomes(total);
    if (total == 0)
        return outcomes;

    int threads = options_.threads > 0 ? options_.threads
                                       : defaultThreads();
    threads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), total));

    std::atomic<std::size_t> next{0};
    // progress_mutex guards `done` and serializes the progress
    // callback (locals can't carry GUARDED_BY; the lint
    // lock-discipline pass still checks the acquire pairing).
    Mutex progress_mutex;
    std::size_t done = 0;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            outcomes[i] = runJob(jobs[i], options_.baseSeed);
            if (options_.progress) {
                MutexLock lock(progress_mutex);
                options_.progress(outcomes[i], ++done, total);
            }
        }
    };

    if (threads == 1) {
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
    return outcomes;
}

namespace experiments
{

namespace
{

/** Run `fn(i)` for i in [0, total) on `threads` workers, pulling
 * indices from a shared counter. */
template <typename Fn>
void
parallelFor(std::size_t total, int threads, Fn&& fn)
{
    if (total == 0)
        return;
    threads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(threads, 1)), total));
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            fn(i);
        }
    };
    if (threads == 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
}

} // namespace

std::string
warmSnapshot(const SimConfig& warm_config,
             const std::string& benchmark, std::uint64_t seed,
             std::uint64_t warmup_cycles)
{
    SimConfig config = warm_config;
    config.runSeed = seed;
    Simulator sim(config, spec2000(benchmark));
    sim.runTo(warmup_cycles);
    return sim.saveCheckpoint();
}

SimResult
runFromSnapshot(const SimConfig& config,
                const std::string& benchmark, std::uint64_t seed,
                const std::string& snapshot,
                std::uint64_t measure_cycles,
                bool reset_measurement)
{
    SimConfig forked = config;
    forked.runSeed = seed;
    Simulator sim(forked, spec2000(benchmark));
    sim.restoreCheckpoint(snapshot);
    if (reset_measurement)
        sim.resetMeasurement();
    return sim.run(measure_cycles);
}

std::vector<ExperimentOutcome>
runWarmForkSweep(
    const std::vector<std::pair<std::string, SimConfig>>& configs,
    const std::vector<std::string>& benchmarks,
    std::uint64_t measure_cycles, const WarmForkOptions& warm,
    const ExperimentRunner::Options& options)
{
    const int threads = options.threads > 0
                            ? options.threads
                            : ExperimentRunner::defaultThreads();
    const std::size_t num_benchmarks = benchmarks.size();

    // Phase 1: one warm-up per benchmark under the shared neutral
    // configuration. Every fork of a benchmark reuses the
    // warm-up's derived seed so the instruction stream continues
    // identically in all of them.
    std::vector<std::uint64_t> warm_seeds(num_benchmarks);
    std::vector<std::string> snapshots(num_benchmarks);
    std::vector<std::string> warm_errors(num_benchmarks);
    parallelFor(num_benchmarks, threads, [&](std::size_t b) {
        const std::string& benchmark = benchmarks[b];
        warm_seeds[b] = deriveRunSeed(options.baseSeed, benchmark,
                                      warm.warmTag);
        try {
            std::string bytes =
                warmSnapshot(warm.warmConfig, benchmark,
                             warm_seeds[b], warm.warmupCycles);
            if (!warm.spillDir.empty()) {
                writeCheckpointFile(warm.spillDir + "/warm_" +
                                        benchmark + ".ckpt",
                                    bytes);
            } else {
                snapshots[b] = std::move(bytes);
            }
        } catch (const std::exception& e) {
            warm_errors[b] = e.what();
        } catch (...) {
            warm_errors[b] = "unknown exception";
        }
    });

    // Phase 2: fork every (config, benchmark) job from its
    // benchmark's snapshot. Outcome order matches runSweep.
    const std::size_t total = configs.size() * num_benchmarks;
    std::vector<ExperimentOutcome> outcomes(total);
    Mutex progress_mutex;
    std::size_t done = 0;
    parallelFor(total, threads, [&](std::size_t i) {
        const std::size_t c = i / num_benchmarks;
        const std::size_t b = i % num_benchmarks;
        ExperimentOutcome& out = outcomes[i];
        out.tag = configs[c].first;
        out.benchmark = benchmarks[b];
        out.seed = warm_seeds[b];
        // det:allow(wallSeconds metric only; never feeds simulation state)
        const auto start = std::chrono::steady_clock::now();
        if (!warm_errors[b].empty()) {
            out.error = "warm-up failed: " + warm_errors[b];
        } else {
            try {
                const std::string spilled =
                    warm.spillDir.empty()
                        ? std::string()
                        : readCheckpointFile(
                              warm.spillDir + "/warm_" +
                              benchmarks[b] + ".ckpt");
                out.result = runFromSnapshot(
                    configs[c].second, benchmarks[b],
                    warm_seeds[b],
                    warm.spillDir.empty() ? snapshots[b]
                                          : spilled,
                    measure_cycles, warm.resetMeasurement);
                out.ok = true;
            } catch (const std::exception& e) {
                out.error = e.what();
            } catch (...) {
                out.error = "unknown exception";
            }
        }
        out.wallSeconds =
            std::chrono::duration<double>(
                // det:allow(wallSeconds metric only; never feeds simulation state)
                std::chrono::steady_clock::now() - start)
                .count();
        if (options.progress) {
            MutexLock lock(progress_mutex);
            options.progress(out, ++done, total);
        }
    });
    return outcomes;
}

std::vector<ExperimentOutcome>
runSweep(
    const std::vector<std::pair<std::string, SimConfig>>& configs,
    const std::vector<std::string>& benchmarks,
    std::uint64_t cycles, const ExperimentRunner::Options& options)
{
    ExperimentRunner runner(options);
    for (const auto& [tag, config] : configs) {
        for (const std::string& benchmark : benchmarks)
            runner.add(tag, config, benchmark, cycles);
    }
    return runner.run();
}

} // namespace experiments

} // namespace tempest
