#include "sim/sim_config_io.hh"

#include "common/log.hh"

namespace tempest
{

FloorplanVariant
parseFloorplanVariant(const std::string& name)
{
    if (name == "baseline")
        return FloorplanVariant::Baseline;
    if (name == "iq")
        return FloorplanVariant::IqConstrained;
    if (name == "alu")
        return FloorplanVariant::AluConstrained;
    if (name == "regfile")
        return FloorplanVariant::RegfileConstrained;
    fatal("unknown floorplan variant '", name,
          "' (baseline|iq|alu|regfile)");
}

ThermalSolver
parseThermalSolver(const std::string& name)
{
    if (name == "expm")
        return ThermalSolver::Expm;
    if (name == "euler")
        return ThermalSolver::Euler;
    fatal("unknown thermal solver '", name, "' (expm|euler)");
}

PortMapping
parsePortMapping(const std::string& name)
{
    if (name == "priority")
        return PortMapping::Priority;
    if (name == "balanced")
        return PortMapping::Balanced;
    if (name == "completely-balanced")
        return PortMapping::CompletelyBalanced;
    fatal("unknown mapping '", name, "'");
}

SimConfig
simConfigFromConfig(const Config& cfg)
{
    SimConfig sim;
    sim.variant = parseFloorplanVariant(
        cfg.getString("floorplan.variant", "iq"));
    sim.thermal.timeScale =
        cfg.getDouble("thermal.time_scale", 0.04);
    sim.thermal.ambient =
        cfg.getDouble("thermal.ambient", sim.thermal.ambient);
    sim.thermal.rConvection = cfg.getDouble(
        "thermal.convection", sim.thermal.rConvection);
    sim.thermal.solver = parseThermalSolver(
        cfg.getString("thermal.solver", "expm"));
    const std::int64_t sample_interval =
        cfg.getInt("sim.sample_interval", 50000);
    if (sample_interval <= 0) {
        fatal("sim.sample_interval must be > 0 (got ",
              sample_interval, ")");
    }
    sim.sampleIntervalCycles =
        static_cast<std::uint64_t>(sample_interval);
    sim.warmStart = cfg.getBool("sim.warm_start", true);
    const std::int64_t seed = cfg.getInt("run.seed", 1);
    if (seed < 0)
        fatal("run.seed must be >= 0 (got ", seed, ")");
    sim.runSeed = static_cast<std::uint64_t>(seed);

    DtmConfig& dtm = sim.dtm;
    dtm.maxTemperature = cfg.getDouble("dtm.max_temperature",
                                       sim.thermal.maxTemperature);
    dtm.iqToggling = cfg.getBool("dtm.toggling", false);
    dtm.toggleDeltaK =
        cfg.getDouble("dtm.toggle_delta", dtm.toggleDeltaK);
    dtm.aluTurnoff = cfg.getBool("dtm.alu_turnoff", false);
    dtm.regfileTurnoff =
        cfg.getBool("dtm.regfile_turnoff", false);
    dtm.roundRobin = cfg.getBool("dtm.round_robin", false);
    dtm.fetchThrottling =
        cfg.getBool("dtm.fetch_throttling", false);
    dtm.coolingTime =
        cfg.getDouble("dtm.cooling_time", dtm.coolingTime);
    dtm.mapping = parsePortMapping(
        cfg.getString("dtm.mapping", "priority"));
    return sim;
}

} // namespace tempest
