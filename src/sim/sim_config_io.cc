#include "sim/sim_config_io.hh"

#include "common/log.hh"

namespace tempest
{

FloorplanVariant
parseFloorplanVariant(const std::string& name)
{
    if (name == "baseline")
        return FloorplanVariant::Baseline;
    if (name == "iq")
        return FloorplanVariant::IqConstrained;
    if (name == "alu")
        return FloorplanVariant::AluConstrained;
    if (name == "regfile")
        return FloorplanVariant::RegfileConstrained;
    fatal("unknown floorplan variant '", name,
          "' (baseline|iq|alu|regfile)");
}

ThermalSolver
parseThermalSolver(const std::string& name)
{
    if (name == "expm")
        return ThermalSolver::Expm;
    if (name == "euler")
        return ThermalSolver::Euler;
    fatal("unknown thermal solver '", name, "' (expm|euler)");
}

PortMapping
parsePortMapping(const std::string& name)
{
    if (name == "priority")
        return PortMapping::Priority;
    if (name == "balanced")
        return PortMapping::Balanced;
    if (name == "completely-balanced")
        return PortMapping::CompletelyBalanced;
    fatal("unknown mapping '", name, "'");
}

SimConfig
simConfigFromConfig(const Config& cfg)
{
    SimConfig sim;
    sim.variant = parseFloorplanVariant(
        cfg.getString("floorplan.variant", "iq"));
    sim.thermal.timeScale =
        cfg.getDouble("thermal.time_scale", 0.04);
    sim.thermal.ambient =
        cfg.getDouble("thermal.ambient", sim.thermal.ambient);
    sim.thermal.rConvection = cfg.getDouble(
        "thermal.convection", sim.thermal.rConvection);
    sim.thermal.solver = parseThermalSolver(
        cfg.getString("thermal.solver", "expm"));
    const std::int64_t max_cached = cfg.getInt(
        "thermal.max_cached_propagators",
        sim.thermal.maxCachedPropagators);
    if (max_cached < 1) {
        fatal("thermal.max_cached_propagators must be >= 1 (got ",
              max_cached, ")");
    }
    sim.thermal.maxCachedPropagators =
        static_cast<int>(max_cached);
    sim.thermal.rStackBondPerArea = cfg.getDouble(
        "thermal.r_stack_bond", sim.thermal.rStackBondPerArea);
    sim.thermal.stackedDieThickness =
        cfg.getDouble("thermal.stacked_die_thickness",
                      sim.thermal.stackedDieThickness);
    const std::int64_t sample_interval =
        cfg.getInt("sim.sample_interval", 50000);
    if (sample_interval <= 0) {
        fatal("sim.sample_interval must be > 0 (got ",
              sample_interval, ")");
    }
    sim.sampleIntervalCycles =
        static_cast<std::uint64_t>(sample_interval);
    sim.warmStart = cfg.getBool("sim.warm_start", true);
    const std::int64_t seed = cfg.getInt("run.seed", 1);
    if (seed < 0)
        fatal("run.seed must be >= 0 (got ", seed, ")");
    sim.runSeed = static_cast<std::uint64_t>(seed);

    DtmConfig& dtm = sim.dtm;
    dtm.maxTemperature = cfg.getDouble("dtm.max_temperature",
                                       sim.thermal.maxTemperature);
    dtm.iqToggling = cfg.getBool("dtm.toggling", false);
    dtm.toggleDeltaK =
        cfg.getDouble("dtm.toggle_delta", dtm.toggleDeltaK);
    dtm.aluTurnoff = cfg.getBool("dtm.alu_turnoff", false);
    dtm.regfileTurnoff =
        cfg.getBool("dtm.regfile_turnoff", false);
    dtm.roundRobin = cfg.getBool("dtm.round_robin", false);
    dtm.fetchThrottling =
        cfg.getBool("dtm.fetch_throttling", false);
    dtm.coolingTime =
        cfg.getDouble("dtm.cooling_time", dtm.coolingTime);
    dtm.mapping = parsePortMapping(
        cfg.getString("dtm.mapping", "priority"));
    return sim;
}

namespace
{

/** Split a comma-separated list, trimming surrounding spaces. */
std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::size_t a = pos;
        std::size_t b = comma;
        while (a < b && s[a] == ' ')
            ++a;
        while (b > a && s[b - 1] == ' ')
            --b;
        if (b > a)
            out.push_back(s.substr(a, b - a));
        pos = comma + 1;
    }
    return out;
}

} // namespace

CmpSimConfig
cmpConfigFromConfig(const Config& cfg)
{
    CmpSimConfig cmp;
    cmp.base = simConfigFromConfig(cfg);

    const std::int64_t cores = cfg.getInt("cmp.cores", 1);
    if (cores < 1 || cores > 8)
        fatal("cmp.cores out of range [1, 8] (got ", cores, ")");
    cmp.cores = static_cast<int>(cores);
    cmp.sharedL2 = cfg.getBool("cmp.l2", true);
    cmp.benchmarks = splitList(cfg.getString(
        "cmp.benchmarks", cfg.getString("run.benchmark", "eon")));
    if (cmp.benchmarks.empty())
        fatal("cmp.benchmarks names no benchmarks");

    CmpMigrationConfig& mig = cmp.migration;
    mig.enabled = cfg.getBool("cmp.migration.enabled", false);
    mig.marginK =
        cfg.getDouble("cmp.migration.margin", mig.marginK);
    mig.minGapK =
        cfg.getDouble("cmp.migration.min_gap", mig.minGapK);
    const std::int64_t cooldown =
        cfg.getInt("cmp.migration.cooldown_intervals",
                   static_cast<std::int64_t>(
                       mig.cooldownIntervals));
    if (cooldown < 0) {
        fatal("cmp.migration.cooldown_intervals must be >= 0 "
              "(got ", cooldown, ")");
    }
    mig.cooldownIntervals = static_cast<std::uint64_t>(cooldown);
    const std::int64_t stall = cfg.getInt(
        "cmp.migration.stall_cycles",
        static_cast<std::int64_t>(mig.baseStallCycles));
    if (stall < 0) {
        fatal("cmp.migration.stall_cycles must be >= 0 (got ",
              stall, ")");
    }
    mig.baseStallCycles = static_cast<std::uint64_t>(stall);
    const std::int64_t bus = cfg.getInt(
        "cmp.migration.bytes_per_cycle",
        static_cast<std::int64_t>(mig.busBytesPerCycle));
    if (bus < 1) {
        fatal("cmp.migration.bytes_per_cycle must be >= 1 (got ",
              bus, ")");
    }
    mig.busBytesPerCycle = static_cast<std::uint64_t>(bus);

    CmpStackConfig& stack = cmp.stack;
    stack.dram = cfg.getBool("stack.dram", false);
    stack.dramEnergyPerAccess =
        cfg.getDouble("stack.dram_energy_per_access",
                      stack.dramEnergyPerAccess);
    stack.dramStaticW =
        cfg.getDouble("stack.dram_static_w", stack.dramStaticW);

    cmp.validate();
    return cmp;
}

} // namespace tempest
