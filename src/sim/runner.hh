/**
 * @file
 * Parallel experiment runner.
 *
 * A full reproduction of the paper is a sweep of 22 benchmark
 * profiles times 2-4 configurations, and every simulation in the
 * sweep is independent. The runner executes (SimConfig, benchmark,
 * cycles) jobs on a fixed-size thread pool and guarantees that the
 * result set is bit-identical to running the same jobs serially:
 *
 * - Each job's RNG seed is derived deterministically from
 *   (baseSeed, benchmark, config tag) by deriveRunSeed(), never
 *   from scheduling order, thread identity, or wall-clock time.
 * - Results are stored by submission index, so the returned vector
 *   has a stable order no matter which worker finishes first.
 * - A job that throws (e.g. fatal() on an unknown benchmark) is
 *   captured into its ExperimentOutcome instead of aborting the
 *   sweep; the remaining jobs still run.
 *
 * Progress is reported through an optional callback, invoked under
 * a lock as jobs complete (completion order, not submission
 * order).
 */

#ifndef TEMPEST_SIM_RUNNER_HH
#define TEMPEST_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulator.hh"

namespace tempest
{

/**
 * Per-run seed derived from the experiment identity. Stable across
 * platforms and library versions (FNV-1a over the strings, mixed
 * with the base seed through a splitmix64 finalizer), so a given
 * (baseSeed, benchmark, config tag) names the same simulation
 * forever, independent of how many sibling jobs a sweep contains
 * or the order they execute in.
 */
std::uint64_t deriveRunSeed(std::uint64_t base_seed,
                            std::string_view benchmark,
                            std::string_view config_tag);

/** One simulation to execute. */
struct ExperimentJob
{
    /** Configuration identity within the sweep (e.g. "toggling");
     * part of the seed derivation. */
    std::string tag;
    /** SPEC2000 profile name (see spec2000Names()). */
    std::string benchmark;
    SimConfig config;
    std::uint64_t cycles = 0;
    /** Overwrite config.runSeed with deriveRunSeed(baseSeed,
     * benchmark, tag); false keeps the caller's runSeed (the
     * legacy serial-path behaviour). */
    bool deriveSeed = true;
};

/** Result (or captured failure) of one job. */
struct ExperimentOutcome
{
    std::string tag;
    std::string benchmark;
    std::uint64_t seed = 0; ///< runSeed the simulation used
    bool ok = false;
    std::string error;      ///< failure description when !ok
    SimResult result;       ///< valid only when ok
    /** Wall-clock seconds this job took (simulation only, not
     * queueing); informational, never part of the result hash. */
    double wallSeconds = 0;
};

/** Fixed-size thread pool over independent simulation jobs. */
class ExperimentRunner
{
  public:
    /** Called as each job completes: (outcome, done, total). */
    using ProgressFn = std::function<void(
        const ExperimentOutcome&, std::size_t, std::size_t)>;

    struct Options
    {
        /** Worker count; <= 0 selects defaultThreads(). */
        int threads = 0;
        /** Experiment-level seed the per-job seeds derive from. */
        std::uint64_t baseSeed = 1;
        /** Optional completion callback (serialized). */
        ProgressFn progress;
    };

    ExperimentRunner() = default;
    explicit ExperimentRunner(Options options)
        : options_(std::move(options))
    {}

    /** Queue a job; @return its submission index. */
    std::size_t add(ExperimentJob job);

    /** Queue a job from its parts; @return submission index. */
    std::size_t add(std::string tag, const SimConfig& config,
                    std::string benchmark, std::uint64_t cycles);

    /** Jobs queued and not yet run. */
    std::size_t pending() const { return jobs_.size(); }

    /**
     * Execute every queued job and clear the queue. Outcomes are
     * indexed by submission order regardless of scheduling.
     */
    std::vector<ExperimentOutcome> run();

    /**
     * Execute one job on the calling thread — the serial reference
     * path the pool's workers also use, so parallel results are
     * bit-identical to serial ones by construction. Exceptions are
     * captured into the outcome.
     */
    static ExperimentOutcome runJob(const ExperimentJob& job,
                                    std::uint64_t base_seed);

    /** TEMPEST_THREADS if set, else hardware concurrency. */
    static int defaultThreads();

  private:
    Options options_;
    std::vector<ExperimentJob> jobs_;
};

namespace experiments
{

/**
 * Run the cross product of tagged configurations and benchmarks
 * through the runner. Outcome order: configs-major, benchmarks
 * minor (the order the nested loops submit in).
 */
std::vector<ExperimentOutcome> runSweep(
    const std::vector<std::pair<std::string, SimConfig>>& configs,
    const std::vector<std::string>& benchmarks,
    std::uint64_t cycles,
    const ExperimentRunner::Options& options = {});

/**
 * Warm-state forking (see DESIGN.md §11).
 *
 * Instead of every (config, benchmark) job re-simulating the same
 * warm-up prefix, each benchmark is warmed up once under a shared
 * neutral configuration, snapshotted, and every DTM configuration
 * forks from that snapshot. All forks of a benchmark share the
 * warm-up's derived seed — deriveRunSeed(baseSeed, benchmark,
 * warmTag) — so the instruction stream continues identically in
 * every fork; per-config decorrelation is intentionally given up,
 * which is exactly the paper's methodology (same workload, DTM
 * policies differ).
 *
 * Discipline: the warm-up configuration must use the same
 * pipeline geometry, floorplan variant, and thermal parameters as
 * every fork (restoreCheckpoint enforces this), and should keep
 * all DTM techniques off so no technique-specific state leaks
 * into the snapshot. Config-derived controls (round-robin,
 * port mapping, fetch throttle) are re-asserted per fork by
 * restoreCheckpoint().
 */
struct WarmForkOptions
{
    /** Shared warm-up configuration (neutral: techniques off). */
    SimConfig warmConfig;
    /** Cycles to warm up before the snapshot. */
    std::uint64_t warmupCycles = 0;
    /** Seed identity of the warm-up (shared by all forks). */
    std::string warmTag = "warmup";
    /** Zero measurement state after restore so results cover only
     * the post-fork region. */
    bool resetMeasurement = true;
    /** Non-empty: spill snapshots to `<dir>/warm_<bench>.ckpt`
     * and re-read per fork instead of keeping them in memory. */
    std::string spillDir;
};

/**
 * Run the (configs x benchmarks) sweep with warm-state forking:
 * one warm-up per benchmark, then every config forks from the
 * snapshot. Outcome order matches runSweep (configs-major).
 * Warm-ups and forks both run on the options thread pool, and the
 * outcome set is bit-identical at any thread count.
 */
std::vector<ExperimentOutcome> runWarmForkSweep(
    const std::vector<std::pair<std::string, SimConfig>>& configs,
    const std::vector<std::string>& benchmarks,
    std::uint64_t measure_cycles, const WarmForkOptions& warm,
    const ExperimentRunner::Options& options = {});

/**
 * Warm one benchmark under `warm_config` for `warmup_cycles` and
 * return the snapshot bytes — the single-benchmark half of
 * runWarmForkSweep's phase 1, exposed so long-lived services
 * (tempest_serve's warm-snapshot pool) can build and keep
 * snapshots across requests. `seed` is the exact runSeed the
 * snapshot bakes in; every fork must use the same one
 * (restoreCheckpoint enforces it).
 */
std::string warmSnapshot(const SimConfig& warm_config,
                         const std::string& benchmark,
                         std::uint64_t seed,
                         std::uint64_t warmup_cycles);

/**
 * Fork a simulation from `snapshot` under `config` and run
 * `measure_cycles` more cycles — runWarmForkSweep's phase 2 for
 * one job. `config` may differ from the snapshot's warm-up config
 * in DTM technique settings (restoreCheckpoint re-asserts
 * config-derived controls) but must share benchmark, seed, and
 * geometry. With `reset_measurement`, the result covers only the
 * post-fork region. Deterministic: the same
 * (snapshot, config, measure_cycles) always returns a
 * bit-identical SimResult.
 */
SimResult runFromSnapshot(const SimConfig& config,
                          const std::string& benchmark,
                          std::uint64_t seed,
                          const std::string& snapshot,
                          std::uint64_t measure_cycles,
                          bool reset_measurement = true);

} // namespace experiments

} // namespace tempest

#endif // TEMPEST_SIM_RUNNER_HH
