#include "sim/experiment.hh"

#include <cmath>
#include <cstring>
#include <sstream>

#include "common/log.hh"
#include "sim/runner.hh"

namespace tempest
{
namespace experiments
{

SimConfig
baseConfig(FloorplanVariant variant, double time_scale)
{
    SimConfig config;
    config.variant = variant;
    config.thermal.timeScale = time_scale;
    config.dtm.maxTemperature = config.thermal.maxTemperature;
    // Keep the sensing interval a small fraction of the block time
    // constant when thermal time is compressed (the paper's 100k
    // cycles is ~0.6% of its time constants).
    config.sampleIntervalCycles = 50000;
    return config;
}

SimConfig
iqBase(double time_scale)
{
    return baseConfig(FloorplanVariant::IqConstrained, time_scale);
}

SimConfig
iqToggling(double time_scale)
{
    SimConfig config = iqBase(time_scale);
    config.dtm.iqToggling = true;
    return config;
}

SimConfig
aluBase(double time_scale)
{
    return baseConfig(FloorplanVariant::AluConstrained, time_scale);
}

SimConfig
aluFineGrain(double time_scale)
{
    SimConfig config = aluBase(time_scale);
    config.dtm.aluTurnoff = true;
    return config;
}

SimConfig
aluRoundRobin(double time_scale)
{
    SimConfig config = aluFineGrain(time_scale);
    config.dtm.roundRobin = true;
    return config;
}

SimConfig
regfileConfig(PortMapping mapping, bool fine_grain,
              double time_scale)
{
    SimConfig config =
        baseConfig(FloorplanVariant::RegfileConstrained, time_scale);
    config.dtm.mapping = mapping;
    config.dtm.regfileTurnoff = fine_grain;
    return config;
}

SimResult
runBenchmark(const SimConfig& config, const std::string& benchmark,
             std::uint64_t cycles)
{
    // One-job submission through the runner's serial path, so the
    // serial and parallel APIs share a single execution routine.
    // The caller's runSeed is kept as-is (no sweep-level seed
    // derivation).
    ExperimentJob job;
    job.tag = benchmark;
    job.benchmark = benchmark;
    job.config = config;
    job.cycles = cycles;
    job.deriveSeed = false;
    ExperimentOutcome out =
        ExperimentRunner::runJob(job, config.runSeed);
    if (!out.ok)
        throw FatalError(out.error);
    return out.result;
}

double
speedupPercent(const SimResult& a, const SimResult& b)
{
    if (a.ipc <= 0)
        fatal("speedupPercent: base IPC is zero");
    return 100.0 * (b.ipc / a.ipc - 1.0);
}

double
meanSpeedupPercent(const std::vector<SimResult>& base,
                   const std::vector<SimResult>& improved)
{
    if (base.size() != improved.size() || base.empty())
        fatal("meanSpeedupPercent: mismatched result sets");
    double log_sum = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (base[i].ipc <= 0 || improved[i].ipc <= 0)
            fatal("meanSpeedupPercent: zero IPC result");
        log_sum += std::log(improved[i].ipc / base[i].ipc);
    }
    const double geo =
        std::exp(log_sum / static_cast<double>(base.size()));
    return 100.0 * (geo - 1.0);
}

std::string
renderTable(const std::vector<std::vector<std::string>>& rows)
{
    if (rows.empty())
        return "";
    std::vector<std::size_t> width;
    for (const auto& row : rows) {
        if (width.size() < row.size())
            width.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(width[c] - row[c].size() + 2,
                                  ' ');
            }
        }
        os << '\n';
    }
    return os.str();
}

namespace
{

/** FNV-1a 64-bit, fed one 64-bit word at a time. */
class Fnv1a
{
  public:
    void
    word(std::uint64_t w)
    {
        for (int b = 0; b < 8; ++b) {
            hash_ ^= (w >> (8 * b)) & 0xff;
            hash_ *= 0x100000001b3ULL;
        }
    }

    void
    real(double d)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        word(bits);
    }

    void
    text(const std::string& s)
    {
        for (const char c : s) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

} // namespace

std::uint64_t
hashSimResult(const SimResult& r)
{
    Fnv1a h;
    h.text(r.benchmark);
    h.real(r.ipc);
    h.word(r.cycles);
    h.word(r.instructions);
    h.word(r.stallCycles);

    const ActivityRecord& a = r.activity;
    for (int q = 0; q < kNumIssueQueues; ++q) {
        for (int half = 0; half < 2; ++half) {
            h.word(a.iqEntryMoves[q][half]);
            h.word(a.iqMuxSelects[q][half]);
            h.word(a.iqLongCompactions[q][half]);
            h.word(a.iqCounterOps[q][half]);
            h.word(a.iqOccupiedCycles[q][half]);
            h.word(a.iqDispatchWrites[q][half]);
        }
        h.word(a.iqTagBroadcasts[q]);
        h.word(a.iqPayloadAccesses[q]);
        h.word(a.iqSelectAccesses[q]);
        h.word(a.iqClockGateCycles[q]);
    }
    for (int i = 0; i < kMaxIntAlus; ++i)
        h.word(a.intAluOps[i]);
    for (int i = 0; i < kMaxFpAdders; ++i)
        h.word(a.fpAddOps[i]);
    h.word(a.fpMulOps);
    for (int i = 0; i < kMaxRegfileCopies; ++i) {
        h.word(a.intRegReads[i]);
        h.word(a.intRegWrites[i]);
    }
    h.word(a.fpRegReads);
    h.word(a.fpRegWrites);
    h.word(a.l1iAccesses);
    h.word(a.l1dAccesses);
    h.word(a.l2Accesses);
    h.word(a.bpredAccesses);
    h.word(a.renameOps);
    h.word(a.lsqOps);
    h.word(a.commits);
    h.word(a.cycles);
    h.word(a.stallCycles);
    h.word(a.instructions);

    h.word(r.dtm.iqToggles);
    h.word(r.dtm.aluTurnoffEvents);
    h.word(r.dtm.fpAdderTurnoffEvents);
    h.word(r.dtm.regfileTurnoffEvents);
    h.word(r.dtm.globalStalls);
    h.word(r.dtm.fetchThrottleEvents);

    for (const BlockTempStats& b : r.blocks) {
        h.text(b.name);
        h.real(b.avg);
        h.real(b.max);
    }
    return h.value();
}

} // namespace experiments
} // namespace tempest
