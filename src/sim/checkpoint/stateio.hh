/**
 * @file
 * StateIO: the byte-stream serializer visitor every stateful
 * component implements for checkpointing.
 *
 * A component's `saveState(StateWriter&)` appends its dynamic state
 * as fixed-width little-endian fields; `loadState(StateReader&)`
 * reads them back in the same order. Encoding rules:
 *
 * - integers are fixed-width little-endian (u8/u32/u64); signed
 *   values travel as their two's-complement bit pattern,
 * - doubles travel as their IEEE-754 bit pattern (bit-exact
 *   round-trip, the property the resume bit-identity tests rely
 *   on),
 * - bools are one byte (0/1),
 * - strings are a u32 length followed by raw bytes.
 *
 * The reader is bounds-checked: any read past the end of the
 * payload reports a clear fatal() instead of undefined behaviour,
 * which is what turns a truncated or corrupt checkpoint into a
 * diagnosable error.
 *
 * This header is intentionally dependency-free (common/log.hh
 * only) so every layer — uarch, workload, thermal, dtm — can
 * implement the visitor without linking against the sim library.
 */

#ifndef TEMPEST_SIM_CHECKPOINT_STATEIO_HH
#define TEMPEST_SIM_CHECKPOINT_STATEIO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/log.hh"

namespace tempest
{

/** FNV-1a 64-bit over a byte range (chunk checksums). */
inline std::uint64_t
fnv1a64(const void* data, std::size_t size,
        std::uint64_t h = 0xcbf29ce484222325ULL)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Append-only little-endian field writer. */
class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string& s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s);
    }

    /**
     * Bulk write of one SoA array: a u64 byte count followed by the
     * raw little-endian bytes. Elements must be trivially copyable
     * and fixed-width; multi-byte elements travel in host byte
     * order, which the matching reader validates by length (the
     * checkpoint format is already host-endian per the fixed-width
     * field helpers above — tempest targets little-endian hosts).
     * Lint treats `blob` calls as the serializer for members
     * annotated `ckpt:bulk(<group>)`.
     */
    void
    blob(const void* data, std::size_t n_bytes)
    {
        u64(static_cast<std::uint64_t>(n_bytes));
        buf_.append(static_cast<const char*>(data), n_bytes);
    }

    const std::string& bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked reader over one chunk payload (not owned). */
class StateReader
{
  public:
    explicit StateReader(std::string_view payload)
        : p_(reinterpret_cast<const unsigned char*>(payload.data())),
          end_(p_ + payload.size())
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return *p_++;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(p_), n);
        p_ += n;
        return s;
    }

    /**
     * Bulk read of one SoA array written by StateWriter::blob. The
     * destination must hold exactly n_bytes; a length mismatch is a
     * geometry mismatch (different build or corrupt checkpoint) and
     * is fatal.
     */
    void
    blob(void* out, std::size_t n_bytes)
    {
        const std::uint64_t stored = u64();
        if (stored != n_bytes) {
            fatal("checkpoint bulk array is ", stored,
                  " bytes, expected ", n_bytes,
                  ": geometry mismatch or corrupt checkpoint");
        }
        need(n_bytes);
        std::memcpy(out, p_, n_bytes);
        p_ += n_bytes;
    }

    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    bool atEnd() const { return p_ == end_; }

  private:
    void
    need(std::size_t n)
    {
        if (remaining() < n) {
            fatal("checkpoint chunk ends early (need ", n,
                  " more bytes, have ", remaining(),
                  "): truncated or corrupt checkpoint");
        }
    }

    const unsigned char* p_;
    const unsigned char* end_;
};

} // namespace tempest

#endif // TEMPEST_SIM_CHECKPOINT_STATEIO_HH
