#include "sim/checkpoint/checkpoint.hh"

#include <atomic>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"

namespace tempest
{

namespace
{

constexpr char kMagic[8] = {'T', 'M', 'P', 'S', 'T', 'C', 'K', 'P'};

std::string
tagName(std::uint32_t id)
{
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((id >> (8 * i)) & 0xff);
        s[static_cast<std::size_t>(i)] =
            (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return s;
}

} // namespace

StateWriter&
CheckpointWriter::chunk(std::uint32_t id)
{
    for (const Chunk& c : chunks_) {
        if (c.id == id)
            fatal("duplicate checkpoint chunk '", tagName(id), "'");
    }
    chunks_.push_back(Chunk{id, StateWriter{}});
    return chunks_.back().payload;
}

std::string
CheckpointWriter::serialize() const
{
    StateWriter out;
    for (const char c : kMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kCheckpointVersion);
    out.u32(static_cast<std::uint32_t>(chunks_.size()));
    for (const Chunk& c : chunks_) {
        const std::string& payload = c.payload.bytes();
        out.u32(c.id);
        out.u32(0); // flags, reserved
        out.u64(payload.size());
        for (const char b : payload)
            out.u8(static_cast<std::uint8_t>(b));
        out.u64(fnv1a64(payload.data(), payload.size()));
    }
    return out.bytes();
}

CheckpointReader::CheckpointReader(std::string_view bytes)
{
    if (bytes.size() < sizeof(kMagic) + 8) {
        fatal("checkpoint too small (", bytes.size(),
              " bytes): truncated or not a checkpoint");
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        fatal("bad checkpoint magic: not a Tempest checkpoint");

    StateReader r(bytes.substr(sizeof(kMagic)));
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
        fatal("unsupported checkpoint version ", version,
              " (this build reads version ", kCheckpointVersion,
              ")");
    }
    const std::uint32_t count = r.u32();
    // Chunk payloads are views into `bytes`; track the absolute
    // offset so the views do not copy.
    std::size_t offset = sizeof(kMagic) + 8;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (r.remaining() < 16) {
            fatal("checkpoint truncated in chunk header ", i + 1,
                  " of ", count);
        }
        const std::uint32_t id = r.u32();
        (void)r.u32(); // flags
        const std::uint64_t len = r.u64();
        offset += 16;
        if (r.remaining() < len + 8) {
            fatal("checkpoint truncated inside chunk '",
                  tagName(id), "' (payload ", len, " bytes, ",
                  r.remaining(), " left)");
        }
        const std::string_view payload = bytes.substr(
            offset, static_cast<std::size_t>(len));
        for (std::uint64_t skip = 0; skip < len; ++skip)
            (void)r.u8();
        const std::uint64_t stored = r.u64();
        offset += static_cast<std::size_t>(len) + 8;
        const std::uint64_t computed =
            fnv1a64(payload.data(), payload.size());
        if (stored != computed) {
            fatal("checkpoint chunk '", tagName(id),
                  "' checksum mismatch (stored 0x", std::hex,
                  stored, ", computed 0x", computed, std::dec,
                  "): corrupt checkpoint");
        }
        for (const Chunk& c : chunks_) {
            if (c.id == id) {
                fatal("checkpoint has duplicate chunk '",
                      tagName(id), "'");
            }
        }
        chunks_.push_back(Chunk{id, payload});
    }
    if (!r.atEnd()) {
        fatal("checkpoint has ", r.remaining(),
              " trailing bytes after the last chunk");
    }
}

const CheckpointReader::Chunk*
CheckpointReader::find(std::uint32_t id) const
{
    for (const Chunk& c : chunks_) {
        if (c.id == id)
            return &c;
    }
    return nullptr;
}

bool
CheckpointReader::has(std::uint32_t id) const
{
    return find(id) != nullptr;
}

StateReader
CheckpointReader::chunk(std::uint32_t id) const
{
    const Chunk* c = find(id);
    if (!c) {
        fatal("checkpoint is missing required chunk '",
              tagName(id), "'");
    }
    return StateReader(c->payload);
}

void
writeCheckpointFile(const std::string& path,
                    const std::string& bytes)
{
    // The staging name must be unique per writer: a fixed
    // `path + ".tmp"` lets two concurrent writers targeting the
    // same path (the serve daemon's snapshot pool, parallel
    // warm-fork spills) interleave writes into one staging file
    // and publish a corrupt checkpoint. pid + a process-wide
    // counter disambiguates both across processes and across
    // threads within one process.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            counter.fetch_add(1, std::memory_order_relaxed));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("cannot open '", tmp, "' for checkpoint write");
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    // fflush moves the bytes to the kernel; fsync makes them
    // durable before the rename publishes the file. Without the
    // fsync, a crash right after rename can leave a zero-length
    // "valid" checkpoint on journaled filesystems that commit the
    // rename before the data.
    const bool flushed = std::fflush(f) == 0;
    const bool synced = flushed && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (written != bytes.size() || !flushed || !synced) {
        std::remove(tmp.c_str());
        fatal("short write to checkpoint '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("cannot rename checkpoint '", tmp, "' to '", path,
              "'");
    }
    // Best-effort directory sync so the rename itself is durable.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        (void)::fsync(dfd);
        ::close(dfd);
    }
}

std::string
readCheckpointFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open checkpoint '", path, "'");
    std::string bytes;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        fatal("read error on checkpoint '", path, "'");
    return bytes;
}

} // namespace tempest
