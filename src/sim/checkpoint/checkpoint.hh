/**
 * @file
 * Versioned binary checkpoint container.
 *
 * A checkpoint is a magic + version header followed by
 * per-component chunks:
 *
 *     offset 0   magic  "TMPSTCKP"                 (8 bytes)
 *     offset 8   u32    format version (currently 1)
 *     offset 12  u32    chunk count
 *     then, per chunk:
 *                u32    chunk id (FourCC, e.g. 'CORE')
 *                u32    flags (reserved, 0)
 *                u64    payload length in bytes
 *                       payload
 *                u64    FNV-1a 64 checksum of the payload
 *
 * Every chunk is independently checksummed, so corruption is
 * pinpointed to a component instead of surfacing as undefined
 * behaviour deep inside a load. Readers skip chunks whose id they
 * do not recognise (the length field makes that possible), which
 * is the forward-compatibility policy: new components add new
 * chunks; existing chunk layouts never change silently — a layout
 * change bumps the format version.
 *
 * File I/O is atomic: writeCheckpointFile() writes to a temporary
 * sibling unique to the writer (pid + counter suffix), fsyncs it,
 * and rename()s it into place, so a crash mid-write can never
 * leave a half-written checkpoint where a resumable sweep expects
 * a valid one, and concurrent writers targeting the same path
 * (the serve daemon's snapshot pool) never corrupt each other's
 * staging file — last rename wins with a complete file.
 */

#ifndef TEMPEST_SIM_CHECKPOINT_CHECKPOINT_HH
#define TEMPEST_SIM_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/checkpoint/stateio.hh"

namespace tempest
{

/** Current checkpoint format version. */
inline constexpr std::uint32_t kCheckpointVersion = 1;

/** FourCC chunk id from a 4-character tag. */
constexpr std::uint32_t
chunkId(const char (&tag)[5])
{
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(tag[0])) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(tag[1]))
            << 8) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(tag[2]))
            << 16) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(tag[3]))
            << 24);
}

/** Assembles chunks and serializes them with the format header. */
class CheckpointWriter
{
  public:
    /**
     * Begin a new chunk; returns the payload writer. The reference
     * stays valid until the next chunk() call or serialize().
     */
    StateWriter& chunk(std::uint32_t id);

    /** Serialize header + all chunks + checksums. */
    std::string serialize() const;

  private:
    struct Chunk
    {
        std::uint32_t id;
        StateWriter payload;
    };

    std::vector<Chunk> chunks_;
};

/**
 * Parses and validates a serialized checkpoint. The constructor
 * verifies the magic, version, and every chunk checksum up front;
 * any damage (truncation, flipped bytes, bad lengths) is a clear
 * fatal() at parse time. The reader keeps string_views into the
 * caller's buffer, which must outlive it.
 */
class CheckpointReader
{
  public:
    explicit CheckpointReader(std::string_view bytes);

    /** @return true if a chunk with this id is present. */
    bool has(std::uint32_t id) const;

    /** Payload reader for a chunk; fatal() if absent. */
    StateReader chunk(std::uint32_t id) const;

    std::size_t numChunks() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::uint32_t id;
        std::string_view payload;
    };

    const Chunk* find(std::uint32_t id) const;

    std::vector<Chunk> chunks_;
};

/**
 * Atomically write checkpoint bytes to `path`: write to a
 * per-writer temporary sibling, flush + fsync, then rename() over
 * the target. Safe against concurrent writers on the same path.
 */
void writeCheckpointFile(const std::string& path,
                         const std::string& bytes);

/** Read a whole checkpoint file; fatal() on I/O errors. */
std::string readCheckpointFile(const std::string& path);

} // namespace tempest

#endif // TEMPEST_SIM_CHECKPOINT_CHECKPOINT_HH
