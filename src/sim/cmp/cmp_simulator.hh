/**
 * @file
 * Multicore (CMP) closed-loop thermal simulator.
 *
 * N single-core engines — each the same core + per-core DTM the
 * paper studies — run in lockstep on ONE shared thermal RC network
 * built from a laterally tiled floorplan (Floorplan::cmpTiled):
 * per-core tiles coupled at shared edges, an optional shared-L2
 * strip along the bottom, one spreader and sink for the whole die,
 * and optionally a stacked DRAM die above the cores whose banks
 * heat the blocks beneath them through the bond layer.
 *
 * The engines advance on one thermal clock: every step spans the
 * same cycle range on every core, bounded by the sampling interval
 * and by any in-progress cooling/migration stall so partial chunks
 * land on shared thermal-step boundaries. With cores == 1 and no
 * DRAM layer the loop reproduces the single-core Simulator's
 * floating-point operation sequence exactly — same floorplan, same
 * RC assembly, same sensor-RNG draw order, same stall chunking —
 * so an N=1 CmpSimulator run hashes bit-identically to a Simulator
 * run of the same config (test_cmp holds this invariant).
 *
 * Jobs are bound to tiles through a placement permutation; the
 * cross-core CmpDtmPolicy may swap a near-threshold tile's job
 * with the coolest tile's. The swap is checkpoint-assisted: both
 * job contexts are serialized through the StateWriter visitor and
 * restored (exercising the real save/load path mid-run), and the
 * serialized byte count prices the transfer stall.
 */

#ifndef TEMPEST_SIM_CMP_CMP_SIMULATOR_HH
#define TEMPEST_SIM_CMP_CMP_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/cmp/cmp_dtm.hh"
#include "sim/simulator.hh"

namespace tempest
{

/** Stacked-DRAM (3D) scenario knobs. */
struct CmpStackConfig
{
    /** Stack one DRAM bank over each core tile (layer 1). */
    bool dram = false;

    /**
     * Energy per DRAM access (J). An access here is one L2 miss;
     * the default covers an activate + burst on an old-node DRAM
     * die, deliberately on the hot side so memory-bound workloads
     * (art, mcf) make the stacked die a real heat source.
     */
    Joule dramEnergyPerAccess = 40.0e-9;

    /** Static (refresh + peripheral) power per bank (W). */
    Watt dramStaticW = 1.0;

    /** fatal() on out-of-range values. */
    void validate() const;
};

/** Everything needed to instantiate one CMP simulation. */
struct CmpSimConfig
{
    /** Per-core engine config (pipeline, energy, thermal, DTM,
     * floorplan variant, sampling, seed). The thermal params and
     * DTM threshold also govern the shared die. */
    SimConfig base;

    /** Number of core tiles (1..8). */
    int cores = 1;

    /** Insert the shared-L2 strip (effective when cores >= 2). */
    bool sharedL2 = true;

    /**
     * Benchmark per core, by SPEC2000 profile name. One entry is
     * replicated across all cores; otherwise the length must equal
     * `cores`. Empty defaults to "eon" on every core.
     */
    std::vector<std::string> benchmarks;

    CmpMigrationConfig migration;
    CmpStackConfig stack;

    /** fatal() on inconsistent values. */
    void validate() const;
};

/** End-of-run results for one CMP simulation. */
struct CmpResult
{
    /** Per-job results (indexed by job, not tile). `cycles` counts
     * each core's own clock including stalls. */
    std::vector<SimResult> cores;

    /** Shared blocks (L2 strip, DRAM banks), in floorplan order. */
    std::vector<BlockTempStats> shared;

    /** Cross-core migration counters. */
    CmpDtmStats migration;

    /** Final job placement: tileOfJob[j] is job j's tile. */
    std::vector<int> tileOfJob;

    /** Thermal-clock cycles advanced (== every core's cycles). */
    std::uint64_t cycles = 0;
};

/** FNV-1a over every CmpResult field (golden comparisons). */
std::uint64_t hashCmpResult(const CmpResult& r);

/** Lockstep N-core simulator over one shared thermal network. */
class CmpSimulator
{
  public:
    explicit CmpSimulator(const CmpSimConfig& config);

    /** Run `max_cycles` thermal-clock cycles and build results. */
    CmpResult run(std::uint64_t max_cycles);

    /**
     * Advance lockstep steps until the thermal clock reaches
     * `end_cycle`. Stalls are atomic exactly as in the single-core
     * Simulator: a cooling or migration stall in progress drains
     * to completion before this returns, so piecewise runTo calls
     * (checkpoint loops) reproduce a monolithic run bit-exactly.
     */
    void runTo(std::uint64_t end_cycle);

    /**
     * Advance exactly one lockstep step (one sampling interval, or
     * the shorter chunk an in-progress stall dictates). Lets tests
     * and tools observe — and checkpoint — mid-stall states that
     * runTo()'s atomic drain would step over.
     */
    void stepOnce();

    /** Build end-of-run results from the accumulated statistics. */
    CmpResult result() const;

    /** Current thermal-clock cycle. */
    std::uint64_t cycle() const { return clockCycle_; }

    /** Serialize the complete CMP state (every engine, the shared
     * thermal network, sensors, placement, migration policy) as a
     * versioned checkpoint; restores bit-identically. */
    std::string saveCheckpoint() const;

    /** Restore a checkpoint produced by saveCheckpoint(). The
     * simulator must match in core count, benchmarks, seeds, and
     * floorplan geometry; mismatches are fatal(). */
    void restoreCheckpoint(const std::string& bytes);

    /** Access for tests and tools. */
    const Floorplan& floorplan() const { return plan_; }
    const CmpSimConfig& config() const { return config_; }
    RcModel& thermalModel() { return *rc_; }
    const CmpDtmStats& migrationStats() const;
    const std::vector<int>& tileOfJob() const { return tileOfJob_; }

  private:
    /** One job context: core, workload, per-core DTM, stats. */
    struct Engine
    {
        std::string benchmark;
        std::uint64_t seed = 0;
        // Pooled backing store for the core's hot-state arrays;
        // must outlive (so: be declared before) the core.
        Arena arena;
        std::unique_ptr<OooCore> core;
        std::unique_ptr<ResourceBalancingDtm> dtm;

        /** Stall cycles still to serve (cooling or migration). */
        std::uint64_t stallRemaining = 0;
        /** Cumulative L2 misses at the last DRAM power update. */
        std::uint64_t prevL2Misses = 0;

        ActivityRecord total;
        struct ThermalAccum
        {
            RunningStat avg;   ///< non-stalled samples
            Kelvin maxT = 0.0; ///< includes stalled intervals
        };
        /** Per core-plan block, travels with the job. */
        std::vector<ThermalAccum> accum;
    };

    /** Advance one lockstep step of `cycles` cycles. */
    void step(std::uint64_t cycles);

    /** Serialize job j's movable context (core, workload, queues,
     * functional units, regfile, caches, per-core DTM). */
    void saveEngineContext(StateWriter& w, const Engine& e) const;
    void loadEngineContext(StateReader& r, Engine& e);

    /** Swap the jobs on two tiles, checkpoint-assisted. */
    void migrate(int hot_tile, int cool_tile);

    /** True while any engine still owes stall cycles. */
    bool anyStallPending() const;

    CmpSimConfig config_;
    Floorplan corePlan_; ///< one tile (ev6Like)
    Floorplan plan_;     ///< full CMP floorplan (cmpTiled)
    int coreBlocks_ = 0; ///< blocks per tile
    int l2Index_ = -1;   ///< shared-L2 block index, -1 if absent
    int dramBase_ = -1;  ///< first DRAM bank index, -1 if absent
    SquareMeter l2Area_ = 0.0;

    std::vector<std::unique_ptr<Engine>> engines_; ///< by job
    std::unique_ptr<PowerModel> power_; ///< shared (same config)
    std::unique_ptr<RcModel> rc_;
    std::unique_ptr<SensorBank> sensors_;
    std::unique_ptr<CmpDtmPolicy> cmpDtm_;

    std::vector<int> tileOfJob_; ///< placement permutation
    std::vector<int> jobOfTile_; ///< its inverse

    std::uint64_t clockCycle_ = 0;
    std::uint64_t coolingCycles_ = 0; ///< per GlobalStall trigger
    bool warmed_ = false;

    /** Shared blocks (L2, DRAM): averaged over every interval. */
    std::vector<Engine::ThermalAccum> sharedAccum_;

    // Scratch reused across steps.
    std::vector<ActivityRecord> intervalScratch_;
    std::vector<std::uint8_t> stalledScratch_;
    std::vector<Watt> corePowerScratch_;
    std::vector<Watt> powerScratch_;
    std::vector<std::vector<Kelvin>> tileTempScratch_;
    std::vector<Kelvin> tileHottestScratch_;
    std::vector<std::uint8_t> eligibleScratch_;
};

/** One parameterized CMP run for the sweep drivers. */
struct CmpJob
{
    std::string tag; ///< row label (reports, hashes)
    CmpSimConfig config;
    std::uint64_t cycles = 0;
};

/** Result of one CmpJob. */
struct CmpJobOutcome
{
    std::string tag;
    CmpResult result;
    std::uint64_t hash = 0;     ///< hashCmpResult(result)
    double wallSeconds = 0.0;   ///< not hashed
};

/**
 * Run jobs on `threads` worker threads (>= 1). Outcomes come back
 * in job order regardless of scheduling, and each job is a fully
 * independent CmpSimulator, so the results are identical for any
 * thread count (the 1/2/8-thread stability test holds this).
 */
std::vector<CmpJobOutcome> runCmpJobs(const std::vector<CmpJob>& jobs,
                                      int threads);

} // namespace tempest

#endif // TEMPEST_SIM_CMP_CMP_SIMULATOR_HH
