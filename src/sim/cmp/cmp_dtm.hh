/**
 * @file
 * Cross-core dynamic thermal management for the CMP layer.
 *
 * Within one core the paper's DTM balances utilization across
 * duplicated resources (issue-queue halves, ALU copies, register
 * files). Across cores a CMP has one more lever: the *placement* of
 * jobs on tiles. CmpDtmPolicy implements thermal-aware
 * checkpoint-assisted job migration — when one tile runs close to
 * the thermal threshold while another tile is measurably cooler,
 * the hot tile's job context is serialized, shipped over the
 * interconnect, and resumed on the cool tile (and vice versa: the
 * two jobs swap places). The transfer is priced in cycles from the
 * serialized byte count, so migration is never free; a cooldown
 * keeps the policy from thrashing jobs back and forth every
 * sampling interval.
 *
 * The policy itself is deliberately pure: it sees per-tile hottest
 * temperatures and eligibility flags and returns a decision. The
 * CmpSimulator owns the mechanics (serialize, restore, rebind,
 * stall) so the policy stays trivially checkpointable.
 */

#ifndef TEMPEST_SIM_CMP_CMP_DTM_HH
#define TEMPEST_SIM_CMP_CMP_DTM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tempest
{

class StateWriter;
class StateReader;

/** Knobs for cross-core job migration. */
struct CmpMigrationConfig
{
    /** Master switch; with false the policy never migrates. */
    bool enabled = false;

    /**
     * A tile is migration-hot when its hottest block is within
     * this margin of the DTM threshold (K). The within-core DTM
     * fires *at* the threshold; migration triggers slightly below
     * it, so placement moves before the stop-go hammer falls.
     */
    Kelvin marginK = 2.0;

    /** The destination tile must be at least this much cooler than
     * the source (K), or the swap is not worth the transfer. */
    Kelvin minGapK = 1.0;

    /** Sampling intervals to wait between migrations (thrash
     * guard); counts down once per evaluation. */
    std::uint64_t cooldownIntervals = 20;

    /** Fixed cost per migration (drain, invalidate, redirect). */
    std::uint64_t baseStallCycles = 20000;

    /** Interconnect bandwidth used to price the serialized job
     * context: stall = base + bytes / bytesPerCycle. */
    std::uint64_t busBytesPerCycle = 64;

    /** fatal() on out-of-range values. */
    void validate() const;
};

/** Migration counters, reported alongside per-core DtmStats. */
struct CmpDtmStats
{
    /** Completed job swaps (each moves two job contexts). */
    std::uint64_t migrations = 0;
    /** Total stall cycles charged across both endpoints. */
    std::uint64_t migrationStallCycles = 0;
    /** Serialized job-context bytes shipped over the bus. */
    std::uint64_t bytesMoved = 0;
    /** Policy evaluations (one per sampling interval). */
    std::uint64_t evaluations = 0;
};

/** Thermal-aware job-placement policy over CMP tiles. */
class CmpDtmPolicy
{
  public:
    /** What the simulator should do this interval. */
    struct Decision
    {
        bool migrate = false;
        int hotTile = -1;  ///< source (near-threshold) tile
        int coolTile = -1; ///< destination (coolest eligible) tile
    };

    CmpDtmPolicy(const CmpMigrationConfig& config,
                 Kelvin max_temperature, int tiles);

    /**
     * Evaluate one sampling interval. `tile_hottest[t]` is the
     * hottest sensor reading on tile t this interval;
     * `eligible[t]` is non-zero when tile t can participate (its
     * job is not mid-stall). Deterministic: a pure function of the
     * arguments and the cooldown counter.
     */
    Decision evaluate(const std::vector<Kelvin>& tile_hottest,
                      const std::vector<std::uint8_t>& eligible);

    /** Record a completed migration (simulator calls back with the
     * measured byte count and the per-pair stall charge). */
    void recordMigration(std::uint64_t bytes,
                         std::uint64_t stall_cycles);

    const CmpDtmStats& stats() const { return stats_; }
    void resetStats() { stats_ = CmpDtmStats{}; }

    /** Serialize dynamic state (cooldown, counters). */
    void saveState(StateWriter& w) const;
    /** Restore state saved by saveState(). */
    void loadState(StateReader& r);

  private:
    CmpMigrationConfig config_; // ckpt:skip(config, not state)
    Kelvin maxTemperature_;     // ckpt:skip(config, not state)
    int tiles_;                 // ckpt:skip(geometry, not state)

    /** Evaluations remaining before the next migration may fire. */
    std::uint64_t cooldown_ = 0;
    CmpDtmStats stats_;
};

} // namespace tempest

#endif // TEMPEST_SIM_CMP_CMP_DTM_HH
