#include "sim/cmp/cmp_dtm.hh"

#include "common/log.hh"
#include "sim/checkpoint/stateio.hh"

namespace tempest
{

void
CmpMigrationConfig::validate() const
{
    if (marginK < 0)
        fatal("cmp.migration.margin must be >= 0");
    if (minGapK < 0)
        fatal("cmp.migration.min_gap must be >= 0");
    if (busBytesPerCycle < 1)
        fatal("cmp.migration.bytes_per_cycle must be >= 1");
}

CmpDtmPolicy::CmpDtmPolicy(const CmpMigrationConfig& config,
                           Kelvin max_temperature, int tiles)
    : config_(config), maxTemperature_(max_temperature),
      tiles_(tiles)
{
    config_.validate();
    if (tiles_ < 1)
        fatal("CmpDtmPolicy needs at least one tile");
}

CmpDtmPolicy::Decision
CmpDtmPolicy::evaluate(const std::vector<Kelvin>& tile_hottest,
                       const std::vector<std::uint8_t>& eligible)
{
    if (static_cast<int>(tile_hottest.size()) != tiles_ ||
        static_cast<int>(eligible.size()) != tiles_)
        fatal("CmpDtmPolicy::evaluate: tile count mismatch");

    ++stats_.evaluations;
    Decision decision;
    if (!config_.enabled || tiles_ < 2)
        return decision;
    if (cooldown_ > 0) {
        --cooldown_;
        return decision;
    }

    // Hottest eligible tile (strict >, so ties go to the lowest
    // index — keeps the decision deterministic).
    int hot = -1;
    for (int t = 0; t < tiles_; ++t) {
        if (!eligible[static_cast<std::size_t>(t)])
            continue;
        if (hot < 0 || tile_hottest[static_cast<std::size_t>(t)] >
                           tile_hottest[static_cast<std::size_t>(
                               hot)]) {
            hot = t;
        }
    }
    if (hot < 0)
        return decision;
    const Kelvin hot_t = tile_hottest[static_cast<std::size_t>(hot)];
    if (hot_t < maxTemperature_ - config_.marginK)
        return decision;

    // Coolest eligible destination (strict <, lowest index wins).
    int cool = -1;
    for (int t = 0; t < tiles_; ++t) {
        if (t == hot || !eligible[static_cast<std::size_t>(t)])
            continue;
        if (cool < 0 || tile_hottest[static_cast<std::size_t>(t)] <
                            tile_hottest[static_cast<std::size_t>(
                                cool)]) {
            cool = t;
        }
    }
    if (cool < 0)
        return decision;
    if (hot_t - tile_hottest[static_cast<std::size_t>(cool)] <
        config_.minGapK)
        return decision;

    cooldown_ = config_.cooldownIntervals;
    decision.migrate = true;
    decision.hotTile = hot;
    decision.coolTile = cool;
    return decision;
}

void
CmpDtmPolicy::recordMigration(std::uint64_t bytes,
                              std::uint64_t stall_cycles)
{
    ++stats_.migrations;
    stats_.bytesMoved += bytes;
    stats_.migrationStallCycles += stall_cycles;
}

void
CmpDtmPolicy::saveState(StateWriter& w) const
{
    w.u64(cooldown_);
    w.u64(stats_.migrations);
    w.u64(stats_.migrationStallCycles);
    w.u64(stats_.bytesMoved);
    w.u64(stats_.evaluations);
}

void
CmpDtmPolicy::loadState(StateReader& r)
{
    cooldown_ = r.u64();
    stats_.migrations = r.u64();
    stats_.migrationStallCycles = r.u64();
    stats_.bytesMoved = r.u64();
    stats_.evaluations = r.u64();
}

} // namespace tempest
