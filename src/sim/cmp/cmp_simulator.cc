#include "sim/cmp/cmp_simulator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace tempest
{

namespace
{

// Checkpoint chunk ids. Per-job chunks vary the last FourCC
// character ("JB00".."JB07"), which chunkId packs into the high
// byte. The CMP thermal/sensor chunks get their own tags (CTHM/
// CSNS) rather than reusing the single-core engine's THRM/SENS:
// the chunk-registry lint pass requires FourCCs to be globally
// unique so a reader can never confuse the two formats.
constexpr std::uint32_t kChunkCmpMeta = chunkId("CMPM");
constexpr std::uint32_t kChunkCmpDtm = chunkId("CMPD");
constexpr std::uint32_t kChunkThermal = chunkId("CTHM");
constexpr std::uint32_t kChunkSensors = chunkId("CSNS");

std::uint32_t
jobChunkId(int job)
{
    return chunkId("JB00") +
           (static_cast<std::uint32_t>(job) << 24);
}

std::uint64_t
hashU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a64(&v, sizeof(v), h);
}

std::uint64_t
hashF64(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return hashU64(h, bits);
}

} // namespace

void
CmpStackConfig::validate() const
{
    if (dramEnergyPerAccess < 0)
        fatal("stack.dram_energy_per_access must be >= 0");
    if (dramStaticW < 0)
        fatal("stack.dram_static_w must be >= 0");
}

void
CmpSimConfig::validate() const
{
    if (cores < 1 || cores > 8)
        fatal("cmp.cores out of range [1, 8]");
    if (benchmarks.size() > 1 &&
        benchmarks.size() != static_cast<std::size_t>(cores)) {
        fatal("cmp.benchmarks names ", benchmarks.size(),
              " benchmarks for ", cores,
              " cores (use one entry or one per core)");
    }
    migration.validate();
    stack.validate();
}

CmpSimulator::CmpSimulator(const CmpSimConfig& config)
    : config_(config),
      corePlan_(Floorplan::ev6Like(config.base.variant)),
      plan_(Floorplan::cmpTiled(config.base.variant, config.cores,
                                config.sharedL2, config.stack.dram))
{
    config_.validate();
    config_.base.pipeline.validate();
    config_.base.thermal.validate();

    // Normalize the benchmark list: empty -> "eon" everywhere, one
    // entry -> replicated across cores.
    if (config_.benchmarks.empty())
        config_.benchmarks = {"eon"};
    if (config_.benchmarks.size() == 1 && config_.cores > 1) {
        config_.benchmarks.assign(
            static_cast<std::size_t>(config_.cores),
            config_.benchmarks.front());
    }

    coreBlocks_ = corePlan_.numBlocks();
    const int tiles_end = config_.cores * coreBlocks_;
    const bool has_l2 = config_.sharedL2 && config_.cores > 1;
    l2Index_ = has_l2 ? tiles_end : -1;
    dramBase_ =
        config_.stack.dram ? tiles_end + (has_l2 ? 1 : 0) : -1;
    if (has_l2) {
        const Block& l2 = plan_.block(l2Index_);
        l2Area_ = l2.width * l2.height;
    }

    for (int j = 0; j < config_.cores; ++j) {
        auto e = std::make_unique<Engine>();
        e->benchmark =
            config_.benchmarks[static_cast<std::size_t>(j)];
        // Core 0 runs on the configured seed verbatim (the N=1
        // bit-identity anchor); the rest get stable per-core
        // derivations so sibling cores never share RNG streams.
        e->seed = j == 0
                      ? config_.base.runSeed
                      : deriveRunSeed(config_.base.runSeed,
                                      e->benchmark,
                                      "cmp.core" +
                                          std::to_string(j));
        e->core = std::make_unique<OooCore>(
            config_.base.pipeline, spec2000(e->benchmark), e->seed,
            &e->arena);
        e->dtm = std::make_unique<ResourceBalancingDtm>(
            config_.base.dtm, *e->core, corePlan_);
        e->accum.resize(static_cast<std::size_t>(coreBlocks_));
        engines_.push_back(std::move(e));
    }

    power_ = std::make_unique<PowerModel>(
        config_.base.energy, corePlan_, config_.base.pipeline,
        config_.base.pipeline.frequencyHz);
    rc_ = std::make_unique<RcModel>(plan_, config_.base.thermal);
    sensors_ = std::make_unique<SensorBank>(
        *rc_, config_.base.sensorQuantum, 0.0,
        config_.base.runSeed ^ 0x5e);
    cmpDtm_ = std::make_unique<CmpDtmPolicy>(
        config_.migration, config_.base.dtm.maxTemperature,
        config_.cores);

    tileOfJob_.resize(static_cast<std::size_t>(config_.cores));
    jobOfTile_.resize(static_cast<std::size_t>(config_.cores));
    for (int j = 0; j < config_.cores; ++j) {
        tileOfJob_[static_cast<std::size_t>(j)] = j;
        jobOfTile_[static_cast<std::size_t>(j)] = j;
    }

    // Same expression (and grouping) as the single-core stall
    // sizing, so N=1 chunk sequences match bit-exactly.
    const Seconds cooling = config_.base.dtm.coolingTime *
                            config_.base.thermal.timeScale;
    coolingCycles_ = static_cast<std::uint64_t>(
        cooling * config_.base.pipeline.frequencyHz);

    sharedAccum_.resize(static_cast<std::size_t>(
        plan_.numBlocks() - tiles_end));
    intervalScratch_.resize(engines_.size());
    stalledScratch_.resize(engines_.size());
    powerScratch_.assign(
        static_cast<std::size_t>(plan_.numBlocks()), 0.0);
    tileTempScratch_.assign(
        static_cast<std::size_t>(config_.cores),
        std::vector<Kelvin>(
            static_cast<std::size_t>(coreBlocks_), 0.0));
    tileHottestScratch_.resize(
        static_cast<std::size_t>(config_.cores));
    eligibleScratch_.resize(static_cast<std::size_t>(config_.cores));
}

bool
CmpSimulator::anyStallPending() const
{
    for (const auto& e : engines_) {
        if (e->stallRemaining > 0)
            return true;
    }
    return false;
}

void
CmpSimulator::step(std::uint64_t cycles)
{
    const int B = coreBlocks_;
    const int jobs = config_.cores;

    // 1. Advance every core over the same cycle range; stalled
    // cores burn clock-gated cycles.
    for (int j = 0; j < jobs; ++j) {
        Engine& e = *engines_[static_cast<std::size_t>(j)];
        ActivityRecord& iv =
            intervalScratch_[static_cast<std::size_t>(j)];
        iv = ActivityRecord{};
        const bool stalled = e.stallRemaining > 0;
        stalledScratch_[static_cast<std::size_t>(j)] =
            stalled ? 1 : 0;
        if (stalled) {
            e.core->stallCycles(cycles, iv);
        } else {
            for (std::uint64_t c = 0; c < cycles; ++c)
                e.core->tick(iv);
        }
    }

    const Seconds dt = static_cast<double>(cycles) /
                       config_.base.pipeline.frequencyHz;

    // 2. Per-tile powers through the one shared power model, then
    // the synthesized shared blocks.
    for (int j = 0; j < jobs; ++j) {
        power_->blockPowers(
            intervalScratch_[static_cast<std::size_t>(j)],
            corePowerScratch_);
        const int base =
            tileOfJob_[static_cast<std::size_t>(j)] * B;
        for (int b = 0; b < B; ++b) {
            powerScratch_[static_cast<std::size_t>(base + b)] =
                corePowerScratch_[static_cast<std::size_t>(b)];
        }
    }
    if (l2Index_ >= 0) {
        // The core power model deliberately leaves L2 dynamic
        // energy unattributed; in the CMP plan it lands on the
        // shared strip, fed by every core's interval traffic.
        std::uint64_t l2_accesses = 0;
        for (int j = 0; j < jobs; ++j) {
            l2_accesses +=
                intervalScratch_[static_cast<std::size_t>(j)]
                    .l2Accesses;
        }
        powerScratch_[static_cast<std::size_t>(l2Index_)] =
            static_cast<double>(l2_accesses) *
                config_.base.energy.l2Access / dt +
            l2Area_ * config_.base.energy.idleWattsPerSquareMeter;
    }
    if (dramBase_ >= 0) {
        // A DRAM bank sits over each tile and is heated by the L2
        // miss traffic of whichever job currently runs there.
        for (int t = 0; t < jobs; ++t) {
            Engine& e = *engines_[static_cast<std::size_t>(
                jobOfTile_[static_cast<std::size_t>(t)])];
            const std::uint64_t misses =
                e.core->caches().l2().misses();
            const std::uint64_t delta = misses - e.prevL2Misses;
            e.prevL2Misses = misses;
            powerScratch_[static_cast<std::size_t>(dramBase_ + t)] =
                static_cast<double>(delta) *
                    config_.stack.dramEnergyPerAccess / dt +
                config_.stack.dramStaticW;
        }
    }
    rc_->setPowers(powerScratch_);

    if (!warmed_) {
        // Warm start: steady state of the first interval's power,
        // clamped to the threshold per block (mirrors the
        // single-core simulator; stacked DRAM banks are clamped
        // too, since a managed stack never idles above threshold).
        warmed_ = true;
        if (config_.base.warmStart) {
            rc_->solveSteadyState();
            for (int b = 0; b < rc_->numBlocks(); ++b) {
                if (rc_->temperature(b) >
                    config_.base.dtm.maxTemperature) {
                    rc_->setTemperature(
                        b, config_.base.dtm.maxTemperature);
                }
            }
        }
    }

    rc_->step(dt);

    for (int j = 0; j < jobs; ++j) {
        engines_[static_cast<std::size_t>(j)]->total.add(
            intervalScratch_[static_cast<std::size_t>(j)]);
    }

    // 3. One fused sensor pass in ascending block order (the
    // sensor RNG draw order is part of the bit-identity contract),
    // scattering each reading to the tile's current job.
    std::fill(tileHottestScratch_.begin(),
              tileHottestScratch_.end(), 0.0);
    const int num_blocks = plan_.numBlocks();
    const int tiles_end = jobs * B;
    for (int b = 0; b < num_blocks; ++b) {
        const Kelvin t = sensors_->read(b);
        if (b < tiles_end) {
            const int tile = b / B;
            const int local = b % B;
            const int j =
                jobOfTile_[static_cast<std::size_t>(tile)];
            tileTempScratch_[static_cast<std::size_t>(tile)]
                            [static_cast<std::size_t>(local)] = t;
            Engine::ThermalAccum& acc =
                engines_[static_cast<std::size_t>(j)]
                    ->accum[static_cast<std::size_t>(local)];
            if (!stalledScratch_[static_cast<std::size_t>(j)])
                acc.avg.sample(t);
            acc.maxT = std::max(acc.maxT, t);
            tileHottestScratch_[static_cast<std::size_t>(tile)] =
                std::max(tileHottestScratch_
                             [static_cast<std::size_t>(tile)],
                         t);
        } else {
            // Shared blocks have no per-job stall notion; their
            // average covers every interval.
            Engine::ThermalAccum& acc =
                sharedAccum_[static_cast<std::size_t>(
                    b - tiles_end)];
            acc.avg.sample(t);
            acc.maxT = std::max(acc.maxT, t);
        }
    }

    // 4. Per-core DTM, then the stall bookkeeping. A GlobalStall
    // freezes only the triggering core; the thermal clock keeps
    // every other core running, chunked so stall boundaries land
    // on shared thermal steps.
    for (int j = 0; j < jobs; ++j) {
        if (stalledScratch_[static_cast<std::size_t>(j)])
            continue;
        Engine& e = *engines_[static_cast<std::size_t>(j)];
        const int tile = tileOfJob_[static_cast<std::size_t>(j)];
        const bool global_stall =
            e.dtm->sample(
                tileTempScratch_[static_cast<std::size_t>(tile)],
                tileHottestScratch_[static_cast<std::size_t>(
                    tile)]) == DtmAction::GlobalStall;
        if (global_stall)
            e.stallRemaining = coolingCycles_;
    }
    for (int j = 0; j < jobs; ++j) {
        if (stalledScratch_[static_cast<std::size_t>(j)]) {
            engines_[static_cast<std::size_t>(j)]->stallRemaining -=
                cycles;
        }
    }

    // 5. Cross-core migration. Tiles mid-stall are ineligible on
    // either end of a swap.
    if (config_.migration.enabled && jobs > 1) {
        for (int t = 0; t < jobs; ++t) {
            eligibleScratch_[static_cast<std::size_t>(t)] =
                engines_[static_cast<std::size_t>(
                             jobOfTile_[static_cast<std::size_t>(
                                 t)])]
                            ->stallRemaining == 0
                    ? 1
                    : 0;
        }
        const CmpDtmPolicy::Decision d =
            cmpDtm_->evaluate(tileHottestScratch_,
                              eligibleScratch_);
        if (d.migrate)
            migrate(d.hotTile, d.coolTile);
    }

    clockCycle_ += cycles;
}

void
CmpSimulator::runTo(std::uint64_t end_cycle)
{
    // Stalls are atomic, exactly like the single-core simulator's
    // nested cooling loop: once any core owes stall cycles the
    // lockstep loop keeps stepping past end_cycle until the debt
    // drains. The continuation test is pure simulator state (never
    // end_cycle), so piecewise runTo calls — checkpoint loops —
    // replay the same step sequence as a monolithic run.
    while (clockCycle_ < end_cycle || anyStallPending())
        stepOnce();
}

void
CmpSimulator::stepOnce()
{
    std::uint64_t n = config_.base.sampleIntervalCycles;
    for (const auto& e : engines_) {
        if (e->stallRemaining > 0)
            n = std::min(n, e->stallRemaining);
    }
    step(n);
}

CmpResult
CmpSimulator::run(std::uint64_t max_cycles)
{
    runTo(clockCycle_ + max_cycles);
    return result();
}

CmpResult
CmpSimulator::result() const
{
    CmpResult result;
    for (const auto& ep : engines_) {
        const Engine& e = *ep;
        SimResult r;
        r.benchmark = e.core->profile().name;
        r.cycles = e.core->cycle();
        r.instructions = e.core->committed();
        r.ipc = r.cycles
                    ? static_cast<double>(r.instructions) /
                          static_cast<double>(r.cycles)
                    : 0.0;
        r.stallCycles = e.total.stallCycles;
        r.dtm = e.dtm->stats();
        r.activity = e.total;
        r.blocks.resize(static_cast<std::size_t>(coreBlocks_));
        for (int b = 0; b < coreBlocks_; ++b) {
            const auto i = static_cast<std::size_t>(b);
            r.blocks[i].name = corePlan_.block(b).name;
            r.blocks[i].avg = e.accum[i].avg.mean();
            r.blocks[i].max = e.accum[i].maxT;
        }
        result.cores.push_back(std::move(r));
    }
    const int tiles_end = config_.cores * coreBlocks_;
    result.shared.resize(sharedAccum_.size());
    for (std::size_t s = 0; s < sharedAccum_.size(); ++s) {
        result.shared[s].name =
            plan_.block(tiles_end + static_cast<int>(s)).name;
        result.shared[s].avg = sharedAccum_[s].avg.mean();
        result.shared[s].max = sharedAccum_[s].maxT;
    }
    result.migration = cmpDtm_->stats();
    result.tileOfJob = tileOfJob_;
    result.cycles = clockCycle_;
    return result;
}

const CmpDtmStats&
CmpSimulator::migrationStats() const
{
    return cmpDtm_->stats();
}

void
CmpSimulator::saveEngineContext(StateWriter& w,
                                const Engine& e) const
{
    e.core->saveState(w);
    e.core->stream().saveState(w);
    e.core->intQueue().saveState(w);
    e.core->fpQueue().saveState(w);
    e.core->alus().saveState(w);
    e.core->intRegfile().saveState(w);
    e.core->caches().saveState(w);
    e.dtm->saveState(w);
}

void
CmpSimulator::loadEngineContext(StateReader& r, Engine& e)
{
    e.core->loadState(r);
    e.core->stream().loadState(r);
    e.core->intQueue().loadState(r);
    e.core->fpQueue().loadState(r);
    e.core->alus().loadState(r);
    e.core->intRegfile().loadState(r);
    e.core->caches().loadState(r);
    e.dtm->loadState(r);
}

void
CmpSimulator::migrate(int hot_tile, int cool_tile)
{
    const int jh = jobOfTile_[static_cast<std::size_t>(hot_tile)];
    const int jc = jobOfTile_[static_cast<std::size_t>(cool_tile)];
    Engine& eh = *engines_[static_cast<std::size_t>(jh)];
    Engine& ec = *engines_[static_cast<std::size_t>(jc)];

    // Checkpoint-assisted swap: serialize both job contexts
    // through the real StateWriter visitor and restore them — the
    // same path a live migration's drain/refill would take — so
    // the byte count pricing the transfer is the measured context
    // size, not an estimate.
    StateWriter wh;
    StateWriter wc;
    saveEngineContext(wh, eh);
    saveEngineContext(wc, ec);
    const std::uint64_t bytes = wh.size() + wc.size();
    StateReader rh(wh.bytes());
    StateReader rcool(wc.bytes());
    loadEngineContext(rh, eh);
    loadEngineContext(rcool, ec);

    tileOfJob_[static_cast<std::size_t>(jh)] = cool_tile;
    tileOfJob_[static_cast<std::size_t>(jc)] = hot_tile;
    jobOfTile_[static_cast<std::size_t>(hot_tile)] = jc;
    jobOfTile_[static_cast<std::size_t>(cool_tile)] = jh;

    const std::uint64_t stall =
        config_.migration.baseStallCycles +
        bytes / config_.migration.busBytesPerCycle;
    // Eligibility guaranteed both ends were stall-free, so these
    // are plain assignments.
    eh.stallRemaining = stall;
    ec.stallRemaining = stall;
    cmpDtm_->recordMigration(bytes, 2 * stall);
}

std::string
CmpSimulator::saveCheckpoint() const
{
    CheckpointWriter cp;

    StateWriter& meta = cp.chunk(kChunkCmpMeta);
    meta.u32(static_cast<std::uint32_t>(config_.cores));
    for (const auto& e : engines_) {
        meta.str(e->benchmark);
        meta.u64(e->seed);
    }
    meta.i32(plan_.numBlocks());
    meta.u64(config_.base.sampleIntervalCycles);
    meta.u64(clockCycle_);
    meta.boolean(l2Index_ >= 0);
    meta.boolean(dramBase_ >= 0);

    for (int j = 0; j < config_.cores; ++j) {
        const Engine& e = *engines_[static_cast<std::size_t>(j)];
        StateWriter& w = cp.chunk(jobChunkId(j));
        saveEngineContext(w, e);
        w.u64(e.stallRemaining);
        w.u64(e.prevL2Misses);
        saveActivity(w, e.total);
        for (const Engine::ThermalAccum& acc : e.accum) {
            w.u64(acc.avg.count());
            w.f64(acc.avg.sum());
            w.f64(acc.avg.min());
            w.f64(acc.avg.max());
        }
        for (const Engine::ThermalAccum& acc : e.accum)
            w.f64(acc.maxT);
    }

    rc_->saveState(cp.chunk(kChunkThermal));
    sensors_->saveState(cp.chunk(kChunkSensors));

    StateWriter& d = cp.chunk(kChunkCmpDtm);
    cmpDtm_->saveState(d);
    for (int t : tileOfJob_)
        d.i32(t);
    d.boolean(warmed_);
    d.u32(static_cast<std::uint32_t>(sharedAccum_.size()));
    for (const Engine::ThermalAccum& acc : sharedAccum_) {
        d.u64(acc.avg.count());
        d.f64(acc.avg.sum());
        d.f64(acc.avg.min());
        d.f64(acc.avg.max());
    }
    for (const Engine::ThermalAccum& acc : sharedAccum_)
        d.f64(acc.maxT);

    return cp.serialize();
}

void
CmpSimulator::restoreCheckpoint(const std::string& bytes)
{
    const CheckpointReader cp(bytes);

    StateReader meta = cp.chunk(kChunkCmpMeta);
    const auto cores = static_cast<int>(meta.u32());
    if (cores != config_.cores) {
        fatal("checkpoint has ", cores, " cores, this simulator ",
              config_.cores);
    }
    for (int j = 0; j < cores; ++j) {
        const Engine& e = *engines_[static_cast<std::size_t>(j)];
        const std::string benchmark = meta.str();
        const std::uint64_t seed = meta.u64();
        if (benchmark != e.benchmark) {
            fatal("checkpoint core ", j, " runs '", benchmark,
                  "', this simulator '", e.benchmark, "'");
        }
        if (seed != e.seed) {
            fatal("checkpoint core ", j, " uses seed ", seed,
                  ", this simulator ", e.seed);
        }
    }
    const int blocks = meta.i32();
    if (blocks != plan_.numBlocks()) {
        fatal("checkpoint floorplan has ", blocks,
              " blocks, this simulator has ", plan_.numBlocks());
    }
    meta.u64(); // sample interval, informational
    const std::uint64_t clock = meta.u64();
    const bool has_l2 = meta.boolean();
    const bool has_dram = meta.boolean();
    if (has_l2 != (l2Index_ >= 0) || has_dram != (dramBase_ >= 0))
        fatal("checkpoint shared-block layout mismatch");

    for (int j = 0; j < cores; ++j) {
        Engine& e = *engines_[static_cast<std::size_t>(j)];
        StateReader r = cp.chunk(jobChunkId(j));
        loadEngineContext(r, e);
        e.stallRemaining = r.u64();
        e.prevL2Misses = r.u64();
        loadActivity(r, e.total);
        for (Engine::ThermalAccum& acc : e.accum) {
            const std::uint64_t count = r.u64();
            const double sum = r.f64();
            const double min = r.f64();
            const double max = r.f64();
            acc.avg.restore(count, sum, min, max);
        }
        for (Engine::ThermalAccum& acc : e.accum)
            acc.maxT = r.f64();
    }

    {
        StateReader r = cp.chunk(kChunkThermal);
        rc_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkSensors);
        sensors_->loadState(r);
    }
    {
        StateReader r = cp.chunk(kChunkCmpDtm);
        cmpDtm_->loadState(r);
        for (int j = 0; j < cores; ++j) {
            const int t = r.i32();
            if (t < 0 || t >= cores)
                fatal("checkpoint placement tile out of range");
            tileOfJob_[static_cast<std::size_t>(j)] = t;
            jobOfTile_[static_cast<std::size_t>(t)] = j;
        }
        warmed_ = r.boolean();
        const auto n = r.u32();
        if (n != sharedAccum_.size()) {
            fatal("checkpoint shared-block statistics cover ", n,
                  " blocks, this simulator has ",
                  sharedAccum_.size());
        }
        for (Engine::ThermalAccum& acc : sharedAccum_) {
            const std::uint64_t count = r.u64();
            const double sum = r.f64();
            const double min = r.f64();
            const double max = r.f64();
            acc.avg.restore(count, sum, min, max);
        }
        for (Engine::ThermalAccum& acc : sharedAccum_)
            acc.maxT = r.f64();
    }
    clockCycle_ = clock;

    // Re-assert config-derived controls, as the single-core
    // restore does.
    for (const auto& e : engines_) {
        e->core->setRoundRobin(config_.base.dtm.roundRobin);
        e->core->intRegfile().setMapping(config_.base.dtm.mapping);
        if (!config_.base.dtm.fetchThrottling)
            e->core->setFetchInterval(1);
    }
}

std::uint64_t
hashCmpResult(const CmpResult& r)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = hashU64(h, r.cores.size());
    for (const SimResult& c : r.cores)
        h = hashU64(h, experiments::hashSimResult(c));
    h = hashU64(h, r.shared.size());
    for (const BlockTempStats& b : r.shared) {
        h = fnv1a64(b.name.data(), b.name.size(), h);
        h = hashF64(h, b.avg);
        h = hashF64(h, b.max);
    }
    h = hashU64(h, r.migration.migrations);
    h = hashU64(h, r.migration.migrationStallCycles);
    h = hashU64(h, r.migration.bytesMoved);
    h = hashU64(h, r.migration.evaluations);
    for (int t : r.tileOfJob)
        h = hashU64(h, static_cast<std::uint64_t>(t));
    h = hashU64(h, r.cycles);
    return h;
}

std::vector<CmpJobOutcome>
runCmpJobs(const std::vector<CmpJob>& jobs, int threads)
{
    std::vector<CmpJobOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;
    threads = std::max(
        1, std::min(threads, static_cast<int>(jobs.size())));

    // Lock-free by construction: the only shared mutable state is
    // the `next` index counter; each worker owns outcomes[i]
    // exclusively once it claims i, so no mutex (and no
    // GUARDED_BY) is needed here.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            const CmpJob& job = jobs[i];
            // det:allow(wallSeconds metric only; never feeds simulation state)
            const auto start = std::chrono::steady_clock::now();
            CmpSimulator sim(job.config);
            CmpJobOutcome& out = outcomes[i];
            out.tag = job.tag;
            out.result = sim.run(job.cycles);
            out.hash = hashCmpResult(out.result);
            const auto end = std::chrono::steady_clock::now(); // det:allow(wallSeconds metric only; never feeds simulation state)
            out.wallSeconds =
                std::chrono::duration<double>(end - start)
                    .count();
        }
    };

    if (threads == 1) {
        worker();
        return outcomes;
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread& t : pool)
        t.join();
    return outcomes;
}

} // namespace tempest
