/**
 * @file
 * The closed-loop thermal simulator: couples the out-of-order core,
 * the power model, the RC thermal network, the sensor bank, and the
 * DTM policy.
 *
 * The loop mirrors the paper's methodology (§3): execute in
 * 100,000-cycle sampling intervals, convert the interval's activity
 * to per-block power, advance the thermal network, read the
 * sensors, and let the DTM act. A GlobalStall action freezes the
 * core for exactly the thermal cooling time (advanced in
 * sample-interval chunks with clock-gated power, plus a final
 * partial chunk for the remainder). Initial temperatures come from
 * a
 * steady-state solve of the first interval's power, clamped to the
 * thermal threshold, so runs begin thermally warmed.
 */

#ifndef TEMPEST_SIM_SIMULATOR_HH
#define TEMPEST_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dtm/dtm_policy.hh"
#include "power/power_model.hh"
#include "sim/trace.hh"
#include "thermal/rc_model.hh"
#include "thermal/sensor.hh"
#include "uarch/core.hh"
#include "workload/profile.hh"

namespace tempest
{

/** Everything needed to instantiate one simulation. */
struct SimConfig
{
    PipelineConfig pipeline;
    EnergyParams energy;
    ThermalParams thermal;
    DtmConfig dtm;
    FloorplanVariant variant = FloorplanVariant::Baseline;

    /** Sensor sampling interval (paper: 100,000 cycles). */
    std::uint64_t sampleIntervalCycles = 100000;

    /** Sensor quantization (0 = ideal). */
    Kelvin sensorQuantum = 0.0;

    /** Experiment-level seed, combined with the profile seed. */
    std::uint64_t runSeed = 1;

    /** Start from the steady state of the first interval's power
     * (clamped at the threshold) instead of ambient. */
    bool warmStart = true;
};

/** Per-block temperature summary. */
struct BlockTempStats
{
    std::string name;
    Kelvin avg = 0;  ///< average over non-stalled samples
    Kelvin max = 0;  ///< maximum over all samples
};

/** End-of-run results. */
struct SimResult
{
    std::string benchmark;
    double ipc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t stallCycles = 0;
    DtmStats dtm;
    std::vector<BlockTempStats> blocks;
    ActivityRecord activity; ///< totals over the whole run

    /** Temperature stats of a named block; fatal if absent. */
    const BlockTempStats& block(const std::string& name) const;
};

/** Closed-loop simulator for one benchmark run. */
class Simulator
{
  public:
    Simulator(const SimConfig& config,
              const BenchmarkProfile& profile);

    /**
     * Run until the core has advanced `max_cycles` cycles
     * (including stall cycles).
     */
    SimResult run(std::uint64_t max_cycles);

    /**
     * Advance whole sampling intervals until the core cycle
     * reaches `end_cycle` (an absolute cycle, so checkpointed runs
     * can continue toward the same endpoint). Intervals are
     * atomic: a cooling stall triggered inside one completes
     * before this returns, exactly as in run().
     */
    void runTo(std::uint64_t end_cycle);

    /** Build the end-of-run result from the measured-region
     * statistics (everything since the last resetMeasurement(),
     * or since construction). */
    SimResult result() const;

    /** Current core cycle (checkpoint loop bookkeeping). */
    std::uint64_t cycle() const { return core_->cycle(); }

    /**
     * Serialize the complete simulation state as a versioned
     * checkpoint (see sim/checkpoint/checkpoint.hh). The returned
     * bytes restore bit-identically via restoreCheckpoint().
     */
    std::string saveCheckpoint() const;

    /**
     * Restore a checkpoint produced by saveCheckpoint(). The
     * simulator must have been constructed with the same
     * benchmark, pipeline geometry, floorplan variant, and run
     * seed; mismatches are fatal(). Config-derived controls
     * (round-robin select, register-port mapping, fetch throttle
     * when disabled) are re-asserted from *this* simulator's
     * config afterwards, which is what lets a warm-state fork
     * restore a neutral warm-up snapshot under its own DTM
     * configuration.
     */
    void restoreCheckpoint(const std::string& bytes);

    /**
     * Zero the measured-region statistics (activity totals, block
     * temperature stats, DTM counters) and make result() report
     * cycles/instructions/IPC relative to this point. Used by
     * warm-state forking to exclude the shared warm-up prefix.
     */
    void resetMeasurement();

    /** Access to the live pieces (examples, tests). */
    OooCore& core() { return *core_; }
    RcModel& thermalModel() { return *rc_; }
    ResourceBalancingDtm& dtm() { return *dtm_; }
    const Floorplan& floorplan() const { return floorplan_; }
    const SimConfig& config() const { return config_; }

    /** Attach a trace recorder (not owned); nullptr detaches. */
    void setTrace(ThermalTrace* trace) { trace_ = trace; }

  private:
    /**
     * Simulate one interval of `cycles` cycles (a full sampling
     * interval normally; cooling stalls may use a final partial
     * chunk so the stall covers the cooling time exactly).
     */
    void runInterval(bool stalled, std::uint64_t cycles);

    SimConfig config_;
    Floorplan floorplan_;
    // Pooled backing store for the core's hot-state arrays; must
    // outlive (so: be declared before) the core.
    Arena arena_;
    std::unique_ptr<OooCore> core_;
    std::unique_ptr<PowerModel> power_;
    std::unique_ptr<RcModel> rc_;
    std::unique_ptr<SensorBank> sensors_;
    std::unique_ptr<ResourceBalancingDtm> dtm_;

    std::vector<Watt> powerScratch_;
    std::vector<Kelvin> tempsScratch_;

    // Accumulated statistics. The per-block thermal accumulators
    // are packed into one struct array so the per-interval pass
    // (sensor read + average + peak + hottest, see runInterval)
    // touches one contiguous line-sized record per block.
    struct BlockThermalAccum
    {
        RunningStat avg;   ///< non-stalled samples
        Kelvin maxT = 0.0; ///< includes stalled intervals
    };
    ActivityRecord total_;
    std::vector<BlockThermalAccum> blockAccum_;
    bool warmed_ = false;
    ThermalTrace* trace_ = nullptr;

    // Measured-region origin (both 0 unless resetMeasurement()
    // was called); result() reports relative to these.
    std::uint64_t measureStartCycle_ = 0;
    std::uint64_t measureStartCommitted_ = 0;
};

} // namespace tempest

#endif // TEMPEST_SIM_SIMULATOR_HH
