#include "sim/trace.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace tempest
{

ThermalTrace::ThermalTrace(const Floorplan& floorplan, int stride)
    : stride_(stride)
{
    if (stride < 1)
        fatal("trace stride must be >= 1");
    for (int b = 0; b < floorplan.numBlocks(); ++b)
        blockNames_.push_back(floorplan.block(b).name);
}

void
ThermalTrace::record(Cycle cycle, bool stalled,
                     std::uint64_t instructions,
                     const std::vector<Kelvin>& temperature,
                     const std::vector<Watt>& power)
{
    if (temperature.size() != blockNames_.size() ||
        power.size() != blockNames_.size()) {
        fatal("trace record size mismatch");
    }
    if (seen_++ % static_cast<std::uint64_t>(stride_) != 0)
        return;
    samples_.push_back(
        {cycle, stalled, instructions, temperature, power});
}

const TraceSample&
ThermalTrace::sample(std::size_t i) const
{
    if (i >= samples_.size())
        panic("trace sample index out of range");
    return samples_[i];
}

Kelvin
ThermalTrace::peak(int block) const
{
    Kelvin best = 0;
    for (const TraceSample& s : samples_) {
        best = std::max(
            best, s.temperature[static_cast<std::size_t>(block)]);
    }
    return best;
}

std::string
ThermalTrace::toCsv() const
{
    std::ostringstream os;
    os << "cycle,stalled,instructions";
    for (const std::string& name : blockNames_)
        os << ",T_" << name;
    for (const std::string& name : blockNames_)
        os << ",P_" << name;
    os << '\n';
    for (const TraceSample& s : samples_) {
        os << s.cycle << ',' << (s.stalled ? 1 : 0) << ','
           << s.instructions;
        for (const Kelvin t : s.temperature)
            os << ',' << t;
        for (const Watt p : s.power)
            os << ',' << p;
        os << '\n';
    }
    return os.str();
}

void
ThermalTrace::writeCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '", path, "'");
    out << toCsv();
    if (!out)
        fatal("failed writing trace file '", path, "'");
}

} // namespace tempest
