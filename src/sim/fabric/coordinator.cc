#include "sim/fabric/coordinator.hh"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <string>

#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/fabric/worker.hh"

namespace tempest
{
namespace fabric
{

namespace
{

/** Monotonic seconds for scheduling deadlines. */
double
nowSeconds()
{
    return std::chrono::duration<double>(
               // det:allow(scheduling deadlines only; never feeds simulation state)
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** Write "line\n", retrying short writes; MSG_NOSIGNAL so a dead
 * worker surfaces as an error, not SIGPIPE. */
bool
sendLine(int fd, const std::string& line)
{
    const std::string data = line + "\n";
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** One worker process as the coordinator sees it. */
struct Proc
{
    pid_t pid = -1;
    int fd = -1; ///< parent end of the socketpair; -1 = gone
    std::string buffer;
    bool ready = false;      ///< hello received
    std::ptrdiff_t job = -1; ///< index into jobs; -1 = idle
    double deadline = 0;     ///< job deadline (when timeouts on)

    bool alive() const { return fd >= 0; }
};

ExperimentOutcome
outcomeFrom(const FabricJob& job, const FabricResult& res)
{
    ExperimentOutcome out;
    out.tag = job.tag;
    out.benchmark = job.benchmark;
    out.seed = job.seed;
    out.error = res.error;
    out.wallSeconds = res.wallSeconds;
    if (res.ok && res.hasResult) {
        out.ok = true;
        out.result = res.result;
    } else if (res.ok) {
        out.error = "worker returned no result payload";
    }
    return out;
}

} // namespace

void
FabricCoordinator::event(const std::string& message) const
{
    if (options_.onEvent)
        options_.onEvent(message);
}

std::vector<FabricResult>
FabricCoordinator::runJobs(const std::vector<FabricJob>& jobs)
{
    const std::size_t total = jobs.size();
    std::vector<FabricResult> results(total);
    for (std::size_t i = 0; i < total; ++i) {
        if (jobs[i].index != i)
            fatal("fabric job list is not densely indexed: "
                  "position ", i, " has index ", jobs[i].index);
        results[i].index = i;
        results[i].error = "job was never executed";
    }
    if (total == 0)
        return results;

    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < total; ++i)
        queue.push_back(i);
    std::vector<int> attempts(total, 0);
    std::vector<char> done(total, 0);
    std::size_t completed = 0;

    const int target = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(options_.workers, 1)),
        total));
    int respawns_left = options_.respawnBudget >= 0
                            ? options_.respawnBudget
                            : 2 * target + 2;

    std::vector<Proc> procs;

    auto jobName = [&](std::size_t i) {
        return jobs[i].tag + "/" + jobs[i].benchmark;
    };

    auto spawnOne = [&]() -> bool {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            event("socketpair failed; cannot spawn worker");
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            event("fork failed; cannot spawn worker");
            return false;
        }
        if (pid == 0) {
            // Child: drop every parent-side descriptor so a dead
            // sibling's EOF is visible to the coordinator (an
            // inherited duplicate would hold its socket open).
            for (const Proc& p : procs) {
                if (p.alive())
                    ::close(p.fd);
            }
            ::close(sv[0]);
            if (options_.workerCommand.empty())
                ::_exit(workerMain(sv[1]));
            std::vector<std::string> args = options_.workerCommand;
            args.push_back("--worker-fd");
            args.push_back(std::to_string(sv[1]));
            std::vector<char*> argv;
            argv.reserve(args.size() + 1);
            for (std::string& a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execvp(argv[0], argv.data());
            ::_exit(127);
        }
        ::close(sv[1]);
        Proc p;
        p.pid = pid;
        p.fd = sv[0];
        procs.push_back(p);
        event("spawned worker " + std::to_string(pid));
        return true;
    };

    // Reap the process and settle its in-flight shard: re-queue at
    // the front (so recovered shards run next), or fail the job
    // once its dispatch budget is spent.
    auto markDead = [&](Proc& p, const std::string& why) {
        const std::string pid = std::to_string(p.pid);
        if (p.job >= 0 && !done[static_cast<std::size_t>(p.job)]) {
            const auto j = static_cast<std::size_t>(p.job);
            if (attempts[j] >= options_.maxJobAttempts) {
                results[j].ok = false;
                results[j].error =
                    "worker died running this job " +
                    std::to_string(attempts[j]) +
                    " time(s) (last: " + why + ")";
                done[j] = 1;
                ++completed;
                event("worker " + pid + " died (" + why +
                      "); job " + jobName(j) + " failed after " +
                      std::to_string(attempts[j]) + " attempts");
            } else {
                queue.push_front(j);
                event("worker " + pid + " died (" + why +
                      "); re-queued " + jobName(j));
            }
        } else {
            event("worker " + pid + " exited (" + why + ")");
        }
        ::close(p.fd);
        p.fd = -1;
        p.job = -1;
        int status = 0;
        while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
        }
        p.pid = -1;
    };

    // Handle one complete protocol line; false = corrupt stream
    // (the caller kills the worker, which re-queues its shard).
    auto processLine = [&](Proc& p,
                           const std::string& line) -> bool {
        serve::Json doc;
        FabricResult res;
        try {
            doc = serve::Json::parse(line);
            const serve::Json* op = doc.find("op");
            if (!op)
                return false;
            if (op->asString() == "hello") {
                p.ready = true;
                return true;
            }
            if (op->asString() != "result") {
                event("ignoring op '" + op->asString() +
                      "' from worker " + std::to_string(p.pid));
                return true;
            }
            res = parseResult(doc);
        } catch (const std::exception& e) {
            event("corrupt message from worker " +
                  std::to_string(p.pid) + ": " + e.what());
            return false;
        }
        if (res.index >= total ||
            p.job != static_cast<std::ptrdiff_t>(res.index)) {
            // A reply for a job this worker doesn't hold means
            // the stream is desynchronized; killing the worker
            // re-queues its real shard.
            event("unexpected result for job " +
                  std::to_string(res.index) + " from worker " +
                  std::to_string(p.pid));
            return false;
        }
        if (res.ok && res.hasResult &&
            experiments::hashSimResult(res.result) !=
                res.resultHash) {
            res.ok = false;
            res.error = "result hash mismatch "
                        "(transport corruption)";
            res.hasResult = false;
            event("hash mismatch on job " + jobName(res.index) +
                  " from worker " + std::to_string(p.pid));
        }
        results[res.index] = res;
        done[res.index] = 1;
        ++completed;
        p.job = -1;
        return true;
    };

    // Drain every complete line currently buffered; false on
    // protocol corruption.
    auto processBuffer = [&](Proc& p) -> bool {
        for (;;) {
            const std::size_t nl = p.buffer.find('\n');
            if (nl == std::string::npos)
                return true;
            const std::string line = p.buffer.substr(0, nl);
            p.buffer.erase(0, nl + 1);
            if (!line.empty() && !processLine(p, line))
                return false;
        }
    };

    for (int w = 0; w < target; ++w)
        spawnOne();

    while (completed < total) {
        // Dispatch to idle workers; retire them once the queue is
        // drained (remaining in-flight shards may still re-queue,
        // in which case the pool is respawned below).
        for (Proc& p : procs) {
            if (!p.alive() || !p.ready || p.job >= 0)
                continue;
            if (queue.empty()) {
                sendLine(p.fd, encodeShutdown());
                markDead(p, "retired");
                continue;
            }
            const std::size_t j = queue.front();
            queue.pop_front();
            p.job = static_cast<std::ptrdiff_t>(j);
            ++attempts[j];
            p.deadline =
                nowSeconds() + options_.jobTimeoutSeconds;
            event("dispatched " + jobName(j) + " to worker " +
                  std::to_string(p.pid));
            if (!sendLine(p.fd, encodeJob(jobs[j])))
                markDead(p, "send failed");
        }
        if (completed >= total)
            break;

        const std::size_t alive = static_cast<std::size_t>(
            std::count_if(procs.begin(), procs.end(),
                          [](const Proc& p) {
                              return p.alive();
                          }));
        if (alive == 0) {
            if (queue.empty()) {
                // No workers, nothing queued, yet jobs incomplete:
                // internal inconsistency. Fail what's left rather
                // than spin.
                for (std::size_t i = 0; i < total; ++i) {
                    if (done[i])
                        continue;
                    results[i].ok = false;
                    results[i].error =
                        "lost by the coordinator (internal "
                        "error)";
                    done[i] = 1;
                    ++completed;
                }
                break;
            }
            if (respawns_left <= 0) {
                while (!queue.empty()) {
                    const std::size_t j = queue.front();
                    queue.pop_front();
                    results[j].ok = false;
                    results[j].error =
                        "no workers available (respawn budget "
                        "exhausted)";
                    done[j] = 1;
                    ++completed;
                }
                event("respawn budget exhausted; failing "
                      "remaining shards");
                continue;
            }
            const int n = static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(target), queue.size()));
            event("pool is empty with " +
                  std::to_string(queue.size()) +
                  " shard(s) left; respawning " +
                  std::to_string(n) + " worker(s)");
            for (int w = 0; w < n && respawns_left > 0; ++w) {
                if (spawnOne())
                    --respawns_left;
                else
                    break;
            }
            continue;
        }

        // Poll every live worker; wake for the nearest deadline.
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;
        int timeout_ms = -1;
        const double now = nowSeconds();
        for (std::size_t i = 0; i < procs.size(); ++i) {
            const Proc& p = procs[i];
            if (!p.alive())
                continue;
            fds.push_back({p.fd, POLLIN, 0});
            owner.push_back(i);
            if (p.job >= 0 && options_.jobTimeoutSeconds > 0) {
                const double left =
                    std::max(0.0, p.deadline - now) * 1000.0;
                const int ms = static_cast<int>(left) + 1;
                timeout_ms = timeout_ms < 0
                                 ? ms
                                 : std::min(timeout_ms, ms);
            }
        }
        const int rc =
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("fabric coordinator poll failed: errno ", errno);
        }

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Proc& p = procs[owner[k]];
            if (!p.alive())
                continue;
            char chunk[4096];
            const ssize_t n = ::read(p.fd, chunk, sizeof(chunk));
            if (n > 0) {
                p.buffer.append(chunk,
                                static_cast<std::size_t>(n));
                if (!processBuffer(p)) {
                    ::kill(p.pid, SIGKILL);
                    markDead(p, "protocol corruption");
                }
            } else if (n == 0) {
                // Drain results the worker flushed before dying
                // so a finished shard is never re-run.
                processBuffer(p);
                markDead(p, "connection closed");
            } else if (errno != EINTR && errno != EAGAIN) {
                markDead(p, "read failed");
            }
        }

        // Enforce job deadlines (hung-worker recovery): SIGKILL
        // and settle the shard through the death path.
        if (options_.jobTimeoutSeconds > 0) {
            const double after = nowSeconds();
            for (Proc& p : procs) {
                if (!p.alive() || p.job < 0 ||
                    after < p.deadline)
                    continue;
                event("job " +
                      jobName(static_cast<std::size_t>(p.job)) +
                      " exceeded " +
                      std::to_string(options_.jobTimeoutSeconds) +
                      "s; killing worker " +
                      std::to_string(p.pid));
                ::kill(p.pid, SIGKILL);
                markDead(p, "job timeout");
            }
        }
    }

    // Retire the pool. Idle workers get an orderly shutdown; a
    // worker still holding a (completed-elsewhere) shard is
    // killed.
    for (Proc& p : procs) {
        if (!p.alive())
            continue;
        if (p.job >= 0)
            ::kill(p.pid, SIGKILL);
        else
            sendLine(p.fd, encodeShutdown());
        p.job = -1;
        markDead(p, "pool shutdown");
    }
    return results;
}

std::vector<ExperimentOutcome>
FabricCoordinator::runSweep(const SweepSpec& spec)
{
    std::vector<FabricJob> jobs;
    jobs.reserve(spec.configs.size() * spec.benchmarks.size());
    for (const auto& [tag, config] : spec.configs) {
        for (const std::string& benchmark : spec.benchmarks) {
            FabricJob job;
            job.kind = FabricJob::Kind::Run;
            job.index = jobs.size();
            job.tag = tag;
            job.benchmark = benchmark;
            job.cycles = spec.measureCycles;
            job.seed = deriveRunSeed(options_.baseSeed, benchmark,
                                     tag);
            job.config = config;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<FabricResult> results = runJobs(jobs);
    std::vector<ExperimentOutcome> outcomes;
    outcomes.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        outcomes.push_back(outcomeFrom(jobs[i], results[i]));
    return outcomes;
}

std::vector<ExperimentOutcome>
FabricCoordinator::runWarmForkSweep(const SweepSpec& spec,
                                    const WarmSpec& warm)
{
    if (options_.spillDir.empty())
        fatal("fabric warm-fork sweep needs a spill directory "
              "(FabricOptions::spillDir) for snapshot shipping");

    const std::size_t num_benchmarks = spec.benchmarks.size();

    // Phase 1: one warm snapshot per benchmark, built on the
    // pool, shipped by file path. Seeds follow the warm-fork
    // rule: every fork of a benchmark reuses the warm-up's seed.
    std::vector<std::uint64_t> warm_seeds(num_benchmarks);
    std::vector<FabricJob> warm_jobs;
    warm_jobs.reserve(num_benchmarks);
    for (std::size_t b = 0; b < num_benchmarks; ++b) {
        const std::string& benchmark = spec.benchmarks[b];
        warm_seeds[b] = deriveRunSeed(options_.baseSeed, benchmark,
                                      warm.warmTag);
        FabricJob job;
        job.kind = FabricJob::Kind::Warm;
        job.index = b;
        job.tag = warm.warmTag;
        job.benchmark = benchmark;
        job.cycles = warm.warmupCycles;
        job.seed = warm_seeds[b];
        job.config = warm.warmConfig;
        job.snapshotPath = options_.spillDir + "/warm_" +
                           benchmark + ".ckpt";
        warm_jobs.push_back(std::move(job));
    }
    const std::vector<FabricResult> warm_results =
        runJobs(warm_jobs);

    // Phase 2: fork every (config, benchmark) shard from its
    // benchmark's snapshot file. Shards of a failed warm-up are
    // not dispatched; they fail with the runner's error shape.
    std::vector<FabricJob> jobs;
    std::vector<std::size_t> sweep_index;
    const std::size_t sweep_total =
        spec.configs.size() * num_benchmarks;
    jobs.reserve(sweep_total);
    sweep_index.reserve(sweep_total);
    std::vector<ExperimentOutcome> outcomes(sweep_total);
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
        for (std::size_t b = 0; b < num_benchmarks; ++b) {
            const std::size_t i = c * num_benchmarks + b;
            ExperimentOutcome& out = outcomes[i];
            out.tag = spec.configs[c].first;
            out.benchmark = spec.benchmarks[b];
            out.seed = warm_seeds[b];
            if (!warm_results[b].ok) {
                out.error = "warm-up failed: " +
                            warm_results[b].error;
                continue;
            }
            FabricJob job;
            job.kind = FabricJob::Kind::Run;
            job.index = jobs.size();
            job.tag = out.tag;
            job.benchmark = out.benchmark;
            job.cycles = spec.measureCycles;
            job.seed = warm_seeds[b];
            job.config = spec.configs[c].second;
            job.snapshotPath = warm_jobs[b].snapshotPath;
            job.resetMeasurement = warm.resetMeasurement;
            jobs.push_back(std::move(job));
            sweep_index.push_back(i);
        }
    }
    const std::vector<FabricResult> results = runJobs(jobs);
    for (std::size_t k = 0; k < jobs.size(); ++k)
        outcomes[sweep_index[k]] =
            outcomeFrom(jobs[k], results[k]);
    return outcomes;
}

} // namespace fabric
} // namespace tempest
