/**
 * @file
 * Sweep-fabric worker loop (DESIGN.md §15).
 *
 * A worker is a child process holding one end of a Unix socketpair
 * to the coordinator. It announces itself with a hello message,
 * then executes jobs one at a time until it reads a shutdown
 * message or EOF (coordinator death — a worker never outlives its
 * coordinator).
 *
 * Workers are intentionally synchronous and stateless between
 * jobs: each job message carries everything needed to reproduce
 * the simulation (dotted config keys, exact seed, cycle budget,
 * snapshot path), so any job can run on any worker and a dead
 * worker's shards can be re-queued onto survivors verbatim.
 */

#ifndef TEMPEST_SIM_FABRIC_WORKER_HH
#define TEMPEST_SIM_FABRIC_WORKER_HH

#include "sim/fabric/fabric_protocol.hh"

namespace tempest
{
namespace fabric
{

/**
 * Execute one job on the calling thread/process — the reference
 * path workerMain dispatches to, exposed so tests can assert the
 * fabric's per-job semantics without any process plumbing.
 * Exceptions are captured into the result (ok=false), mirroring
 * ExperimentRunner::runJob.
 */
FabricResult executeJob(const FabricJob& job);

/**
 * Worker protocol loop over an already-connected socket: send
 * hello, then read newline-delimited job messages and write result
 * lines until shutdown or EOF. @return process exit status
 * (0 on orderly shutdown/EOF, 1 on a protocol or I/O error).
 */
int workerMain(int fd);

} // namespace fabric
} // namespace tempest

#endif // TEMPEST_SIM_FABRIC_WORKER_HH
