#include "sim/fabric/worker.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "sim/checkpoint/checkpoint.hh"
#include "sim/checkpoint/stateio.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sim_config_io.hh"
#include "workload/profile.hh"

namespace tempest
{
namespace fabric
{

namespace
{

/** Write the whole buffer, retrying on EINTR/short writes.
 * MSG_NOSIGNAL: a vanished coordinator is an orderly exit(1),
 * not SIGPIPE. */
bool
writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const std::string& line)
{
    return writeAll(fd, line + "\n");
}

} // namespace

FabricResult
executeJob(const FabricJob& job)
{
    FabricResult res;
    res.index = job.index;
    // det:allow(wallSeconds metric only; never feeds simulation state)
    const auto start = std::chrono::steady_clock::now();
    try {
        SimConfig config = simConfigFromConfig(job.config);
        config.runSeed = job.seed;
        if (job.kind == FabricJob::Kind::Warm) {
            // Build the benchmark's warm snapshot and publish it
            // atomically; the hash of the snapshot bytes lets the
            // coordinator (and tests) fingerprint warm state.
            const std::string bytes =
                experiments::warmSnapshot(config, job.benchmark,
                                          job.seed, job.cycles);
            writeCheckpointFile(job.snapshotPath, bytes);
            res.resultHash =
                fnv1a64(bytes.data(), bytes.size());
        } else if (!job.snapshotPath.empty()) {
            const std::string snapshot =
                readCheckpointFile(job.snapshotPath);
            res.result = experiments::runFromSnapshot(
                config, job.benchmark, job.seed, snapshot,
                job.cycles, job.resetMeasurement);
            res.resultHash =
                experiments::hashSimResult(res.result);
            res.hasResult = true;
        } else {
            Simulator sim(config, spec2000(job.benchmark));
            res.result = sim.run(job.cycles);
            res.resultHash =
                experiments::hashSimResult(res.result);
            res.hasResult = true;
        }
        res.ok = true;
    } catch (const std::exception& e) {
        res.error = e.what();
    } catch (...) {
        res.error = "unknown exception";
    }
    res.wallSeconds =
        std::chrono::duration<double>(
            // det:allow(wallSeconds metric only; never feeds simulation state)
            std::chrono::steady_clock::now() - start)
            .count();
    return res;
}

int
workerMain(int fd)
{
    if (!writeLine(fd, encodeHello(static_cast<long>(::getpid()))))
        return 1;

    std::string buffer;
    char chunk[4096];
    for (;;) {
        // Drain complete lines before reading more: a single
        // read() can deliver several queued messages.
        const std::size_t nl = buffer.find('\n');
        if (nl == std::string::npos) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return 1;
            }
            if (n == 0)
                return 0; // coordinator went away
            buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        const std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (line.empty())
            continue;

        FabricResult res;
        try {
            const serve::Json doc = serve::Json::parse(line);
            const std::string op =
                doc.find("op") ? doc.find("op")->asString()
                               : std::string();
            if (op == "shutdown")
                return 0;
            if (op != "job") {
                warn("fabric worker: ignoring op '", op, "'");
                continue;
            }
            res = executeJob(parseJob(doc));
        } catch (const std::exception& e) {
            // Malformed message: report and keep serving. The
            // index may be unknown; 0 with ok=false is still a
            // visible failure on the coordinator side.
            res.ok = false;
            res.error = e.what();
        }
        if (!writeLine(fd, encodeResult(res)))
            return 1;
    }
}

} // namespace fabric
} // namespace tempest
